// Figure 14: runtime vs minimum support (1%-6%).
//   (a) static:  ADIMINE vs PartMiner.
//   (b) dynamic: ADIMINE (rebuild + remine) vs PartMiner (full re-run) vs
//       IncPartMiner, after updating a fraction of the database.
//
// Flags: --mode=static|dynamic|both (default both), --scale, --d, --t, --n,
//        --l, --i, --seed, --k (units, default 2),
//        --update-fraction (default 0.4).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "adi/adi_miner.h"
#include "bench/bench_common.h"
#include "common/timing.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/update_generator.h"

namespace partminer {
namespace bench {
namespace {

constexpr double kSupports[] = {0.01, 0.02, 0.03, 0.04, 0.05, 0.06};

void RunStatic(const WorkloadSpec& spec, int k, int io_delay_us,
               const PoolSizing& pool) {
  for (const double sup : kSupports) {
    GraphDatabase db = MakeWorkload(spec);

    AdiMineOptions adi_opts;
    adi_opts.io_delay_us = io_delay_us;
    adi_opts.pool = pool;
    AdiMine adi(adi_opts);
    Stopwatch adi_watch;
    adi.BuildIndex(db);
    MinerOptions adi_options;
    adi_options.min_support =
        std::max(1, static_cast<int>(std::ceil(sup * db.size())));
    adi.Mine(adi_options);
    PrintRow("fig14a", "ADIMINE", sup * 100, adi_watch.ElapsedSeconds());

    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.partition.k = k;
    PartMiner miner(options);
    const PartMinerResult result = miner.Mine(db);
    PrintRow("fig14a", "PartMiner", sup * 100, result.AggregateSeconds());
  }
}

void RunDynamic(const WorkloadSpec& spec, int k, double update_fraction,
                int io_delay_us, const PoolSizing& pool) {
  for (const double sup : kSupports) {
    GraphDatabase db = MakeWorkload(spec);

    // Pre-update state for the incremental miner.
    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.partition.k = k;
    PartMiner miner(options);
    miner.Mine(db);

    AdiMineOptions adi_opts;
    adi_opts.io_delay_us = io_delay_us;
    adi_opts.pool = pool;
    AdiMine adi(adi_opts);
    adi.BuildIndex(db);

    UpdateOptions upd;
    upd.fraction_graphs = update_fraction;
    upd.hotspot_locality = 1.0;
    upd.seed = spec.seed + 17;
    const UpdateLog log = ApplyUpdates(&db, spec.n, upd);

    // ADIMINE: full index rebuild plus full re-mine.
    Stopwatch adi_watch;
    adi.RebuildIndex(db);
    MinerOptions adi_options;
    adi_options.min_support =
        std::max(1, static_cast<int>(std::ceil(sup * db.size())));
    adi.Mine(adi_options);
    PrintRow("fig14b", "ADIMINE", sup * 100, adi_watch.ElapsedSeconds());

    // PartMiner: full re-run on the updated database.
    PartMiner fresh(options);
    const PartMinerResult full = fresh.Mine(db);
    PrintRow("fig14b", "PartMiner", sup * 100, full.AggregateSeconds());

    // IncPartMiner: incremental update of the cached state.
    IncPartMiner inc;
    const IncPartMinerResult result = inc.Update(&miner, db, log);
    PrintRow("fig14b", "IncPartMiner", sup * 100, result.AggregateSeconds());
  }
}

}  // namespace
}  // namespace bench
}  // namespace partminer

int main(int argc, char** argv) {
  using namespace partminer::bench;
  const Flags flags(argc, argv);
  ApplyFastPathFlags(flags);
  const WorkloadSpec spec = WorkloadSpec::FromFlags(flags);
  const int k = flags.GetInt("k", 2);
  const double update_fraction = flags.GetDouble("update-fraction", 0.1);
  const int io_delay_us = flags.GetInt("io-delay-us", 1000);
  // 32 frames: pool smaller than the page file, so ADI runs pay eviction.
  const partminer::PoolSizing pool = PoolSizingFromFlags(flags, 32);
  const std::string mode = flags.GetString("mode", "both");

  PrintHeader("fig14",
              "runtime vs minimum support (paper Fig. 14: PartMiner ~ "
              "ADIMINE statically, IncPartMiner dominates dynamically)",
              spec.Tag());
  if (mode == "static" || mode == "both") {
    RunStatic(spec, k, io_delay_us, pool);
  }
  if (mode == "dynamic" || mode == "both") {
    RunDynamic(spec, k, update_fraction, io_delay_us, pool);
  }
  MaybeWriteMetrics(flags, "fig14");
  return 0;
}
