// Microbenchmarks for the buffer managers: classic sharded-LRU BufferPool
// vs the LeanStore-style SwizzlePool.
//
//   hot_hit         resident working set, repeated fetches — the pointer-
//                   swizzling hot path vs mutex + hash lookup. The headline
//                   number: swizzle must be >= 3x faster single-threaded.
//   cold_miss       working set >> pool, uniform random fetches — both
//                   engines pay the same disk reads; measures slow-path
//                   overhead (victim selection, cooling sweep).
//   eviction_storm  write-heavy overwrite stream through a small pool —
//                   classic vs swizzle synchronous vs swizzle with async
//                   writer threads overlapping the write-back.
//   scale_read      read-only hot fetches at 1/2/4/8 threads. The record
//                   stamps `cores`; on a 1-core box the extra threads
//                   time-slice and the numbers say so honestly.
//
// Flags: --ops (hot-path fetches, default 200000), --miss-ops, --storm-ops,
//        --scale-ops (per-thread), --pool-frames/--pool-partitions/
//        --writer-threads/--writeback-queue (shared spelling, default 64
//        frames), --out=FILE to write the BENCH_*.json record.
//
// CSV rows (figure "storage") go to stdout for eyeballing; the *_ms blocks
// in the JSON record are what tools/bench_compare.py gates.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timing.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/swizzle_pool.h"

namespace partminer {
namespace bench {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/partminer_bench_storage_") + tag + "_" +
         std::to_string(::getpid());
}

// Consumed checksum so the fetch loops cannot be optimized away.
std::atomic<uint64_t> g_sink{0};

void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_micro_storage: %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

std::vector<PageId> Populate(DiskManager* disk, int pages) {
  std::vector<PageId> ids;
  ids.reserve(pages);
  char buf[kPageSize];
  for (int i = 0; i < pages; ++i) {
    PageId id = kInvalidPageId;
    MustOk(disk->Allocate(&id), "allocate");
    std::memset(buf, static_cast<char>(i), kPageSize);
    MustOk(disk->WritePage(id, buf), "populate write");
    ids.push_back(id);
  }
  return ids;
}

// One reader thread's fetch loop; `thread_seed` decorrelates the streams.
template <typename FetchFn>
void ReadLoop(const std::vector<PageId>& ids, int ops, uint64_t thread_seed,
              const FetchFn& fetch) {
  Rng rng(thread_seed);
  uint64_t sink = 0;
  for (int op = 0; op < ops; ++op) {
    sink += fetch(ids[rng.Uniform(ids.size())]);
  }
  g_sink.fetch_add(sink, std::memory_order_relaxed);
}

double TimeClassicReads(BufferPool* pool, const std::vector<PageId>& ids,
                        int threads, int ops_per_thread) {
  const auto fetch = [pool](PageId id) -> uint64_t {
    char* data = nullptr;
    MustOk(pool->Fetch(id, &data), "classic fetch");
    const uint64_t byte = static_cast<uint8_t>(data[0]);
    pool->Unpin(id, /*dirty=*/false);
    return byte;
  };
  Stopwatch watch;
  if (threads <= 1) {
    ReadLoop(ids, ops_per_thread, 1, fetch);
  } else {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(
          [&, t]() { ReadLoop(ids, ops_per_thread, 1 + t, fetch); });
    }
    for (std::thread& w : workers) w.join();
  }
  return watch.ElapsedMillis();
}

double TimeSwizzleReads(SwizzlePool* pool, const std::vector<PageId>& ids,
                        int threads, int ops_per_thread) {
  const auto fetch = [pool](PageId id) -> uint64_t {
    PageGuard guard;
    MustOk(pool->Fetch(id, &guard), "swizzle fetch");
    return static_cast<uint8_t>(guard.data()[0]);
  };
  Stopwatch watch;
  if (threads <= 1) {
    ReadLoop(ids, ops_per_thread, 1, fetch);
  } else {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(
          [&, t]() { ReadLoop(ids, ops_per_thread, 1 + t, fetch); });
    }
    for (std::thread& w : workers) w.join();
  }
  return watch.ElapsedMillis();
}

// Overwrite stream: repeatedly rewrite random pages of a working set larger
// than the pool, so every miss evicts a dirty victim.
double TimeClassicStorm(BufferPool* pool, const std::vector<PageId>& ids,
                        int ops) {
  Rng rng(7);
  Stopwatch watch;
  for (int op = 0; op < ops; ++op) {
    const PageId id = ids[rng.Uniform(ids.size())];
    char* data = nullptr;
    MustOk(pool->Fetch(id, &data), "classic storm fetch");
    data[op % kPageSize] = static_cast<char>(op);
    pool->Unpin(id, /*dirty=*/true);
  }
  MustOk(pool->FlushAll(), "classic storm flush");
  return watch.ElapsedMillis();
}

double TimeSwizzleStorm(SwizzlePool* pool, const std::vector<PageId>& ids,
                        int ops) {
  Rng rng(7);
  Stopwatch watch;
  for (int op = 0; op < ops; ++op) {
    const PageId id = ids[rng.Uniform(ids.size())];
    PageMutGuard guard;
    MustOk(pool->FetchMut(id, &guard), "swizzle storm fetch");
    guard.data()[op % kPageSize] = static_cast<char>(op);
  }
  MustOk(pool->FlushAll(), "swizzle storm flush");
  return watch.ElapsedMillis();
}

}  // namespace
}  // namespace bench
}  // namespace partminer

int main(int argc, char** argv) {
  using namespace partminer::bench;
  using partminer::BufferPool;
  using partminer::DiskManager;
  using partminer::PageId;
  using partminer::PoolSizing;
  using partminer::StorageEngine;
  using partminer::SwizzlePool;

  const Flags flags(argc, argv);
  const int hot_ops = flags.GetInt("ops", 200000);
  const int miss_ops = flags.GetInt("miss-ops", 20000);
  const int storm_ops = flags.GetInt("storm-ops", 20000);
  const int scale_ops = flags.GetInt("scale-ops", 100000);
  const std::string out = flags.GetString("out", "");
  PoolSizing sizing = PoolSizingFromFlags(flags, 64);
  constexpr int kScaleThreads[] = {1, 2, 4, 8};

  PrintHeader("storage",
              "buffer-manager microbenchmarks (classic LRU pool vs "
              "LeanStore-style swizzle pool)",
              "frames=" + std::to_string(sizing.frames));
  BenchRecord record("micro-storage", /*threads=*/8);
  record.Note("engine_hot_path", "swip load + pin + version validate");
  record.Metric("pool_frames", sizing.frames);
  record.Metric("pool_partitions", sizing.partitions);

  // --- hot_hit: working set fits; every fetch after warmup is a hit. ---
  {
    DiskManager disk;
    MustOk(disk.Open(TempPath("hot")), "open");
    const std::vector<PageId> ids = Populate(&disk, sizing.frames / 2);

    // Best of 5 reps: scheduler noise on a shared box only ever inflates a
    // rep, so the minimum is the honest per-op cost for both engines.
    BufferPool classic(&disk, sizing.frames, sizing.partitions);
    TimeClassicReads(&classic, ids, 1, static_cast<int>(ids.size()));  // warm
    double classic_ms = TimeClassicReads(&classic, ids, 1, hot_ops);
    for (int rep = 1; rep < 5; ++rep) {
      classic_ms = std::min(classic_ms,
                            TimeClassicReads(&classic, ids, 1, hot_ops));
    }

    SwizzlePool swizzle(&disk, sizing);
    TimeSwizzleReads(&swizzle, ids, 1, static_cast<int>(ids.size()));  // warm
    double swizzle_ms = TimeSwizzleReads(&swizzle, ids, 1, hot_ops);
    for (int rep = 1; rep < 5; ++rep) {
      swizzle_ms = std::min(swizzle_ms,
                            TimeSwizzleReads(&swizzle, ids, 1, hot_ops));
    }

    PrintRow("storage", "hot_hit_classic", hot_ops, classic_ms);
    PrintRow("storage", "hot_hit_swizzle", hot_ops, swizzle_ms);
    record.Ms("hot_hit", "classic", classic_ms);
    record.Ms("hot_hit", "swizzle", swizzle_ms);
    const double speedup = swizzle_ms > 0 ? classic_ms / swizzle_ms : 0;
    record.Metric("hot_hit_speedup", speedup);
    std::printf("# hot_hit speedup: %.2fx (acceptance floor 3x)\n", speedup);
  }

  // --- cold_miss: working set 8x the pool; fetches are mostly misses. ---
  {
    DiskManager disk;
    MustOk(disk.Open(TempPath("cold")), "open");
    const std::vector<PageId> ids = Populate(&disk, sizing.frames * 8);

    BufferPool classic(&disk, sizing.frames, sizing.partitions);
    const double classic_ms = TimeClassicReads(&classic, ids, 1, miss_ops);

    SwizzlePool swizzle(&disk, sizing);
    const double swizzle_ms = TimeSwizzleReads(&swizzle, ids, 1, miss_ops);

    PrintRow("storage", "cold_miss_classic", miss_ops, classic_ms);
    PrintRow("storage", "cold_miss_swizzle", miss_ops, swizzle_ms);
    record.Ms("cold_miss", "classic", classic_ms);
    record.Ms("cold_miss", "swizzle", swizzle_ms);
  }

  // --- eviction_storm: dirty overwrites through a too-small pool. ---
  {
    DiskManager disk;
    MustOk(disk.Open(TempPath("storm")), "open");
    const std::vector<PageId> ids = Populate(&disk, sizing.frames * 4);

    BufferPool classic(&disk, sizing.frames, sizing.partitions);
    const double classic_ms = TimeClassicStorm(&classic, ids, storm_ops);

    SwizzlePool sync_pool(&disk, sizing);
    const double sync_ms = TimeSwizzleStorm(&sync_pool, ids, storm_ops);

    PoolSizing async_sizing = sizing;
    async_sizing.writer_threads =
        async_sizing.writer_threads > 0 ? async_sizing.writer_threads : 2;
    SwizzlePool async_pool(&disk, async_sizing);
    const double async_ms = TimeSwizzleStorm(&async_pool, ids, storm_ops);

    PrintRow("storage", "storm_classic", storm_ops, classic_ms);
    PrintRow("storage", "storm_swizzle_sync", storm_ops, sync_ms);
    PrintRow("storage", "storm_swizzle_async", storm_ops, async_ms);
    record.Ms("eviction_storm", "classic", classic_ms);
    record.Ms("eviction_storm", "swizzle_sync", sync_ms);
    record.Ms("eviction_storm", "swizzle_async", async_ms);
    record.Metric("storm_writer_threads", async_sizing.writer_threads);
    if (async_ms > sync_ms) {
      record.Note("storm_async_note",
                  "async write-back slower than sync here: writer threads "
                  "time-slice against the evictor when cores <= threads");
    }
  }

  // --- scale_read: hot fetches at 1/2/4/8 threads, same total work per
  // point (ops * threads), so the y-axis is wall time for more total work
  // done concurrently. Read the numbers next to `cores`.
  {
    DiskManager disk;
    MustOk(disk.Open(TempPath("scale")), "open");
    const std::vector<PageId> ids = Populate(&disk, sizing.frames / 2);

    BufferPool classic(&disk, sizing.frames, sizing.partitions);
    SwizzlePool swizzle(&disk, sizing);
    TimeClassicReads(&classic, ids, 1, static_cast<int>(ids.size()));  // warm
    TimeSwizzleReads(&swizzle, ids, 1, static_cast<int>(ids.size()));  // warm
    for (const int threads : kScaleThreads) {
      const double classic_ms =
          TimeClassicReads(&classic, ids, threads, scale_ops);
      const double swizzle_ms =
          TimeSwizzleReads(&swizzle, ids, threads, scale_ops);
      PrintRow("storage", "scale_classic_t" + std::to_string(threads),
               threads, classic_ms);
      PrintRow("storage", "scale_swizzle_t" + std::to_string(threads),
               threads, swizzle_ms);
      record.Ms("scale_read", "classic_t" + std::to_string(threads),
                classic_ms);
      record.Ms("scale_read", "swizzle_t" + std::to_string(threads),
                swizzle_ms);
    }
  }

  std::printf("# checksum %llu\n",
              static_cast<unsigned long long>(
                  g_sink.load(std::memory_order_relaxed)));
  if (!out.empty()) {
    if (!record.WriteFile(out)) {
      std::fprintf(stderr, "bench_micro_storage: cannot write %s\n",
                   out.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", out.c_str());
  }
  return 0;
}
