// Calibration probe (not a paper figure): times gSpan / PartMiner / AdiMine
// on one workload configuration. Used to pick defaults for the figure
// harnesses; kept in-tree because it is handy when porting the benches to a
// new machine.
//
// Flags: --d --t --n --l --i --seed --sup (fraction) --k --max-edges

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>

#include "adi/adi_miner.h"
#include "bench/bench_common.h"
#include "common/timing.h"
#include "core/inc_part_miner.h"
#include "datagen/update_generator.h"
#include "core/part_miner.h"
#include "miner/gspan.h"

int main(int argc, char** argv) {
  using namespace partminer;
  using namespace partminer::bench;
  const Flags flags(argc, argv);
  const WorkloadSpec spec = WorkloadSpec::FromFlags(flags);
  const double sup = flags.GetDouble("sup", 0.02);
  const int k = flags.GetInt("k", 2);
  const int max_edges = flags.GetInt("max-edges", INT_MAX);

  Stopwatch gen_watch;
  GraphDatabase db = MakeWorkload(spec);
  std::printf("workload %s: %d graphs, %lld edges (%.2fs to generate)\n",
              spec.Tag().c_str(), db.size(),
              static_cast<long long>(db.TotalEdges()),
              gen_watch.ElapsedSeconds());
  const int sup_count =
      std::max(1, static_cast<int>(std::ceil(sup * db.size())));
  std::printf("min support: %.1f%% = %d graphs\n", sup * 100, sup_count);

  {
    Stopwatch watch;
    GSpanMiner gspan;
    MinerOptions options;
    options.min_support = sup_count;
    options.max_edges = max_edges;
    const PatternSet patterns = gspan.Mine(db, options);
    std::printf("gSpan:     %7.2fs  %6d patterns (max %d edges)\n",
                watch.ElapsedSeconds(), patterns.size(),
                patterns.MaxEdgeCount());
  }
  {
    Stopwatch watch;
    AdiMine adi;
    adi.BuildIndex(db);
    const double build = watch.ElapsedSeconds();
    MinerOptions options;
    options.min_support = sup_count;
    options.max_edges = max_edges;
    const PatternSet patterns = adi.Mine(options);
    std::printf("AdiMine:   %7.2fs  %6d patterns (index build %.2fs, %lld "
                "pages)\n",
                watch.ElapsedSeconds(), patterns.size(), build,
                static_cast<long long>(adi.index().pages_used()));
  }
  {
    Stopwatch watch;
    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.min_support_count = sup_count;
    options.partition.k = k;
    options.max_edges = max_edges;
    PartMiner miner(options);
    const PartMinerResult r = miner.Mine(db);
    std::printf(
        "PartMiner: %7.2fs  %6d patterns (partition %.2fs, units sum %.2fs "
        "max %.2fs, merge %.2fs, verify %.2fs)\n",
        watch.ElapsedSeconds(), r.patterns.size(), r.partition_seconds,
        r.UnitSecondsSum(), r.UnitSecondsMax(), r.merge_seconds,
        r.verify_seconds);
    std::printf(
        "  merge stats: inherited %lld, counted %lld, cross-partition %lld\n",
        static_cast<long long>(r.merge_stats.inherited_patterns),
        static_cast<long long>(r.merge_stats.candidates_counted),
        static_cast<long long>(r.merge_stats.spanning_found));
  }
  {
    // Incremental path: mine, update 40% of graphs, IncPartMiner.
    GraphDatabase dyn = MakeWorkload(spec);
    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.min_support_count = sup_count;
    options.partition.k = k;
    options.max_edges = max_edges;
    PartMiner miner(options);
    miner.Mine(dyn);

    UpdateOptions upd;
    upd.fraction_graphs = flags.GetDouble("update-fraction", 0.4);
    upd.seed = spec.seed + 99;
    const UpdateLog log = ApplyUpdates(&dyn, spec.n, upd);

    Stopwatch watch;
    IncPartMiner inc;
    const IncPartMinerResult r = inc.Update(&miner, dyn, log);
    std::printf(
        "IncPart:   %7.2fs  %6d patterns (route %.2fs, units sum %.3fs, "
        "merge %.3fs, verify %.3fs; %d/%d units remined, %zu graphs "
        "updated)\n",
        watch.ElapsedSeconds(), r.patterns.size(), r.route_seconds,
        r.UnitSecondsSum(), r.merge_seconds, r.verify_seconds,
        r.remined_units.Count(), k, log.updated_graphs.size());
    std::printf(
        "  inc merge stats: cached %lld, delta %lld, generated %lld, "
        "counted %lld, new %lld\n",
        static_cast<long long>(r.merge_stats.cached_patterns),
        static_cast<long long>(r.merge_stats.delta_recounts),
        static_cast<long long>(r.merge_stats.candidates_generated),
        static_cast<long long>(r.merge_stats.candidates_counted),
        static_cast<long long>(r.merge_stats.spanning_found));
  }
  return 0;
}
