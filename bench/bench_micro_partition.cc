// Micro benchmarks for the partitioning substrate: GraphPart under the
// three criteria vs the METIS-style multilevel bisector — both cost and cut
// quality — plus DBPartition end-to-end and the buffer pool.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/generator.h"
#include "partition/db_partition.h"
#include "partition/graph_part.h"
#include "partition/multilevel.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace partminer {
namespace {

Graph WorkloadGraph(int vertices) {
  GeneratorParams params;
  params.num_graphs = 1;
  params.avg_edges = vertices * 2;
  params.num_labels = 10;
  params.num_kernels = 5;
  params.seed = 3;
  GraphDatabase db = GenerateDatabase(params);
  Graph g = db.graph(0);
  Rng rng(5);
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    if (rng.Bernoulli(0.2)) g.set_update_freq(v, 1 + rng.Uniform(4));
  }
  return g;
}

void BM_GraphPartCombined(benchmark::State& state) {
  const Graph g = WorkloadGraph(static_cast<int>(state.range(0)));
  int cut = 0;
  for (auto _ : state) {
    const Bisection b = GraphPart(g, GraphPartOptions{1.0, 1.0});
    cut = b.cut_edges;
    benchmark::DoNotOptimize(b);
  }
  state.counters["cut_edges"] = cut;
}
BENCHMARK(BM_GraphPartCombined)->Arg(20)->Arg(40)->Arg(80);

void BM_GraphPartMinCut(benchmark::State& state) {
  const Graph g = WorkloadGraph(static_cast<int>(state.range(0)));
  int cut = 0;
  for (auto _ : state) {
    const Bisection b = GraphPart(g, GraphPartOptions{0.0, 1.0});
    cut = b.cut_edges;
    benchmark::DoNotOptimize(b);
  }
  state.counters["cut_edges"] = cut;
}
BENCHMARK(BM_GraphPartMinCut)->Arg(20)->Arg(40)->Arg(80);

void BM_MultilevelBisect(benchmark::State& state) {
  const Graph g = WorkloadGraph(static_cast<int>(state.range(0)));
  int cut = 0;
  for (auto _ : state) {
    const std::vector<int> side = MultilevelBisect(g, MultilevelOptions{});
    cut = CountCutEdges(g, side);
    benchmark::DoNotOptimize(side);
  }
  state.counters["cut_edges"] = cut;
}
BENCHMARK(BM_MultilevelBisect)->Arg(20)->Arg(40)->Arg(80);

void BM_DBPartition(benchmark::State& state) {
  GeneratorParams params;
  params.num_graphs = 200;
  params.avg_edges = 20;
  params.num_labels = 20;
  params.num_kernels = 20;
  const GraphDatabase db = GenerateDatabase(params);
  PartitionOptions options;
  options.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionedDatabase::Create(db, options));
  }
}
BENCHMARK(BM_DBPartition)->Arg(2)->Arg(4)->Arg(6);

void BM_BufferPoolFetch(benchmark::State& state) {
  DiskManager disk;
  PM_CHECK(disk.Open("/tmp/partminer_bench_pool.pages").ok());
  BufferPool pool(&disk, static_cast<int>(state.range(0)));
  constexpr int kPages = 256;
  for (int i = 0; i < kPages; ++i) {
    PageId id;
    char* data = nullptr;
    PM_CHECK(pool.Allocate(&id, &data).ok());
    data[0] = static_cast<char>(i);
    pool.Unpin(id, true);
  }
  Rng rng(1);
  for (auto _ : state) {
    const PageId id = static_cast<PageId>(rng.Uniform(kPages));
    char* data = nullptr;
    PM_CHECK(pool.Fetch(id, &data).ok());
    benchmark::DoNotOptimize(data[0]);
    pool.Unpin(id, false);
  }
  state.counters["hit_rate"] = pool.stats().HitRate();
}
BENCHMARK(BM_BufferPoolFetch)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace partminer

BENCHMARK_MAIN();
