// Figure 17: IncPartMiner vs ADIMINE as the amount of updates grows from
// 20% to 80% of the database (minsup 4%).
//   (a) relabel updates (vertex/edge labels, existing or new labels);
//   (b) structural additions (new edges and new vertices).
//
// Paper sweep: 20%-80%; this harness adds 2%-10% points to expose the
// delta regime where the incremental advantage is largest.
// Paper shape: ADIMINE is flat and high (it always rebuilds + remines);
// IncPartMiner grows roughly linearly with the update amount and stays
// below ADIMINE across the sweep. The harness also reports the incremental
// candidate accounting (counted vs skipped-known) that explains the gap.
//
// Flags: --kind=relabel|add|both, --scale, --d/--t/--n/--l/--i/--seed,
//        --sup, --k, --io-delay-us.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "adi/adi_miner.h"
#include "bench/bench_common.h"
#include "common/timing.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/update_generator.h"

namespace partminer {
namespace bench {
namespace {

void RunSweep(const char* figure, const WorkloadSpec& spec, double sup,
              int k, int io_delay_us, const PoolSizing& pool,
              std::vector<UpdateKind> kinds) {
  for (const double fraction : {0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    GraphDatabase db = MakeWorkload(spec);
    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.partition.k = k;
    PartMiner miner(options);
    miner.Mine(db);

    AdiMineOptions adi_opts;
    adi_opts.io_delay_us = io_delay_us;
    adi_opts.pool = pool;
    AdiMine adi(adi_opts);
    adi.BuildIndex(db);

    UpdateOptions upd;
    upd.fraction_graphs = fraction;
    upd.hotspot_locality = 1.0;
    upd.kinds = std::move(kinds);
    upd.seed = spec.seed + 55;
    const UpdateLog log = ApplyUpdates(&db, spec.n, upd);
    kinds = upd.kinds;

    Stopwatch adi_watch;
    adi.RebuildIndex(db);
    MinerOptions adi_options;
    adi_options.min_support =
        std::max(1, static_cast<int>(std::ceil(sup * db.size())));
    adi.Mine(adi_options);
    PrintRow(figure, "ADIMINE", fraction * 100, adi_watch.ElapsedSeconds());

    IncPartMiner inc;
    const IncPartMinerResult result = inc.Update(&miner, db, log);
    PrintRow(figure, "IncPartMiner", fraction * 100,
             result.AggregateSeconds());
    std::printf(
        "# %s updates=%.0f%%: remined %d/%d units, prune set %d, cached "
        "%lld, counted %lld, skipped-known %lld, UF %d FI %d IF %d\n",
        figure, fraction * 100, result.remined_units.Count(), k,
        result.prune_set_size,
        static_cast<long long>(result.merge_stats.cached_patterns),
        static_cast<long long>(result.merge_stats.candidates_counted),
        static_cast<long long>(result.merge_stats.candidates_skipped_known),
        result.uf.size(), result.fi.size(), result.if_.size());
  }
}

}  // namespace
}  // namespace bench
}  // namespace partminer

int main(int argc, char** argv) {
  using namespace partminer::bench;
  using partminer::UpdateKind;
  const Flags flags(argc, argv);
  ApplyFastPathFlags(flags);
  const WorkloadSpec spec = WorkloadSpec::FromFlags(flags);
  const double sup = flags.GetDouble("sup", 0.04);
  const int k = flags.GetInt("k", 2);
  const int io_delay_us = flags.GetInt("io-delay-us", 1000);
  // 32 frames: pool smaller than the page file, so ADI runs pay eviction.
  const partminer::PoolSizing pool = PoolSizingFromFlags(flags, 32);
  const std::string kind = flags.GetString("kind", "both");

  PrintHeader("fig17",
              "effect of update amount and type (paper Fig. 17: IncPartMiner "
              "below ADIMINE across 20%-80% updates)",
              spec.Tag());
  if (kind == "relabel" || kind == "both") {
    RunSweep("fig17a", spec, sup, k, io_delay_us, pool,
             {UpdateKind::kRelabel});
  }
  if (kind == "add" || kind == "both") {
    RunSweep("fig17b", spec, sup, k, io_delay_us, pool,
             {UpdateKind::kAddEdge, UpdateKind::kAddVertex});
  }
  MaybeWriteMetrics(flags, "fig17");
  return 0;
}
