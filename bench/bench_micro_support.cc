// Micro benchmarks for the support-counting fast path: the label inverted
// index (candidate pruning before the backtracking isomorphism test) and the
// min-DFS-code memo cache. Each benchmark runs with the fast path off
// (Arg 0) and on (Arg 1) over identical inputs; mined/verified output is
// bit-identical in both configurations (support_fastpath_test), so the pair
// measures pure counting cost. The memo cache is cleared whenever a
// configuration is (re)entered, so an "on" run never inherits verdicts from
// a previous benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "core/part_miner.h"
#include "core/verify.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "graph/canonical.h"
#include "graph/label_index.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

GraphDatabase Workload(int d) {
  GeneratorParams params;
  params.num_graphs = d;
  params.avg_edges = 20;
  params.num_labels = 20;
  params.num_kernels = std::max(5, d / 10);
  params.seed = 2;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.15, 3);
  return db;
}

void SetFastPath(bool enabled) {
  SetLabelIndexEnabled(enabled);
  SetMinimalityCacheEnabled(enabled);
  ClearMinimalityCache();
}

/// Candidates that force a real recount: same codes/supports, exactness bit
/// cleared, TID lists dropped (verify must re-derive them).
PatternSet AsUnverifiedCandidates(const PatternSet& mined) {
  PatternSet out;
  for (const PatternInfo& p : mined.patterns()) {
    PatternInfo q;
    q.code = p.code;
    q.support = p.support;
    q.exact_tids = false;
    out.Upsert(std::move(q));
  }
  return out;
}

// The candidate-support hot path in isolation: VerifyExact re-counts every
// mined pattern level by level. With the index on, 1-edge scans shrink to
// the label candidates and k-edge parent-TID scans are intersected with the
// index candidates before any isomorphism test runs.
void BM_VerifyExactCandidates(benchmark::State& state) {
  const GraphDatabase db = Workload(400);
  const int sup = std::max(1, static_cast<int>(0.04 * db.size()));
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = sup;
  const PatternSet candidates = AsUnverifiedCandidates(miner.Mine(db, options));

  SetFastPath(state.range(0) != 0);
  int64_t examined = 0;
  int kept = 0;
  for (auto _ : state) {
    VerifyStats stats;
    kept = VerifyExact(db, candidates, sup, &stats).size();
    examined = stats.graphs_examined;
  }
  state.counters["patterns"] = kept;
  state.counters["graphs_examined"] = static_cast<double>(examined);
  SetFastPath(true);
}
BENCHMARK(BM_VerifyExactCandidates)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The merge-join/VerifyDelta workload of an incremental round: old patterns
// are exact on the pre-update database, so each is re-counted only on the
// updated graphs — a scan the index prunes further to the graphs whose
// labels can still host the pattern.
void BM_VerifyDeltaRecount(benchmark::State& state) {
  GraphDatabase db = Workload(400);
  const int sup = std::max(1, static_cast<int>(0.04 * db.size()));
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = sup;
  const PatternSet old_verified = miner.Mine(db, options);

  UpdateOptions upd;
  upd.fraction_graphs = 0.25;
  upd.seed = 9;
  const UpdateLog log = ApplyUpdates(&db, 20, upd);
  const PatternSet candidates = AsUnverifiedCandidates(old_verified);

  SetFastPath(state.range(0) != 0);
  int64_t examined = 0;
  int kept = 0;
  for (auto _ : state) {
    VerifyStats stats;
    kept = VerifyDelta(db, candidates, old_verified, log.updated_graphs, sup,
                       &stats)
               .size();
    examined = stats.graphs_examined;
  }
  state.counters["patterns"] = kept;
  state.counters["graphs_examined"] = static_cast<double>(examined);
  SetFastPath(true);
}
BENCHMARK(BM_VerifyDeltaRecount)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The memo cache in isolation: re-check the minimality of every mined code
// plus its right-most-path extensions' parents, as repeated mining rounds
// over an evolving database do. The first "on" iteration pays the misses;
// steady state is a sharded hash probe per code instead of a full
// permutation search.
void BM_MinimalityMemo(benchmark::State& state) {
  const GraphDatabase db = Workload(400);
  const int sup = std::max(1, static_cast<int>(0.04 * db.size()));
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = sup;
  const PatternSet mined = miner.Mine(db, options);

  SetFastPath(state.range(0) != 0);
  int64_t minimal = 0;
  for (auto _ : state) {
    minimal = 0;
    for (const PatternInfo& p : mined.patterns()) {
      minimal += IsMinimalDfsCode(p.code) ? 1 : 0;
    }
    benchmark::DoNotOptimize(minimal);
  }
  state.counters["codes"] = mined.size();
  state.counters["minimal"] = static_cast<double>(minimal);
  SetFastPath(true);
}
BENCHMARK(BM_MinimalityMemo)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// End to end: a full PartMiner run (unit merge-join mining + root exact
// verification). Both accelerators are live here — the index inside the
// verify counting paths, the memo cache under every minimality check of the
// unit miners. Repeated iterations keep the cache warm, matching the
// repeated-round usage the cache exists for.
void BM_PartMinerFastPath(benchmark::State& state) {
  const GraphDatabase db = Workload(400);
  PartMinerOptions options;
  options.min_support_fraction = 0.04;
  options.partition.k = 4;

  SetFastPath(state.range(0) != 0);
  int patterns = 0;
  for (auto _ : state) {
    PartMiner miner(options);
    patterns = miner.Mine(db).patterns.size();
  }
  state.counters["patterns"] = patterns;
  SetFastPath(true);
}
BENCHMARK(BM_PartMinerFastPath)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace partminer

BENCHMARK_MAIN();
