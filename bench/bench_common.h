#ifndef PARTMINER_BENCH_BENCH_COMMON_H_
#define PARTMINER_BENCH_BENCH_COMMON_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datagen/generator.h"
#include "graph/graph.h"
#include "storage/pool_config.h"

namespace partminer {
namespace bench {

/// Tiny --key=value flag parser shared by the per-figure harnesses.
///
/// Every Get*/Has call marks its key as recognized; keys that were passed on
/// the command line but never consumed are reported by WarnUnconsumed(),
/// which the destructor also runs — so a typo like --suport=0.05 produces a
/// warning instead of silently benchmarking the default.
class Flags {
 public:
  Flags(int argc, char** argv);
  ~Flags() { WarnUnconsumed(); }

  Flags(const Flags&) = delete;
  Flags& operator=(const Flags&) = delete;

  double GetDouble(const std::string& key, double fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool Has(const std::string& key) const {
    consumed_.insert(key);
    return values_.count(key) > 0;
  }

  /// Warns (stderr, once per key) about flags never consumed by any
  /// Get*/Has call. Runs automatically at destruction.
  void WarnUnconsumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
  mutable std::set<std::string> warned_;
};

/// Workload scaled down from the paper's dataset tags (see EXPERIMENTS.md).
/// The paper's D50kT20N20L200I5 becomes D(500*scale)T20N20L(50*scale)I5 by
/// default: the kernel count L shrinks with D so that planted kernels remain
/// frequent at the same relative supports the paper sweeps.
struct WorkloadSpec {
  int d = 500;
  int t = 20;
  int n = 20;
  int l = 50;
  int i = 5;
  uint64_t seed = 1;
  double hotspot_fraction = 0.15;

  /// Applies --d/--t/--n/--l/--i/--seed/--scale overrides.
  static WorkloadSpec FromFlags(const Flags& flags);

  GeneratorParams ToParams() const;
  std::string Tag() const { return ToParams().Tag(); }
};

/// Generates the database and assigns update hotspots.
GraphDatabase MakeWorkload(const WorkloadSpec& spec);

/// Emits one CSV data point: `figure,series,x,y` on stdout, plus a
/// flush so piping into tee behaves.
void PrintRow(const std::string& figure, const std::string& series,
              double x, double y);

/// Header printed once per harness: figure id, workload tag, paper
/// reference line.
void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& workload_tag);

/// Applies the support-counting fast-path escape hatches shared by every
/// harness: --no-prune-index disables the per-database label index,
/// --no-canon-cache disables the minimality memo cache (and any stale cached
/// verdicts are dropped so a disabled run never reads them). Mined output is
/// bit-identical either way; the flags measure what the fast path buys.
void ApplyFastPathFlags(const Flags& flags);

/// Buffer-pool sizing for the disk-backed ADI runs, one spelling across the
/// harnesses and the tools: --pool-frames (default `default_frames`),
/// --pool-partitions, --writer-threads, --writeback-queue, and
/// --storage-engine=swizzle|classic. Refuses to run (exit 2) on garbage,
/// like the numeric Get* accessors.
PoolSizing PoolSizingFromFlags(const Flags& flags, int default_frames);

/// Minimal writer for BENCH_*.json records. Every record carries the
/// honest-hardware stamp — `cores` (hardware concurrency) and `threads`
/// (the harness's worker-thread count) — so a number can never be quoted
/// without the machine it came from (ROADMAP item 5). Blocks named `*_ms`
/// are what tools/bench_compare.py diffs.
class BenchRecord {
 public:
  /// `threads` is the harness's worker-thread count (1 = single-threaded).
  BenchRecord(const std::string& id, int threads);

  /// Top-level string / numeric fields (insertion order preserved).
  void Note(const std::string& key, const std::string& value);
  void Metric(const std::string& key, double value);

  /// Adds `key: ms` to the `<block>_ms` object, created on first use.
  void Ms(const std::string& block, const std::string& key, double ms);

  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // pre-rendered
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      blocks_;
};

/// Per-phase metrics export: with --metrics[=path] on the harness command
/// line, dumps the process metrics registry (counters for extensions,
/// isomorphism tests, page I/O, merge/verify work, and the phase-latency
/// histograms) as JSON after the runs. A bare --metrics writes
/// <figure>_metrics.json next to the CSV output.
void MaybeWriteMetrics(const Flags& flags, const std::string& figure);

}  // namespace bench
}  // namespace partminer

#endif  // PARTMINER_BENCH_BENCH_COMMON_H_
