// Figure 13: effect of the partitioning criteria.
//   (a) static:  ADIMINE, METIS, Partition1 (isolation), Partition2
//       (min-cut), Partition3 (combined) — runtime vs minsup 2%-6%.
//   (b) dynamic: the same five after updating part of the database; the
//       partition-based series run IncPartMiner from a pre-mined state.
//
// The paper's observations to reproduce: the GraphPart criteria beat METIS;
// Partition2 is best statically; Partition3 is best dynamically (it both
// cuts few edges and isolates updated vertices, minimizing re-mined units).
//
// Flags: --mode=static|dynamic|both, --scale, --d/--t/--n/--l/--i/--seed,
//        --k, --update-fraction, --io-delay-us.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "adi/adi_miner.h"
#include "bench/bench_common.h"
#include "common/timing.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/update_generator.h"

namespace partminer {
namespace bench {
namespace {

constexpr double kSupports[] = {0.02, 0.03, 0.04, 0.05, 0.06};

struct Criteria {
  const char* name;
  PartitionCriteria value;
};
constexpr Criteria kCriteria[] = {
    {"METIS", PartitionCriteria::kMultilevel},
    {"Partition1", PartitionCriteria::kIsolation},
    {"Partition2", PartitionCriteria::kMinCut},
    {"Partition3", PartitionCriteria::kCombined},
};

void RunStatic(const WorkloadSpec& spec, int k, int io_delay_us,
               const PoolSizing& pool) {
  for (const double sup : kSupports) {
    GraphDatabase db = MakeWorkload(spec);

    AdiMineOptions adi_opts;
    adi_opts.io_delay_us = io_delay_us;
    adi_opts.pool = pool;
    AdiMine adi(adi_opts);
    Stopwatch adi_watch;
    adi.BuildIndex(db);
    MinerOptions adi_options;
    adi_options.min_support =
        std::max(1, static_cast<int>(std::ceil(sup * db.size())));
    adi.Mine(adi_options);
    PrintRow("fig13a", "ADIMINE", sup * 100, adi_watch.ElapsedSeconds());

    for (const Criteria& c : kCriteria) {
      PartMinerOptions options;
      options.min_support_fraction = sup;
      options.partition.k = k;
      options.partition.criteria = c.value;
      PartMiner miner(options);
      const PartMinerResult result = miner.Mine(db);
      PrintRow("fig13a", c.name, sup * 100, result.AggregateSeconds());
    }
  }
}

void RunDynamic(const WorkloadSpec& spec, int k, double update_fraction,
                int io_delay_us, const PoolSizing& pool) {
  for (const double sup : kSupports) {
    for (const Criteria& c : kCriteria) {
      GraphDatabase db = MakeWorkload(spec);
      PartMinerOptions options;
      options.min_support_fraction = sup;
      options.partition.k = k;
      options.partition.criteria = c.value;
      PartMiner miner(options);
      miner.Mine(db);

      UpdateOptions upd;
      upd.fraction_graphs = update_fraction;
      upd.hotspot_locality = 1.0;
      upd.seed = spec.seed + 31;
      const UpdateLog log = ApplyUpdates(&db, spec.n, upd);

      IncPartMiner inc;
      const IncPartMinerResult result = inc.Update(&miner, db, log);
      PrintRow("fig13b", c.name, sup * 100, result.AggregateSeconds());
    }

    // ADIMINE on the same updated workload: rebuild + remine.
    GraphDatabase db = MakeWorkload(spec);
    AdiMineOptions adi_opts;
    adi_opts.io_delay_us = io_delay_us;
    adi_opts.pool = pool;
    AdiMine adi(adi_opts);
    adi.BuildIndex(db);
    UpdateOptions upd;
    upd.fraction_graphs = update_fraction;
    upd.hotspot_locality = 1.0;
    upd.seed = spec.seed + 31;
    ApplyUpdates(&db, spec.n, upd);
    Stopwatch adi_watch;
    adi.RebuildIndex(db);
    MinerOptions adi_options;
    adi_options.min_support =
        std::max(1, static_cast<int>(std::ceil(sup * db.size())));
    adi.Mine(adi_options);
    PrintRow("fig13b", "ADIMINE", sup * 100, adi_watch.ElapsedSeconds());
  }
}

}  // namespace
}  // namespace bench
}  // namespace partminer

int main(int argc, char** argv) {
  using namespace partminer::bench;
  const Flags flags(argc, argv);
  ApplyFastPathFlags(flags);
  const WorkloadSpec spec = WorkloadSpec::FromFlags(flags);
  const int k = flags.GetInt("k", 4);
  const double update_fraction = flags.GetDouble("update-fraction", 0.1);
  const int io_delay_us = flags.GetInt("io-delay-us", 1000);
  // 32 frames: pool smaller than the page file, so ADI runs pay eviction.
  const partminer::PoolSizing pool = PoolSizingFromFlags(flags, 32);
  const std::string mode = flags.GetString("mode", "both");

  PrintHeader("fig13",
              "partitioning criteria (paper Fig. 13: GraphPart beats METIS; "
              "Partition2 best statically, Partition3 best dynamically)",
              spec.Tag());
  if (mode == "static" || mode == "both") {
    RunStatic(spec, k, io_delay_us, pool);
  }
  if (mode == "dynamic" || mode == "both") {
    RunDynamic(spec, k, update_fraction, io_delay_us, pool);
  }
  MaybeWriteMetrics(flags, "fig13");
  return 0;
}
