// Ablation benchmarks over the mining stack: gSpan vs Gaston as unit
// miners, the unit-support factor (DESIGN.md ablation #1: ceil(sup/2^depth)
// vs mining units at the full support loses patterns), and the incremental
// delta sweep vs a full re-sweep at varying update fractions.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/thread_pool.h"
#include "core/inc_part_miner.h"
#include "core/merge_join.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/apriori.h"
#include "miner/gaston.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

GraphDatabase Workload(int d) {
  GeneratorParams params;
  params.num_graphs = d;
  params.avg_edges = 20;
  params.num_labels = 20;
  params.num_kernels = std::max(5, d / 10);
  params.seed = 2;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.15, 3);
  return db;
}

void BM_GSpanFull(benchmark::State& state) {
  const GraphDatabase db = Workload(static_cast<int>(state.range(0)));
  MinerOptions options;
  options.min_support = std::max(1, static_cast<int>(0.04 * db.size()));
  GSpanMiner miner;
  int patterns = 0;
  for (auto _ : state) {
    patterns = miner.Mine(db, options).size();
  }
  state.counters["patterns"] = patterns;
}
BENCHMARK(BM_GSpanFull)->Arg(250)->Arg(500);

void BM_GastonFull(benchmark::State& state) {
  const GraphDatabase db = Workload(static_cast<int>(state.range(0)));
  MinerOptions options;
  options.min_support = std::max(1, static_cast<int>(0.04 * db.size()));
  GastonMiner miner;
  int patterns = 0;
  for (auto _ : state) {
    patterns = miner.Mine(db, options).size();
  }
  state.counters["patterns"] = patterns;
}
BENCHMARK(BM_GastonFull)->Arg(250)->Arg(500);

// Parallel search-tree variants: same D500 workload as the Full benchmarks
// above, fanned onto a work-stealing pool of state.range(0) workers. Output
// is bit-identical to serial (parallel_mine_test), so patterns should match
// BM_*Full at Arg(500) exactly; only the wall clock moves. On a single-core
// machine expect parity at 1 thread and scheduling overhead, not speedup,
// beyond that.
void BM_GSpanParallel(benchmark::State& state) {
  const GraphDatabase db = Workload(500);
  ThreadPool pool(static_cast<int>(state.range(0)));
  MinerOptions options;
  options.min_support = std::max(1, static_cast<int>(0.04 * db.size()));
  options.pool = &pool;
  GSpanMiner miner;
  int patterns = 0;
  for (auto _ : state) {
    patterns = miner.Mine(db, options).size();
  }
  state.counters["patterns"] = patterns;
  state.counters["steals"] =
      static_cast<double>(pool.stats().steals.load());
}
BENCHMARK(BM_GSpanParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_GastonParallel(benchmark::State& state) {
  const GraphDatabase db = Workload(500);
  ThreadPool pool(static_cast<int>(state.range(0)));
  MinerOptions options;
  options.min_support = std::max(1, static_cast<int>(0.04 * db.size()));
  options.pool = &pool;
  GastonMiner miner;
  int patterns = 0;
  for (auto _ : state) {
    patterns = miner.Mine(db, options).size();
  }
  state.counters["patterns"] = patterns;
  state.counters["steals"] =
      static_cast<double>(pool.stats().steals.load());
}
BENCHMARK(BM_GastonParallel)->Arg(1)->Arg(2)->Arg(4);

// PartMiner unit scheduling on the shared pool (satellite of the same
// change): units are claimed longest-first, and each unit's subtree fans
// onto the pool as well.
void BM_PartMinerUnitsParallel(benchmark::State& state) {
  const GraphDatabase db = Workload(500);
  PartMinerOptions options;
  options.min_support_fraction = 0.04;
  options.partition.k = 4;
  options.unit_mining_threads = static_cast<int>(state.range(0));
  int patterns = 0;
  for (auto _ : state) {
    PartMiner miner(options);
    patterns = miner.Mine(db).patterns.size();
  }
  state.counters["patterns"] = patterns;
}
BENCHMARK(BM_PartMinerUnitsParallel)->Arg(0)->Arg(2)->Arg(4);

// The classic pattern-growth vs Apriori comparison (the reason gSpan/Gaston
// superseded AGM/FSG, Section 2 of the paper): same outputs, very different
// candidate economics.
void BM_AprioriFull(benchmark::State& state) {
  const GraphDatabase db = Workload(static_cast<int>(state.range(0)));
  MinerOptions options;
  options.min_support = std::max(1, static_cast<int>(0.04 * db.size()));
  AprioriMiner miner;
  int patterns = 0;
  for (auto _ : state) {
    patterns = miner.Mine(db, options).size();
  }
  state.counters["patterns"] = patterns;
  state.counters["cand_counted"] =
      static_cast<double>(miner.stats().candidates_counted);
}
BENCHMARK(BM_AprioriFull)->Arg(250)->Arg(500);

// Ablation: what the reduced unit support buys. Mining the two units of a
// bisected database at the *root* support and unioning loses the patterns
// whose occurrences split across units; the reduced support (Theorem 3)
// recovers them. Reported as counters on a single workload.
void BM_UnitSupportAblation(benchmark::State& state) {
  const GraphDatabase db = Workload(300);
  const int sup = std::max(1, static_cast<int>(0.04 * db.size()));
  PartitionOptions popt;
  popt.k = 2;
  const PartitionedDatabase part = PartitionedDatabase::Create(db, popt);
  const GraphDatabase left = part.MaterializeUnit(db, 0);
  const GraphDatabase right = part.MaterializeUnit(db, 1);
  GSpanMiner miner;
  MinerOptions full;
  full.min_support = sup;
  const PatternSet expected = miner.Mine(db, full);

  int reduced_union = 0, naive_union = 0;
  for (auto _ : state) {
    MinerOptions reduced;
    reduced.min_support = (sup + 1) / 2;
    PatternSet u = miner.Mine(left, reduced);
    u.MergeFrom(miner.Mine(right, reduced));
    int covered = 0;
    for (const PatternInfo& p : expected.patterns()) {
      if (u.Contains(p.code)) ++covered;
    }
    reduced_union = covered;

    MinerOptions naive;
    naive.min_support = sup;
    PatternSet n = miner.Mine(left, naive);
    n.MergeFrom(miner.Mine(right, naive));
    covered = 0;
    for (const PatternInfo& p : expected.patterns()) {
      if (n.Contains(p.code)) ++covered;
    }
    naive_union = covered;
  }
  state.counters["frequent_total"] = expected.size();
  state.counters["covered_reduced_sup"] = reduced_union;
  state.counters["covered_full_sup"] = naive_union;
}
BENCHMARK(BM_UnitSupportAblation)->Iterations(1);

void BM_IncMergeJoinDelta(benchmark::State& state) {
  GraphDatabase db = Workload(400);
  const int sup = std::max(1, static_cast<int>(0.04 * db.size()));
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = sup;
  const PatternSet cached = miner.Mine(db, options);

  UpdateOptions upd;
  upd.fraction_graphs = state.range(0) / 100.0;
  upd.seed = 9;
  const UpdateLog log = ApplyUpdates(&db, 20, upd);

  MergeJoinOptions mj;
  mj.min_support = sup;
  mj.delta_sweep_max_fraction = 1.0;  // Force the delta path.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IncMergeJoin(db, cached, log.updated_graphs, mj, nullptr, nullptr));
  }
}
BENCHMARK(BM_IncMergeJoinDelta)->Arg(2)->Arg(10)->Arg(40);

void BM_IncMergeJoinResweep(benchmark::State& state) {
  GraphDatabase db = Workload(400);
  const int sup = std::max(1, static_cast<int>(0.04 * db.size()));
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = sup;
  const PatternSet cached = miner.Mine(db, options);

  UpdateOptions upd;
  upd.fraction_graphs = state.range(0) / 100.0;
  upd.seed = 9;
  const UpdateLog log = ApplyUpdates(&db, 20, upd);

  MergeJoinOptions mj;
  mj.min_support = sup;
  mj.delta_sweep_max_fraction = 0.0;  // Force the full re-sweep.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IncMergeJoin(db, cached, log.updated_graphs, mj, nullptr, nullptr));
  }
}
BENCHMARK(BM_IncMergeJoinResweep)->Arg(2)->Arg(10)->Arg(40);

}  // namespace
}  // namespace partminer

BENCHMARK_MAIN();
