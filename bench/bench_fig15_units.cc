// Figure 15: effect of the number of units k (2..6).
//   (a) static:  ADIMINE (flat) vs PartMiner aggregate (serial) and
//       parallel (max over units) time.
//   (b) dynamic: ADIMINE (rebuild + remine) vs IncPartMiner aggregate and
//       parallel time.
//
// Paper shape: more units -> more total work (aggregate grows with k);
// parallel PartMiner beats the serial baseline; IncPartMiner beats ADIMINE
// in both modes dynamically.
//
// Flags: --mode, --scale, --d/--t/--n/--l/--i/--seed, --sup (default 4%),
//        --update-fraction, --io-delay-us.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "adi/adi_miner.h"
#include "bench/bench_common.h"
#include "common/timing.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/update_generator.h"

namespace partminer {
namespace bench {
namespace {

double AdiSeconds(const GraphDatabase& db, double sup, int io_delay_us,
                  const PoolSizing& pool, bool rebuild_only) {
  AdiMineOptions adi_opts;
  adi_opts.io_delay_us = io_delay_us;
  adi_opts.pool = pool;
  AdiMine adi(adi_opts);
  if (rebuild_only) {
    // Model the dynamic case: the pre-update index already exists; timing
    // covers rebuild + remine on the current database.
    adi.BuildIndex(db);
  }
  Stopwatch watch;
  adi.BuildIndex(db);
  MinerOptions options;
  options.min_support =
      std::max(1, static_cast<int>(std::ceil(sup * db.size())));
  adi.Mine(options);
  return watch.ElapsedSeconds();
}

void RunStatic(const WorkloadSpec& spec, double sup, int io_delay_us,
               const PoolSizing& pool) {
  GraphDatabase db = MakeWorkload(spec);
  const double adi_seconds =
      AdiSeconds(db, sup, io_delay_us, pool, false);
  for (int k = 2; k <= 6; ++k) {
    PrintRow("fig15a", "ADIMINE", k, adi_seconds);
    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.partition.k = k;
    PartMiner miner(options);
    const PartMinerResult result = miner.Mine(db);
    PrintRow("fig15a", "Aggregate time", k, result.AggregateSeconds());
    PrintRow("fig15a", "Parallel time", k, result.ParallelSeconds());
  }
}

void RunDynamic(const WorkloadSpec& spec, double sup, double update_fraction,
                int io_delay_us, const PoolSizing& pool) {
  for (int k = 2; k <= 6; ++k) {
    GraphDatabase db = MakeWorkload(spec);
    PartMinerOptions options;
    options.min_support_fraction = sup;
    options.partition.k = k;
    PartMiner miner(options);
    miner.Mine(db);

    UpdateOptions upd;
    upd.fraction_graphs = update_fraction;
    upd.hotspot_locality = 1.0;
    upd.seed = spec.seed + 77;
    const UpdateLog log = ApplyUpdates(&db, spec.n, upd);

    PrintRow("fig15b", "ADIMINE", k,
             AdiSeconds(db, sup, io_delay_us, pool, true));

    IncPartMiner inc;
    const IncPartMinerResult result = inc.Update(&miner, db, log);
    PrintRow("fig15b", "Aggregate time", k, result.AggregateSeconds());
    PrintRow("fig15b", "Parallel time", k, result.ParallelSeconds());
  }
}

}  // namespace
}  // namespace bench
}  // namespace partminer

int main(int argc, char** argv) {
  using namespace partminer::bench;
  const Flags flags(argc, argv);
  ApplyFastPathFlags(flags);
  WorkloadSpec spec = WorkloadSpec::FromFlags(flags);
  // The paper uses D100kT20N20L200I9 here; scale I accordingly by default.
  if (!flags.Has("i")) spec.i = 9;
  const double sup = flags.GetDouble("sup", 0.04);
  const double update_fraction = flags.GetDouble("update-fraction", 0.4);
  const int io_delay_us = flags.GetInt("io-delay-us", 1000);
  // 32 frames: pool smaller than the page file, so ADI runs pay eviction.
  const partminer::PoolSizing pool = PoolSizingFromFlags(flags, 32);
  const std::string mode = flags.GetString("mode", "both");

  PrintHeader("fig15",
              "runtime vs number of units k (paper Fig. 15: aggregate grows "
              "with k, parallel time stays low)",
              spec.Tag());
  if (mode == "static" || mode == "both") {
    RunStatic(spec, sup, io_delay_us, pool);
  }
  if (mode == "dynamic" || mode == "both") {
    RunDynamic(spec, sup, update_fraction, io_delay_us, pool);
  }
  MaybeWriteMetrics(flags, "fig15");
  return 0;
}
