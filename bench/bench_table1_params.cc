// Table 1 of the paper enumerates the synthetic-generator parameters and
// their ranges. This harness prints that table together with the scaled
// values this reproduction uses (and verifies the generator honors them on
// a sample workload).
//
// Flags: --scale, --d/--t/--n/--l/--i/--seed, --metrics[=path].

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/generator.h"

int main(int argc, char** argv) {
  using namespace partminer;
  using namespace partminer::bench;
  const Flags flags(argc, argv);
  const WorkloadSpec spec = WorkloadSpec::FromFlags(flags);

  std::printf("# Table 1: parameters of the data generator\n");
  std::printf("param,meaning,paper_range,this_run\n");
  std::printf("D,total number of graphs,100k - 1000k,%d\n", spec.d);
  std::printf("N,number of possible labels,\"20, 30, 40, 50\",%d\n", spec.n);
  std::printf("T,average number of edges in graphs,\"10, 15, 20, 25\",%d\n",
              spec.t);
  std::printf(
      "I,average edges in potentially frequent patterns,\"2 - 9\",%d\n",
      spec.i);
  std::printf("L,number of potentially frequent kernels,200,%d\n", spec.l);

  const GraphDatabase db = MakeWorkload(spec);
  const double avg_edges = static_cast<double>(db.TotalEdges()) / db.size();
  std::printf("# generated %s: %d graphs, avg %.1f edges/graph\n",
              spec.Tag().c_str(), db.size(), avg_edges);
  MaybeWriteMetrics(flags, "table1");
  return 0;
}
