#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/parse.h"
#include "graph/canonical.h"
#include "graph/label_index.h"
#include "obs/metrics.h"

namespace partminer {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double value = 0;
  if (!ParseDouble(it->second, &value)) {
    // A garbage numeric flag silently benchmarking the default would
    // poison the measurement; refuse to run instead.
    std::fprintf(stderr, "error: --%s=%s is not a number\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return value;
}

int Flags::GetInt(const std::string& key, int fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  int value = 0;
  if (!ParseInt32(it->second, &value)) {
    std::fprintf(stderr, "error: --%s=%s is not an integer\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return value;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

void Flags::WarnUnconsumed() const {
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) > 0 || warned_.count(key) > 0) continue;
    warned_.insert(key);
    std::fprintf(stderr, "warning: unrecognized flag --%s (ignored)\n",
                 key.c_str());
  }
}

WorkloadSpec WorkloadSpec::FromFlags(const Flags& flags) {
  WorkloadSpec spec;
  const double scale = flags.GetDouble("scale", 1.0);
  spec.d = flags.GetInt("d", static_cast<int>(spec.d * scale));
  spec.t = flags.GetInt("t", spec.t);
  spec.n = flags.GetInt("n", spec.n);
  spec.l = flags.GetInt("l", std::max(3, static_cast<int>(spec.l * scale)));
  spec.i = flags.GetInt("i", spec.i);
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  return spec;
}

GeneratorParams WorkloadSpec::ToParams() const {
  GeneratorParams params;
  params.num_graphs = d;
  params.avg_edges = t;
  params.num_labels = n;
  params.num_kernels = l;
  params.avg_kernel_edges = i;
  params.seed = seed;
  return params;
}

GraphDatabase MakeWorkload(const WorkloadSpec& spec) {
  GraphDatabase db = GenerateDatabase(spec.ToParams());
  AssignUpdateHotspots(&db, spec.hotspot_fraction, spec.seed + 1000);
  return db;
}

void PrintRow(const std::string& figure, const std::string& series, double x,
              double y) {
  std::printf("%s,%s,%g,%.4f\n", figure.c_str(), series.c_str(), x, y);
  std::fflush(stdout);
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& workload_tag) {
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf("# workload: %s (scaled from the paper's setup; see "
              "EXPERIMENTS.md)\n",
              workload_tag.c_str());
  std::printf("figure,series,x,y\n");
  std::fflush(stdout);
}

void ApplyFastPathFlags(const Flags& flags) {
  SetLabelIndexEnabled(!flags.Has("no-prune-index"));
  const bool cache = !flags.Has("no-canon-cache");
  SetMinimalityCacheEnabled(cache);
  if (!cache) ClearMinimalityCache();
}

PoolSizing PoolSizingFromFlags(const Flags& flags, int default_frames) {
  PoolSizing sizing = DefaultPoolSizing();
  sizing.frames = flags.GetInt("pool-frames", default_frames);
  sizing.partitions = flags.GetInt("pool-partitions", sizing.partitions);
  sizing.writer_threads =
      flags.GetInt("writer-threads", sizing.writer_threads);
  sizing.writeback_queue =
      flags.GetInt("writeback-queue", sizing.writeback_queue);
  if (sizing.frames < 1 || sizing.partitions < 1 ||
      sizing.partitions > sizing.frames || sizing.writer_threads < 0 ||
      sizing.writeback_queue < 1) {
    std::fprintf(stderr,
                 "error: pool sizing out of range (frames=%d partitions=%d "
                 "writer-threads=%d writeback-queue=%d)\n",
                 sizing.frames, sizing.partitions, sizing.writer_threads,
                 sizing.writeback_queue);
    std::exit(2);
  }
  const std::string engine =
      flags.GetString("storage-engine", StorageEngineName(sizing.engine));
  if (!ParseStorageEngine(engine, &sizing.engine)) {
    std::fprintf(stderr,
                 "error: --storage-engine=%s is not one of swizzle|classic\n",
                 engine.c_str());
    std::exit(2);
  }
  return sizing;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

BenchRecord::BenchRecord(const std::string& id, int threads) {
  Note("id", id);
  Metric("cores",
         static_cast<double>(std::thread::hardware_concurrency()));
  Metric("threads", static_cast<double>(threads));
}

void BenchRecord::Note(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void BenchRecord::Metric(const std::string& key, double value) {
  fields_.emplace_back(key, JsonNumber(value));
}

void BenchRecord::Ms(const std::string& block, const std::string& key,
                     double ms) {
  const std::string name = block + "_ms";
  for (auto& [existing, entries] : blocks_) {
    if (existing == name) {
      entries.emplace_back(key, ms);
      return;
    }
  }
  blocks_.push_back({name, {{key, ms}}});
}

bool BenchRecord::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  bool first = true;
  for (const auto& [key, rendered] : fields_) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << JsonEscape(key) << "\": " << rendered;
  }
  for (const auto& [block, entries] : blocks_) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << JsonEscape(block) << "\": {\n";
    for (size_t i = 0; i < entries.size(); ++i) {
      out << "    \"" << JsonEscape(entries[i].first)
          << "\": " << JsonNumber(entries[i].second);
      if (i + 1 < entries.size()) out << ",";
      out << "\n";
    }
    out << "  }";
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

void MaybeWriteMetrics(const Flags& flags, const std::string& figure) {
  if (!flags.Has("metrics")) return;
  std::string path = flags.GetString("metrics", "1");
  if (path == "1") path = figure + "_metrics.json";
  if (obs::MetricRegistry::Global().WriteJsonFile(path)) {
    std::fprintf(stderr, "# metrics: %s\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace partminer
