// Micro benchmarks (google-benchmark) for the core graph machinery:
// minimum-DFS-code construction, minimality checking (generic vs the
// Gaston path fast-path), and subgraph-isomorphism support counting.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/canonical.h"
#include "graph/dfs_code.h"
#include "graph/graph.h"
#include "graph/isomorphism.h"
#include "miner/gaston.h"

namespace partminer {
namespace {

Graph RandomConnected(Rng* rng, int vertices, int extra_edges, int vlabels,
                      int elabels) {
  Graph g;
  for (int i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng->Uniform(vlabels)));
  }
  for (int v = 1; v < vertices; ++v) {
    g.AddEdge(static_cast<VertexId>(rng->Uniform(v)), v,
              static_cast<Label>(rng->Uniform(elabels)));
  }
  for (int i = 0; i < extra_edges; ++i) {
    const VertexId u = static_cast<VertexId>(rng->Uniform(vertices));
    const VertexId v = static_cast<VertexId>(rng->Uniform(vertices));
    if (u != v && !g.HasEdge(u, v)) {
      g.AddEdge(u, v, static_cast<Label>(rng->Uniform(elabels)));
    }
  }
  return g;
}

void BM_MinimumDfsCode(benchmark::State& state) {
  Rng rng(7);
  std::vector<Graph> graphs;
  for (int i = 0; i < 64; ++i) {
    graphs.push_back(
        RandomConnected(&rng, static_cast<int>(state.range(0)), 3, 3, 2));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimumDfsCode(graphs[i++ % graphs.size()]));
  }
}
BENCHMARK(BM_MinimumDfsCode)->Arg(4)->Arg(8)->Arg(12);

void BM_IsMinimalDfsCode(benchmark::State& state) {
  Rng rng(11);
  std::vector<DfsCode> codes;
  for (int i = 0; i < 64; ++i) {
    codes.push_back(MinimumDfsCode(
        RandomConnected(&rng, static_cast<int>(state.range(0)), 3, 3, 2)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsMinimalDfsCode(codes[i++ % codes.size()]));
  }
}
BENCHMARK(BM_IsMinimalDfsCode)->Arg(4)->Arg(8)->Arg(12);

void BM_PathMinimalityGeneric(benchmark::State& state) {
  // Straight path patterns: the case Gaston's fast path accelerates.
  Rng rng(13);
  std::vector<DfsCode> codes;
  for (int i = 0; i < 64; ++i) {
    Graph path;
    const int n = static_cast<int>(state.range(0));
    path.AddVertex(static_cast<Label>(rng.Uniform(3)));
    for (int v = 1; v < n; ++v) {
      path.AddVertex(static_cast<Label>(rng.Uniform(3)));
      path.AddEdge(v - 1, v, static_cast<Label>(rng.Uniform(2)));
    }
    codes.push_back(MinimumDfsCode(path));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsMinimalDfsCode(codes[i++ % codes.size()]));
  }
}
BENCHMARK(BM_PathMinimalityGeneric)->Arg(6)->Arg(10);

void BM_PathMinimalityFastPath(benchmark::State& state) {
  Rng rng(13);
  std::vector<DfsCode> codes;
  for (int i = 0; i < 64; ++i) {
    Graph path;
    const int n = static_cast<int>(state.range(0));
    path.AddVertex(static_cast<Label>(rng.Uniform(3)));
    for (int v = 1; v < n; ++v) {
      path.AddVertex(static_cast<Label>(rng.Uniform(3)));
      path.AddEdge(v - 1, v, static_cast<Label>(rng.Uniform(2)));
    }
    codes.push_back(MinimumDfsCode(path));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsMinimalPathCode(codes[i++ % codes.size()]));
  }
}
BENCHMARK(BM_PathMinimalityFastPath)->Arg(6)->Arg(10);

void BM_SubgraphIsomorphism(benchmark::State& state) {
  Rng rng(17);
  const Graph host = RandomConnected(&rng, 20, 10, 3, 2);
  std::vector<SubgraphMatcher> matchers;
  for (int i = 0; i < 16; ++i) {
    matchers.emplace_back(
        RandomConnected(&rng, static_cast<int>(state.range(0)), 1, 3, 2));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matchers[i++ % matchers.size()].Matches(host));
  }
}
BENCHMARK(BM_SubgraphIsomorphism)->Arg(3)->Arg(5)->Arg(8);

}  // namespace
}  // namespace partminer

BENCHMARK_MAIN();
