// Figure 16: scalability of PartMiner vs ADIMINE at minsup 4%.
//   (a) varying the average graph size T in {10, 15, 20, 25};
//   (b) varying the database size D (the paper sweeps 50k..1M; the default
//       here sweeps the same 20x range at laptop scale: 250..5000).
//
// Paper shape: PartMiner scales linearly in both T and D and stays below
// ADIMINE.
//
// Flags: --axis=T|D|both, --scale, --d/--t/--n/--l/--i/--seed, --sup,
//        --k, --io-delay-us, --threads (work-stealing pool width for
//        PartMiner unit mining; 0 = serial).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "adi/adi_miner.h"
#include "bench/bench_common.h"
#include "common/timing.h"
#include "core/part_miner.h"

namespace partminer {
namespace bench {
namespace {

void RunPoint(const char* figure, double x, const WorkloadSpec& spec,
              double sup, int k, int io_delay_us, int threads,
              const PoolSizing& pool) {
  GraphDatabase db = MakeWorkload(spec);

  AdiMineOptions adi_opts;
  adi_opts.io_delay_us = io_delay_us;
  adi_opts.pool = pool;
  AdiMine adi(adi_opts);
  Stopwatch adi_watch;
  adi.BuildIndex(db);
  MinerOptions adi_options;
  adi_options.min_support =
      std::max(1, static_cast<int>(std::ceil(sup * db.size())));
  adi.Mine(adi_options);
  PrintRow(figure, "ADIMINE", x, adi_watch.ElapsedSeconds());

  PartMinerOptions options;
  options.min_support_fraction = sup;
  options.partition.k = k;
  options.unit_mining_threads = threads;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);
  PrintRow(figure, "PartMiner", x, result.AggregateSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace partminer

int main(int argc, char** argv) {
  using namespace partminer::bench;
  const Flags flags(argc, argv);
  ApplyFastPathFlags(flags);
  const WorkloadSpec base = WorkloadSpec::FromFlags(flags);
  const double sup = flags.GetDouble("sup", 0.04);
  const int k = flags.GetInt("k", 2);
  const int io_delay_us = flags.GetInt("io-delay-us", 1000);
  const int threads = flags.GetInt("threads", 0);
  // 32 frames: pool smaller than the page file, so ADI runs pay eviction.
  const partminer::PoolSizing pool = PoolSizingFromFlags(flags, 32);
  const std::string axis = flags.GetString("axis", "both");

  PrintHeader("fig16",
              "scalability vs T and D at minsup 4% (paper Fig. 16: linear, "
              "PartMiner below ADIMINE)",
              base.Tag());

  if (axis == "T" || axis == "both") {
    for (const int t : {10, 15, 20, 25}) {
      WorkloadSpec spec = base;
      spec.t = t;
      RunPoint("fig16a", t, spec, sup, k, io_delay_us, threads, pool);
    }
  }
  if (axis == "D" || axis == "both") {
    // Same 20x span as the paper's 50k..1M, scaled by base.d/500.
    for (const int d_factor : {1, 2, 4, 6, 8, 10}) {
      WorkloadSpec spec = base;
      spec.d = base.d * d_factor / 2;
      spec.l = std::max(3, base.l * d_factor / 2);
      RunPoint("fig16b", spec.d, spec, sup, k, io_delay_us, threads,
               pool);
    }
  }
  MaybeWriteMetrics(flags, "fig16");
  return 0;
}
