// pmtop — live operator console for a running partminerd.
//
//   pmtop --socket=/path/daemon.sock [--interval-ms=1000] [--iterations=0]
//
// Polls the daemon's `health` and `metrics` verbs on a refresh loop and
// renders a terminal dashboard: health state, uptime, epoch, throughput
// (requests/s from counter deltas), queue occupancy against its cap and
// high water, per-verb p50/p99 latency (bucket-estimated, DESIGN.md
// section 13), and cache hit rates. When stdout is a tty the screen is
// redrawn in place (ANSI home+clear); otherwise frames append, which keeps
// the output pipeable. --iterations=N exits after N frames (0 = forever).

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/timing.h"
#include "service/client.h"
#include "service/json.h"

namespace {

using namespace partminer;
using service::Json;
using service::LineClient;

int Usage() {
  std::fprintf(stderr,
               "usage: pmtop --socket=/path/daemon.sock "
               "[--interval-ms=1000] [--iterations=0]\n");
  return 2;
}

/// One polled frame, decoded from `health` + `metrics` responses.
struct Frame {
  std::string state;
  int64_t epoch = 0;
  int64_t queue_depth = 0;
  int64_t uptime_ms = 0;
  Json registry;  // metrics result.registry (object or null).
};

const Json* Section(const Frame& frame, const char* name) {
  return frame.registry.is_object() ? frame.registry.Get(name) : nullptr;
}

int64_t Counter(const Frame& frame, const char* name) {
  const Json* counters = Section(frame, "counters");
  const Json* c = counters ? counters->Get(name) : nullptr;
  return c != nullptr && c->is_int() ? c->AsInt() : 0;
}

int64_t Gauge(const Frame& frame, const char* name) {
  const Json* gauges = Section(frame, "gauges");
  const Json* g = gauges ? gauges->Get(name) : nullptr;
  return g != nullptr && g->is_int() ? g->AsInt() : 0;
}

double HistField(const Frame& frame, const char* name, const char* field) {
  const Json* histograms = Section(frame, "histograms");
  const Json* h = histograms ? histograms->Get(name) : nullptr;
  const Json* v = h ? h->Get(field) : nullptr;
  return v != nullptr && v->is_number() ? v->AsDouble() : 0;
}

bool Poll(LineClient* client, Frame* frame) {
  std::string response;
  Json parsed;
  if (!client->RoundTrip("{\"cmd\":\"health\"}", &response) ||
      !Json::Parse(response, &parsed).ok()) {
    return false;
  }
  const Json* result = parsed.Get("result");
  const Json* state = result ? result->Get("state") : nullptr;
  const Json* epoch = result ? result->Get("epoch") : nullptr;
  const Json* depth = result ? result->Get("queue_depth") : nullptr;
  if (state == nullptr || !state->is_string()) return false;
  frame->state = state->AsString();
  frame->epoch = epoch != nullptr && epoch->is_int() ? epoch->AsInt() : 0;
  frame->queue_depth =
      depth != nullptr && depth->is_int() ? depth->AsInt() : 0;

  if (!client->RoundTrip("{\"cmd\":\"metrics\"}", &response) ||
      !Json::Parse(response, &parsed).ok()) {
    return false;
  }
  result = parsed.Get("result");
  const Json* uptime = result ? result->Get("uptime_ms") : nullptr;
  frame->uptime_ms =
      uptime != nullptr && uptime->is_int() ? uptime->AsInt() : 0;
  const Json* registry = result ? result->Get("registry") : nullptr;
  frame->registry = registry != nullptr ? *registry : Json::Null();
  return true;
}

void PrintHitRate(const char* label, int64_t hits, int64_t misses) {
  const int64_t total = hits + misses;
  if (total == 0) {
    std::printf("  %-18s      -    (no traffic)\n", label);
    return;
  }
  std::printf("  %-18s %5.1f%%  (%lld of %lld)\n", label,
              100.0 * static_cast<double>(hits) / static_cast<double>(total),
              static_cast<long long>(hits), static_cast<long long>(total));
}

void Render(const Frame& frame, const Frame& previous, double interval_s,
            bool have_previous) {
  if (::isatty(STDOUT_FILENO)) std::printf("\x1b[H\x1b[2J");

  const double uptime_s = static_cast<double>(frame.uptime_ms) / 1e3;
  std::printf("partminerd  state=%s  uptime=%.0fs  epoch=%lld\n",
              frame.state.c_str(), uptime_s,
              static_cast<long long>(frame.epoch));

  const int64_t requests = Counter(frame, "service.requests");
  double rps = 0;
  if (have_previous && interval_s > 0) {
    rps = static_cast<double>(requests -
                              Counter(previous, "service.requests")) /
          interval_s;
  }
  std::printf(
      "requests=%lld (%.0f req/s)  errors=%lld  overloaded=%lld\n",
      static_cast<long long>(requests), rps,
      static_cast<long long>(Counter(frame, "service.errors")),
      static_cast<long long>(Counter(frame, "service.overloaded")));

  const int64_t cap = Gauge(frame, "service.queue_cap");
  std::printf(
      "queue depth=%lld / cap=%lld  high-water=%lld  "
      "edits applied=%lld  batches=%lld (+%lld coalesced)\n",
      static_cast<long long>(frame.queue_depth), static_cast<long long>(cap),
      static_cast<long long>(Gauge(frame, "service.queue_high_water")),
      static_cast<long long>(Counter(frame, "service.edits_applied")),
      static_cast<long long>(Counter(frame, "service.batches_applied")),
      static_cast<long long>(Counter(frame, "service.batches_coalesced")));

  std::printf("per-verb latency (bucket-estimated ms):\n");
  static constexpr struct {
    const char* label;
    const char* metric;
  } kVerbs[] = {
      {"ping", "service.verb.ping_ms"},
      {"update", "service.verb.update_ms"},
      {"query", "service.verb.query_ms"},
      {"snapshot", "service.verb.snapshot_ms"},
      {"metrics", "service.verb.metrics_ms"},
      {"sync", "service.verb.sync_ms"},
      {"health", "service.verb.health_ms"},
      {"dump", "service.verb.dump_ms"},
  };
  for (const auto& verb : kVerbs) {
    const double count = HistField(frame, verb.metric, "count");
    if (count <= 0) continue;
    std::printf("  %-10s %8.0f calls   p50 %8.3f   p99 %8.3f\n", verb.label,
                count, HistField(frame, verb.metric, "p50"),
                HistField(frame, verb.metric, "p99"));
  }

  std::printf("cache hit rates:\n");
  PrintHitRate("canonical cache", Counter(frame, "canon.cache_hits"),
               Counter(frame, "canon.cache_misses"));
  PrintHitRate("buffer pool", Counter(frame, "storage.pool_hits"),
               Counter(frame, "storage.pool_misses"));

  // Swizzle buffer manager (pool.* series, exported by the engine's
  // PublishMetrics): hit rate, eviction/promotion churn, and the async
  // write-back pipeline. Hidden until an index has produced pool traffic.
  const int64_t pool_hits = Gauge(frame, "pool.hits");
  const int64_t pool_misses = Counter(frame, "pool.misses");
  if (pool_hits + pool_misses > 0) {
    std::printf("swizzle pool (%lld frames, %lld cooling):\n",
                static_cast<long long>(Gauge(frame, "pool.frames")),
                static_cast<long long>(Gauge(frame, "pool.cooling_frames")));
    PrintHitRate("swip hot path", pool_hits, pool_misses);
    const int64_t evictions = Counter(frame, "pool.evictions");
    double evictions_per_s = 0;
    if (have_previous && interval_s > 0) {
      evictions_per_s =
          static_cast<double>(evictions -
                              Counter(previous, "pool.evictions")) /
          interval_s;
    }
    std::printf(
        "  evictions=%lld (%.0f/s)  cooling promotions=%lld\n",
        static_cast<long long>(evictions), evictions_per_s,
        static_cast<long long>(Counter(frame, "pool.cooling_promotions")));
    std::printf(
        "  write-back: queue=%lld  pages=%lld (+%lld coalesced)  "
        "failures=%lld  unflushed=%lld\n",
        static_cast<long long>(Gauge(frame, "pool.writeback_queue_depth")),
        static_cast<long long>(Counter(frame, "pool.writeback_pages")),
        static_cast<long long>(Counter(frame, "pool.writeback_coalesced")),
        static_cast<long long>(Counter(frame, "pool.writeback_failures")),
        static_cast<long long>(Gauge(frame, "pool.writeback_failed_pages")));
  }
  std::fflush(stdout);
}

int Main(int argc, char** argv) {
  const flags::FlagMap flag_map = flags::Parse(argc, argv);
  flags::WarnUnknown(flag_map, {"socket", "interval-ms", "iterations"});

  const std::string socket_path = flags::Get(flag_map, "socket", "");
  int interval_ms = 0, iterations = 0;
  if (socket_path.empty() ||
      !flags::IntFlag(flag_map, "interval-ms", 1000, &interval_ms) ||
      !flags::IntFlag(flag_map, "iterations", 0, &iterations) ||
      interval_ms <= 0 || iterations < 0) {
    return Usage();
  }

  LineClient client;
  if (!client.Connect(socket_path)) {
    std::fprintf(stderr, "error: cannot connect to %s\n",
                 socket_path.c_str());
    return 1;
  }

  Frame previous;
  bool have_previous = false;
  Stopwatch since_last;
  for (int frame_index = 0; iterations == 0 || frame_index < iterations;
       ++frame_index) {
    Frame frame;
    if (!Poll(&client, &frame)) {
      std::fprintf(stderr, "pmtop: daemon went away\n");
      return 1;
    }
    Render(frame, previous, since_last.ElapsedSeconds(), have_previous);
    since_last.Restart();
    previous = std::move(frame);
    have_previous = true;
    if (iterations == 0 || frame_index + 1 < iterations) {
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
