#!/usr/bin/env python3
"""Compare two BENCH_*.json records and flag regressions.

Walks both files for objects whose leaves are benchmark-name -> milliseconds
maps (the ``*_ms`` blocks every BENCH record in this repo uses: before_ms /
after_ms, off_ms / on_ms, ...), pairs identical benchmark names across the
two files, and reports the ratio. A benchmark that got more than THRESHOLD
slower (default 10%) is a regression; any regression makes the exit status 1
so the script can gate a CI step.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--threshold=0.10] [--key=after_ms]
                           [--require=daemon_breakdown_ms]

With --key only the named *_ms blocks are compared (e.g. --key=after_ms to
diff the post-change numbers of two records); the default compares every
*_ms block present in both files under the same JSON path.

--require names an *_ms block that must be present in BOTH files; a missing
required block is an error (exit 2), not a silent skip. Use it to keep a CI
gate honest when a record stops emitting a block (e.g. loadgen's
``daemon_breakdown_ms``, whose ``<segment>_p50`` / ``<segment>_p99`` entries
carry the request-lifecycle latency breakdown: sock_read, queue_wait,
coalesce, phase_a_remine, phase_b_apply, update_pipeline, reply_write).
"""

import argparse
import json
import sys


def collect_ms_blocks(node, path=""):
    """Yields (json_path, {bench_name: ms}) for every dict whose key ends in
    _ms and whose values are all numbers."""
    if not isinstance(node, dict):
        return
    for key, value in node.items():
        child_path = f"{path}.{key}" if path else key
        if (
            key.endswith("_ms")
            and isinstance(value, dict)
            and value
            and all(isinstance(v, (int, float)) for v in value.values())
        ):
            yield child_path, value
        else:
            yield from collect_ms_blocks(value, child_path)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; exit 1 on regressions.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--key", default=None,
                        help="only compare *_ms blocks with this name "
                             "(e.g. after_ms)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="BLOCK",
                        help="fail (exit 2) unless an *_ms block with this "
                             "name exists in both files; repeatable "
                             "(e.g. --require=daemon_breakdown_ms)")
    args = parser.parse_args()

    try:
        with open(args.old) as f:
            old_doc = json.load(f)
        with open(args.new) as f:
            new_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    old_blocks = dict(collect_ms_blocks(old_doc))
    new_blocks = dict(collect_ms_blocks(new_doc))
    for required in args.require:
        for label, blocks in (("old", old_blocks), ("new", new_blocks)):
            if not any(p.split(".")[-1] == required for p in blocks):
                print(f"error: required block '{required}' missing from "
                      f"{label} file", file=sys.stderr)
                return 2
    if args.key is not None:
        old_blocks = {p: b for p, b in old_blocks.items()
                      if p.split(".")[-1] == args.key}
        new_blocks = {p: b for p, b in new_blocks.items()
                      if p.split(".")[-1] == args.key}

    compared = 0
    regressions = []
    print(f"{'benchmark':48} {'old ms':>10} {'new ms':>10} {'ratio':>7}")
    for path in sorted(old_blocks):
        if path not in new_blocks:
            continue
        old_ms, new_ms = old_blocks[path], new_blocks[path]
        for name in sorted(old_ms):
            if name not in new_ms:
                continue
            compared += 1
            old_v, new_v = float(old_ms[name]), float(new_ms[name])
            ratio = new_v / old_v if old_v > 0 else float("inf")
            flag = ""
            if ratio > 1.0 + args.threshold:
                flag = "  REGRESSION"
                regressions.append((path, name, old_v, new_v, ratio))
            elif ratio < 1.0 - args.threshold:
                flag = "  improved"
            label = f"{path}:{name}"
            print(f"{label:48} {old_v:10.3f} {new_v:10.3f} {ratio:6.2f}x{flag}")

    if compared == 0:
        print("error: no overlapping *_ms benchmark entries to compare",
              file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0%} among {compared} compared benchmarks:",
              file=sys.stderr)
        for path, name, old_v, new_v, ratio in regressions:
            print(f"  {path}:{name}: {old_v:.3f}ms -> {new_v:.3f}ms "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nOK: no regressions over {args.threshold:.0%} among "
          f"{compared} compared benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
