// partminer_fuzz — differential fuzzing and storage-fault sweeps.
//
//   partminer_fuzz [--seeds=N] [--start-seed=S] [--smoke] [--no-faults]
//                  [--corpus=DIR] [--minimize=0|1]
//
// For each seed a small random database is generated and mined with every
// miner configuration (brute force, gSpan serial/parallel, Gaston,
// PartMiner across unit miners and thread counts, fast paths off, the
// disk-resident AdiMine, and an incremental IncPartMiner round); all
// results are diffed against the brute-force oracle. Any divergence is
// minimized by greedy graph removal and written to the corpus directory as
// a replayable .lg repro. The run then replays every existing corpus
// repro (fixed bugs must stay fixed) and, unless --no-faults, sweeps
// storage fault injection over the ADI and state-persistence paths.
//
// Exit status: 0 when everything agrees and every fault run ended
// correct-or-clean-error; 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "common/flags.h"
#include "datagen/generator.h"
#include "testing/differential.h"
#include "testing/fault_sweep.h"

namespace partminer {
namespace {

using testing::DifferentialResult;
using testing::FaultSweepOutcome;
using testing::FuzzCaseParams;

int Run(int argc, char** argv) {
  const flags::FlagMap flag_map = flags::Parse(argc, argv);
  flags::WarnUnknown(flag_map, {"seeds", "start-seed", "smoke", "no-faults",
                                "corpus", "minimize"});
  const uint64_t seeds = std::strtoull(
      flags::Get(flag_map, "seeds", "100").c_str(), nullptr, 10);
  const uint64_t start = std::strtoull(
      flags::Get(flag_map, "start-seed", "0").c_str(), nullptr, 10);
  const bool smoke = flag_map.count("smoke") > 0;
  const bool faults = flag_map.count("no-faults") == 0;
  const bool minimize = flags::Get(flag_map, "minimize", "1") != "0";
  const std::string corpus =
      flags::Get(flag_map, "corpus", "data/corpus/divergence");

  int divergences = 0;
  for (uint64_t seed = start; seed < start + seeds; ++seed) {
    const FuzzCaseParams params = testing::MakeFuzzCase(seed, smoke);
    const GraphDatabase db = GenerateDatabase(params.gen);
    const DifferentialResult result = testing::RunAllChecks(db, params);
    if (result.ok()) {
      if (seed % 50 == 0 || seed + 1 == start + seeds) {
        std::printf("seed %llu ok (%d configurations)\n",
                    static_cast<unsigned long long>(seed),
                    result.configurations);
        std::fflush(stdout);
      }
      continue;
    }
    ++divergences;
    std::fprintf(stderr, "DIVERGENCE at seed %llu:\n%s\n",
                 static_cast<unsigned long long>(seed),
                 result.divergence.c_str());
    const GraphDatabase minimized =
        minimize ? testing::MinimizeDivergence(db, params) : db;
    std::ostringstream path;
    path << corpus << "/seed_" << seed << ".lg";
    const Status written = testing::WriteReproFile(
        path.str(), minimized, params, result.divergence);
    if (written.ok()) {
      std::fprintf(stderr, "  minimized repro (%d graphs) -> %s\n",
                   minimized.size(), path.str().c_str());
    } else {
      std::fprintf(stderr, "  could not write repro: %s\n",
                   written.ToString().c_str());
    }
  }
  std::printf("differential: %llu seeds, %d divergences\n",
              static_cast<unsigned long long>(seeds), divergences);

  // Replay the checked-in corpus: previously found (and since fixed)
  // divergences must stay fixed.
  int replay_divergences = 0, replayed = 0;
  const Status replay =
      testing::ReplayReproDir(corpus, &replay_divergences, &replayed);
  if (!replay.ok()) {
    std::fprintf(stderr, "corpus replay failed: %s\n",
                 replay.ToString().c_str());
    return 1;
  }
  std::printf("corpus replay: %d repros, %d still diverge\n", replayed,
              replay_divergences);

  int fault_violations = 0;
  if (faults) {
    // The ADI grid runs once per storage engine: the classic pool, the
    // swizzle pool with synchronous write-back, and the swizzle pool with
    // async writer threads (the write-back failure paths differ).
    PoolSizing classic = testing::AdiSweepPoolSizing(StorageEngine::kClassic);
    PoolSizing swizzle = testing::AdiSweepPoolSizing(StorageEngine::kSwizzle);
    PoolSizing async = swizzle;
    async.writer_threads = 2;
    async.writeback_queue = 4;
    const struct {
      const char* label;
      const PoolSizing* pool;
    } adi_engines[] = {{"classic", &classic},
                       {"swizzle", &swizzle},
                       {"swizzle+writers", &async}};
    for (const auto& engine : adi_engines) {
      const FaultSweepOutcome adi =
          testing::RunAdiFaultSweep(start + 1, *engine.pool);
      std::printf(
          "adi fault sweep [%s]: %d runs, %d clean failures, %d correct, "
          "%zu violations\n",
          engine.label, adi.runs, adi.clean_failures, adi.successes,
          adi.violations.size());
      for (const std::string& v : adi.violations) {
        std::fprintf(stderr, "VIOLATION (adi %s): %s\n", engine.label,
                     v.c_str());
      }
      fault_violations += static_cast<int>(adi.violations.size());
    }
    const FaultSweepOutcome state = testing::RunStateIoFaultSweep(start + 2);
    std::printf(
        "state_io fault sweep: %d runs, %d clean failures, %d correct, "
        "%zu violations\n",
        state.runs, state.clean_failures, state.successes,
        state.violations.size());
    for (const std::string& v : state.violations) {
      std::fprintf(stderr, "VIOLATION (state_io): %s\n", v.c_str());
    }
    const FaultSweepOutcome daemon = testing::RunDaemonFaultSweep(start + 3);
    std::printf(
        "daemon fault sweep: %d runs, %d clean failures, %d correct, "
        "%zu violations\n",
        daemon.runs, daemon.clean_failures, daemon.successes,
        daemon.violations.size());
    for (const std::string& v : daemon.violations) {
      std::fprintf(stderr, "VIOLATION (daemon): %s\n", v.c_str());
    }
    fault_violations += static_cast<int>(state.violations.size()) +
                        static_cast<int>(daemon.violations.size());
  }

  return (divergences == 0 && replay_divergences == 0 &&
          fault_violations == 0)
             ? 0
             : 1;
}

}  // namespace
}  // namespace partminer

int main(int argc, char** argv) { return partminer::Run(argc, argv); }
