// partminer — command-line frequent-subgraph mining over gSpan-format files.
//
//   partminer mine   --input=db.lg --support=0.05 [--k=4] [--algo=partminer|
//                    gspan|gaston] [--criteria=combined|mincut|isolation|
//                    metis] [--threads=N] [--max-edges=N]
//                    [--closed | --maximal] [--output=patterns.lg]
//   partminer gen    --output=db.lg [--d=500 --t=20 --n=20 --l=50 --i=5
//                    --seed=1]
//   partminer stats  --input=db.lg
//
// Patterns are written in gSpan format with a `# support <n>` comment per
// pattern; without --output they go to stdout.

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "common/timing.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "graph/graph_io.h"
#include "miner/closed.h"
#include "miner/gaston.h"
#include "miner/gspan.h"

namespace {

using namespace partminer;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  partminer mine  --input=db.lg --support=0.05 [--k=4] "
               "[--algo=partminer|gspan|gaston] [--criteria=combined|mincut|"
               "isolation|metis] [--threads=N] [--max-edges=N] [--closed|"
               "--maximal] [--output=out.lg]\n"
               "  partminer gen   --output=db.lg [--d --t --n --l --i "
               "--seed]\n"
               "  partminer stats --input=db.lg\n");
  return 2;
}

Status WritePatterns(const PatternSet& patterns, std::ostream& out) {
  // Largest supports first, ties by code for determinism.
  std::vector<const PatternInfo*> ranked;
  for (const PatternInfo& p : patterns.patterns()) ranked.push_back(&p);
  std::sort(ranked.begin(), ranked.end(),
            [](const PatternInfo* a, const PatternInfo* b) {
              if (a->support != b->support) return a->support > b->support;
              return a->code.Compare(b->code) < 0;
            });
  int next_gid = 0;
  for (const PatternInfo* p : ranked) {
    out << "t # " << next_gid++ << "\n";
    out << "# support " << p->support << "\n";
    const Graph g = p->code.ToGraph();
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      out << "v " << v << " " << g.vertex_label(v) << "\n";
    }
    for (const EdgeEntry& e : g.UndirectedEdges()) {
      out << "e " << e.from << " " << e.to << " " << e.label << "\n";
    }
  }
  if (!out) return Status::IoError("write failed");
  return Status::Ok();
}

int Mine(const std::map<std::string, std::string>& flags) {
  GraphDatabase db;
  const std::string input = Get(flags, "input", "");
  if (input.empty()) return Usage();
  Status status = ReadGraphDatabaseFile(input, &db);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  const double support = std::atof(Get(flags, "support", "0.05").c_str());
  const int support_count =
      support >= 1.0
          ? static_cast<int>(support)
          : std::max(1, static_cast<int>(std::ceil(support * db.size())));
  const int max_edges = std::atoi(Get(flags, "max-edges", "0").c_str());
  const std::string algo = Get(flags, "algo", "partminer");

  Stopwatch watch;
  PatternSet patterns;
  if (algo == "gspan" || algo == "gaston") {
    MinerOptions options;
    options.min_support = support_count;
    if (max_edges > 0) options.max_edges = max_edges;
    if (algo == "gspan") {
      GSpanMiner miner;
      patterns = miner.Mine(db, options);
    } else {
      GastonMiner miner;
      patterns = miner.Mine(db, options);
    }
  } else if (algo == "partminer") {
    PartMinerOptions options;
    options.min_support_count = support_count;
    options.partition.k = std::max(1, std::atoi(Get(flags, "k", "2").c_str()));
    options.unit_mining_threads = std::atoi(Get(flags, "threads", "0").c_str());
    if (max_edges > 0) options.max_edges = max_edges;
    const std::string criteria = Get(flags, "criteria", "combined");
    if (criteria == "mincut") {
      options.partition.criteria = PartitionCriteria::kMinCut;
    } else if (criteria == "isolation") {
      options.partition.criteria = PartitionCriteria::kIsolation;
    } else if (criteria == "metis") {
      options.partition.criteria = PartitionCriteria::kMultilevel;
    } else {
      options.partition.criteria = PartitionCriteria::kCombined;
    }
    PartMiner miner(options);
    patterns = miner.Mine(db).patterns;
  } else {
    return Usage();
  }

  if (flags.count("closed")) patterns = ClosedPatterns(patterns);
  if (flags.count("maximal")) patterns = MaximalPatterns(patterns);

  std::fprintf(stderr,
               "%d graphs, min support %d: %d %spatterns in %.3fs (%s)\n",
               db.size(), support_count, patterns.size(),
               flags.count("closed")    ? "closed "
               : flags.count("maximal") ? "maximal "
                                        : "",
               watch.ElapsedSeconds(), algo.c_str());

  const std::string output = Get(flags, "output", "");
  if (output.empty()) {
    status = WritePatterns(patterns, std::cout);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", output.c_str());
      return 1;
    }
    status = WritePatterns(patterns, out);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int Gen(const std::map<std::string, std::string>& flags) {
  GeneratorParams params;
  params.num_graphs = std::atoi(Get(flags, "d", "500").c_str());
  params.avg_edges = std::atoi(Get(flags, "t", "20").c_str());
  params.num_labels = std::atoi(Get(flags, "n", "20").c_str());
  params.num_kernels = std::atoi(Get(flags, "l", "50").c_str());
  params.avg_kernel_edges = std::atoi(Get(flags, "i", "5").c_str());
  params.seed = std::atoll(Get(flags, "seed", "1").c_str());
  const GraphDatabase db = GenerateDatabase(params);

  const std::string output = Get(flags, "output", "");
  const Status status = output.empty()
                            ? WriteGraphDatabase(db, std::cout)
                            : WriteGraphDatabaseFile(db, output);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s: %d graphs, %lld edges\n",
               params.Tag().c_str(), db.size(),
               static_cast<long long>(db.TotalEdges()));
  return 0;
}

int Stats(const std::map<std::string, std::string>& flags) {
  GraphDatabase db;
  const Status status = ReadGraphDatabaseFile(Get(flags, "input", ""), &db);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  int64_t vertices = 0;
  int max_edges = 0;
  std::map<Label, int> vertex_labels;
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    vertices += g.VertexCount();
    max_edges = std::max(max_edges, g.EdgeCount());
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      ++vertex_labels[g.vertex_label(v)];
    }
  }
  std::printf("graphs:          %d\n", db.size());
  std::printf("vertices:        %lld (avg %.1f)\n",
              static_cast<long long>(vertices),
              db.size() ? static_cast<double>(vertices) / db.size() : 0.0);
  std::printf("edges:           %lld (avg %.1f, max %d)\n",
              static_cast<long long>(db.TotalEdges()),
              db.size() ? static_cast<double>(db.TotalEdges()) / db.size()
                        : 0.0,
              max_edges);
  std::printf("vertex labels:   %zu distinct\n", vertex_labels.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv);
  if (command == "mine") return Mine(flags);
  if (command == "gen") return Gen(flags);
  if (command == "stats") return Stats(flags);
  return Usage();
}
