// partminer — command-line frequent-subgraph mining over gSpan-format files.
//
//   partminer mine   --input=db.lg --support=0.05 [--k=4] [--algo=partminer|
//                    gspan|gaston|adi] [--criteria=combined|mincut|isolation|
//                    metis] [--threads=N] [--max-edges=N] [--pool-frames=N]
//                    [--pool-partitions=N] [--writer-threads=N]
//                    [--writeback-queue=N] [--storage-engine=swizzle|classic]
//                    [--closed | --maximal] [--output=patterns.lg]
//                    [--trace=trace.json] [--metrics=metrics.json]
//   partminer gen    --output=db.lg [--d=500 --t=20 --n=20 --l=50 --i=5
//                    --seed=1]
//   partminer stats  --input=db.lg
//
// Patterns are written in gSpan format with a `# support <n>` comment per
// pattern; without --output they go to stdout. --trace writes a Chrome
// trace-event JSON (load in Perfetto); --metrics dumps the process metrics
// registry as JSON after mining.

#include <unistd.h>

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "adi/adi_index.h"
#include "adi/adi_miner.h"
#include "common/flags.h"
#include "common/parse.h"
#include "common/thread_pool.h"
#include "common/timing.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "graph/canonical.h"
#include "graph/graph_io.h"
#include "graph/label_index.h"
#include "miner/closed.h"
#include "miner/gaston.h"
#include "miner/gspan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace partminer;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "warning: ignoring stray argument '%s'\n",
                   arg.c_str());
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Strictly-parsed numeric flags: --threads=eight (or =8abc) is a usage
/// error instead of silently becoming 0 the way std::atoi made it.
int IntFlag(const std::map<std::string, std::string>& flags,
            const std::string& key, int fallback) {
  const std::string raw = Get(flags, key, "");
  if (raw.empty()) return fallback;
  int value = 0;
  if (!ParseInt32(raw, &value)) {
    std::fprintf(stderr, "error: --%s=%s is not an integer\n", key.c_str(),
                 raw.c_str());
    std::exit(2);
  }
  return value;
}

double DoubleFlag(const std::map<std::string, std::string>& flags,
                  const std::string& key, double fallback) {
  const std::string raw = Get(flags, key, "");
  if (raw.empty()) return fallback;
  double value = 0;
  if (!ParseDouble(raw, &value)) {
    std::fprintf(stderr, "error: --%s=%s is not a number\n", key.c_str(),
                 raw.c_str());
    std::exit(2);
  }
  return value;
}

/// Warns (stderr) about every parsed flag not in `known`, so a typo like
/// --suport=0.05 is visible instead of silently falling back to a default.
void WarnUnknownFlags(const std::map<std::string, std::string>& flags,
                      std::initializer_list<const char*> known) {
  for (const auto& [key, value] : flags) {
    const bool recognized =
        std::any_of(known.begin(), known.end(),
                    [&key](const char* k) { return key == k; });
    if (!recognized) {
      std::fprintf(stderr, "warning: unrecognized flag --%s (ignored)\n",
                   key.c_str());
    }
  }
}

/// Pages `db` through the disk-backed storage layer and records its paged
/// footprint (storage.db_pages gauge), so a --metrics run reports storage
/// I/O figures even for the memory-based miners: the build writes every
/// page, the read-back sweep replays them through a small buffer pool.
void StorageFootprintProbe(const GraphDatabase& db, PoolSizing sizing) {
  PM_TRACE_SPAN("storage_probe", {{"graphs", db.size()}});
  DiskManager disk;
  std::ostringstream path;
  path << "/tmp/partminer_probe_" << ::getpid() << ".pages";
  if (!disk.Open(path.str()).ok()) return;
  // Two frames: the sweep must evict and re-read, so the probe exercises the
  // whole write/evict/read path rather than staying pool-resident. The
  // engine (and writer-thread count) still follow the configured flags.
  sizing.frames = 2;
  sizing.partitions = 1;
  auto probe = [&](AdiIndex* index) {
    if (!index->Build(db).ok()) return;
    Graph g;
    for (int i = 0; i < index->graph_count(); ++i) {
      if (!index->LoadGraph(i, &g).ok()) return;
    }
    PM_METRIC_GAUGE("storage.db_pages")->Set(index->pages_used());
  };
  if (sizing.engine == StorageEngine::kClassic) {
    BufferPool pool(&disk, sizing.frames);
    AdiIndex index(&pool);
    probe(&index);
  } else {
    SwizzlePool pool(&disk, sizing);
    AdiIndex index(&pool);
    probe(&index);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  partminer mine  --input=db.lg --support=0.05 [--k=4] "
               "[--algo=partminer|gspan|gaston|adi] [--criteria=combined|"
               "mincut|isolation|metis] [--threads=N] [--max-edges=N] "
               "[--pool-frames=N] [--pool-partitions=N] [--writer-threads=N] "
               "[--writeback-queue=N] [--storage-engine=swizzle|classic] "
               "[--closed|--maximal] [--no-prune-index] "
               "[--no-canon-cache] [--output=out.lg] "
               "[--trace=trace.json] [--metrics=metrics.json]\n"
               "  partminer gen   --output=db.lg [--d --t --n --l --i "
               "--seed]\n"
               "  partminer stats --input=db.lg\n");
  return 2;
}

Status WritePatterns(const PatternSet& patterns, std::ostream& out) {
  // Largest supports first, ties by code for determinism.
  std::vector<const PatternInfo*> ranked;
  for (const PatternInfo& p : patterns.patterns()) ranked.push_back(&p);
  std::sort(ranked.begin(), ranked.end(),
            [](const PatternInfo* a, const PatternInfo* b) {
              if (a->support != b->support) return a->support > b->support;
              return a->code.Compare(b->code) < 0;
            });
  int next_gid = 0;
  for (const PatternInfo* p : ranked) {
    out << "t # " << next_gid++ << "\n";
    out << "# support " << p->support << "\n";
    const Graph g = p->code.ToGraph();
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      out << "v " << v << " " << g.vertex_label(v) << "\n";
    }
    for (const EdgeEntry& e : g.UndirectedEdges()) {
      out << "e " << e.from << " " << e.to << " " << e.label << "\n";
    }
  }
  if (!out) return Status::IoError("write failed");
  return Status::Ok();
}

int Mine(const std::map<std::string, std::string>& flags) {
  WarnUnknownFlags(flags, {"input", "support", "k", "algo", "criteria",
                           "threads", "max-edges", "frames", "pool-frames",
                           "pool-partitions", "writer-threads",
                           "writeback-queue", "storage-engine", "closed",
                           "maximal", "no-prune-index", "no-canon-cache",
                           "output", "trace", "metrics"});
  GraphDatabase db;
  const std::string input = Get(flags, "input", "");
  if (input.empty()) {
    std::fprintf(stderr, "error: mine requires --input=<db.lg>\n");
    return Usage();
  }
  Status status = ReadGraphDatabaseFile(input, &db);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  const double support = DoubleFlag(flags, "support", 0.05);
  if (support <= 0.0) {
    std::fprintf(stderr, "error: --support must be positive (got %s)\n",
                 Get(flags, "support", "0.05").c_str());
    return Usage();
  }
  const int support_count =
      support >= 1.0
          ? static_cast<int>(support)
          : std::max(1, static_cast<int>(std::ceil(support * db.size())));
  const int max_edges = IntFlag(flags, "max-edges", 0);
  const std::string algo = Get(flags, "algo", "partminer");

  // Support-counting fast-path escape hatches. Mined output is bit-identical
  // either way; the flags exist for debugging and for measuring what the
  // label index and the minimality cache buy. Setting them also publishes
  // the prune.index_enabled / canon.cache_enabled gauges, so a --metrics
  // dump records which configuration produced it.
  SetLabelIndexEnabled(flags.count("no-prune-index") == 0);
  SetMinimalityCacheEnabled(flags.count("no-canon-cache") == 0);

  const std::string trace_path = Get(flags, "trace", "");
  const std::string metrics_path = Get(flags, "metrics", "");
  if (!trace_path.empty()) obs::Tracer::Global().Start();

  // Buffer-pool sizing (used by --algo=adi and the storage probe). --frames
  // is the legacy spelling of --pool-frames and keeps working.
  PoolSizing pool_sizing;
  if (!flags::PoolSizingFlags(flags, &pool_sizing, "frames")) return Usage();

  Stopwatch watch;
  PatternSet patterns;
  if (algo == "gspan" || algo == "gaston") {
    MinerOptions options;
    options.min_support = support_count;
    if (max_edges > 0) options.max_edges = max_edges;
    // --threads=N parallelizes the search tree on a work-stealing pool;
    // output is bit-identical to the serial traversal.
    const int threads = IntFlag(flags, "threads", 0);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      options.pool = pool.get();
    }
    if (algo == "gspan") {
      GSpanMiner miner;
      patterns = miner.Mine(db, options);
    } else {
      GastonMiner miner;
      patterns = miner.Mine(db, options);
    }
  } else if (algo == "partminer") {
    PartMinerOptions options;
    options.min_support_count = support_count;
    options.partition.k = std::max(1, IntFlag(flags, "k", 2));
    options.unit_mining_threads = IntFlag(flags, "threads", 0);
    if (max_edges > 0) options.max_edges = max_edges;
    const std::string criteria = Get(flags, "criteria", "combined");
    if (criteria == "mincut") {
      options.partition.criteria = PartitionCriteria::kMinCut;
    } else if (criteria == "isolation") {
      options.partition.criteria = PartitionCriteria::kIsolation;
    } else if (criteria == "metis") {
      options.partition.criteria = PartitionCriteria::kMultilevel;
    } else {
      options.partition.criteria = PartitionCriteria::kCombined;
    }
    PartMiner miner(options);
    patterns = miner.Mine(db).patterns;
  } else if (algo == "adi") {
    AdiMineOptions adi_options;
    adi_options.pool = pool_sizing;
    AdiMine miner(adi_options);
    status = miner.BuildIndex(db);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    MinerOptions options;
    options.min_support = support_count;
    if (max_edges > 0) options.max_edges = max_edges;
    status = miner.Mine(options, &patterns);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr, "error: unknown --algo=%s\n", algo.c_str());
    return Usage();
  }

  if (flags.count("closed")) patterns = ClosedPatterns(patterns);
  if (flags.count("maximal")) patterns = MaximalPatterns(patterns);

  if (!metrics_path.empty() && algo != "adi") {
    StorageFootprintProbe(db, pool_sizing);
  }
  if (!trace_path.empty()) {
    obs::Tracer::Global().Stop();
    if (!obs::Tracer::Global().WriteChromeTraceFile(trace_path)) return 1;
  }
  if (!metrics_path.empty() &&
      !obs::MetricRegistry::Global().WriteJsonFile(metrics_path)) {
    return 1;
  }

  std::fprintf(stderr,
               "%d graphs, min support %d: %d %spatterns in %.3fs (%s)\n",
               db.size(), support_count, patterns.size(),
               flags.count("closed")    ? "closed "
               : flags.count("maximal") ? "maximal "
                                        : "",
               watch.ElapsedSeconds(), algo.c_str());

  const std::string output = Get(flags, "output", "");
  if (output.empty()) {
    status = WritePatterns(patterns, std::cout);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", output.c_str());
      return 1;
    }
    status = WritePatterns(patterns, out);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int Gen(const std::map<std::string, std::string>& flags) {
  WarnUnknownFlags(flags, {"output", "d", "t", "n", "l", "i", "seed"});
  GeneratorParams params;
  params.num_graphs = IntFlag(flags, "d", 500);
  params.avg_edges = IntFlag(flags, "t", 20);
  params.num_labels = IntFlag(flags, "n", 20);
  params.num_kernels = IntFlag(flags, "l", 50);
  params.avg_kernel_edges = IntFlag(flags, "i", 5);
  int64_t gen_seed = 1;
  const std::string seed_raw = Get(flags, "seed", "1");
  if (!ParseInt64(seed_raw, &gen_seed)) {
    std::fprintf(stderr, "error: --seed=%s is not an integer\n",
                 seed_raw.c_str());
    return Usage();
  }
  params.seed = static_cast<uint64_t>(gen_seed);
  const GraphDatabase db = GenerateDatabase(params);

  const std::string output = Get(flags, "output", "");
  const Status status = output.empty()
                            ? WriteGraphDatabase(db, std::cout)
                            : WriteGraphDatabaseFile(db, output);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s: %d graphs, %lld edges\n",
               params.Tag().c_str(), db.size(),
               static_cast<long long>(db.TotalEdges()));
  return 0;
}

int Stats(const std::map<std::string, std::string>& flags) {
  WarnUnknownFlags(flags, {"input"});
  const std::string input = Get(flags, "input", "");
  if (input.empty()) {
    std::fprintf(stderr, "error: stats requires --input=<db.lg>\n");
    return Usage();
  }
  GraphDatabase db;
  const Status status = ReadGraphDatabaseFile(input, &db);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  int64_t vertices = 0;
  int max_edges = 0;
  int min_vertices = INT_MAX;
  int max_vertices = 0;
  std::map<Label, int> vertex_labels;
  std::map<Label, int> edge_labels;
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    vertices += g.VertexCount();
    max_edges = std::max(max_edges, g.EdgeCount());
    min_vertices = std::min(min_vertices, g.VertexCount());
    max_vertices = std::max(max_vertices, g.VertexCount());
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      ++vertex_labels[g.vertex_label(v)];
    }
    for (const EdgeEntry& e : g.UndirectedEdges()) ++edge_labels[e.label];
  }
  if (db.size() == 0) min_vertices = 0;
  std::printf("graphs:          %d\n", db.size());
  std::printf("vertices:        %lld (avg %.1f, min %d, max %d)\n",
              static_cast<long long>(vertices),
              db.size() ? static_cast<double>(vertices) / db.size() : 0.0,
              min_vertices, max_vertices);
  std::printf("edges:           %lld (avg %.1f, max %d)\n",
              static_cast<long long>(db.TotalEdges()),
              db.size() ? static_cast<double>(db.TotalEdges()) / db.size()
                        : 0.0,
              max_edges);
  std::printf("avg degree:      %.2f\n",
              vertices ? 2.0 * db.TotalEdges() / vertices : 0.0);
  std::printf("vertex labels:   %zu distinct\n", vertex_labels.size());
  std::printf("edge labels:     %zu distinct\n", edge_labels.size());
  // Most frequent vertex labels: skew here drives both the partitioning
  // quality and the miners' 1-edge seed counts, so surface it.
  std::vector<std::pair<int, Label>> ranked;
  for (const auto& [label, count] : vertex_labels) {
    ranked.emplace_back(count, label);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t top = std::min<size_t>(5, ranked.size());
  for (size_t i = 0; i < top; ++i) {
    std::printf("  label %-4d %d vertices (%.1f%%)\n", ranked[i].second,
                ranked[i].first,
                vertices ? 100.0 * ranked[i].first / vertices : 0.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv);
  if (command == "mine") return Mine(flags);
  if (command == "gen") return Gen(flags);
  if (command == "stats") return Stats(flags);
  return Usage();
}
