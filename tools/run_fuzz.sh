#!/bin/sh
# Differential-fuzzing smoke sweep: builds partminer_fuzz under ASan+UBSan
# and runs a seed sweep plus the storage fault-injection grids. Any miner
# divergence writes a minimized repro into the divergence corpus and fails
# the run; any fault-contract violation (crash, leak, or silently wrong
# result under injected I/O errors) fails it too. Finally the checked-in
# BENCH_*.json records are cross-checked with tools/bench_compare.py so the
# correctness sweep and the perf gate travel together.
#
# Usage: tools/run_fuzz.sh [--smoke] [--seeds=N] [--bin=PATH] [--corpus=DIR]
#
#   --smoke       50-seed sweep with small databases (the ctest `slow`
#                 target run_fuzz_smoke uses this).
#   --seeds=N     Override the seed count (default: 50 smoke, 1000 full).
#   --bin=PATH    Use an already-built partminer_fuzz instead of making the
#                 ASan build (ctest passes the regular build's binary; the
#                 dedicated ASan sweep stays available by omitting --bin).
#   --corpus=DIR  Divergence-corpus directory (default data/corpus/divergence).
set -eu

cd "$(dirname "$0")/.."

SMOKE=0
SEEDS=""
BIN=""
CORPUS="data/corpus/divergence"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --seeds=*) SEEDS="${arg#--seeds=}" ;;
    --bin=*) BIN="${arg#--bin=}" ;;
    --corpus=*) CORPUS="${arg#--corpus=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [ -z "$SEEDS" ]; then
  if [ "$SMOKE" = 1 ]; then SEEDS=50; else SEEDS=1000; fi
fi

if [ -z "$BIN" ]; then
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DPARTMINER_SANITIZE=address;undefined"
  cmake --build build-asan -j "$(nproc)" \
    --target partminer_fuzz partminerd partminer_cli
  BIN=build-asan/tools/partminer_fuzz
fi

FLAGS="--seeds=$SEEDS --corpus=$CORPUS"
if [ "$SMOKE" = 1 ]; then FLAGS="$FLAGS --smoke"; fi

echo "== partminer_fuzz $FLAGS"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 strict_string_checks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  "$BIN" $FLAGS

# Daemon fault grid: drive the real partminerd binary over --stdio with
# scripted read/write/alloc faults armed. Contract: every request gets a
# structured response (success or clean error), the process survives every
# fault (the post-fault ping answers ok), and a restore that hits a read
# fault refuses to start while the fault-free retry comes up. Skipped when
# the sibling binaries are not built (e.g. a hand-rolled --bin path).
TOOLS_DIR="$(dirname "$BIN")"
if [ -x "$TOOLS_DIR/partminerd" ] && [ -x "$TOOLS_DIR/partminer" ]; then
  echo "== partminerd fault grid"
  GRID_TMP="$(mktemp -d)"
  trap 'rm -rf "$GRID_TMP"' EXIT
  "$TOOLS_DIR/partminer" gen --d=40 --output="$GRID_TMP/grid.lg" >/dev/null
  REQS='{"id":1,"cmd":"ping"}
{"id":2,"cmd":"update","wait":true,"edits":[{"kind":"relabel","graph":0,"vertex":0,"label":1}]}
{"id":3,"cmd":"snapshot","path":"'"$GRID_TMP"'/snap"}
{"id":4,"cmd":"ping"}
{"id":5,"cmd":"shutdown"}'
  for spec in --fault-write=once:0 --fault-write=p:0.5 \
              --fault-alloc=once:0 --fault-alloc=p:0.5 --fault-read=once:0; do
    echo "-- partminerd --stdio $spec"
    OUT="$(printf '%s\n' "$REQS" | \
      "$TOOLS_DIR/partminerd" --input="$GRID_TMP/grid.lg" --stdio \
        --support=0.3 "$spec" 2>/dev/null)" || {
      echo "daemon died under $spec" >&2; exit 1; }
    [ "$(printf '%s\n' "$OUT" | wc -l)" -eq 5 ] || {
      echo "missing responses under $spec" >&2; exit 1; }
    printf '%s\n' "$OUT" | sed -n 4p | grep -q '"ok":true' || {
      echo "daemon stopped serving after $spec" >&2; exit 1; }
  done
  # A clean snapshot pair now exists at $GRID_TMP/snap (written by the
  # read-fault round, whose write path was fault-free).
  if "$TOOLS_DIR/partminerd" --restore="$GRID_TMP/snap" --stdio \
       --fault-read=once:0 </dev/null >/dev/null 2>&1; then
    echo "restore under an armed read fault unexpectedly started" >&2
    exit 1
  fi
  printf '{"id":1,"cmd":"ping"}\n{"id":2,"cmd":"shutdown"}\n' | \
    "$TOOLS_DIR/partminerd" --restore="$GRID_TMP/snap" --stdio \
      2>/dev/null | sed -n 1p | grep -q '"ok":true' || {
    echo "fault-free restore retry failed" >&2; exit 1; }
else
  echo "== partminerd fault grid skipped (no sibling partminerd binary)"
fi

# Perf gate: pair every *_ms block shared by the checked-in BENCH records
# and fail on >10% regressions. Self-comparison keeps the gate wired (and
# exercised) even when only one record of a kind exists.
for record in BENCH_*.json; do
  [ -e "$record" ] || continue
  echo "== bench_compare $record"
  python3 tools/bench_compare.py "$record" "$record" --threshold=0.10
done

echo "run_fuzz: OK"
