#!/bin/sh
# Differential-fuzzing smoke sweep: builds partminer_fuzz under ASan+UBSan
# and runs a seed sweep plus the storage fault-injection grids. Any miner
# divergence writes a minimized repro into the divergence corpus and fails
# the run; any fault-contract violation (crash, leak, or silently wrong
# result under injected I/O errors) fails it too. Finally the checked-in
# BENCH_*.json records are cross-checked with tools/bench_compare.py so the
# correctness sweep and the perf gate travel together.
#
# Usage: tools/run_fuzz.sh [--smoke] [--seeds=N] [--bin=PATH] [--corpus=DIR]
#
#   --smoke       50-seed sweep with small databases (the ctest `slow`
#                 target run_fuzz_smoke uses this).
#   --seeds=N     Override the seed count (default: 50 smoke, 1000 full).
#   --bin=PATH    Use an already-built partminer_fuzz instead of making the
#                 ASan build (ctest passes the regular build's binary; the
#                 dedicated ASan sweep stays available by omitting --bin).
#   --corpus=DIR  Divergence-corpus directory (default data/corpus/divergence).
set -eu

cd "$(dirname "$0")/.."

SMOKE=0
SEEDS=""
BIN=""
CORPUS="data/corpus/divergence"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --seeds=*) SEEDS="${arg#--seeds=}" ;;
    --bin=*) BIN="${arg#--bin=}" ;;
    --corpus=*) CORPUS="${arg#--corpus=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [ -z "$SEEDS" ]; then
  if [ "$SMOKE" = 1 ]; then SEEDS=50; else SEEDS=1000; fi
fi

if [ -z "$BIN" ]; then
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DPARTMINER_SANITIZE=address;undefined"
  cmake --build build-asan -j "$(nproc)" --target partminer_fuzz
  BIN=build-asan/tools/partminer_fuzz
fi

FLAGS="--seeds=$SEEDS --corpus=$CORPUS"
if [ "$SMOKE" = 1 ]; then FLAGS="$FLAGS --smoke"; fi

echo "== partminer_fuzz $FLAGS"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 strict_string_checks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  "$BIN" $FLAGS

# Perf gate: pair every *_ms block shared by the checked-in BENCH records
# and fail on >10% regressions. Self-comparison keeps the gate wired (and
# exercised) even when only one record of a kind exists.
for record in BENCH_*.json; do
  [ -e "$record" ] || continue
  echo "== bench_compare $record"
  python3 tools/bench_compare.py "$record" "$record" --threshold=0.10
done

echo "run_fuzz: OK"
