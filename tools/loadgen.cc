// loadgen — replay seeded mixed update/query streams against partminerd.
//
//   loadgen --daemon=./partminerd [--input=db.lg] [--requests=10000]
//           [--clients=4] [--update-fraction=0.1] [--edits-per-update=4]
//           [--seed=1] [--support=0.1] [--k=2] [--threads=0]
//           [--queue-cap=4096] [--batch-max=256]
//           [--record=stream.txt | --replay=stream.txt]
//           [--out=BENCH.json] [--smoke]
//   loadgen --socket=/path/daemon.sock [...]     (drive an already-running
//                                                 daemon; no spawn/shutdown)
//
// Spawns (or connects to) a daemon, generates an interleaving-safe seeded
// workload over the same database the daemon loaded, drives it from
// --clients closed-loop connections, and verifies every response:
//   - every request line gets exactly one well-formed response echoing its id,
//   - updates are acknowledged or rejected with `overloaded` — nothing else,
//   - query (epoch, digest) pairs are globally consistent (two observations
//     of the same epoch always carry the same pattern-set digest) and epochs
//     are monotone per connection,
//   - the final metrics dump shows zero rejected edits (the generated stream
//     is valid under any interleaving) and a queue depth of zero.
// Reports sustained throughput and exact p50/p99 latency per request class,
// the daemon-side request lifecycle breakdown (queue wait, batch coalesce,
// phase-A re-mine, phase-B apply, reply write — DESIGN.md section 13),
// optionally as a bench_compare.py-compatible BENCH json block.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/parse.h"
#include "common/timing.h"
#include "datagen/edit_stream.h"
#include "datagen/generator.h"
#include "graph/graph_io.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/json.h"

namespace {

using namespace partminer;
using service::Json;
using service::LineClient;
using flags::DoubleFlag;
using flags::Get;
using flags::IntFlag;

std::string ItemToRequest(const StreamItem& item, int64_t id) {
  std::string line = "{\"id\":" + std::to_string(id);
  if (item.is_update) {
    line += ",\"cmd\":\"update\",\"edits\":[";
    for (size_t i = 0; i < item.edits.size(); ++i) {
      if (i > 0) line.push_back(',');
      line += service::EditToJson(item.edits[i]).Dump();
    }
    line += "]}";
  } else {
    line += ",\"cmd\":\"query\",\"support\":" +
            std::to_string(item.query_support) +
            ",\"limit\":" + std::to_string(item.query_limit) + "}";
  }
  return line;
}

struct WorkerStats {
  std::vector<double> query_ms;
  std::vector<double> update_ms;
  int overloaded = 0;
  int incorrect = 0;
  std::vector<std::string> complaints;  // First few, for the report.
  /// (epoch, digest) pairs observed by queries, in connection order.
  std::vector<std::pair<uint64_t, uint64_t>> observations;

  void Complain(int64_t id, const std::string& what,
                const std::string& response) {
    ++incorrect;
    if (complaints.size() < 5) {
      complaints.push_back("request " + std::to_string(id) + ": " + what +
                           " in " + response.substr(0, 200));
    }
  }
};

/// Closed-loop worker: items [first, items.size()) step `stride`, one
/// request in flight at a time, every response verified.
void RunWorker(const std::string& socket_path,
               const std::vector<StreamItem>& items, size_t first,
               size_t stride, WorkerStats* stats) {
  LineClient client;
  if (!client.Connect(socket_path)) {
    stats->Complain(-1, "connect failed", socket_path);
    return;
  }
  uint64_t last_epoch = 0;
  for (size_t i = first; i < items.size(); i += stride) {
    const StreamItem& item = items[i];
    const int64_t id = static_cast<int64_t>(i);
    const std::string request = ItemToRequest(item, id);
    Stopwatch watch;
    std::string response;
    if (!client.RoundTrip(request, &response)) {
      stats->Complain(id, "connection dropped", "");
      return;
    }
    const double ms = watch.ElapsedSeconds() * 1e3;
    (item.is_update ? stats->update_ms : stats->query_ms).push_back(ms);

    Json parsed;
    if (!Json::Parse(response, &parsed).ok() ||
        parsed.type() != Json::Type::kObject) {
      stats->Complain(id, "unparseable response", response);
      continue;
    }
    const Json* rid = parsed.Get("id");
    if (rid == nullptr || !rid->is_int() || rid->AsInt() != id) {
      stats->Complain(id, "id mismatch", response);
      continue;
    }
    const Json* ok = parsed.Get("ok");
    if (ok == nullptr || ok->type() != Json::Type::kBool) {
      stats->Complain(id, "missing 'ok'", response);
      continue;
    }

    if (item.is_update) {
      if (ok->AsBool()) {
        const Json* result = parsed.Get("result");
        const Json* queued = result ? result->Get("queued") : nullptr;
        if (queued == nullptr || !queued->AsBool()) {
          stats->Complain(id, "update ack without queued:true", response);
        }
      } else {
        // The only legitimate failure for a valid update is backpressure.
        const Json* error = parsed.Get("error");
        const Json* code = error ? error->Get("code") : nullptr;
        if (code != nullptr && code->is_string() &&
            code->AsString() == "overloaded") {
          ++stats->overloaded;
        } else {
          stats->Complain(id, "update rejected with non-overloaded error",
                          response);
        }
      }
    } else {
      if (!ok->AsBool()) {
        stats->Complain(id, "query failed", response);
        continue;
      }
      const Json* result = parsed.Get("result");
      const Json* epoch = result ? result->Get("epoch") : nullptr;
      const Json* digest = result ? result->Get("digest") : nullptr;
      const Json* count = result ? result->Get("count") : nullptr;
      uint64_t digest_value = 0;
      if (epoch == nullptr || !epoch->is_int() || count == nullptr ||
          !count->is_int() || digest == nullptr || !digest->is_string() ||
          !ParseUint64(digest->AsString(), &digest_value)) {
        stats->Complain(id, "malformed query result", response);
        continue;
      }
      const uint64_t e = static_cast<uint64_t>(epoch->AsInt());
      if (e < last_epoch) {
        stats->Complain(id, "epoch went backwards on one connection",
                        response);
      }
      last_epoch = e;
      stats->observations.emplace_back(e, digest_value);
    }
  }
}

struct Percentiles {
  double p50 = 0, p99 = 0, max = 0;
};

Percentiles ComputePercentiles(std::vector<double>* samples) {
  Percentiles result;
  if (samples->empty()) return result;
  std::sort(samples->begin(), samples->end());
  const auto at = [&](double q) {
    const size_t index = static_cast<size_t>(q * (samples->size() - 1));
    return (*samples)[index];
  };
  result.p50 = at(0.50);
  result.p99 = at(0.99);
  result.max = samples->back();
  return result;
}

pid_t SpawnDaemon(const std::string& binary,
                  const std::vector<std::string>& args) {
  std::vector<std::string> argv_storage;
  argv_storage.push_back(binary);
  argv_storage.insert(argv_storage.end(), args.begin(), args.end());
  std::vector<char*> argv;
  for (std::string& a : argv_storage) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    std::fprintf(stderr, "error: exec %s: %s\n", binary.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

bool WaitForSocket(const std::string& path, pid_t daemon_pid,
                   double timeout_seconds) {
  Stopwatch watch;
  while (watch.ElapsedSeconds() < timeout_seconds) {
    LineClient probe;
    if (probe.Connect(path)) return true;
    if (daemon_pid > 0) {
      int wait_status = 0;
      if (::waitpid(daemon_pid, &wait_status, WNOHANG) == daemon_pid) {
        std::fprintf(stderr, "error: daemon exited before listening\n");
        return false;
      }
    }
    ::usleep(50 * 1000);
  }
  std::fprintf(stderr, "error: daemon socket %s never came up\n",
               path.c_str());
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: loadgen (--daemon=partminerd-path [--input=db.lg] |"
      " --socket=path --input=db.lg)\n"
      "  [--requests=10000] [--clients=4] [--update-fraction=0.1]\n"
      "  [--edits-per-update=4] [--seed=1] [--support=0.1] [--k=2]\n"
      "  [--threads=0] [--queue-cap=4096] [--batch-max=256]\n"
      "  [--record=stream.txt | --replay=stream.txt] [--out=BENCH.json]\n"
      "  [--smoke]\n");
  return 2;
}

int Main(int argc, char** argv) {
  const flags::FlagMap flags = flags::Parse(argc, argv);
  flags::WarnUnknown(flags, {"daemon", "socket", "input", "requests",
                             "clients", "update-fraction", "edits-per-update",
                             "seed", "support", "k", "threads", "queue-cap",
                             "batch-max", "record", "replay", "out", "smoke"});
  const bool smoke = flags.count("smoke") > 0;

  int requests = 0, clients = 0, edits_per_update = 0, seed = 0;
  int k = 0, threads = 0, queue_cap = 0, batch_max = 0;
  double update_fraction = 0;
  if (!IntFlag(flags, "requests", smoke ? 300 : 10000, &requests) ||
      !IntFlag(flags, "clients", smoke ? 2 : 4, &clients) ||
      !IntFlag(flags, "edits-per-update", 4, &edits_per_update) ||
      !IntFlag(flags, "seed", 1, &seed) || !IntFlag(flags, "k", 2, &k) ||
      !IntFlag(flags, "threads", 0, &threads) ||
      !IntFlag(flags, "queue-cap", 4096, &queue_cap) ||
      !IntFlag(flags, "batch-max", 256, &batch_max) ||
      !DoubleFlag(flags, "update-fraction", 0.1, &update_fraction)) {
    return Usage();
  }
  if (requests <= 0 || clients <= 0 || clients > 64) return Usage();
  const std::string support = Get(flags, "support", smoke ? "0.2" : "0.1");
  const std::string daemon_binary = Get(flags, "daemon", "");
  std::string socket_path = Get(flags, "socket", "");
  const bool spawn = socket_path.empty();
  if (spawn && daemon_binary.empty()) return Usage();

  // The generator needs the same database the daemon serves: either load
  // the given file or synthesize one (and persist it for the daemon).
  const std::string scratch =
      "/tmp/loadgen." + std::to_string(::getpid());
  std::string input = Get(flags, "input", "");
  GraphDatabase db;
  if (input.empty()) {
    if (!spawn) {
      std::fprintf(stderr,
                   "error: --socket mode needs --input (the database the "
                   "daemon loaded)\n");
      return Usage();
    }
    GeneratorParams params;
    params.num_graphs = smoke ? 60 : 200;
    params.avg_edges = 12;
    params.num_kernels = 20;
    params.seed = static_cast<uint64_t>(seed);
    db = GenerateDatabase(params);
    input = scratch + ".db.lg";
    const Status written = WriteGraphDatabaseFile(db, input);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  } else {
    const Status read = ReadGraphDatabaseFile(input, &db);
    if (!read.ok()) {
      std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
      return 1;
    }
  }

  pid_t daemon_pid = -1;
  if (spawn) {
    socket_path = scratch + ".sock";
    std::vector<std::string> args = {
        "--input=" + input,
        "--socket=" + socket_path,
        "--support=" + support,
        "--k=" + std::to_string(k),
        "--threads=" + std::to_string(threads),
        "--queue-cap=" + std::to_string(queue_cap),
        "--batch-max=" + std::to_string(batch_max),
    };
    daemon_pid = SpawnDaemon(daemon_binary, args);
    if (daemon_pid < 0 || !WaitForSocket(socket_path, daemon_pid, 60.0)) {
      if (daemon_pid > 0) ::kill(daemon_pid, SIGKILL);
      return 1;
    }
  }

  // Control connection: discover the resident support (query supports are
  // generated relative to it) and sanity-check the daemon sees the same
  // database.
  LineClient control;
  std::string response;
  Json parsed;
  const auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s (last response: %.200s)\n", why.c_str(),
                 response.c_str());
    if (daemon_pid > 0) ::kill(daemon_pid, SIGKILL);
    return 1;
  };
  if (!control.Connect(socket_path)) return fail("cannot connect control");
  if (!control.RoundTrip("{\"id\":\"ctl-ping\",\"cmd\":\"ping\"}",
                         &response) ||
      !Json::Parse(response, &parsed).ok()) {
    return fail("ping failed");
  }
  const Json* result = parsed.Get("result");
  const Json* graphs = result ? result->Get("graphs") : nullptr;
  const Json* resident = result ? result->Get("support") : nullptr;
  if (graphs == nullptr || resident == nullptr || !graphs->is_int() ||
      !resident->is_int()) {
    return fail("malformed ping result");
  }
  if (graphs->AsInt() != db.size()) {
    return fail("daemon database has " + std::to_string(graphs->AsInt()) +
                " graphs, local copy has " + std::to_string(db.size()));
  }

  // Generate or replay the workload.
  std::vector<StreamItem> items;
  const std::string replay = Get(flags, "replay", "");
  if (!replay.empty()) {
    const Status read = ReadEditStreamFile(replay, &items);
    if (!read.ok()) return fail(read.ToString());
  } else {
    EditStreamOptions stream;
    stream.seed = static_cast<uint64_t>(seed);
    stream.requests = requests;
    stream.update_fraction = update_fraction;
    stream.edits_per_update = edits_per_update;
    stream.resident_support = static_cast<int>(resident->AsInt());
    items = GenerateEditStream(db, stream);
  }
  const std::string record = Get(flags, "record", "");
  if (!record.empty()) {
    const Status written = WriteEditStreamFile(items, record);
    if (!written.ok()) return fail(written.ToString());
  }
  int planned_updates = 0;
  for (const StreamItem& item : items) planned_updates += item.is_update;
  std::fprintf(stderr,
               "loadgen: %zu requests (%d updates), %d clients, resident "
               "support %lld over %d graphs\n",
               items.size(), planned_updates, clients,
               static_cast<long long>(resident->AsInt()), db.size());

  // Drive.
  std::vector<WorkerStats> stats(clients);
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back(RunWorker, socket_path, std::cref(items),
                         static_cast<size_t>(c), static_cast<size_t>(clients),
                         &stats[c]);
  }
  for (std::thread& t : workers) t.join();
  const double drive_seconds = wall.ElapsedSeconds();

  // Drain, then audit global consistency.
  Stopwatch sync_watch;
  if (!control.RoundTrip("{\"id\":\"ctl-sync\",\"cmd\":\"sync\"}",
                         &response)) {
    return fail("sync failed");
  }
  const double sync_seconds = sync_watch.ElapsedSeconds();

  int incorrect = 0, overloaded = 0;
  std::vector<double> query_ms, update_ms;
  std::map<uint64_t, uint64_t> epoch_digests;
  for (const WorkerStats& w : stats) {
    incorrect += w.incorrect;
    overloaded += w.overloaded;
    query_ms.insert(query_ms.end(), w.query_ms.begin(), w.query_ms.end());
    update_ms.insert(update_ms.end(), w.update_ms.begin(), w.update_ms.end());
    for (const std::string& complaint : w.complaints) {
      std::fprintf(stderr, "incorrect: %s\n", complaint.c_str());
    }
    for (const auto& [epoch, digest] : w.observations) {
      const auto [it, inserted] = epoch_digests.emplace(epoch, digest);
      if (!inserted && it->second != digest) {
        ++incorrect;
        std::fprintf(stderr,
                     "incorrect: epoch %llu observed with two digests "
                     "(%llu vs %llu)\n",
                     static_cast<unsigned long long>(epoch),
                     static_cast<unsigned long long>(it->second),
                     static_cast<unsigned long long>(digest));
      }
    }
  }

  // Final metrics: the stream is valid under any interleaving, so a
  // rejected edit means the daemon (or the generator) corrupted state.
  if (!control.RoundTrip("{\"id\":\"ctl-metrics\",\"cmd\":\"metrics\"}",
                         &response) ||
      !Json::Parse(response, &parsed).ok()) {
    return fail("metrics failed");
  }
  const Json* registry = parsed.Get("result");
  registry = registry ? registry->Get("registry") : nullptr;
  const Json* counters = registry ? registry->Get("counters") : nullptr;
  const auto counter = [&](const char* name) -> int64_t {
    const Json* c = counters ? counters->Get(name) : nullptr;
    return c != nullptr && c->is_int() ? c->AsInt() : 0;
  };
  const int64_t edits_rejected = counter("service.edits_rejected");
  const int64_t edits_applied = counter("service.edits_applied");
  const int64_t batches_applied = counter("service.batches_applied");
  if (edits_rejected != 0) {
    ++incorrect;
    std::fprintf(stderr,
                 "incorrect: daemon rejected %lld edits from a stream that "
                 "is valid under any interleaving\n",
                 static_cast<long long>(edits_rejected));
  }
  const Json* gauges = registry ? registry->Get("gauges") : nullptr;
  const Json* depth = gauges ? gauges->Get("service.queue_depth") : nullptr;
  if (depth != nullptr && depth->is_int() && depth->AsInt() != 0) {
    ++incorrect;
    std::fprintf(stderr, "incorrect: queue depth %lld after sync\n",
                 static_cast<long long>(depth->AsInt()));
  }

  // Daemon-side lifecycle breakdown (DESIGN.md section 13): bucket-estimated
  // quantiles of each pipeline segment, read from the same metrics dump.
  const Json* histograms = registry ? registry->Get("histograms") : nullptr;
  const auto quantile = [&](const char* name, const char* q) -> double {
    const Json* h = histograms ? histograms->Get(name) : nullptr;
    const Json* v = h ? h->Get(q) : nullptr;
    return v != nullptr && v->is_number() ? v->AsDouble() : 0;
  };
  struct Segment {
    const char* label;
    const char* metric;
    double p50 = 0, p99 = 0;
  };
  Segment segments[] = {
      {"sock_read", "service.sock_read_ms"},
      {"queue_wait", "service.queue_wait_ms"},
      {"coalesce", "service.coalesce_ms"},
      {"phase_a_remine", "service.phase_a_ms"},
      {"phase_b_apply", "service.phase_b_ms"},
      {"update_pipeline", "service.update_pipeline_ms"},
      {"reply_write", "service.reply_write_ms"},
  };
  for (Segment& segment : segments) {
    segment.p50 = quantile(segment.metric, "p50");
    segment.p99 = quantile(segment.metric, "p99");
  }
  // Accounting check: queue wait + coalesce + phase A + phase B + reply
  // write should explain (almost) all of the daemon-side update pipeline —
  // sock_read is excluded because under a closed loop it measures client
  // think time, not service time.
  const double explained_p99 = segments[1].p99 + segments[2].p99 +
                               segments[3].p99 + segments[4].p99 +
                               segments[6].p99;
  const double pipeline_p99 = segments[5].p99 + segments[6].p99;
  const double breakdown_coverage =
      pipeline_p99 > 0 ? explained_p99 / pipeline_p99 : 0;

  if (spawn) {
    control.RoundTrip("{\"id\":\"ctl-bye\",\"cmd\":\"shutdown\"}", &response);
    control.Close();
    int wait_status = 0;
    ::waitpid(daemon_pid, &wait_status, 0);
    if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
      ++incorrect;
      std::fprintf(stderr, "incorrect: daemon exit status %d\n", wait_status);
    }
    ::unlink((scratch + ".db.lg").c_str());
  } else {
    control.Close();
  }

  const Percentiles query_latency = ComputePercentiles(&query_ms);
  const Percentiles update_latency = ComputePercentiles(&update_ms);
  const size_t completed = query_ms.size() + update_ms.size();
  const double throughput =
      drive_seconds > 0 ? static_cast<double>(completed) / drive_seconds : 0;

  std::printf(
      "loadgen: %zu/%zu requests in %.2fs (%.0f req/s), %d overloaded, "
      "%d incorrect\n"
      "  query  p50 %.3f ms  p99 %.3f ms  max %.3f ms  (%zu samples)\n"
      "  update p50 %.3f ms  p99 %.3f ms  max %.3f ms  (%zu samples)\n"
      "  sync drain %.2fs, %lld edits applied in %lld batches\n",
      completed, items.size(), drive_seconds, throughput, overloaded,
      incorrect, query_latency.p50, query_latency.p99, query_latency.max,
      query_ms.size(), update_latency.p50, update_latency.p99,
      update_latency.max, update_ms.size(), sync_seconds,
      static_cast<long long>(edits_applied),
      static_cast<long long>(batches_applied));
  std::printf("  daemon breakdown (bucket-estimated ms):\n");
  for (const Segment& segment : segments) {
    std::printf("    %-15s p50 %8.3f  p99 %8.3f\n", segment.label,
                segment.p50, segment.p99);
  }
  std::printf(
      "  breakdown coverage: %.1f%% of update-pipeline p99 explained by "
      "queue-wait + coalesce + phase A + phase B + reply-write\n",
      breakdown_coverage * 100.0);

  const std::string out = Get(flags, "out", "");
  if (!out.empty()) {
    Json bench = Json::Object();
    bench.Set("id", Json::Str("service-loadgen"));
    bench.Set("requests", Json::Number(static_cast<int64_t>(items.size())));
    bench.Set("clients", Json::Number(static_cast<int64_t>(clients)));
    bench.Set("update_fraction", Json::Number(update_fraction));
    bench.Set("seed", Json::Number(static_cast<int64_t>(seed)));
    bench.Set("cores", Json::Number(static_cast<int64_t>(
                           std::thread::hardware_concurrency())));
    bench.Set("threads", Json::Number(static_cast<int64_t>(clients)));
    bench.Set("incorrect", Json::Number(static_cast<int64_t>(incorrect)));
    bench.Set("overloaded", Json::Number(static_cast<int64_t>(overloaded)));
    bench.Set("throughput_rps", Json::Number(throughput));
    Json latency = Json::Object();
    latency.Set("query_p50_ms", Json::Number(query_latency.p50));
    latency.Set("query_p99_ms", Json::Number(query_latency.p99));
    latency.Set("update_p50_ms", Json::Number(update_latency.p50));
    latency.Set("update_p99_ms", Json::Number(update_latency.p99));
    latency.Set("drive_total_ms", Json::Number(drive_seconds * 1e3));
    latency.Set("sync_drain_ms", Json::Number(sync_seconds * 1e3));
    bench.Set("latency_ms", std::move(latency));
    // Named `*_ms` so bench_compare.py picks the block up automatically.
    Json breakdown = Json::Object();
    for (const Segment& segment : segments) {
      breakdown.Set(std::string(segment.label) + "_p50",
                    Json::Number(segment.p50));
      breakdown.Set(std::string(segment.label) + "_p99",
                    Json::Number(segment.p99));
    }
    bench.Set("daemon_breakdown_ms", std::move(breakdown));
    bench.Set("breakdown_coverage", Json::Number(breakdown_coverage));
    std::ofstream file(out);
    file << bench.Dump() << "\n";
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
  }
  return incorrect == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
