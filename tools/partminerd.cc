// partminerd — long-lived partition-mining service daemon.
//
//   partminerd --input=db.lg [--support=0.05] [--k=4] [--threads=N]
//              (--socket=/path/daemon.sock | --stdio)
//              [--queue-cap=4096] [--batch-max=256]
//              [--snapshot-prefix=/path/snap] [--num-labels=20]
//              [--metrics=metrics.json]
//              [--fault-read=SPEC] [--fault-write=SPEC] [--fault-alloc=SPEC]
//              [--fault-seed=S]
//   partminerd --restore=/path/snap (--socket=... | --stdio) [...]
//
// Loads the database, partitions and mines it once, then keeps the
// IncPartMiner state resident and serves the newline-delimited JSON
// protocol of DESIGN.md section 12: `update` (batched edits, bounded queue
// with overload rejection), `query` (frequent-pattern retrieval /
// containment), `snapshot` (state_io v2 checkpoint), `metrics`, `sync`,
// `ping`, `shutdown`. --restore resumes from a `snapshot` pair instead of
// re-mining from scratch.
//
// Fault SPECs (testing): once:N (fail the (N+1)-th op), n:START:COUNT, or
// p:PROB — scripted/probabilistic storage faults on the resident snapshot
// and admission paths; see DESIGN.md section 12.5.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/parse.h"
#include "core/part_miner.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "service/daemon.h"
#include "service/session.h"
#include "storage/fault_injector.h"

namespace {

using namespace partminer;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "warning: ignoring stray argument '%s'\n",
                   arg.c_str());
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: partminerd (--input=db.lg | --restore=prefix) "
      "(--socket=path | --stdio) [--support=0.05] [--k=2] [--threads=N] "
      "[--queue-cap=4096] [--batch-max=256] [--snapshot-prefix=path] "
      "[--num-labels=20] [--metrics=out.json] "
      "[--fault-read|--fault-write|--fault-alloc=once:N|n:S:C|p:P] "
      "[--fault-seed=S]\n");
  return 2;
}

/// Validated numeric flag: exits with a usage error on garbage like
/// --threads=eight instead of silently mining with the default.
bool IntFlag(const std::map<std::string, std::string>& flags,
             const std::string& key, int fallback, int* out) {
  const std::string raw = Get(flags, key, "");
  if (raw.empty()) {
    *out = fallback;
    return true;
  }
  if (!ParseInt32(raw, out)) {
    std::fprintf(stderr, "error: --%s=%s is not an integer\n", key.c_str(),
                 raw.c_str());
    return false;
  }
  return true;
}

bool ArmFault(FaultInjector* injector, FaultInjector::Op op,
              const std::string& spec_name, const std::string& spec) {
  if (spec.empty()) return true;
  const auto fail = [&]() {
    std::fprintf(stderr,
                 "error: --%s=%s (want once:N, n:START:COUNT, or p:PROB)\n",
                 spec_name.c_str(), spec.c_str());
    return false;
  };
  if (spec.rfind("once:", 0) == 0) {
    int after = 0;
    if (!ParseInt32(spec.substr(5), &after) || after < 0) return fail();
    injector->FailOnce(op, after);
    return true;
  }
  if (spec.rfind("n:", 0) == 0) {
    const size_t second = spec.find(':', 2);
    if (second == std::string::npos) return fail();
    int start = 0, count = 0;
    if (!ParseInt32(spec.substr(2, second - 2), &start) ||
        !ParseInt32(spec.substr(second + 1), &count) || start < 0 ||
        count <= 0) {
      return fail();
    }
    injector->FailN(op, start, count);
    return true;
  }
  if (spec.rfind("p:", 0) == 0) {
    double p = 0;
    if (!ParseDouble(spec.substr(2), &p) || p < 0 || p > 1) return fail();
    injector->SetProbability(op, p);
    return true;
  }
  return fail();
}

int Main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  for (const auto& [key, value] : flags) {
    (void)value;
    static const char* known[] = {
        "input",      "restore",   "socket",          "stdio",
        "support",    "k",         "threads",         "queue-cap",
        "batch-max",  "snapshot-prefix", "num-labels", "metrics",
        "fault-read", "fault-write", "fault-alloc",   "fault-seed"};
    bool recognized = false;
    for (const char* k : known) recognized = recognized || key == k;
    if (!recognized) {
      std::fprintf(stderr, "warning: unrecognized flag --%s (ignored)\n",
                   key.c_str());
    }
  }

  const std::string input = Get(flags, "input", "");
  const std::string restore = Get(flags, "restore", "");
  const std::string socket_path = Get(flags, "socket", "");
  const bool stdio = flags.count("stdio") > 0;
  if ((input.empty() == restore.empty()) ||
      (socket_path.empty() && !stdio)) {
    return Usage();
  }

  int k = 2, threads = 0, queue_cap = 4096, batch_max = 256, num_labels = 20;
  int fault_seed = 1;
  if (!IntFlag(flags, "k", 2, &k) || !IntFlag(flags, "threads", 0, &threads) ||
      !IntFlag(flags, "queue-cap", 4096, &queue_cap) ||
      !IntFlag(flags, "batch-max", 256, &batch_max) ||
      !IntFlag(flags, "num-labels", 20, &num_labels) ||
      !IntFlag(flags, "fault-seed", 1, &fault_seed)) {
    return Usage();
  }
  const std::string support_raw = Get(flags, "support", "0.05");
  double support = 0;
  if (!ParseDouble(support_raw, &support) || support <= 0) {
    std::fprintf(stderr, "error: --support=%s must be a positive number\n",
                 support_raw.c_str());
    return Usage();
  }

  service::SessionOptions session_options;
  session_options.num_labels = num_labels;
  session_options.miner.partition.k = std::max(1, k);
  session_options.miner.unit_mining_threads = std::max(0, threads);
  if (support >= 1.0) {
    session_options.miner.min_support_count = static_cast<int>(support);
  } else {
    session_options.miner.min_support_fraction = support;
    session_options.miner.min_support_count = -1;
  }

  service::MinerSession session(session_options);
  FaultInjector injector(static_cast<uint64_t>(fault_seed));
  const bool faults =
      flags.count("fault-read") + flags.count("fault-write") +
          flags.count("fault-alloc") >
      0;
  if (faults) {
    if (!ArmFault(&injector, FaultInjector::Op::kRead, "fault-read",
                  Get(flags, "fault-read", "")) ||
        !ArmFault(&injector, FaultInjector::Op::kWrite, "fault-write",
                  Get(flags, "fault-write", "")) ||
        !ArmFault(&injector, FaultInjector::Op::kAlloc, "fault-alloc",
                  Get(flags, "fault-alloc", ""))) {
      return Usage();
    }
    session.set_fault_injector(&injector);
  }

  Status status;
  if (!restore.empty()) {
    status = session.InitFromSnapshot(restore + ".db.lg", restore + ".state");
  } else {
    GraphDatabase db;
    status = ReadGraphDatabaseFile(input, &db);
    if (status.ok()) status = session.Init(std::move(db));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "partminerd: resident (%d graphs, support %d, %d patterns, "
               "k=%d, threads=%d)\n",
               session.graph_count(), session.resident_support(),
               session.pattern_count(), k, threads);

  service::DaemonOptions daemon_options;
  daemon_options.queue_cap_edits = queue_cap;
  daemon_options.batch_max_edits = batch_max;
  daemon_options.snapshot_prefix = Get(flags, "snapshot-prefix", "");
  service::Daemon daemon(&session, daemon_options);

  if (stdio) {
    daemon.ServeStream(std::cin, std::cout);
  } else {
    std::fprintf(stderr, "partminerd: listening on %s\n",
                 socket_path.c_str());
    status = daemon.ServeUnixSocket(socket_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  const std::string metrics_path = Get(flags, "metrics", "");
  if (!metrics_path.empty() &&
      !obs::MetricRegistry::Global().WriteJsonFile(metrics_path)) {
    return 1;
  }
  std::fprintf(stderr, "partminerd: bye (epoch %llu)\n",
               static_cast<unsigned long long>(session.epoch()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
