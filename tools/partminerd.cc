// partminerd — long-lived partition-mining service daemon.
//
//   partminerd --input=db.lg [--support=0.05] [--k=4] [--threads=N]
//              (--socket=/path/daemon.sock | --stdio)
//              [--queue-cap=4096] [--batch-max=256]
//              [--snapshot-prefix=/path/snap] [--num-labels=20]
//              [--pool-frames=N] [--pool-partitions=N] [--writer-threads=N]
//              [--writeback-queue=N] [--storage-engine=swizzle|classic]
//              [--metrics=metrics.json] [--trace=trace.json]
//              [--slow-ms=MS] [--flight-dump=flight.json]
//              [--fault-read=SPEC] [--fault-write=SPEC] [--fault-alloc=SPEC]
//              [--fault-seed=S]
//   partminerd --restore=/path/snap (--socket=... | --stdio) [...]
//
// Loads the database, partitions and mines it once, then keeps the
// IncPartMiner state resident and serves the newline-delimited JSON
// protocol of DESIGN.md section 12: `update` (batched edits, bounded queue
// with overload rejection), `query` (frequent-pattern retrieval /
// containment), `snapshot` (state_io v2 checkpoint), `metrics`, `health`,
// `dump` (flight recorder), `sync`, `ping`, `shutdown`. --restore resumes
// from a `snapshot` pair instead of re-mining from scratch.
//
// Observability (DESIGN.md section 13):
//  - --trace=PATH records Chrome trace-event spans (request lifecycle +
//    batcher rounds) and writes them on clean shutdown.
//  - --slow-ms=MS logs requests slower than MS and leaves flight events.
//  - --flight-dump=PATH dumps the flight recorder there on SIGSEGV/SIGABRT
//    and on clean shutdown (stderr when no path is given at crash time).
//
// Fault SPECs (testing): once:N (fail the (N+1)-th op), n:START:COUNT, or
// p:PROB — scripted/probabilistic storage faults on the resident snapshot
// and admission paths; see DESIGN.md section 12.5.

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/flags.h"
#include "common/parse.h"
#include "core/part_miner.h"
#include "graph/graph_io.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "service/session.h"
#include "storage/fault_injector.h"

namespace {

using namespace partminer;

/// Fixed at startup so the crash handler never touches std::string. Empty
/// means "dump to stderr".
char g_flight_dump_path[512] = {0};

/// Async-signal-safe post-mortem: on SIGSEGV/SIGABRT dump the flight
/// recorder (write(2)-only path, no allocation), then re-raise with the
/// default disposition so the process still dies with the original signal.
void CrashDumpHandler(int sig) {
  int fd = STDERR_FILENO;
  if (g_flight_dump_path[0] != '\0') {
    const int out =
        ::open(g_flight_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out >= 0) fd = out;
  }
  obs::FlightRecorder::Global().DumpToFd(fd);
  if (fd != STDERR_FILENO) ::close(fd);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void InstallCrashDumpHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashDumpHandler;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: partminerd (--input=db.lg | --restore=prefix) "
      "(--socket=path | --stdio) [--support=0.05] [--k=2] [--threads=N] "
      "[--queue-cap=4096] [--batch-max=256] [--snapshot-prefix=path] "
      "[--num-labels=20] [--metrics=out.json] [--trace=out.json] "
      "[--pool-frames=N] [--pool-partitions=N] [--writer-threads=N] "
      "[--writeback-queue=N] [--storage-engine=swizzle|classic] "
      "[--slow-ms=MS] [--flight-dump=out.json] "
      "[--fault-read|--fault-write|--fault-alloc=once:N|n:S:C|p:P] "
      "[--fault-seed=S]\n");
  return 2;
}

bool ArmFault(FaultInjector* injector, FaultInjector::Op op,
              const std::string& spec_name, const std::string& spec) {
  if (spec.empty()) return true;
  const auto fail = [&]() {
    std::fprintf(stderr,
                 "error: --%s=%s (want once:N, n:START:COUNT, or p:PROB)\n",
                 spec_name.c_str(), spec.c_str());
    return false;
  };
  if (spec.rfind("once:", 0) == 0) {
    int after = 0;
    if (!ParseInt32(spec.substr(5), &after) || after < 0) return fail();
    injector->FailOnce(op, after);
    return true;
  }
  if (spec.rfind("n:", 0) == 0) {
    const size_t second = spec.find(':', 2);
    if (second == std::string::npos) return fail();
    int start = 0, count = 0;
    if (!ParseInt32(spec.substr(2, second - 2), &start) ||
        !ParseInt32(spec.substr(second + 1), &count) || start < 0 ||
        count <= 0) {
      return fail();
    }
    injector->FailN(op, start, count);
    return true;
  }
  if (spec.rfind("p:", 0) == 0) {
    double p = 0;
    if (!ParseDouble(spec.substr(2), &p) || p < 0 || p > 1) return fail();
    injector->SetProbability(op, p);
    return true;
  }
  return fail();
}

int Main(int argc, char** argv) {
  const flags::FlagMap flag_map = flags::Parse(argc, argv);
  flags::WarnUnknown(flag_map,
                     {"input", "restore", "socket", "stdio", "support", "k",
                      "threads", "queue-cap", "batch-max", "snapshot-prefix",
                      "num-labels", "metrics", "trace", "slow-ms",
                      "flight-dump", "fault-read", "fault-write",
                      "fault-alloc", "fault-seed", "pool-frames",
                      "pool-partitions", "writer-threads", "writeback-queue",
                      "storage-engine"});

  // Pool sizing for every disk-backed pool the service constructs from
  // here on (ADI paths, storage probes) — set once, process-wide.
  if (!flags::PoolSizingFlags(flag_map, &MutableDefaultPoolSizing())) {
    return Usage();
  }

  const std::string input = flags::Get(flag_map, "input", "");
  const std::string restore = flags::Get(flag_map, "restore", "");
  const std::string socket_path = flags::Get(flag_map, "socket", "");
  const bool stdio = flag_map.count("stdio") > 0;
  if ((input.empty() == restore.empty()) ||
      (socket_path.empty() && !stdio)) {
    return Usage();
  }

  int k = 2, threads = 0, queue_cap = 4096, batch_max = 256, num_labels = 20;
  int fault_seed = 1;
  double support = 0.05, slow_ms = 0;
  if (!flags::IntFlag(flag_map, "k", 2, &k) ||
      !flags::IntFlag(flag_map, "threads", 0, &threads) ||
      !flags::IntFlag(flag_map, "queue-cap", 4096, &queue_cap) ||
      !flags::IntFlag(flag_map, "batch-max", 256, &batch_max) ||
      !flags::IntFlag(flag_map, "num-labels", 20, &num_labels) ||
      !flags::IntFlag(flag_map, "fault-seed", 1, &fault_seed) ||
      !flags::DoubleFlag(flag_map, "support", 0.05, &support) ||
      !flags::DoubleFlag(flag_map, "slow-ms", 0, &slow_ms)) {
    return Usage();
  }
  if (support <= 0) {
    std::fprintf(stderr, "error: --support must be a positive number\n");
    return Usage();
  }

  const std::string flight_dump = flags::Get(flag_map, "flight-dump", "");
  if (flight_dump.size() + 1 > sizeof(g_flight_dump_path)) {
    std::fprintf(stderr, "error: --flight-dump path too long\n");
    return Usage();
  }
  std::memcpy(g_flight_dump_path, flight_dump.c_str(),
              flight_dump.size() + 1);
  InstallCrashDumpHandlers();

  const std::string trace_path = flags::Get(flag_map, "trace", "");
  if (!trace_path.empty()) obs::Tracer::Global().Start();

  service::SessionOptions session_options;
  session_options.num_labels = num_labels;
  session_options.miner.partition.k = std::max(1, k);
  session_options.miner.unit_mining_threads = std::max(0, threads);
  if (support >= 1.0) {
    session_options.miner.min_support_count = static_cast<int>(support);
  } else {
    session_options.miner.min_support_fraction = support;
    session_options.miner.min_support_count = -1;
  }

  service::MinerSession session(session_options);
  FaultInjector injector(static_cast<uint64_t>(fault_seed));
  const bool faults =
      flag_map.count("fault-read") + flag_map.count("fault-write") +
          flag_map.count("fault-alloc") >
      0;
  if (faults) {
    if (!ArmFault(&injector, FaultInjector::Op::kRead, "fault-read",
                  flags::Get(flag_map, "fault-read", "")) ||
        !ArmFault(&injector, FaultInjector::Op::kWrite, "fault-write",
                  flags::Get(flag_map, "fault-write", "")) ||
        !ArmFault(&injector, FaultInjector::Op::kAlloc, "fault-alloc",
                  flags::Get(flag_map, "fault-alloc", ""))) {
      return Usage();
    }
    session.set_fault_injector(&injector);
  }

  Status status;
  if (!restore.empty()) {
    status = session.InitFromSnapshot(restore + ".db.lg", restore + ".state");
  } else {
    GraphDatabase db;
    status = ReadGraphDatabaseFile(input, &db);
    if (status.ok()) status = session.Init(std::move(db));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "partminerd: resident (%d graphs, support %d, %d patterns, "
               "k=%d, threads=%d)\n",
               session.graph_count(), session.resident_support(),
               session.pattern_count(), k, threads);

  service::DaemonOptions daemon_options;
  daemon_options.queue_cap_edits = queue_cap;
  daemon_options.batch_max_edits = batch_max;
  daemon_options.snapshot_prefix = flags::Get(flag_map, "snapshot-prefix", "");
  daemon_options.slow_ms = slow_ms;
  service::Daemon daemon(&session, daemon_options);

  if (stdio) {
    daemon.ServeStream(std::cin, std::cout);
  } else {
    std::fprintf(stderr, "partminerd: listening on %s\n",
                 socket_path.c_str());
    status = daemon.ServeUnixSocket(socket_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  const std::string metrics_path = flags::Get(flag_map, "metrics", "");
  if (!metrics_path.empty() &&
      !obs::MetricRegistry::Global().WriteJsonFile(metrics_path)) {
    return 1;
  }
  if (!trace_path.empty()) {
    obs::Tracer::Global().Stop();
    if (!obs::Tracer::Global().WriteChromeTraceFile(trace_path)) return 1;
  }
  if (!flight_dump.empty()) {
    // Clean-shutdown dump reuses the crash path's writer so the file format
    // is identical either way.
    const int fd = ::open(flight_dump.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      std::fprintf(stderr, "error: cannot write %s\n", flight_dump.c_str());
      return 1;
    }
    obs::FlightRecorder::Global().DumpToFd(fd);
    ::close(fd);
  }
  std::fprintf(stderr, "partminerd: bye (epoch %llu)\n",
               static_cast<unsigned long long>(session.epoch()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
