#!/bin/sh
# AddressSanitizer + UndefinedBehaviorSanitizer sweep of the whole test
# suite: heap misuse in the bitset/TID-list arithmetic, the lazily cached
# label index, the sharded minimality cache, and everything else ctest
# covers. Builds into build-asan/ (kept separate from the regular build;
# ASan is ABI-incompatible with it) and runs the full ctest suite under
# options that fail on the first report. Companion to tools/run_tsan.sh —
# thread and address sanitizers cannot share a build.
#
# Usage: tools/run_asan.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DPARTMINER_SANITIZE=address;undefined"
cmake --build build-asan -j "$(nproc)"

ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 strict_string_checks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure "$@"
