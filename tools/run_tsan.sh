#!/bin/sh
# ThreadSanitizer sweep of the concurrent paths: work-stealing pool,
# parallel gSpan/Gaston subtree mining, PartMiner/IncPartMiner unit
# scheduling, and the sharded buffer pool. Builds into build-tsan/ (kept
# separate from the regular build; TSan is ABI-incompatible with it) and
# runs the full ctest suite under TSAN_OPTIONS that fail on any report.
#
# Usage: tools/run_tsan.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPARTMINER_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)"

TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir build-tsan --output-on-failure "$@"
