#include "core/verify.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/merge_join.h"
#include "miner/engine.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(VerifyExactTest, FiltersAndRecountsStaleCandidates) {
  Rng rng(9);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 12, 7, 3, 3, 2);
  GSpanMiner miner;
  MinerOptions loose;
  loose.min_support = 2;
  const PatternSet at2 = miner.Mine(db, loose);

  // Mark everything stale and verify at support 4: result must equal direct
  // mining at 4 with exact supports.
  PatternSet candidates;
  for (const PatternInfo& p : at2.patterns()) {
    PatternInfo q = p;
    q.exact_tids = false;
    q.support = 0;     // Garbage on purpose.
    candidates.Upsert(std::move(q));
  }
  VerifyStats stats;
  const PatternSet verified = VerifyExact(db, candidates, 4, &stats);

  MinerOptions strict;
  strict.min_support = 4;
  const PatternSet expected = miner.Mine(db, strict);
  EXPECT_EQ(expected.SortedCodeStrings(), verified.SortedCodeStrings());
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = verified.Find(p.code);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(p.support, q->support);
    EXPECT_EQ(p.tids, q->tids);
  }
  EXPECT_GT(stats.patterns_in, stats.patterns_kept);
}

TEST(VerifyExactTest, TrustsExactCandidates) {
  Rng rng(10);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 6, 2, 3, 2);
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 3;
  const PatternSet mined = miner.Mine(db, options);  // exact_tids set.
  VerifyStats stats;
  const PatternSet verified = VerifyExact(db, mined, 3, &stats);
  EXPECT_EQ(mined.SortedCodeStrings(), verified.SortedCodeStrings());
  // Trusted candidates trigger no counting at all.
  EXPECT_EQ(stats.graphs_examined, 0);
  EXPECT_EQ(stats.full_scans, 0);
}

TEST(VerifyDeltaTest, MatchesFromScratchAfterMutation) {
  Rng rng(11);
  GraphDatabase db = testutil::RandomDatabase(&rng, 14, 7, 3, 3, 2);
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 3;
  const PatternSet before = miner.Mine(db, options);

  // Drop one edge label change into three graphs.
  std::vector<int> updated = {1, 5, 9};
  for (const int gi : updated) {
    Graph& g = db.mutable_graph(gi);
    const EdgeEntry e = g.UndirectedEdges()[0];
    g.SetEdgeLabel(e.from, e.to, e.label + 1);
  }

  PatternSet candidates;
  for (const PatternInfo& p : before.patterns()) {
    PatternInfo q = p;
    q.exact_tids = false;
    candidates.Upsert(std::move(q));
  }
  // Also seed the fresh single edges so new patterns are reachable.
  const PatternSet fresh_edges = FrequentSingleEdges(db, 3);
  for (const PatternInfo& p : fresh_edges.patterns()) {
    if (!candidates.Contains(p.code)) candidates.Upsert(p);
  }

  VerifyStats stats;
  const PatternSet after =
      VerifyDelta(db, candidates, before, updated, 3, &stats);
  // Delta verification is exact for every candidate it was given.
  const PatternSet expected = miner.Mine(db, options);
  for (const PatternInfo& p : after.patterns()) {
    const PatternInfo* q = expected.Find(p.code);
    ASSERT_NE(q, nullptr) << p.code.ToString();
    EXPECT_EQ(p.support, q->support);
    EXPECT_EQ(p.tids, q->tids);
  }
}

TEST(ProjectCodeTest, EnumeratesAllEmbeddings) {
  // Triangle with uniform labels: 6 automorphic embeddings of its own code.
  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddEdge(0, 1, 0);
  triangle.AddEdge(1, 2, 0);
  triangle.AddEdge(2, 0, 0);
  GraphDatabase db;
  db.Add(triangle);

  DfsCode code;
  code.Append({0, 1, 0, 0, 0});
  code.Append({1, 2, 0, 0, 0});
  code.Append({2, 0, 0, 0, 0});
  std::deque<engine::Embedding> arena;
  const engine::Projected projected =
      engine::ProjectCode(code, db, {0}, &arena);
  EXPECT_EQ(projected.size(), 6u);
  EXPECT_EQ(engine::SupportOf(projected), 1);

  // A single-edge code in the triangle: 6 oriented embeddings.
  DfsCode edge;
  edge.Append({0, 1, 0, 0, 0});
  std::deque<engine::Embedding> arena2;
  EXPECT_EQ(engine::ProjectCode(edge, db, {0}, &arena2).size(), 6u);
}

TEST(ProjectCodeTest, RespectsGraphRestriction) {
  GraphDatabase db;
  for (int i = 0; i < 3; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 0);
    db.Add(g);
  }
  DfsCode edge;
  edge.Append({0, 1, 0, 0, 1});
  std::deque<engine::Embedding> arena;
  const engine::Projected projected =
      engine::ProjectCode(edge, db, {0, 2}, &arena);
  EXPECT_EQ(engine::TidsOf(projected), (std::vector<int>{0, 2}));
}

}  // namespace
}  // namespace partminer
