#ifndef PARTMINER_TESTS_TEST_UTIL_H_
#define PARTMINER_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace partminer {
namespace testutil {

/// Random connected labeled graph: a random spanning tree over `vertices`
/// vertices plus `extra_edges` random chords (duplicates skipped). Labels
/// are uniform over [0, vertex_labels) and [0, edge_labels).
inline Graph RandomConnectedGraph(Rng* rng, int vertices, int extra_edges,
                                  int vertex_labels, int edge_labels) {
  Graph g;
  for (int i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng->Uniform(vertex_labels)));
  }
  for (int v = 1; v < vertices; ++v) {
    const VertexId u = static_cast<VertexId>(rng->Uniform(v));
    g.AddEdge(u, v, static_cast<Label>(rng->Uniform(edge_labels)));
  }
  for (int i = 0; i < extra_edges; ++i) {
    const VertexId u = static_cast<VertexId>(rng->Uniform(vertices));
    const VertexId v = static_cast<VertexId>(rng->Uniform(vertices));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v, static_cast<Label>(rng->Uniform(edge_labels)));
  }
  return g;
}

/// Random database of connected graphs.
inline GraphDatabase RandomDatabase(Rng* rng, int graphs, int vertices,
                                    int extra_edges, int vertex_labels,
                                    int edge_labels) {
  GraphDatabase db;
  for (int i = 0; i < graphs; ++i) {
    const int n = 2 + static_cast<int>(rng->Uniform(vertices - 1));
    const int chords = static_cast<int>(rng->Uniform(extra_edges + 1));
    db.Add(RandomConnectedGraph(rng, n, chords, vertex_labels, edge_labels));
  }
  return db;
}

/// Applies a random vertex permutation, producing an isomorphic copy.
inline Graph Permuted(Rng* rng, const Graph& g) {
  const int n = g.VertexCount();
  std::vector<VertexId> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng->Uniform(i + 1)]);
  }
  Graph out(n);
  for (VertexId v = 0; v < n; ++v) {
    out.set_vertex_label(perm[v], g.vertex_label(v));
  }
  for (const EdgeEntry& e : g.UndirectedEdges()) {
    out.AddEdge(perm[e.from], perm[e.to], e.label);
  }
  return out;
}

/// The example graph of Figure 1 in the paper: vertex labels {0,0,1,2},
/// edges (v0,v1,a) (v1,v2,a) (v1,v3,c) (v3,v0,b) with a=0, b=1, c=2.
inline Graph PaperFigure1Graph() {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdge(0, 1, 0);  // a
  g.AddEdge(1, 2, 0);  // a
  g.AddEdge(1, 3, 2);  // c
  g.AddEdge(3, 0, 1);  // b
  return g;
}

}  // namespace testutil
}  // namespace partminer

#endif  // PARTMINER_TESTS_TEST_UTIL_H_
