// Stress / failure-injection tests: degenerate partitions and boundary
// parameters that unit tests miss. The long many-round incremental cases
// live in stress_slow_test.cc under the `slow` ctest label.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

void ExpectSamePatterns(const PatternSet& expected, const PatternSet& actual,
                        const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what;
    EXPECT_EQ(p.support, q->support) << what << " " << p.code.ToString();
  }
}

TEST(StressTest, MoreUnitsThanVertices) {
  // Tiny graphs with k=6 units: most units end up empty; everything must
  // still be exact.
  GraphDatabase db;
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    db.Add(testutil::RandomConnectedGraph(&rng, 3, 1, 2, 2));
  }
  PartMinerOptions options;
  options.min_support_count = 3;
  options.partition.k = 6;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 3;
  ExpectSamePatterns(gspan.Mine(db, full), result.patterns, "k>vertices");
}

TEST(StressTest, SingleGraphDatabase) {
  Rng rng(4);
  GraphDatabase db;
  db.Add(testutil::RandomConnectedGraph(&rng, 10, 5, 3, 2));
  PartMinerOptions options;
  options.min_support_count = 1;
  options.partition.k = 2;
  options.max_edges = 4;  // Bound the lattice of the single graph.
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 1;
  full.max_edges = 4;
  ExpectSamePatterns(gspan.Mine(db, full), result.patterns, "single graph");
}

TEST(StressTest, EmptyUpdateLogIsIdentity) {
  GeneratorParams params;
  params.num_graphs = 10;
  params.avg_edges = 8;
  params.num_labels = 4;
  params.num_kernels = 4;
  GraphDatabase db = GenerateDatabase(params);
  PartMinerOptions options;
  options.min_support_count = 3;
  options.partition.k = 2;
  PartMiner miner(options);
  const PartMinerResult before = miner.Mine(db);

  IncPartMiner inc;
  UpdateLog empty;
  const IncPartMinerResult r = inc.Update(&miner, db, empty);
  ExpectSamePatterns(before.patterns, r.patterns, "empty update");
  EXPECT_TRUE(r.remined_units.Empty());
  EXPECT_EQ(r.fi.size(), 0);
  EXPECT_EQ(r.if_.size(), 0);
}

TEST(StressTest, HighSupportYieldsEmptyResultCleanly) {
  Rng rng(5);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 6, 5, 2, 5, 3);
  PartMinerOptions options;
  options.min_support_count = 100;  // Above the database size.
  options.partition.k = 3;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);
  EXPECT_EQ(result.patterns.size(), 0);
}

}  // namespace
}  // namespace partminer
