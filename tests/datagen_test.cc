#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "graph/canonical.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

GeneratorParams SmallParams(uint64_t seed = 1) {
  GeneratorParams p;
  p.num_graphs = 30;
  p.avg_edges = 12;
  p.num_labels = 6;
  p.avg_kernel_edges = 3;
  p.num_kernels = 10;
  p.seed = seed;
  return p;
}

TEST(GeneratorTest, ProducesRequestedCount) {
  const GraphDatabase db = GenerateDatabase(SmallParams());
  EXPECT_EQ(db.size(), 30);
}

TEST(GeneratorTest, GraphsAreConnectedAndNonEmpty) {
  const GraphDatabase db = GenerateDatabase(SmallParams(3));
  for (int i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(db.graph(i).IsConnected()) << i;
    EXPECT_GT(db.graph(i).EdgeCount(), 0) << i;
  }
}

TEST(GeneratorTest, AverageSizeTracksT) {
  GeneratorParams p = SmallParams(5);
  p.num_graphs = 100;
  p.avg_edges = 20;
  const GraphDatabase db = GenerateDatabase(p);
  const double avg = static_cast<double>(db.TotalEdges()) / db.size();
  EXPECT_GT(avg, 12.0);
  EXPECT_LT(avg, 30.0);
}

TEST(GeneratorTest, DeterministicBySeed) {
  const GraphDatabase a = GenerateDatabase(SmallParams(9));
  const GraphDatabase b = GenerateDatabase(SmallParams(9));
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i).EdgeCount(), b.graph(i).EdgeCount());
    EXPECT_EQ(MinimumDfsCode(a.graph(i)), MinimumDfsCode(b.graph(i)));
  }
  const GraphDatabase c = GenerateDatabase(SmallParams(10));
  bool any_different = false;
  for (int i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a.graph(i).EdgeCount() != c.graph(i).EdgeCount() ||
        MinimumDfsCode(a.graph(i)) != MinimumDfsCode(c.graph(i))) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(GeneratorTest, PlantedKernelsMakePatternsFrequent) {
  // With L kernels of popularity-skewed sampling, mining at a moderate
  // support must find patterns beyond single edges.
  GeneratorParams p = SmallParams(11);
  p.num_graphs = 60;
  const GraphDatabase db = GenerateDatabase(p);
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = static_cast<int>(0.1 * db.size());
  options.max_edges = 4;
  const PatternSet patterns = miner.Mine(db, options);
  EXPECT_GT(patterns.MaxEdgeCount(), 1);
}

TEST(GeneratorTest, TagMatchesPaperNaming) {
  GeneratorParams p;
  p.num_graphs = 50000;
  p.avg_edges = 20;
  p.num_labels = 20;
  p.num_kernels = 200;
  p.avg_kernel_edges = 5;
  EXPECT_EQ(p.Tag(), "D50000T20N20L200I5");
}

TEST(HotspotTest, AssignsRequestedFraction) {
  GraphDatabase db = GenerateDatabase(SmallParams(2));
  AssignUpdateHotspots(&db, 0.3, 5);
  int hot = 0, total = 0;
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      ++total;
      if (g.update_freq(v) > 0) ++hot;
    }
  }
  const double fraction = static_cast<double>(hot) / total;
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.45);
}

TEST(UpdateGeneratorTest, FractionControlsUpdatedGraphs) {
  GraphDatabase db = GenerateDatabase(SmallParams(4));
  UpdateOptions upd;
  upd.fraction_graphs = 0.5;
  upd.seed = 8;
  const UpdateLog log = ApplyUpdates(&db, 6, upd);
  EXPECT_GT(log.updated_graphs.size(), 5u);
  EXPECT_LT(log.updated_graphs.size(), 25u);
  EXPECT_FALSE(log.touched_vertices.empty());
}

TEST(UpdateGeneratorTest, RelabelPreservesTopology) {
  GraphDatabase db = GenerateDatabase(SmallParams(6));
  std::vector<int> edges_before, vertices_before;
  for (int i = 0; i < db.size(); ++i) {
    edges_before.push_back(db.graph(i).EdgeCount());
    vertices_before.push_back(db.graph(i).VertexCount());
  }
  UpdateOptions upd;
  upd.fraction_graphs = 1.0;
  upd.kinds = {UpdateKind::kRelabel};
  upd.seed = 9;
  ApplyUpdates(&db, 6, upd);
  for (int i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.graph(i).EdgeCount(), edges_before[i]);
    EXPECT_EQ(db.graph(i).VertexCount(), vertices_before[i]);
  }
}

TEST(UpdateGeneratorTest, AddVertexGrowsGraphsAndStaysConnected) {
  GraphDatabase db = GenerateDatabase(SmallParams(7));
  UpdateOptions upd;
  upd.fraction_graphs = 1.0;
  upd.updates_per_graph = 3;
  upd.kinds = {UpdateKind::kAddVertex};
  upd.seed = 10;
  const UpdateLog log = ApplyUpdates(&db, 6, upd);
  for (const int gi : log.updated_graphs) {
    EXPECT_TRUE(db.graph(gi).IsConnected()) << gi;
  }
}

TEST(UpdateGeneratorTest, TouchedVerticesGetFrequencyBumps) {
  GraphDatabase db = GenerateDatabase(SmallParams(8));
  UpdateOptions upd;
  upd.fraction_graphs = 0.5;
  upd.seed = 11;
  const UpdateLog log = ApplyUpdates(&db, 6, upd);
  for (const auto& [gi, v] : log.touched_vertices) {
    EXPECT_GT(db.graph(gi).update_freq(v), 0u);
  }
}

}  // namespace
}  // namespace partminer
