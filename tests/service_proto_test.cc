// Protocol-level golden tests for the partminerd request engine: every
// request line in the table gets a byte-exact response from an in-process
// daemon (the same HandleLine the --stdio and unix-socket transports pump),
// malformed input of every shape produces a structured error — never a
// crash — and the stream server honors framing and shutdown.

#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "service/daemon.h"
#include "service/json.h"
#include "service/session.h"

namespace partminer {
namespace service {
namespace {

/// Fixed handcrafted database: four graphs sharing the path 0-5-1-7-2
/// (vertex labels 0,1,2; edge labels 5,7), one graph with an extra 9-edge
/// tail. At support 3 exactly three patterns are frequent and every reply
/// below — digest included — is deterministic.
GraphDatabase GoldenDatabase() {
  GraphDatabase db;
  for (int i = 0; i < 4; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddVertex(2);
    g.AddEdge(0, 1, 5);
    g.AddEdge(1, 2, 7);
    if (i == 0) {
      g.AddVertex(3);
      g.AddEdge(2, 3, 9);
    }
    db.Add(std::move(g));
  }
  return db;
}

class ServiceProtoTest : public ::testing::Test {
 protected:
  ServiceProtoTest() : session_(MakeOptions()), daemon_(&session_, {}) {
    // The flight recorder is process-global; start each scenario from an
    // empty ring so the `dump` golden row stays byte-exact.
    obs::FlightRecorder::Global().Reset();
    EXPECT_TRUE(session_.Init(GoldenDatabase()).ok());
  }

  static SessionOptions MakeOptions() {
    SessionOptions options;
    options.miner.min_support_count = 3;
    options.miner.partition.k = 2;
    return options;
  }

  std::string Handle(const std::string& line) {
    bool shutdown = false;
    return daemon_.HandleLine(line, &shutdown);
  }

  MinerSession session_;
  Daemon daemon_;
};

constexpr char kGoldenDigest[] = "9224405367592692117";

struct GoldenCase {
  const char* request;
  std::string expected;
};

TEST_F(ServiceProtoTest, GoldenTable) {
  const std::string digest = kGoldenDigest;
  const std::vector<GoldenCase> table = {
      // Malformed framing and envelopes: structured bad_request, never a
      // crash, id echoed only when it could be parsed.
      {"",
       R"({"ok":false,"error":{"code":"bad_request","message":"json parse )"
       R"(error at byte 0: unexpected end of input"}})"},
      {"{oops",
       R"({"ok":false,"error":{"code":"bad_request","message":"json parse )"
       R"(error at byte 1: expected '\"'"}})"},
      {"42",
       R"({"ok":false,"error":{"code":"bad_request","message":"request must )"
       R"(be an object"}})"},
      {"[1,2]",
       R"({"ok":false,"error":{"code":"bad_request","message":"request must )"
       R"(be an object"}})"},
      {R"({"cmd":"ping","id":{}})",
       R"({"ok":false,"error":{"code":"bad_request","message":"field 'id' )"
       R"(must be an integer or a string"}})"},
      {R"({"id":1})",
       R"({"id":1,"ok":false,"error":{"code":"bad_request","message":)"
       R"("missing string field 'cmd'"}})"},
      {R"({"id":2,"cmd":"warp"})",
       R"({"id":2,"ok":false,"error":{"code":"unknown_command","message":)"
       R"("unknown command 'warp'"}})"},
      // Bad query arguments.
      {R"({"id":3,"cmd":"query","support":"high"})",
       R"({"id":3,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("field 'support' must be a non-negative integer"}})"},
      {R"({"id":4,"cmd":"query","support":-2})",
       R"({"id":4,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("field 'support' must be a non-negative integer"}})"},
      {R"({"id":5,"cmd":"query","support":1})",
       R"({"id":5,"ok":false,"error":{"code":"out_of_range","message":)"
       R"("support 1 below the resident threshold 3 (the resident state )"
       R"x(only knows patterns at or above it)"}})x"},
      {R"({"id":6,"cmd":"query","limit":"all"})",
       R"({"id":6,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("field 'limit' must be an integer in [-1, 1000000]"}})"},
      // Bad update batches: whole-request rejection at parse time.
      {R"({"id":7,"cmd":"update"})",
       R"({"id":7,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("update requires an array field 'edits'"}})"},
      {R"({"id":8,"cmd":"update","edits":[]})",
       R"({"id":8,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("'edits' must be non-empty"}})"},
      {R"({"id":9,"cmd":"update","edits":[{"kind":"teleport","graph":0}]})",
       R"({"id":9,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("edits[0]: unknown edit kind 'teleport' (want relabel|relabel_edge)"
       R"x(|add_edge|add_vertex)"}})x"},
      {R"({"id":10,"cmd":"update","edits":[{"kind":"relabel","graph":99,)"
       R"("vertex":0,"label":1}]})",
       R"({"id":10,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"x("edits[0]: field 'graph' out of range [0, 4)"}})x"},
      {R"({"id":11,"cmd":"update","edits":[{"kind":"relabel","graph":0,)"
       R"("vertex":0,"label":-4}]})",
       R"({"id":11,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("edits[0]: labels must be non-negative"}})"},
      // Snapshot without a destination.
      {R"({"id":12,"cmd":"snapshot"})",
       R"({"id":12,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("no 'path' given and the daemon has no --snapshot-prefix"}})"},
      // Containment probes: unparseable pattern vs wrong type.
      {R"({"id":13,"cmd":"query","pattern":"not a graph"})",
       R"({"id":13,"ok":false,"error":{"code":"corruption","message":)"
       R"("parsing containment pattern: line 1 ('not a graph'): unknown )"
       R"(record tag 'not'"}})"},
      {R"({"id":14,"cmd":"query","pattern":42})",
       R"({"id":14,"ok":false,"error":{"code":"invalid_argument","message":)"
       R"("field 'pattern' must be a gSpan-format string"}})"},
      // Success shapes, digest pinned: the fixture is fully deterministic.
      {R"({"id":15,"cmd":"ping"})",
       R"({"id":15,"ok":true,"result":{"epoch":0,"graphs":4,"patterns":3,)"
       R"("support":3,"queue_depth":0}})"},
      {R"({"id":16,"cmd":"query"})",
       R"({"id":16,"ok":true,"result":{"epoch":0,"digest":")" + digest +
       R"(","support":3,"count":3}})"},
      {R"({"id":17,"cmd":"query","limit":2})",
       R"({"id":17,"ok":true,"result":{"epoch":0,"digest":")" + digest +
       R"x(","support":3,"count":3,"patterns":[{"code":"(0,1,0,5,1)",)x"
       R"x("support":4},{"code":"(0,1,0,5,1)(1,2,1,7,2)","support":4}]}})x"},
      {"{\"id\":18,\"cmd\":\"query\",\"support\":3,"
       "\"pattern\":\"t # 0\\nv 0 0\\nv 1 1\\ne 0 1 5\\n\"}",
       R"({"id":18,"ok":true,"result":{"epoch":0,"digest":")" + digest +
       R"(","support":3,"count":3,"contained":true,"pattern_support":4}})"},
      {"{\"id\":19,\"cmd\":\"query\","
       "\"pattern\":\"t # 0\\nv 0 0\\nv 1 2\\ne 0 1 5\\n\"}",
       R"({"id":19,"ok":true,"result":{"epoch":0,"digest":")" + digest +
       R"(","support":3,"count":3,"contained":false}})"},
      {R"({"id":20,"cmd":"sync"})",
       R"({"id":20,"ok":true,"result":{"epoch":0,"digest":")" + digest +
       R"("}})"},
      // Operator verbs. Nothing above admits an update or trips a fault, so
      // the health state is `serving` and the flight recorder is empty.
      {R"({"id":21,"cmd":"health"})",
       R"({"id":21,"ok":true,"result":{"state":"serving","epoch":0,)"
       R"("queue_depth":0}})"},
      {R"({"id":22,"cmd":"dump"})",
       R"({"id":22,"ok":true,"result":{"events":[],"dropped":0}})"},
  };
  for (const GoldenCase& c : table) {
    EXPECT_EQ(Handle(c.request), c.expected) << "request: " << c.request;
  }
}

TEST_F(ServiceProtoTest, StringIdsAreEchoedVerbatim) {
  EXPECT_EQ(Handle(R"({"id":"req-\"7\"","cmd":"sync"})"),
            std::string(R"({"id":"req-\"7\"","ok":true,"result":{"epoch":0,)"
                        R"("digest":")") +
                kGoldenDigest + R"("}})");
}

TEST_F(ServiceProtoTest, OversizeLineIsABadRequest) {
  std::string huge = R"({"cmd":"ping","pad":")";
  huge.append(5 * 1024 * 1024, 'x');
  huge += "\"}";
  EXPECT_EQ(Handle(huge),
            R"({"ok":false,"error":{"code":"bad_request","message":)"
            R"("request line too large"}})");
}

TEST_F(ServiceProtoTest, WaitedUpdateAdvancesEpochAndDigestChanges) {
  // wait:true surfaces the coalesced batch result synchronously.
  const std::string response = Handle(
      R"({"id":50,"cmd":"update","wait":true,"edits":[)"
      R"({"kind":"relabel","graph":3,"vertex":0,"label":9}]})");
  Json parsed;
  ASSERT_TRUE(Json::Parse(response, &parsed).ok()) << response;
  ASSERT_NE(parsed.Get("result"), nullptr) << response;
  const Json* result = parsed.Get("result");
  EXPECT_EQ(result->Get("applied")->AsInt(), 1);
  EXPECT_EQ(result->Get("rejected")->AsInt(), 0);
  EXPECT_EQ(result->Get("epoch")->AsInt(), 1);

  // Relabeling a support-carrying vertex changes the mined set: the digest
  // moves and the epoch is visible to the next query.
  const std::string query = Handle(R"({"id":51,"cmd":"query"})");
  Json queried;
  ASSERT_TRUE(Json::Parse(query, &queried).ok());
  EXPECT_EQ(queried.Get("result")->Get("epoch")->AsInt(), 1);
  EXPECT_NE(queried.Get("result")->Get("digest")->AsString(), kGoldenDigest);
}

TEST_F(ServiceProtoTest, StaleEditsAreSkippedAndCounted) {
  // Valid at parse time (graph/vertex in range) but invalid against live
  // state: relabeling to the same label is fine, but a duplicate add_edge
  // is skipped and counted, not a request failure.
  const std::string response = Handle(
      R"({"id":52,"cmd":"update","wait":true,"edits":[)"
      R"({"kind":"add_edge","graph":0,"u":0,"v":1,"label":5}]})");
  Json parsed;
  ASSERT_TRUE(Json::Parse(response, &parsed).ok()) << response;
  const Json* result = parsed.Get("result");
  ASSERT_NE(result, nullptr) << response;
  EXPECT_EQ(result->Get("applied")->AsInt(), 0);
  EXPECT_EQ(result->Get("rejected")->AsInt(), 1);
  ASSERT_NE(result->Get("first_rejection"), nullptr);
  // A rejected-only batch must not advance the epoch.
  EXPECT_EQ(result->Get("epoch")->AsInt(), 0);
}

TEST_F(ServiceProtoTest, DumpExposesAdmittedUpdatesInFlightOrder) {
  // An applied update leaves a request_admitted then batch_applied trail in
  // the flight recorder, reachable through the `dump` verb.
  const std::string update = Handle(
      R"({"id":60,"cmd":"update","wait":true,"edits":[)"
      R"({"kind":"relabel","graph":3,"vertex":0,"label":9}]})");
  ASSERT_NE(update.find("\"ok\":true"), std::string::npos) << update;

  Json parsed;
  ASSERT_TRUE(Json::Parse(Handle(R"({"id":61,"cmd":"dump"})"), &parsed).ok());
  const Json* events = parsed.Get("result")->Get("events");
  ASSERT_NE(events, nullptr);
  int admitted = 0, applied = 0;
  int64_t admitted_before_applied = -1;
  for (const Json& event : events->items()) {
    const std::string& type = event.Get("type")->AsString();
    if (type == "request_admitted") {
      ++admitted;
      if (applied == 0) admitted_before_applied = event.Get("a")->AsInt();
    }
    if (type == "batch_applied") ++applied;
  }
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(applied, 1);
  // The admitted event carries the daemon-assigned request id (first request
  // of this fixture instance).
  EXPECT_EQ(admitted_before_applied, 1);
}

TEST_F(ServiceProtoTest, HealthReportsDegradedAfterSnapshotFailure) {
  // A snapshot failure that is not an argument error marks the daemon
  // degraded: /nonexistent is not writable, so the write fails.
  const std::string response =
      Handle(R"({"id":70,"cmd":"snapshot","path":"/nonexistent/x/y"})");
  ASSERT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  const std::string health = Handle(R"({"id":71,"cmd":"health"})");
  EXPECT_NE(health.find("\"state\":\"degraded\""), std::string::npos)
      << health;
  // ...and the failure is on the flight recorder.
  Json parsed;
  ASSERT_TRUE(Json::Parse(Handle(R"({"id":72,"cmd":"dump"})"), &parsed).ok());
  bool saw_snapshot_failed = false;
  for (const Json& event : parsed.Get("result")->Get("events")->items()) {
    if (event.Get("type")->AsString() == "snapshot_failed") {
      saw_snapshot_failed = true;
    }
  }
  EXPECT_TRUE(saw_snapshot_failed);
}

TEST_F(ServiceProtoTest, ServeStreamFramesOneResponsePerLineAndStops) {
  std::istringstream in(
      "{\"id\":1,\"cmd\":\"ping\"}\r\n"
      "{bad\n"
      "{\"id\":2,\"cmd\":\"shutdown\"}\n"
      "{\"id\":3,\"cmd\":\"ping\"}\n");  // After shutdown: never answered.
  std::ostringstream out;
  daemon_.ServeStream(in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  for (std::string line; std::getline(reader, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << out.str();
  EXPECT_NE(lines[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("bad_request"), std::string::npos);
  EXPECT_NE(lines[2].find("\"stopping\":true"), std::string::npos);
}

TEST(ServiceProtoStandaloneTest, UninitializedSessionFailsCleanly) {
  SessionOptions options;
  options.miner.min_support_count = 3;
  MinerSession session(options);
  Daemon daemon(&session, {});
  bool shutdown = false;
  const std::string response =
      daemon.HandleLine(R"({"id":1,"cmd":"query"})", &shutdown);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("session not initialized"), std::string::npos);
  // Health still answers — and reports that the daemon is not serving yet.
  const std::string health =
      daemon.HandleLine(R"({"id":2,"cmd":"health"})", &shutdown);
  EXPECT_NE(health.find("\"state\":\"starting\""), std::string::npos)
      << health;
}

}  // namespace
}  // namespace service
}  // namespace partminer
