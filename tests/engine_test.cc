#include "miner/engine.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/canonical.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(EngineTest, RightmostPathPositions) {
  // Code: (0,1)(1,2)(2,0)(1,3) — rightmost path edges are positions 0
  // ((0,1)) and 3 ((1,3)); position 1's target left the path.
  DfsCode code;
  code.Append({0, 1, 0, 0, 0});
  code.Append({1, 2, 0, 0, 0});
  code.Append({2, 0, 0, 0, 0});
  code.Append({1, 3, 0, 0, 0});
  const std::vector<int> rmpath = engine::BuildRightmostPathPositions(code);
  ASSERT_EQ(rmpath.size(), 2u);
  EXPECT_EQ(rmpath[0], 3);  // Deepest first.
  EXPECT_EQ(rmpath[1], 0);
}

TEST(EngineTest, RootExtensionsCanonicalOrientation) {
  GraphDatabase db;
  Graph g;
  g.AddVertex(2);
  g.AddVertex(1);
  g.AddEdge(0, 1, 5);
  db.Add(g);
  engine::ExtensionMap roots = engine::CollectRootExtensions(db);
  ASSERT_EQ(roots.size(), 1u);
  const DfsEdge& tuple = roots.begin()->first;
  EXPECT_EQ(tuple.from_label, 1);  // Smaller label first.
  EXPECT_EQ(tuple.to_label, 2);
  EXPECT_EQ(roots.begin()->second.size(), 1u);
}

TEST(EngineTest, RootExtensionsSymmetricLabelsBothOrientations) {
  GraphDatabase db;
  Graph g;
  g.AddVertex(3);
  g.AddVertex(3);
  g.AddEdge(0, 1, 0);
  db.Add(g);
  engine::ExtensionMap roots = engine::CollectRootExtensions(db);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots.begin()->second.size(), 2u);  // Both half-edges.
}

TEST(EngineTest, SupportAndTidsDedupPerGraph) {
  engine::Projected projected;
  EdgeEntry dummy{0, 1, 0, 0};
  projected.push_back({0, &dummy, nullptr});
  projected.push_back({0, &dummy, nullptr});
  projected.push_back({2, &dummy, nullptr});
  EXPECT_EQ(engine::SupportOf(projected), 2);
  EXPECT_EQ(engine::TidsOf(projected), (std::vector<int>{0, 2}));
}

TEST(EngineTest, ExtensionsMatchFreshProjection) {
  // Property: extending a pattern via CollectExtensions on its ProjectCode
  // embeddings gives the same support as projecting the extended code from
  // scratch, for every frequent extension of random databases.
  Rng rng(404);
  for (int trial = 0; trial < 5; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 8, 7, 3, 3, 2);
    std::vector<int> all;
    for (int i = 0; i < db.size(); ++i) all.push_back(i);

    engine::ExtensionMap roots = engine::CollectRootExtensions(db);
    for (const auto& [tuple, projected] : roots) {
      DfsCode code;
      code.Append(tuple);
      engine::ExtensionMap extensions = engine::CollectExtensions(
          db, code, projected, /*enable_order_pruning=*/false);
      for (const auto& [ext, child_projected] : extensions) {
        DfsCode extended = code;
        extended.Append(ext);
        std::deque<engine::Embedding> arena;
        const engine::Projected fresh =
            engine::ProjectCode(extended, db, all, &arena);
        EXPECT_EQ(engine::SupportOf(child_projected),
                  engine::SupportOf(fresh))
            << extended.ToString();
        EXPECT_EQ(engine::TidsOf(child_projected), engine::TidsOf(fresh))
            << extended.ToString();
      }
    }
  }
}

TEST(EngineTest, OrderPruningOnlyDropsNonMinimalExtensions) {
  // Every extension group dropped by the order prunings must produce a
  // non-minimal code — otherwise the pruning would lose patterns.
  Rng rng(505);
  for (int trial = 0; trial < 5; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 6, 6, 3, 2, 2);
    engine::ExtensionMap roots = engine::CollectRootExtensions(db);
    for (const auto& [tuple, projected] : roots) {
      DfsCode code;
      code.Append(tuple);
      engine::ExtensionMap pruned =
          engine::CollectExtensions(db, code, projected, true);
      engine::ExtensionMap full =
          engine::CollectExtensions(db, code, projected, false);
      for (const auto& [ext, child_projected] : full) {
        (void)child_projected;
        if (pruned.count(ext) > 0) continue;
        DfsCode extended = code;
        extended.Append(ext);
        EXPECT_FALSE(IsMinimalDfsCode(extended))
            << "pruning dropped minimal " << extended.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace partminer
