#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "miner/closed.h"
#include "miner/gaston.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

// The bundled molecule sample (data/sample_molecules.lg): 8 small molecules
// over atoms {C=0, N=1, O=2, S=3} and bonds {single=0, double=1, aromatic=2}.
// Chemistry facts fixed by construction, used as golden mining results.

GraphDatabase LoadSample() {
  GraphDatabase db;
  const Status status =
      ReadGraphDatabaseFile(PARTMINER_SOURCE_DIR "/data/sample_molecules.lg",
                            &db);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return db;
}

TEST(SampleDatasetTest, LoadsAllMolecules) {
  const GraphDatabase db = LoadSample();
  ASSERT_EQ(db.size(), 8);
  EXPECT_EQ(db.graph(0).EdgeCount(), 6);   // Benzene.
  EXPECT_EQ(db.graph(7).EdgeCount(), 9);   // Benzoic acid.
  for (int i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(db.graph(i).IsConnected()) << i;
  }
}

TEST(SampleDatasetTest, AromaticRingIsTheDominantMotif) {
  const GraphDatabase db = LoadSample();
  GastonMiner miner;
  MinerOptions options;
  options.min_support = 5;  // Benzene ring occurs in molecules 0,1,2,7 (+...).
  const PatternSet patterns = miner.Mine(db, options);

  // The single aromatic C-C bond: benzene, phenol, aniline, pyridine,
  // thiophene, benzoic acid = 6 molecules.
  DfsCode aromatic_cc;
  aromatic_cc.Append({0, 1, 0, 2, 0});
  const PatternInfo* p = patterns.Find(aromatic_cc);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->support, 6);
}

TEST(SampleDatasetTest, CarboxylMotifFoundAtSupportTwo) {
  const GraphDatabase db = LoadSample();
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 2;
  const PatternSet patterns = miner.Mine(db, options);

  // C(=O)O carboxyl: acetic acid and benzoic acid.
  Graph carboxyl;
  carboxyl.AddVertex(0);  // C
  carboxyl.AddVertex(2);  // O
  carboxyl.AddVertex(2);  // O
  carboxyl.AddEdge(0, 1, 1);
  carboxyl.AddEdge(0, 2, 0);
  bool found = false;
  for (const PatternInfo& p : patterns.patterns()) {
    if (p.code.size() == 2 && p.support == 2) {
      // Compare canonically.
      GSpanMiner probe;
      GraphDatabase single;
      single.Add(carboxyl);
      MinerOptions one;
      one.min_support = 1;
      one.max_edges = 2;
      const PatternSet subs = probe.Mine(single, one);
      if (subs.Contains(p.code)) found = true;
    }
  }
  EXPECT_TRUE(found) << "carboxyl C(=O)O not mined at support 2";
}

TEST(SampleDatasetTest, MaximalPatternsCondense) {
  const GraphDatabase db = LoadSample();
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 4;
  const PatternSet complete = miner.Mine(db, options);
  const PatternSet maximal = MaximalPatterns(complete);
  EXPECT_GT(complete.size(), maximal.size());
  // At support 4 the largest common substructure is the aromatic C6 chain
  // pattern; all maximal patterns must have at least 2 edges.
  for (const PatternInfo& p : maximal.patterns()) {
    EXPECT_GE(p.code.size(), 2u) << p.code.ToString();
  }
}

}  // namespace
}  // namespace partminer
