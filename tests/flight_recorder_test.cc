// Flight recorder: lock-free ring semantics (wraparound, concurrent
// append/snapshot consistency under TSan), detail sanitization, and the
// JSON dump paths (allocating ToJson and the async-signal-safe DumpToFd).

#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "service/json.h"

namespace partminer {
namespace obs {
namespace {

using service::Json;

TEST(FlightRecorderTest, RecordAndSnapshotRoundTrip) {
  FlightRecorder recorder;
  recorder.Record(FlightEventType::kRequestAdmitted, 1, 2, 3, "first");
  recorder.Record(FlightEventType::kBatchApplied, 7, 8, 9);
  recorder.Record(FlightEventType::kShutdown, -4);

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, FlightEventType::kRequestAdmitted);
  EXPECT_EQ(events[0].a, 1);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_EQ(events[0].c, 3);
  EXPECT_EQ(events[0].detail, "first");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].type, FlightEventType::kBatchApplied);
  EXPECT_TRUE(events[1].detail.empty());
  EXPECT_EQ(events[2].a, -4);
  // Timestamps are non-decreasing on one thread.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
  EXPECT_EQ(recorder.total_recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, DetailIsSanitizedAndTruncated) {
  FlightRecorder recorder;
  recorder.Record(FlightEventType::kFaultInjected, 0, 0, 0,
                  "quote\" slash\\ tab\t ok");
  const std::string long_detail(2 * FlightRecorder::kDetailBytes, 'x');
  recorder.Record(FlightEventType::kFaultInjected, 0, 0, 0,
                  long_detail.c_str());

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Characters that would need JSON escaping are replaced with spaces.
  EXPECT_EQ(events[0].detail, "quote  slash  tab  ok");
  // Truncated to the slot's packed capacity, NUL included.
  EXPECT_EQ(events[1].detail.size(), FlightRecorder::kDetailBytes - 1);
  EXPECT_EQ(events[1].detail,
            std::string(FlightRecorder::kDetailBytes - 1, 'x'));
}

TEST(FlightRecorderTest, WraparoundKeepsNewestEvents) {
  FlightRecorder recorder;
  constexpr uint64_t kTotal = FlightRecorder::kCapacity * 2 + 277;
  for (uint64_t i = 0; i < kTotal; ++i) {
    recorder.Record(FlightEventType::kRequestAdmitted,
                    static_cast<int64_t>(i));
  }
  EXPECT_EQ(recorder.total_recorded(), kTotal);
  EXPECT_EQ(recorder.dropped(), kTotal - FlightRecorder::kCapacity);

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // The ring keeps exactly the newest kCapacity events, in order, with the
  // payload still matching the sequence number it was recorded under.
  for (size_t i = 0; i < events.size(); ++i) {
    const uint64_t expected_seq = kTotal - FlightRecorder::kCapacity + i;
    EXPECT_EQ(events[i].seq, expected_seq);
    EXPECT_EQ(events[i].a, static_cast<int64_t>(expected_seq));
  }
}

TEST(FlightRecorderTest, ResetClearsRing) {
  FlightRecorder recorder;
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightEventType::kShutdown);
  }
  recorder.Reset();
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.Record(FlightEventType::kBatchApplied, 5);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].a, 5);
}

TEST(FlightRecorderTest, ToJsonParsesAndReportsDropped) {
  FlightRecorder recorder;
  constexpr uint64_t kTotal = FlightRecorder::kCapacity + 40;
  for (uint64_t i = 0; i < kTotal; ++i) {
    recorder.Record(FlightEventType::kBatchApplied, static_cast<int64_t>(i),
                    2 * static_cast<int64_t>(i), 0, "round");
  }
  Json parsed;
  ASSERT_TRUE(Json::Parse(recorder.ToJson(), &parsed).ok());
  const Json* events = parsed.Get("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->items().size(), FlightRecorder::kCapacity);
  const Json* dropped = parsed.Get("dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->AsInt(), static_cast<int64_t>(kTotal) -
                                  static_cast<int64_t>(
                                      FlightRecorder::kCapacity));
  const Json& last = events->items().back();
  EXPECT_EQ(last.Get("type")->AsString(), "batch_applied");
  EXPECT_EQ(last.Get("a")->AsInt(), static_cast<int64_t>(kTotal) - 1);
  EXPECT_EQ(last.Get("detail")->AsString(), "round");
}

TEST(FlightRecorderTest, DumpToFdMatchesToJson) {
  FlightRecorder recorder;
  recorder.Record(FlightEventType::kFaultInjected, 1, -2, 3,
                  "alloc admitting update batch");
  recorder.Record(FlightEventType::kSlowRequest, 42, 17000, 0, "query");

  const std::string path =
      ::testing::TempDir() + "/flight_dump_test.json";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  recorder.DumpToFd(fd);
  ASSERT_EQ(::close(fd), 0);

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  // The signal-safe writer must produce byte-identical JSON (plus the
  // trailing newline) to the allocating path.
  EXPECT_EQ(contents.str(), recorder.ToJson() + "\n");
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ConcurrentAppendAndSnapshotStayConsistent) {
  FlightRecorder recorder;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn_payloads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&recorder, &stop, &torn_payloads] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<FlightEvent> events = recorder.Snapshot();
        uint64_t last_seq = 0;
        bool first = true;
        for (const FlightEvent& event : events) {
          // Writers maintain c == a + b; any decoded event violating it is
          // a torn read the seqlock failed to reject.
          if (event.c != event.a + event.b) {
            torn_payloads.fetch_add(1, std::memory_order_relaxed);
          }
          if (!first && event.seq <= last_seq) {
            torn_payloads.fetch_add(1, std::memory_order_relaxed);
          }
          last_seq = event.seq;
          first = false;
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t a = w;
        const int64_t b = i;
        recorder.Record(FlightEventType::kRequestAdmitted, a, b, a + b,
                        "concurrent");
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn_payloads.load(), 0);
  EXPECT_EQ(recorder.total_recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // Quiescent ring: the final snapshot is full and every payload intact.
  const std::vector<FlightEvent> events = recorder.Snapshot();
  EXPECT_EQ(events.size(), FlightRecorder::kCapacity);
  for (const FlightEvent& event : events) {
    EXPECT_EQ(event.c, event.a + event.b);
    EXPECT_EQ(event.detail, "concurrent");
  }
}

}  // namespace
}  // namespace obs
}  // namespace partminer
