// Degrade-don't-die under injected storage faults: the daemon fault sweep
// from src/testing drives a resident session through scripted and
// probabilistic read/write/alloc failures and requires every request to be
// either correct or a clean structured error — never a dead process, never
// a divergent pattern set. This test pins the sweep into the tier-1 suite
// so a regression in the Status plumbing fails fast, not only in run_fuzz.

#include <string>

#include "gtest/gtest.h"
#include "testing/fault_sweep.h"

namespace partminer {
namespace testing {
namespace {

std::string Describe(const FaultSweepOutcome& outcome) {
  std::string text = std::to_string(outcome.runs) + " runs, " +
                     std::to_string(outcome.clean_failures) +
                     " clean failures, " + std::to_string(outcome.successes) +
                     " correct";
  for (const std::string& violation : outcome.violations) {
    text += "\n  violation: " + violation;
  }
  return text;
}

TEST(ServiceFaultSweepTest, ResidentDaemonSurvivesFaultGrid) {
  const FaultSweepOutcome outcome = RunDaemonFaultSweep(20260808);
  EXPECT_TRUE(outcome.ok()) << Describe(outcome);
  EXPECT_GT(outcome.runs, 0);
  // The grid must actually exercise both halves of the contract: some runs
  // fail cleanly (fault hit a consult point), some complete correctly.
  EXPECT_GT(outcome.clean_failures, 0) << Describe(outcome);
  EXPECT_GT(outcome.successes, 0) << Describe(outcome);
}

TEST(ServiceFaultSweepTest, SweepIsDeterministicPerSeed) {
  const FaultSweepOutcome a = RunDaemonFaultSweep(7);
  const FaultSweepOutcome b = RunDaemonFaultSweep(7);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.clean_failures, b.clean_failures);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

}  // namespace
}  // namespace testing
}  // namespace partminer
