// Degrade-don't-die under injected storage faults: the daemon fault sweep
// from src/testing drives a resident session through scripted and
// probabilistic read/write/alloc failures and requires every request to be
// either correct or a clean structured error — never a dead process, never
// a divergent pattern set. This test pins the sweep into the tier-1 suite
// so a regression in the Status plumbing fails fast, not only in run_fuzz.

#include <string>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "service/daemon.h"
#include "service/session.h"
#include "storage/fault_injector.h"
#include "testing/fault_sweep.h"

namespace partminer {
namespace testing {
namespace {

std::string Describe(const FaultSweepOutcome& outcome) {
  std::string text = std::to_string(outcome.runs) + " runs, " +
                     std::to_string(outcome.clean_failures) +
                     " clean failures, " + std::to_string(outcome.successes) +
                     " correct";
  for (const std::string& violation : outcome.violations) {
    text += "\n  violation: " + violation;
  }
  return text;
}

TEST(ServiceFaultSweepTest, ResidentDaemonSurvivesFaultGrid) {
  const FaultSweepOutcome outcome = RunDaemonFaultSweep(20260808);
  EXPECT_TRUE(outcome.ok()) << Describe(outcome);
  EXPECT_GT(outcome.runs, 0);
  // The grid must actually exercise both halves of the contract: some runs
  // fail cleanly (fault hit a consult point), some complete correctly.
  EXPECT_GT(outcome.clean_failures, 0) << Describe(outcome);
  EXPECT_GT(outcome.successes, 0) << Describe(outcome);
}

TEST(ServiceFaultSweepTest, InjectedFaultLeavesFlightRecorderEvent) {
  // Arm a single admission fault, drive one update, and require both a
  // clean structured error on the wire and a fault_injected event in the
  // flight recorder — the post-mortem trail the sweep asserts in bulk.
  obs::FlightRecorder::Global().Reset();
  service::SessionOptions options;
  options.miner.min_support_count = 2;
  service::MinerSession session(options);
  GraphDatabase db;
  for (int i = 0; i < 2; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 5);
    db.Add(std::move(g));
  }
  ASSERT_TRUE(session.Init(std::move(db)).ok());
  FaultInjector injector(1);
  injector.FailOnce(FaultInjector::Op::kAlloc, 0);
  session.set_fault_injector(&injector);
  service::Daemon daemon(&session, {});

  bool shutdown = false;
  const std::string response = daemon.HandleLine(
      R"({"id":1,"cmd":"update","wait":true,"edits":[)"
      R"({"kind":"relabel","graph":0,"vertex":0,"label":3}]})",
      &shutdown);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("injected"), std::string::npos) << response;

  bool saw_fault_event = false;
  for (const obs::FlightEvent& event :
       obs::FlightRecorder::Global().Snapshot()) {
    if (event.type == obs::FlightEventType::kFaultInjected &&
        event.detail.find("admitting update batch") != std::string::npos) {
      saw_fault_event = true;
    }
  }
  EXPECT_TRUE(saw_fault_event)
      << "injected admission fault left no flight-recorder event";
}

TEST(ServiceFaultSweepTest, SweepIsDeterministicPerSeed) {
  const FaultSweepOutcome a = RunDaemonFaultSweep(7);
  const FaultSweepOutcome b = RunDaemonFaultSweep(7);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.clean_failures, b.clean_failures);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

}  // namespace
}  // namespace testing
}  // namespace partminer
