#include "core/state_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/inc_part_miner.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

void ExpectSameResults(const PatternSet& expected, const PatternSet& actual,
                       const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what;
    EXPECT_EQ(p.support, q->support) << what;
    EXPECT_EQ(p.tids, q->tids) << what;
  }
}

GraphDatabase MakeDatabase(uint64_t seed) {
  GeneratorParams params;
  params.num_graphs = 16;
  params.avg_edges = 10;
  params.num_labels = 5;
  params.num_kernels = 8;
  params.seed = seed;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.2, seed + 1);
  return db;
}

TEST(StateIoTest, RoundTripPreservesVerifiedResult) {
  GraphDatabase db = MakeDatabase(5);
  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 3;
  PartMiner miner(options);
  const PartMinerResult original = miner.Mine(db);

  std::stringstream buffer;
  ASSERT_TRUE(SaveMinerState(miner, buffer).ok());

  PartMiner restored(options);
  ASSERT_TRUE(LoadMinerState(buffer, &restored).ok());
  EXPECT_TRUE(restored.mined());
  EXPECT_EQ(restored.root_support(), 4);
  ExpectSameResults(original.patterns, restored.verified(), "round trip");
  EXPECT_EQ(miner.partitioned().assignments(),
            restored.partitioned().assignments());
}

TEST(StateIoTest, RestoredMinerContinuesIncrementally) {
  // The whole point: a restarted process resumes incremental maintenance
  // from the persisted state with exact results.
  GraphDatabase db = MakeDatabase(9);
  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 4;
  PartMiner miner(options);
  miner.Mine(db);

  std::stringstream buffer;
  ASSERT_TRUE(SaveMinerState(miner, buffer).ok());
  PartMiner restored(options);
  ASSERT_TRUE(LoadMinerState(buffer, &restored).ok());

  UpdateOptions upd;
  upd.fraction_graphs = 0.3;
  upd.seed = 42;
  const UpdateLog log = ApplyUpdates(&db, 5, upd);

  IncPartMiner inc;
  const IncPartMinerResult result = inc.Update(&restored, db, log);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 4;
  ExpectSameResults(gspan.Mine(db, full), result.patterns,
                    "incremental after restore");
}

TEST(StateIoTest, FileRoundTrip) {
  GraphDatabase db = MakeDatabase(11);
  PartMinerOptions options;
  options.min_support_count = 3;
  options.partition.k = 2;
  PartMiner miner(options);
  miner.Mine(db);

  const std::string path =
      "/tmp/partminer_state_" + std::to_string(::getpid()) + ".state";
  ASSERT_TRUE(SaveMinerStateFile(miner, path).ok());
  PartMiner restored(options);
  ASSERT_TRUE(LoadMinerStateFile(path, &restored).ok());
  ExpectSameResults(miner.verified(), restored.verified(), "file round trip");
  ::unlink(path.c_str());
}

TEST(StateIoTest, RejectsUnminedAndMismatchedStates) {
  PartMinerOptions options;
  options.partition.k = 2;
  PartMiner unmined(options);
  std::stringstream buffer;
  EXPECT_EQ(SaveMinerState(unmined, buffer).code(),
            Status::Code::kInvalidArgument);

  // Saved with k=3, loaded into k=2: rejected.
  GraphDatabase db = MakeDatabase(13);
  PartMinerOptions k3 = options;
  k3.min_support_count = 4;
  k3.partition.k = 3;
  PartMiner miner(k3);
  miner.Mine(db);
  std::stringstream saved;
  ASSERT_TRUE(SaveMinerState(miner, saved).ok());
  PartMiner wrong_k(options);
  EXPECT_EQ(LoadMinerState(saved, &wrong_k).code(),
            Status::Code::kInvalidArgument);
  EXPECT_FALSE(wrong_k.mined());  // Failed load leaves the miner untouched.
}

TEST(StateIoTest, RejectsCorruptInput) {
  PartMinerOptions options;
  PartMiner miner(options);
  for (const char* text :
       {"", "garbage 1", "partminer-state 99\n",
        "partminer-state 1\nroot_support x\n"}) {
    std::stringstream in(text);
    EXPECT_FALSE(LoadMinerState(in, &miner).ok()) << "'" << text << "'";
    EXPECT_FALSE(miner.mined());
  }
}

/// Saves a small miner state and returns the serialized bytes.
std::string SavedStateBytes() {
  GraphDatabase db = MakeDatabase(17);
  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 2;
  PartMiner miner(options);
  miner.Mine(db);
  std::stringstream buffer;
  EXPECT_TRUE(SaveMinerState(miner, buffer).ok());
  return buffer.str();
}

TEST(StateIoTest, TruncatedFileIsRejectedWithDescriptiveStatus) {
  const std::string bytes = SavedStateBytes();
  ASSERT_GT(bytes.size(), 64u);
  PartMinerOptions options;
  options.partition.k = 2;

  // Every truncation point that loses data — cutting mid-footer, cutting
  // the footer off entirely, cutting mid-payload — must fail cleanly and
  // leave the miner untouched. (Losing only the final newline loses no
  // data; the footer still validates and the load is allowed to succeed.)
  for (size_t cut : {bytes.size() - 2, bytes.size() - 8, bytes.size() / 2,
                     bytes.size() / 4, size_t{64}, size_t{1}}) {
    PartMiner miner(options);
    std::stringstream in(bytes.substr(0, cut));
    const Status status = LoadMinerState(in, &miner);
    EXPECT_EQ(status.code(), Status::Code::kCorruption) << "cut=" << cut;
    EXPECT_FALSE(status.message().empty()) << "cut=" << cut;
    EXPECT_FALSE(miner.mined()) << "cut=" << cut;
  }
}

TEST(StateIoTest, BitFlippedFileIsRejected) {
  const std::string bytes = SavedStateBytes();
  PartMinerOptions options;
  options.partition.k = 2;

  // Flip one bit at a spread of positions across the payload. Loads must
  // either fail (almost always a checksum mismatch) — never restore state
  // that differs from what was saved.
  for (size_t pos = 0; pos < bytes.size(); pos += bytes.size() / 23 + 1) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    PartMiner miner(options);
    std::stringstream in(corrupted);
    const Status status = LoadMinerState(in, &miner);
    EXPECT_FALSE(status.ok()) << "pos=" << pos;
    EXPECT_FALSE(miner.mined()) << "pos=" << pos;
  }
}

TEST(StateIoTest, ChecksumFailureNamesTheProblem) {
  std::string bytes = SavedStateBytes();
  // Flip a byte in the middle of the payload: the footer no longer matches.
  bytes[bytes.size() / 2] ^= 0x01;
  PartMiner miner{PartMinerOptions{}};
  std::stringstream in(bytes);
  const Status status = LoadMinerState(in, &miner);
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.ToString();
}

TEST(StateIoTest, LegacyV1FileWithoutFooterIsRejected) {
  // A well-formed v1 header with no footer must be refused up front, not
  // half-parsed.
  PartMiner miner{PartMinerOptions{}};
  std::stringstream in(
      "partminer-state 1\nroot_support 2\nk 2\ngraphs 0\nnodes 0\n"
      "verified\npatterns 0\n");
  const Status status = LoadMinerState(in, &miner);
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
  EXPECT_NE(status.message().find("footer"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace partminer
