// Support-counting fast path: the label inverted index and the minimality
// memo cache are pure accelerators — this file pins down the two properties
// that make them safe. First, LabelIndex::CandidatesFor is a certified
// superset of the true TID list for every mined pattern (a pruned graph can
// never host an embedding). Second, mining with the fast path on and off
// yields bit-identical pattern sets — codes, supports, and TID lists — for
// every miner in the repo, at several thread counts.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"
#include "graph/label_index.h"
#include "miner/gaston.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

/// Restores the process-wide fast-path toggles (and drops any cached
/// verdicts) no matter how a test exits, so tests stay order-independent.
class FastPathGuard {
 public:
  FastPathGuard()
      : index_(LabelIndexEnabled()), cache_(MinimalityCacheEnabled()) {}
  ~FastPathGuard() {
    SetLabelIndexEnabled(index_);
    SetMinimalityCacheEnabled(cache_);
    ClearMinimalityCache();
  }

  static void Set(bool enabled) {
    SetLabelIndexEnabled(enabled);
    SetMinimalityCacheEnabled(enabled);
    ClearMinimalityCache();
  }

 private:
  const bool index_;
  const bool cache_;
};

GraphDatabase MakeDatabase(uint64_t seed, int graphs = 18) {
  GeneratorParams params;
  params.num_graphs = graphs;
  params.avg_edges = 10;
  params.num_labels = 5;
  params.num_kernels = 8;
  params.avg_kernel_edges = 3;
  params.seed = seed;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.2, seed + 1);
  return db;
}

void ExpectIdentical(const PatternSet& on, const PatternSet& off,
                     const std::string& what) {
  EXPECT_EQ(on.SortedCodeStrings(), off.SortedCodeStrings()) << what;
  for (const PatternInfo& p : on.patterns()) {
    const PatternInfo* q = off.Find(p.code);
    ASSERT_NE(q, nullptr) << what << ": missing " << p.code.ToString();
    EXPECT_EQ(p.support, q->support) << what << ": " << p.code.ToString();
    EXPECT_EQ(p.tids, q->tids) << what << ": " << p.code.ToString();
  }
}

/// Exhaustive superset check: for every frequent pattern AND every single
/// distinct edge of the database, the index candidates contain every graph
/// the exact matcher accepts, and the exact count is reproduced when the
/// scan is restricted to the candidates.
TEST(SupportFastPathTest, CandidatesAreSupersetOfTrueTids) {
  const GraphDatabase db = MakeDatabase(7);
  const LabelIndex index(db);
  EXPECT_EQ(index.graph_count(), db.size());

  GSpanMiner gspan;
  MinerOptions options;
  options.min_support = 2;
  const PatternSet mined = gspan.Mine(db, options);
  ASSERT_GT(mined.size(), 0);

  for (const PatternInfo& p : mined.patterns()) {
    const Graph pattern = p.code.ToGraph();
    const TidSet candidates = index.CandidatesFor(pattern);
    const SubgraphMatcher matcher(pattern);
    TidSet exact;
    const int support = matcher.CountSupport(db, &exact);
    EXPECT_TRUE(candidates.Includes(exact))
        << p.code.ToString() << ": candidates " << candidates
        << " miss true tids " << exact;
    // Counting only within the candidates loses nothing.
    TidSet pruned;
    EXPECT_EQ(matcher.CountSupportAmong(db, candidates, &pruned), support);
    EXPECT_EQ(pruned, exact) << p.code.ToString();
    EXPECT_EQ(p.tids, exact) << p.code.ToString();
  }
}

TEST(SupportFastPathTest, UnknownLabelsPruneEverything) {
  const GraphDatabase db = MakeDatabase(8);
  const LabelIndex index(db);

  // A single-edge pattern whose labels never occur in the database must have
  // an empty candidate set (and, trivially, zero support).
  Graph pattern;
  const VertexId a = pattern.AddVertex(999);
  const VertexId b = pattern.AddVertex(998);
  pattern.AddEdge(a, b, 997);
  const TidSet candidates = index.CandidatesFor(pattern);
  EXPECT_TRUE(candidates.Empty());
  const SubgraphMatcher matcher(pattern);
  EXPECT_EQ(matcher.CountSupport(db, static_cast<TidSet*>(nullptr)), 0);
}

struct FastPathCase {
  std::string miner;
  int threads;  // PartMiner unit-mining threads; batch miners ignore it.
};

class FastPathEquivalence : public ::testing::TestWithParam<FastPathCase> {};

PatternSet MineOnce(const FastPathCase& c, const GraphDatabase& db,
                    int min_support) {
  if (c.miner == "gspan") {
    GSpanMiner miner;
    MinerOptions options;
    options.min_support = min_support;
    return miner.Mine(db, options);
  }
  if (c.miner == "gaston") {
    GastonMiner miner;
    MinerOptions options;
    options.min_support = min_support;
    return miner.Mine(db, options);
  }
  PartMinerOptions options;
  options.min_support_count = min_support;
  options.partition.k = 3;
  options.unit_mining_threads = c.threads;
  PartMiner miner(options);
  return miner.Mine(db).patterns;
}

TEST_P(FastPathEquivalence, BatchMiningBitIdentical) {
  const FastPathCase& c = GetParam();
  const GraphDatabase db = MakeDatabase(21);
  FastPathGuard guard;

  FastPathGuard::Set(true);
  const PatternSet with_fast_path = MineOnce(c, db, 4);
  FastPathGuard::Set(false);
  const PatternSet without = MineOnce(c, db, 4);

  ASSERT_GT(with_fast_path.size(), 0);
  ExpectIdentical(with_fast_path, without,
                  c.miner + " threads=" + std::to_string(c.threads));
}

INSTANTIATE_TEST_SUITE_P(
    Miners, FastPathEquivalence,
    ::testing::Values(FastPathCase{"gspan", 1}, FastPathCase{"gaston", 1},
                      FastPathCase{"partminer", 1}, FastPathCase{"partminer", 2},
                      FastPathCase{"partminer", 8}),
    [](const ::testing::TestParamInfo<FastPathCase>& info) {
      return info.param.miner + "_t" + std::to_string(info.param.threads);
    });

class FastPathIncremental : public ::testing::TestWithParam<int> {};

/// The incremental path exercises the delta arithmetic (VerifyDelta,
/// IncMergeJoin) where the index prunes the updated-graph rescans; both
/// configurations must produce the same classification and TID lists.
TEST_P(FastPathIncremental, UpdateBitIdentical) {
  const int threads = GetParam();
  FastPathGuard guard;

  PatternSet results[2];
  for (const bool enabled : {true, false}) {
    FastPathGuard::Set(enabled);
    GraphDatabase db = MakeDatabase(33);
    PartMinerOptions options;
    options.min_support_count = 4;
    options.partition.k = 3;
    options.unit_mining_threads = threads;
    PartMiner miner(options);
    miner.Mine(db);

    UpdateOptions upd;
    upd.fraction_graphs = 0.4;
    upd.updates_per_graph = 2;
    upd.seed = 17;
    const UpdateLog log = ApplyUpdates(&db, 5, upd);
    ASSERT_FALSE(log.updated_graphs.empty());

    IncPartMiner inc;
    results[enabled ? 0 : 1] = inc.Update(&miner, db, log).patterns;
  }

  ASSERT_GT(results[0].size(), 0);
  ExpectIdentical(results[0], results[1],
                  "incremental threads=" + std::to_string(threads));
}

INSTANTIATE_TEST_SUITE_P(Threads, FastPathIncremental,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace partminer
