// Concurrency contract of the resident mining service: N client threads
// hammer one daemon with interleaved updates and queries. Every query must
// observe a consistent (epoch, digest) pair — exactly the pattern-set
// digest the batcher recorded when it produced that epoch, never a torn
// intermediate — epochs are monotone per connection, and queue-bound
// rejections surface as structured `overloaded` errors, not dropped work.
// The test is TSan-clean: all daemon/session state is lock-protected.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "common/random.h"
#include "datagen/edit_stream.h"
#include "gtest/gtest.h"
#include "service/daemon.h"
#include "service/json.h"
#include "service/session.h"
#include "tests/test_util.h"

namespace partminer {
namespace service {
namespace {

SessionOptions MakeOptions() {
  SessionOptions options;
  options.miner.min_support_count = 3;
  options.miner.partition.k = 2;
  return options;
}

struct ThreadLog {
  std::vector<std::pair<uint64_t, uint64_t>> observations;
  int overloaded = 0;
  int updates_acked = 0;
  int failures = 0;
  std::string first_failure;

  void Fail(const std::string& what) {
    ++failures;
    if (first_failure.empty()) first_failure = what;
  }
};

void DriveClient(Daemon* daemon, const std::vector<StreamItem>& items,
                 size_t first, size_t stride, ThreadLog* log) {
  uint64_t last_epoch = 0;
  for (size_t i = first; i < items.size(); i += stride) {
    const StreamItem& item = items[i];
    std::string line;
    if (item.is_update) {
      line = "{\"id\":" + std::to_string(i) + ",\"cmd\":\"update\",\"edits\":[";
      for (size_t j = 0; j < item.edits.size(); ++j) {
        if (j > 0) line.push_back(',');
        line += EditToJson(item.edits[j]).Dump();
      }
      line += "]}";
    } else {
      line = "{\"id\":" + std::to_string(i) +
             ",\"cmd\":\"query\",\"support\":" +
             std::to_string(item.query_support) + "}";
    }
    bool shutdown = false;
    const std::string response = daemon->HandleLine(line, &shutdown);
    Json parsed;
    if (!Json::Parse(response, &parsed).ok()) {
      log->Fail("unparseable: " + response);
      continue;
    }
    const Json* id = parsed.Get("id");
    if (id == nullptr || !id->is_int() ||
        id->AsInt() != static_cast<int64_t>(i)) {
      log->Fail("id mismatch: " + response);
      continue;
    }
    const Json* ok = parsed.Get("ok");
    if (ok != nullptr && ok->AsBool()) {
      if (item.is_update) {
        ++log->updates_acked;
      } else {
        const Json* result = parsed.Get("result");
        const Json* epoch = result ? result->Get("epoch") : nullptr;
        const Json* digest = result ? result->Get("digest") : nullptr;
        uint64_t digest_value = 0;
        if (epoch == nullptr || !epoch->is_int() || digest == nullptr ||
            !digest->is_string() ||
            !ParseUint64(digest->AsString(), &digest_value)) {
          log->Fail("malformed query result: " + response);
          continue;
        }
        const uint64_t e = static_cast<uint64_t>(epoch->AsInt());
        if (e < last_epoch) {
          log->Fail("epoch went backwards: " + response);
        }
        last_epoch = e;
        log->observations.emplace_back(e, digest_value);
      }
    } else {
      const Json* error = parsed.Get("error");
      const Json* code = error ? error->Get("code") : nullptr;
      if (item.is_update && code != nullptr && code->is_string() &&
          code->AsString() == "overloaded") {
        ++log->overloaded;  // Legitimate backpressure, reported not hidden.
      } else {
        log->Fail("unexpected error: " + response);
      }
    }
  }
}

class ServiceConcurrencyTest : public ::testing::TestWithParam<int> {};

TEST_P(ServiceConcurrencyTest, ConsistentEpochDigestUnderLoad) {
  const int clients = GetParam();
  Rng rng(99000 + clients);
  GraphDatabase db = testutil::RandomDatabase(&rng, /*graphs=*/20,
                                              /*vertices=*/7,
                                              /*extra_edges=*/2,
                                              /*vertex_labels=*/3,
                                              /*edge_labels=*/3);
  MinerSession session(MakeOptions());
  ASSERT_TRUE(session.Init(std::move(db)).ok());

  EditStreamOptions stream;
  stream.seed = 1234 + clients;
  stream.requests = 60 * clients;
  stream.update_fraction = 0.3;
  stream.edits_per_update = 3;
  stream.num_labels = 3;
  stream.resident_support = session.resident_support();
  GraphDatabase generator_view;  // GenerateEditStream needs the initial db.
  {
    Rng regen(99000 + clients);
    generator_view = testutil::RandomDatabase(&regen, 20, 7, 2, 3, 3);
  }
  const std::vector<StreamItem> items =
      GenerateEditStream(generator_view, stream);

  // A small queue so the 8-thread round genuinely exercises backpressure.
  DaemonOptions daemon_options;
  daemon_options.queue_cap_edits = 24;
  daemon_options.batch_max_edits = 8;
  Daemon daemon(&session, daemon_options);

  std::vector<ThreadLog> logs(clients);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(DriveClient, &daemon, std::cref(items),
                         static_cast<size_t>(c),
                         static_cast<size_t>(clients), &logs[c]);
  }
  for (std::thread& t : threads) t.join();
  daemon.WaitQueueDrained();

  int total_observations = 0, total_overloaded = 0, total_acked = 0;
  for (const ThreadLog& log : logs) {
    EXPECT_EQ(log.failures, 0) << log.first_failure;
    total_overloaded += log.overloaded;
    total_acked += log.updates_acked;
    for (const auto& [epoch, digest] : log.observations) {
      ++total_observations;
      // The ground truth: the digest the batcher recorded when it produced
      // this epoch. A mismatch means a query saw a half-applied batch.
      EXPECT_EQ(session.DigestAt(epoch), digest) << "epoch " << epoch;
    }
  }
  EXPECT_GT(total_observations, 0);
  // Every update was either acknowledged or rejected as overloaded.
  int total_updates = 0;
  for (const StreamItem& item : items) total_updates += item.is_update;
  EXPECT_EQ(total_acked + total_overloaded, total_updates);
  // After the drain, the live digest matches the last recorded epoch.
  EXPECT_EQ(session.DigestAt(session.epoch()), session.digest());

  ::testing::Test::RecordProperty("overloaded", total_overloaded);
}

INSTANTIATE_TEST_SUITE_P(Clients, ServiceConcurrencyTest,
                         ::testing::Values(1, 2, 8));

TEST(ServiceBackpressureTest, QueueBoundIsEnforced) {
  Rng rng(424242);
  GraphDatabase db = testutil::RandomDatabase(&rng, 12, 6, 2, 3, 3);
  GraphDatabase view = db;
  MinerSession session(MakeOptions());
  ASSERT_TRUE(session.Init(std::move(db)).ok());

  // Queue cap below one batch's worth: the first update fills the queue,
  // later ones must see `overloaded` while the batcher is busy. Construct
  // the race deterministically by flooding more edits than the cap.
  DaemonOptions daemon_options;
  daemon_options.queue_cap_edits = 6;
  daemon_options.batch_max_edits = 2;
  Daemon daemon(&session, daemon_options);

  EditStreamOptions stream;
  stream.seed = 5;
  stream.requests = 30;
  stream.update_fraction = 1.0;
  stream.edits_per_update = 3;
  stream.num_labels = 3;
  stream.resident_support = session.resident_support();
  const std::vector<StreamItem> items = GenerateEditStream(view, stream);

  int overloaded = 0, acked = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    bool shutdown = false;
    std::string line = "{\"cmd\":\"update\",\"edits\":[";
    for (size_t j = 0; j < items[i].edits.size(); ++j) {
      if (j > 0) line.push_back(',');
      line += EditToJson(items[i].edits[j]).Dump();
    }
    line += "]}";
    const std::string response = daemon.HandleLine(line, &shutdown);
    if (response.find("\"overloaded\"") != std::string::npos) {
      ++overloaded;
    } else if (response.find("\"queued\":true") != std::string::npos) {
      ++acked;
      EXPECT_LE(daemon.queue_depth_edits(), daemon_options.queue_cap_edits);
    } else {
      ADD_FAILURE() << response;
    }
  }
  EXPECT_EQ(acked + overloaded, static_cast<int>(items.size()));
  daemon.WaitQueueDrained();
  EXPECT_EQ(daemon.queue_depth_edits(), 0);
}

}  // namespace
}  // namespace service
}  // namespace partminer
