// TidSet correctness: hand-checked basics plus a randomized property sweep
// pitting the bitset arithmetic against the sorted-vector algorithms the
// mining stack used before (set_intersection / set_union / set_difference /
// includes). The bitset is the representation of record for every TID list,
// so any divergence here would silently corrupt support counts everywhere.

#include "graph/tid_set.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace partminer {
namespace {

TEST(TidSetTest, BasicAddRemoveContains) {
  TidSet set;
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.Count(), 0);
  EXPECT_FALSE(set.Contains(0));

  set.Add(3);
  set.Add(64);
  set.Add(3);  // Idempotent.
  EXPECT_FALSE(set.Empty());
  EXPECT_EQ(set.Count(), 2);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(64));
  EXPECT_FALSE(set.Contains(63));
  EXPECT_FALSE(set.Contains(-1));

  set.Remove(64);
  EXPECT_EQ(set.Count(), 1);
  EXPECT_FALSE(set.Contains(64));
  set.Remove(64);  // Removing an absent element is a no-op.
  EXPECT_EQ(set.Count(), 1);

  set.Remove(3);
  EXPECT_TRUE(set.Empty());
}

TEST(TidSetTest, VectorRoundTrip) {
  const std::vector<int> tids = {0, 5, 63, 64, 65, 200};
  EXPECT_EQ(TidSet::FromVector(tids).ToVector(), tids);

  // Unsorted input with duplicates normalizes to the ascending unique list.
  const TidSet messy = TidSet::FromVector({200, 5, 5, 0, 65, 64, 63, 200});
  EXPECT_EQ(messy.ToVector(), tids);
  EXPECT_EQ(TidSet::FromVector({}).ToVector(), std::vector<int>{});
}

TEST(TidSetTest, EqualityIgnoresCapacityHistory) {
  // Shrink {1000} down to {1}: the high words must not linger and break ==.
  TidSet wide = TidSet::FromVector({1, 1000});
  wide.Remove(1000);
  const TidSet narrow = TidSet::FromVector({1});
  EXPECT_EQ(wide, narrow);

  TidSet differenced = TidSet::FromVector({1, 777});
  differenced -= TidSet::FromVector({777});
  EXPECT_EQ(differenced, narrow);

  TidSet intersected = TidSet::FromVector({1, 900});
  intersected &= TidSet::FromVector({1, 2, 3});
  EXPECT_EQ(intersected, narrow);
  EXPECT_NE(intersected, TidSet::FromVector({2}));
}

TEST(TidSetTest, ForEachAscending) {
  const std::vector<int> tids = {2, 63, 64, 127, 128, 500};
  std::vector<int> seen;
  TidSet::FromVector(tids).ForEach([&](int t) { seen.push_back(t); });
  EXPECT_EQ(seen, tids);
}

// ---------------------------------------------------------------------------
// Property sweep: TidSet ops vs the sorted-vector baselines on random sets.
// ---------------------------------------------------------------------------

std::vector<int> RandomTids(Rng* rng, int universe, int max_size) {
  std::set<int> picked;
  const int size = static_cast<int>(rng->Uniform(max_size + 1));
  for (int i = 0; i < size; ++i) {
    picked.insert(static_cast<int>(rng->Uniform(universe)));
  }
  return std::vector<int>(picked.begin(), picked.end());
}

TEST(TidSetTest, PropertyMatchesVectorBaseline) {
  Rng rng(42);
  for (int round = 0; round < 500; ++round) {
    // Mixed universes exercise word-count mismatches between operands.
    const int universe_a = round % 3 == 0 ? 70 : 1500;
    const int universe_b = round % 2 == 0 ? 70 : 1500;
    const std::vector<int> a = RandomTids(&rng, universe_a, 80);
    const std::vector<int> b = RandomTids(&rng, universe_b, 80);
    const TidSet sa = TidSet::FromVector(a);
    const TidSet sb = TidSet::FromVector(b);

    std::vector<int> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    TidSet got = sa;
    got &= sb;
    EXPECT_EQ(got.ToVector(), expected) << "intersection, round " << round;
    EXPECT_EQ(got.Count(), static_cast<int>(expected.size()));

    expected.clear();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expected));
    got = sa;
    got |= sb;
    EXPECT_EQ(got.ToVector(), expected) << "union, round " << round;

    expected.clear();
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
    got = sa;
    got -= sb;
    EXPECT_EQ(got.ToVector(), expected) << "difference, round " << round;

    EXPECT_EQ(sa.Includes(sb),
              std::includes(a.begin(), a.end(), b.begin(), b.end()))
        << "includes, round " << round;
    EXPECT_TRUE(sa.Includes(got));  // a \ b is always a subset of a.
    EXPECT_EQ(sa == sb, a == b) << "equality, round " << round;

    for (const int probe : {0, 1, 63, 64, 69, 700, 1499}) {
      EXPECT_EQ(sa.Contains(probe),
                std::binary_search(a.begin(), a.end(), probe))
          << "contains " << probe << ", round " << round;
    }
  }
}

}  // namespace
}  // namespace partminer
