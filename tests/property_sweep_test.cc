// Parameterized property sweeps across workload shapes: every miner and the
// canonical-form machinery exercised over a grid of graph sizes, label
// alphabets and densities.

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/canonical.h"
#include "miner/apriori.h"
#include "miner/brute_force.h"
#include "miner/gaston.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

struct SweepCase {
  int graphs;
  int vertices;
  int extra_edges;
  int vertex_labels;
  int edge_labels;
  int min_support;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  return "g" + std::to_string(c.graphs) + "v" + std::to_string(c.vertices) +
         "e" + std::to_string(c.extra_edges) + "vl" +
         std::to_string(c.vertex_labels) + "el" +
         std::to_string(c.edge_labels) + "s" + std::to_string(c.min_support);
}

constexpr SweepCase kCases[] = {
    {6, 5, 1, 1, 1, 2, 11},   // Unlabeled-ish: heavy automorphisms.
    {6, 5, 3, 1, 1, 2, 12},   // Dense unlabeled.
    {8, 6, 2, 2, 1, 2, 13},
    {8, 6, 2, 4, 2, 2, 14},   // Diverse labels.
    {10, 7, 3, 3, 3, 3, 15},
    {8, 8, 0, 2, 2, 2, 16},   // Trees only.
    {6, 4, 4, 2, 2, 2, 17},   // Near-complete graphs.
    {12, 6, 2, 3, 2, 4, 18},  // Higher support.
};

class MinerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MinerSweep, AllMinersAgreeWithBruteForce) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed);
  const GraphDatabase db = testutil::RandomDatabase(
      &rng, c.graphs, c.vertices, c.extra_edges, c.vertex_labels,
      c.edge_labels);
  MinerOptions options;
  options.min_support = c.min_support;
  options.max_edges = 5;  // Keeps brute force tractable on dense cases.

  BruteForceMiner brute;
  GSpanMiner gspan;
  GastonMiner gaston;
  AprioriMiner apriori;

  const PatternSet expected = brute.Mine(db, options);
  const std::vector<std::string> want = expected.SortedCodeStrings();
  EXPECT_EQ(want, gspan.Mine(db, options).SortedCodeStrings()) << "gSpan";
  EXPECT_EQ(want, gaston.Mine(db, options).SortedCodeStrings()) << "Gaston";
  EXPECT_EQ(want, apriori.Mine(db, options).SortedCodeStrings()) << "Apriori";
}

class CanonicalSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CanonicalSweep, GreedyEqualsExhaustiveAndPermutationInvariant) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed * 31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(
        &rng, c.vertices, c.extra_edges, c.vertex_labels, c.edge_labels);
    const DfsCode greedy = MinimumDfsCode(g);
    EXPECT_EQ(greedy, MinimumDfsCodeExhaustive(g)) << g.DebugString();
    EXPECT_EQ(greedy, MinimumDfsCode(testutil::Permuted(&rng, g)));
    EXPECT_TRUE(IsMinimalDfsCode(greedy));
    EXPECT_EQ(MinimumDfsCode(greedy.ToGraph()), greedy);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MinerSweep, ::testing::ValuesIn(kCases),
                         CaseName);
INSTANTIATE_TEST_SUITE_P(Shapes, CanonicalSweep, ::testing::ValuesIn(kCases),
                         CaseName);

}  // namespace
}  // namespace partminer
