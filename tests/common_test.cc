#include <gtest/gtest.h>

#include <set>

#include "common/parse.h"
#include "common/random.h"
#include "common/setword.h"
#include "common/status.h"
#include "common/timing.h"

namespace partminer {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("nope"); };
  auto wrapper = [&]() -> Status {
    PARTMINER_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kNotFound);
}

TEST(ParseTest, AcceptsWholeStringIntegers) {
  int32_t i32 = -1;
  EXPECT_TRUE(ParseInt32("0", &i32));
  EXPECT_EQ(i32, 0);
  EXPECT_TRUE(ParseInt32("-42", &i32));
  EXPECT_EQ(i32, -42);
  int64_t i64 = 0;
  EXPECT_TRUE(ParseInt64("9223372036854775807", &i64));
  EXPECT_EQ(i64, INT64_MAX);
  uint64_t u64 = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u64));
  EXPECT_EQ(u64, UINT64_MAX);
  double d = 0;
  EXPECT_TRUE(ParseDouble("0.25", &d));
  EXPECT_EQ(d, 0.25);
  EXPECT_TRUE(ParseDouble("-3e2", &d));
  EXPECT_EQ(d, -300.0);
}

TEST(ParseTest, RejectsGarbageAndLeavesOutputUntouched) {
  // The CLI contract: "eight", "8abc", "", and overflow all refuse to
  // parse, and the output keeps its prior value so defaults survive.
  int32_t i32 = 123;
  EXPECT_FALSE(ParseInt32("eight", &i32));
  EXPECT_FALSE(ParseInt32("8abc", &i32));
  EXPECT_FALSE(ParseInt32("", &i32));
  EXPECT_FALSE(ParseInt32("  8", &i32));
  EXPECT_FALSE(ParseInt32("2147483648", &i32));  // INT32_MAX + 1.
  EXPECT_EQ(i32, 123);
  int64_t i64 = 456;
  EXPECT_FALSE(ParseInt64("9223372036854775808", &i64));  // INT64_MAX + 1.
  EXPECT_FALSE(ParseInt64("1.5", &i64));
  EXPECT_EQ(i64, 456);
  uint64_t u64 = 789;
  EXPECT_FALSE(ParseUint64("-1", &u64));
  EXPECT_FALSE(ParseUint64("+1", &u64));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &u64));
  EXPECT_EQ(u64, 789);
  double d = 2.5;
  EXPECT_FALSE(ParseDouble("fast", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_EQ(d, 2.5);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All residues hit over 1000 draws.
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(RngTest, PoissonLikeMeanIsClose) {
  Rng rng(6);
  double total = 0;
  for (int i = 0; i < 5000; ++i) total += rng.PoissonLike(5.0, 1);
  const double mean = total / 5000;
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 6.0);
}

TEST(SetWordTest, SetTestClearCount) {
  SetWord w;
  EXPECT_TRUE(w.Empty());
  w.Set(0);
  w.Set(5);
  w.Set(63);
  EXPECT_TRUE(w.Test(0));
  EXPECT_TRUE(w.Test(5));
  EXPECT_TRUE(w.Test(63));
  EXPECT_FALSE(w.Test(1));
  EXPECT_EQ(w.Count(), 3);
  w.Clear(5);
  EXPECT_FALSE(w.Test(5));
  EXPECT_EQ(w.Count(), 2);
}

TEST(SetWordTest, AllAndUnion) {
  const SetWord all4 = SetWord::All(4);
  EXPECT_EQ(all4.Count(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(all4.Test(i));
  EXPECT_FALSE(all4.Test(4));

  SetWord a, b;
  a.Set(1);
  b.Set(2);
  a |= b;
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_EQ(SetWord::All(64).Count(), 64);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait ~2ms.
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(2)) {
  }
  EXPECT_GE(watch.ElapsedMillis(), 1.5);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 1.5);
}

}  // namespace
}  // namespace partminer
