// Merge-join boundary coverage: empty units and node databases, single-graph
// units, patterns frequent in every unit, and k larger than the database.

#include "core/merge_join.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/part_miner.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

void ExpectSamePatterns(const PatternSet& expected, const PatternSet& actual,
                        const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what;
    EXPECT_EQ(p.support, q->support) << what;
    EXPECT_EQ(p.tids, q->tids) << what;
  }
}

/// A path graph a-b-a with fixed labels, present in every test database so
/// at least one pattern is frequent in every unit.
Graph SharedMotif() {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(1);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  return g;
}

TEST(MergeJoinEdgeTest, EmptyNodeDatabaseYieldsEmptyResult) {
  GraphDatabase empty;
  MergeJoinOptions options;
  options.min_support = 1;
  MergeJoinStats stats;
  const PatternSet result =
      MergeJoin(empty, PatternSet(), PatternSet(), options, &stats, nullptr);
  EXPECT_EQ(result.size(), 0);
}

TEST(MergeJoinEdgeTest, EmptyChildrenStillRecoverExactly) {
  // Children carry no patterns (e.g. both units mined empty at their reduced
  // support); the node sweep must still recover everything frequent in the
  // recombined database.
  Rng rng(21);
  GraphDatabase db;
  for (int i = 0; i < 6; ++i) db.Add(SharedMotif());
  for (int i = 0; i < 4; ++i) {
    db.Add(testutil::RandomConnectedGraph(&rng, 5, 2, 3, 2));
  }
  MergeJoinOptions options;
  options.min_support = 4;
  MergeJoinStats stats;
  const PatternSet result =
      MergeJoin(db, PatternSet(), PatternSet(), options, &stats, nullptr);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 4;
  ExpectSamePatterns(gspan.Mine(db, full), result, "empty children");
}

TEST(MergeJoinEdgeTest, SupportAboveDatabaseSizeIsEmpty) {
  GraphDatabase db;
  db.Add(SharedMotif());
  MergeJoinOptions options;
  options.min_support = 2;  // k larger than the database at this node.
  MergeJoinStats stats;
  const PatternSet result =
      MergeJoin(db, PatternSet(), PatternSet(), options, &stats, nullptr);
  EXPECT_EQ(result.size(), 0);
}

TEST(MergeJoinEdgeTest, SingleGraphUnitsMergeExactly) {
  // Two units of one graph each: the smallest possible merge. The verified
  // result must equal a direct mining of the two-graph database.
  Rng rng(22);
  GraphDatabase db;
  db.Add(SharedMotif());
  db.Add(testutil::Permuted(&rng, SharedMotif()));

  PartMinerOptions options;
  options.min_support_count = 2;
  options.partition.k = 2;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 2;
  ExpectSamePatterns(gspan.Mine(db, full), result.patterns,
                     "single-graph units");
  // The shared motif is frequent in both units and must survive with full
  // support and both TIDs.
  bool found_full_support = false;
  for (const PatternInfo& p : result.patterns.patterns()) {
    if (p.support == 2) found_full_support = true;
  }
  EXPECT_TRUE(found_full_support);
}

TEST(MergeJoinEdgeTest, PatternFrequentInEveryUnitKeepsFullSupport) {
  // Every graph contains the motif, so it is frequent in every unit at the
  // reduced support and must come out of the merges with support == |D|.
  Rng rng(23);
  GraphDatabase db;
  for (int i = 0; i < 12; ++i) db.Add(testutil::Permuted(&rng, SharedMotif()));

  PartMinerOptions options;
  options.min_support_count = 12;
  options.partition.k = 4;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 12;
  const PatternSet expected = gspan.Mine(db, full);
  ASSERT_GT(expected.size(), 0);
  ExpectSamePatterns(expected, result.patterns, "frequent everywhere");
  for (const PatternInfo& p : result.patterns.patterns()) {
    EXPECT_EQ(p.support, 12) << p.code.ToString();
    EXPECT_EQ(p.tids.Count(), 12) << p.code.ToString();
  }
}

TEST(MergeJoinEdgeTest, KLargerThanDatabaseLeavesUnitsEmpty) {
  // k = 8 units over a 3-graph database: most units hold no vertices at
  // all. Partitioning, unit mining, and the merge tree must all tolerate
  // genuinely empty units and still produce the exact result.
  Rng rng(24);
  GraphDatabase db;
  for (int i = 0; i < 3; ++i) {
    db.Add(testutil::RandomConnectedGraph(&rng, 4, 1, 2, 2));
  }
  PartMinerOptions options;
  options.min_support_count = 2;
  options.partition.k = 8;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 2;
  ExpectSamePatterns(gspan.Mine(db, full), result.patterns, "k > |D|");
}

}  // namespace
}  // namespace partminer
