#include "core/merge_join.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "graph/canonical.h"
#include "miner/gspan.h"
#include "partition/db_partition.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(FrequentSingleEdgesTest, CountsPerGraphOnce) {
  GraphDatabase db;
  {
    Graph g;  // Two parallel-labeled 0-1 edges via a path 0-1-0.
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddVertex(0);
    g.AddEdge(0, 1, 7);
    g.AddEdge(1, 2, 7);
    db.Add(g);
  }
  {
    Graph g;
    g.AddVertex(1);
    g.AddVertex(0);
    g.AddEdge(0, 1, 7);
    db.Add(g);
  }
  const PatternSet edges = FrequentSingleEdges(db, 2);
  ASSERT_EQ(edges.size(), 1);
  const PatternInfo& p = edges.patterns()[0];
  EXPECT_EQ(p.support, 2);  // Per-graph dedup: graph 0 counts once.
  EXPECT_EQ(p.code[0], (DfsEdge{0, 1, 0, 7, 1}));
  EXPECT_EQ(p.tids.ToVector(), (std::vector<int>{0, 1}));
}

TEST(GenerateExtensionsTest, ExtendsEdgeToAllTwoEdgePatterns) {
  // Vocabulary: single frequent edge (0)-[5]-(0).
  PatternSet vocab;
  PatternInfo edge;
  edge.code.Append({0, 1, 0, 5, 0});
  edge.support = 1;
  vocab.Upsert(edge);

  Graph pattern = edge.code.ToGraph();
  const std::vector<DfsCode> ext = GenerateExtensions(pattern, vocab);
  // From a single 0-0 edge: attach a new 0-vertex to either endpoint (one
  // canonical result: the 3-path). No closing possible (would duplicate).
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0].size(), 2u);
}

TEST(GenerateExtensionsTest, ClosesTriangles) {
  PatternSet vocab;
  PatternInfo edge;
  edge.code.Append({0, 1, 0, 5, 0});
  vocab.Upsert(edge);

  // Pattern: path of 3 vertices labeled 0 with edges 5.
  Graph path;
  path.AddVertex(0);
  path.AddVertex(0);
  path.AddVertex(0);
  path.AddEdge(0, 1, 5);
  path.AddEdge(1, 2, 5);
  const std::vector<DfsCode> ext = GenerateExtensions(path, vocab);
  // Extensions: 4-path, star (branch at middle), triangle.
  std::set<std::string> kinds;
  for (const DfsCode& c : ext) kinds.insert(c.ToString());
  EXPECT_EQ(ext.size(), 3u);
  bool has_cycle = false;
  for (const DfsCode& c : ext) {
    if (c.VertexCount() == 3 && c.size() == 3) has_cycle = true;
  }
  EXPECT_TRUE(has_cycle);
}

TEST(ForEachMaximalSubpatternTest, TriangleYieldsOnePath) {
  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddEdge(0, 1, 0);
  triangle.AddEdge(1, 2, 0);
  triangle.AddEdge(2, 0, 0);
  std::set<std::string> subs;
  int calls = 0;
  ForEachMaximalSubpattern(triangle, [&](const DfsCode& c) {
    subs.insert(c.ToString());
    ++calls;
  });
  EXPECT_EQ(calls, 3);            // One per removable edge.
  EXPECT_EQ(subs.size(), 1u);     // All three removals are isomorphic.
}

TEST(ForEachMaximalSubpatternTest, DisconnectingRemovalsSkipped) {
  // Path of 4 vertices: removing a middle edge disconnects -> only the two
  // leaf-edge removals fire.
  Graph path;
  for (int i = 0; i < 4; ++i) path.AddVertex(i);
  path.AddEdge(0, 1, 0);
  path.AddEdge(1, 2, 0);
  path.AddEdge(2, 3, 0);
  int calls = 0;
  ForEachMaximalSubpattern(path, [&](const DfsCode&) { ++calls; });
  EXPECT_EQ(calls, 2);
}

/// Property behind Theorem 1/3: the merge at a node recovers exactly the
/// gSpan result on the node's recombined database — same patterns, same
/// supports, all exact.
TEST(MergeJoinTest, LosslessRecoveryAgainstGSpan) {
  Rng rng(606);
  for (int trial = 0; trial < 6; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 8, 3, 3, 2);
    const int sup = 3;

    PartitionOptions popt;
    popt.k = 2;
    const PartitionedDatabase part = PartitionedDatabase::Create(db, popt);

    GSpanMiner miner;
    MinerOptions unit_options;
    unit_options.min_support = (sup + 1) / 2;
    const PatternSet left =
        miner.Mine(part.MaterializeUnit(db, 0), unit_options);
    const PatternSet right =
        miner.Mine(part.MaterializeUnit(db, 1), unit_options);

    MergeJoinOptions mj;
    mj.min_support = sup;
    MergeJoinStats stats;
    const PatternSet merged =
        MergeJoin(db, left, right, mj, &stats, /*frontier_out=*/nullptr);

    MinerOptions full;
    full.min_support = sup;
    const PatternSet expected = miner.Mine(db, full);

    EXPECT_EQ(expected.SortedCodeStrings(), merged.SortedCodeStrings())
        << "trial " << trial;
    for (const PatternInfo& p : expected.patterns()) {
      const PatternInfo* q = merged.Find(p.code);
      ASSERT_NE(q, nullptr) << "trial " << trial;
      EXPECT_EQ(p.support, q->support);
      EXPECT_TRUE(q->exact_tids);
    }
  }
}

/// IncMergeJoin recovers the exact post-update pattern set from the cached
/// pre-update set, and the known-pattern skip actually skips counting.
TEST(IncMergeJoinTest, DeltaRecoveryAgainstGSpan) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    GraphDatabase db = testutil::RandomDatabase(&rng, 12, 8, 3, 3, 2);
    const int sup = 3;
    GSpanMiner miner;
    MinerOptions options;
    options.min_support = sup;
    NodeFrontier initial_frontier;
    initial_frontier.valid = true;
    options.capture_frontier = &initial_frontier.map;
    const PatternSet cached = miner.Mine(db, options);
    options.capture_frontier = nullptr;

    // Mutate a few graphs: relabel one vertex each.
    std::vector<int> updated;
    for (int gi = 0; gi < db.size(); gi += 4) {
      Graph& g = db.mutable_graph(gi);
      const VertexId v = static_cast<VertexId>(rng.Uniform(g.VertexCount()));
      g.set_vertex_label(v, static_cast<Label>(rng.Uniform(3)));
      updated.push_back(gi);
    }

    const PatternSet expected = miner.Mine(db, options);
    for (const double delta_threshold : {1.0, 0.0}) {
      // 1.0 forces the update-proportional delta sweep; 0.0 forces the
      // exact re-sweep. Both must produce identical exact results.
      MergeJoinOptions mj;
      mj.min_support = sup;
      mj.delta_sweep_max_fraction = delta_threshold;
      MergeJoinStats stats;
      NodeFrontier frontier = initial_frontier;
      const PatternSet incremental =
          IncMergeJoin(db, cached, updated, mj, &stats, &frontier);

      EXPECT_EQ(expected.SortedCodeStrings(), incremental.SortedCodeStrings())
          << "trial " << trial << " threshold " << delta_threshold;
      for (const PatternInfo& p : expected.patterns()) {
        const PatternInfo* q = incremental.Find(p.code);
        ASSERT_NE(q, nullptr);
        EXPECT_EQ(p.support, q->support) << p.code.ToString();
        EXPECT_EQ(p.tids, q->tids) << p.code.ToString();
      }
      if (delta_threshold == 1.0) {
        EXPECT_EQ(stats.delta_recounts, cached.size());
      }
    }
  }
}

TEST(IncMergeJoinTest, NoUpdatesIsCheapIdentity) {
  Rng rng(123);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 8, 3, 3, 2);
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 3;
  const PatternSet cached = miner.Mine(db, options);

  MergeJoinOptions mj;
  mj.min_support = 3;
  MergeJoinStats stats;
  const PatternSet result = IncMergeJoin(db, cached, {}, mj, &stats, nullptr);
  EXPECT_EQ(cached.SortedCodeStrings(), result.SortedCodeStrings());
  // Nothing was updated: the discovery sweep generates no candidates.
  EXPECT_EQ(stats.candidates_generated, 0);
  EXPECT_EQ(stats.candidates_counted, 0);
}

}  // namespace
}  // namespace partminer
