// Long-running stress cases split out of stress_test.cc: many-round
// incremental sequences with full re-mining after every round. Runs under
// the `slow` ctest label (ctest -L slow); the fast tier keeps the boundary
// cases.

#include <gtest/gtest.h>

#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/gspan.h"

namespace partminer {
namespace {

void ExpectSamePatterns(const PatternSet& expected, const PatternSet& actual,
                        const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what;
    EXPECT_EQ(p.support, q->support) << what << " " << p.code.ToString();
  }
}

TEST(StressSlowTest, ManyIncrementalRoundsMixedKinds) {
  // Ten rounds alternating update kinds and fractions, including new labels;
  // exactness must hold after every round.
  GeneratorParams params;
  params.num_graphs = 20;
  params.avg_edges = 10;
  params.num_labels = 4;
  params.num_kernels = 6;
  params.seed = 31;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.2, 32);

  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 4;
  PartMiner miner(options);
  miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 4;

  IncPartMiner inc;
  for (int round = 0; round < 10; ++round) {
    UpdateOptions upd;
    upd.fraction_graphs = (round % 3 == 0) ? 0.05 : 0.5;
    upd.updates_per_graph = 1 + round % 3;
    upd.new_label_probability = 0.4;  // Aggressive new-label injection.
    upd.kinds = {static_cast<UpdateKind>(round % 3)};
    upd.seed = 7000 + round;
    const UpdateLog log = ApplyUpdates(&db, params.num_labels, upd);
    const IncPartMinerResult r = inc.Update(&miner, db, log);
    ExpectSamePatterns(gspan.Mine(db, full), r.patterns,
                       "round " + std::to_string(round));
  }
}

TEST(StressSlowTest, VertexChainsRouteThroughNewVertices) {
  // AddVertex updates can chain (a new vertex attached to a new vertex via
  // repeated rounds); assignment extension must stay total.
  GeneratorParams params;
  params.num_graphs = 10;
  params.avg_edges = 8;
  params.num_labels = 4;
  params.num_kernels = 4;
  params.seed = 77;
  GraphDatabase db = GenerateDatabase(params);

  PartMinerOptions options;
  options.min_support_count = 3;
  options.partition.k = 3;
  PartMiner miner(options);
  miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 3;
  IncPartMiner inc;
  for (int round = 0; round < 5; ++round) {
    UpdateOptions upd;
    upd.fraction_graphs = 1.0;
    upd.updates_per_graph = 3;
    upd.kinds = {UpdateKind::kAddVertex};
    upd.seed = 900 + round;
    const UpdateLog log = ApplyUpdates(&db, params.num_labels, upd);
    const IncPartMinerResult r = inc.Update(&miner, db, log);
    ExpectSamePatterns(gspan.Mine(db, full), r.patterns,
                       "chain round " + std::to_string(round));
    // Every vertex of every graph must have a unit assignment.
    const PartitionedDatabase& part = miner.partitioned();
    for (int i = 0; i < db.size(); ++i) {
      for (VertexId v = 0; v < db.graph(i).VertexCount(); ++v) {
        const int unit = part.unit_of(i, v);
        EXPECT_GE(unit, 0);
        EXPECT_LT(unit, 3);
      }
    }
  }
}

}  // namespace
}  // namespace partminer
