#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "graph/canonical.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(GraphIoTest, ParsesBasicDatabase) {
  std::istringstream in(
      "t # 0\n"
      "v 0 5\n"
      "v 1 6\n"
      "e 0 1 7\n"
      "\n"
      "# a comment line\n"
      "t # 3\n"
      "v 0 1\n");
  GraphDatabase db;
  ASSERT_TRUE(ReadGraphDatabase(in, &db).ok());
  ASSERT_EQ(db.size(), 2);
  EXPECT_EQ(db.gid(0), 0);
  EXPECT_EQ(db.gid(1), 3);
  EXPECT_EQ(db.graph(0).VertexCount(), 2);
  EXPECT_EQ(db.graph(0).EdgeLabelBetween(0, 1), 7);
  EXPECT_EQ(db.graph(1).VertexCount(), 1);
  EXPECT_EQ(db.graph(1).EdgeCount(), 0);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  const char* bad_inputs[] = {
      "v 0 1\n",                       // Vertex before header.
      "t # 0\nv 1 5\n",                // Non-dense vertex ids.
      "t # 0\nv 0 1\ne 0 3 1\n",       // Edge endpoint out of range.
      "t # 0\nv 0 1\ne 0 0 1\n",       // Self loop.
      "t 0\n",                         // Missing '#'.
      "x nonsense\n",                  // Unknown tag.
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    GraphDatabase db;
    EXPECT_FALSE(ReadGraphDatabase(in, &db).ok()) << text;
  }
}

TEST(GraphIoTest, RoundTripPreservesIsomorphismClass) {
  Rng rng(5);
  GraphDatabase db;
  for (int i = 0; i < 20; ++i) {
    db.Add(testutil::RandomConnectedGraph(&rng, 8, 4, 4, 3), i * 3);
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphDatabase(db, out).ok());
  std::istringstream in(out.str());
  GraphDatabase reloaded;
  ASSERT_TRUE(ReadGraphDatabase(in, &reloaded).ok());
  ASSERT_EQ(reloaded.size(), db.size());
  for (int i = 0; i < db.size(); ++i) {
    EXPECT_EQ(reloaded.gid(i), db.gid(i));
    EXPECT_EQ(MinimumDfsCode(reloaded.graph(i)), MinimumDfsCode(db.graph(i)));
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  GraphDatabase db;
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdge(0, 1, 3);
  db.Add(g, 42);
  const std::string path =
      "/tmp/partminer_io_test_" + std::to_string(::getpid()) + ".lg";
  ASSERT_TRUE(WriteGraphDatabaseFile(db, path).ok());
  GraphDatabase reloaded;
  ASSERT_TRUE(ReadGraphDatabaseFile(path, &reloaded).ok());
  ASSERT_EQ(reloaded.size(), 1);
  EXPECT_EQ(reloaded.gid(0), 42);
  ::unlink(path.c_str());
}

TEST(GraphIoTest, MissingFileReportsIoError) {
  GraphDatabase db;
  const Status status =
      ReadGraphDatabaseFile("/nonexistent/path/of/doom.lg", &db);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

}  // namespace
}  // namespace partminer
