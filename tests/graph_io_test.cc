#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "graph/canonical.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(GraphIoTest, ParsesBasicDatabase) {
  std::istringstream in(
      "t # 0\n"
      "v 0 5\n"
      "v 1 6\n"
      "e 0 1 7\n"
      "\n"
      "# a comment line\n"
      "t # 3\n"
      "v 0 1\n");
  GraphDatabase db;
  ASSERT_TRUE(ReadGraphDatabase(in, &db).ok());
  ASSERT_EQ(db.size(), 2);
  EXPECT_EQ(db.gid(0), 0);
  EXPECT_EQ(db.gid(1), 3);
  EXPECT_EQ(db.graph(0).VertexCount(), 2);
  EXPECT_EQ(db.graph(0).EdgeLabelBetween(0, 1), 7);
  EXPECT_EQ(db.graph(1).VertexCount(), 1);
  EXPECT_EQ(db.graph(1).EdgeCount(), 0);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  const char* bad_inputs[] = {
      "v 0 1\n",                       // Vertex before header.
      "t # 0\nv 1 5\n",                // Non-dense vertex ids.
      "t # 0\nv 0 1\ne 0 3 1\n",       // Edge endpoint out of range.
      "t # 0\nv 0 1\ne 0 0 1\n",       // Self loop.
      "t 0\n",                         // Missing '#'.
      "x nonsense\n",                  // Unknown tag.
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    GraphDatabase db;
    EXPECT_FALSE(ReadGraphDatabase(in, &db).ok()) << text;
  }
}

TEST(GraphIoTest, ErrorsAreLineNumberedAndSpecific) {
  struct Case {
    const char* text;
    const char* line;       // Expected "line <n>" location.
    const char* substring;  // Expected diagnosis.
  };
  const Case cases[] = {
      {"t # 0\nv 0 1\nv 0 2\n", "line 3", "duplicate vertex id 0"},
      {"t # 0\nv 0 1\nv 2 2\n", "line 3", "non-dense vertex id 2"},
      {"t # 0\nv 0 1\nv 1 2\ne 0 5 1\n", "line 4",
       "dangling edge endpoint 5 (graph has 2 vertices)"},
      {"t # 0\nv 0 1\ne 0 0 1\n", "line 3", "self-loop edge at vertex 0"},
      {"t # 0\nv 0 1\nv 1 2\ne 0 1 3\ne 0 1 4\n", "line 5",
       "duplicate edge 0-1"},
      {"t # -7\n", "line 1", "negative graph id -7"},
      {"t # 0\nv 0 1 9\n", "line 2", "trailing tokens"},
  };
  for (const Case& c : cases) {
    std::istringstream in(c.text);
    GraphDatabase db;
    const Status status = ReadGraphDatabase(in, &db);
    ASSERT_EQ(status.code(), Status::Code::kCorruption) << c.text;
    EXPECT_NE(status.message().find(c.line), std::string::npos)
        << status.ToString();
    EXPECT_NE(status.message().find(c.substring), std::string::npos)
        << status.ToString();
  }
}

// Every file in data/corpus/malformed/ carries a first-line
// `# expect-error: <substring>` annotation; loading it must fail with a
// Corruption status containing that substring and a line number. New
// rejection paths get coverage by dropping in a file — no code changes.
TEST(GraphIoCorpusTest, MalformedCorpusIsRejectedAsAnnotated) {
  const std::filesystem::path dir =
      std::filesystem::path(PARTMINER_SOURCE_DIR) / "data" / "corpus" /
      "malformed";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".lg") continue;
    ++files;
    SCOPED_TRACE(entry.path().filename().string());

    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open());
    std::string annotation;
    ASSERT_TRUE(std::getline(in, annotation));
    const std::string marker = "# expect-error: ";
    ASSERT_EQ(annotation.rfind(marker, 0), 0u)
        << "first line must be '" << marker << "<substring>'";
    const std::string expected = annotation.substr(marker.size());
    ASSERT_FALSE(expected.empty());

    in.seekg(0);
    GraphDatabase db;
    const Status status = ReadGraphDatabase(in, &db);
    ASSERT_FALSE(status.ok()) << "parsed successfully";
    EXPECT_EQ(status.code(), Status::Code::kCorruption);
    EXPECT_NE(status.message().find(expected), std::string::npos)
        << status.ToString();
    EXPECT_NE(status.message().find("line "), std::string::npos)
        << status.ToString();
  }
  EXPECT_GE(files, 10);  // The corpus covers every rejection path.
}

TEST(GraphIoTest, RoundTripPreservesIsomorphismClass) {
  Rng rng(5);
  GraphDatabase db;
  for (int i = 0; i < 20; ++i) {
    db.Add(testutil::RandomConnectedGraph(&rng, 8, 4, 4, 3), i * 3);
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphDatabase(db, out).ok());
  std::istringstream in(out.str());
  GraphDatabase reloaded;
  ASSERT_TRUE(ReadGraphDatabase(in, &reloaded).ok());
  ASSERT_EQ(reloaded.size(), db.size());
  for (int i = 0; i < db.size(); ++i) {
    EXPECT_EQ(reloaded.gid(i), db.gid(i));
    EXPECT_EQ(MinimumDfsCode(reloaded.graph(i)), MinimumDfsCode(db.graph(i)));
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  GraphDatabase db;
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdge(0, 1, 3);
  db.Add(g, 42);
  const std::string path =
      "/tmp/partminer_io_test_" + std::to_string(::getpid()) + ".lg";
  ASSERT_TRUE(WriteGraphDatabaseFile(db, path).ok());
  GraphDatabase reloaded;
  ASSERT_TRUE(ReadGraphDatabaseFile(path, &reloaded).ok());
  ASSERT_EQ(reloaded.size(), 1);
  EXPECT_EQ(reloaded.gid(0), 42);
  ::unlink(path.c_str());
}

TEST(GraphIoTest, MissingFileReportsIoError) {
  GraphDatabase db;
  const Status status =
      ReadGraphDatabaseFile("/nonexistent/path/of/doom.lg", &db);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

}  // namespace
}  // namespace partminer
