// Tests for the LeanStore-style swizzle buffer manager: swip encoding,
// the versioned latch, hot-path hits, clock/cooling eviction, the
// classic-pool fault contract (failed reads cache nothing, failed
// write-back loses nothing), asynchronous write-back through WriterPool,
// a concurrent pin/unpin/mutate sweep against an atomic oracle, and a
// single-threaded randomized op-stream equivalence check against the
// classic BufferPool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/swizzle_pool.h"
#include "storage/versioned_latch.h"
#include "storage/writer_pool.h"

namespace partminer {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/partminer_swizzle_test_") + tag + "_" +
         std::to_string(::getpid());
}

PoolSizing Sizing(int frames, int partitions = 1, int writer_threads = 0,
                  int writeback_queue = 4, int cooling_batch = 0) {
  PoolSizing sizing;
  sizing.engine = StorageEngine::kSwizzle;
  sizing.frames = frames;
  sizing.partitions = partitions;
  sizing.writer_threads = writer_threads;
  sizing.writeback_queue = writeback_queue;
  sizing.cooling_batch = cooling_batch;
  return sizing;
}

PageId MustAllocate(SwizzlePool* pool, char marker) {
  PageId id = kInvalidPageId;
  PageMutGuard guard;
  const Status status = pool->Allocate(&id, &guard);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(guard.data(), nullptr);
  std::memset(guard.data(), marker, kPageSize);
  return id;
}

void ExpectPage(SwizzlePool* pool, PageId id, char marker) {
  PageGuard guard;
  const Status status = pool->Fetch(id, &guard);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(guard.data(), nullptr);
  EXPECT_EQ(guard.data()[0], marker) << "page " << id;
  EXPECT_EQ(guard.data()[kPageSize - 1], marker) << "page " << id;
}

TEST(VersionedLatchTest, ExclusiveLockCycle) {
  VersionedLatch latch;
  const uint64_t before = latch.OptimisticVersion();
  EXPECT_TRUE(latch.Validate(before));  // No writer: version holds.

  EXPECT_TRUE(latch.TryLockExclusive());
  EXPECT_TRUE(latch.IsLocked());
  EXPECT_FALSE(latch.TryLockExclusive());  // Not reentrant.
  EXPECT_FALSE(latch.Validate(before));    // Writer active: readers back off.
  latch.Unlock();
  EXPECT_FALSE(latch.IsLocked());

  // The write bumped the version: the old optimistic read must not validate,
  // a fresh one must.
  EXPECT_FALSE(latch.Validate(before));
  EXPECT_TRUE(latch.Validate(latch.OptimisticVersion()));
}

TEST(VersionedLatchTest, ConcurrentExclusiveLocksAreSerialized) {
  VersionedLatch latch;
  int unprotected = 0;  // Mutated only under the latch.
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&]() {
      for (int r = 0; r < kRounds; ++r) {
        latch.LockExclusive();
        ++unprotected;
        latch.Unlock();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(unprotected, kThreads * kRounds);
  EXPECT_FALSE(latch.IsLocked());
}

TEST(SwipTest, EncodingRoundTrips) {
  FrameMeta frame;  // alignas(64): low bits free for tags.
  const uint64_t hot = swip::MakeHot(&frame);
  EXPECT_TRUE(swip::IsResident(hot));
  EXPECT_FALSE(swip::IsCooling(hot));
  EXPECT_EQ(swip::FrameOf(hot), &frame);

  const uint64_t cooling = swip::MakeCooling(&frame);
  EXPECT_TRUE(swip::IsResident(cooling));
  EXPECT_TRUE(swip::IsCooling(cooling));
  EXPECT_EQ(swip::FrameOf(cooling), &frame);

  EXPECT_FALSE(swip::IsResident(swip::kCold));
}

TEST(SwizzlePoolTest, HotFetchesHitWithoutDiskReads) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("hot")).ok());
  SwizzlePool pool(&disk, Sizing(4));

  const PageId id = MustAllocate(&pool, 42);
  const int64_t reads_before = disk.stats().page_reads;
  for (int i = 0; i < 10; ++i) ExpectPage(&pool, id, 42);
  EXPECT_EQ(disk.stats().page_reads, reads_before);
  EXPECT_GE(pool.hit_count(), 10);
  EXPECT_GE(pool.stats().pool_hits, 10);  // stats() syncs the counters.
}

TEST(SwizzlePoolTest, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("evict")).ok());
  SwizzlePool pool(&disk, Sizing(2));

  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    ids[i] = MustAllocate(&pool, static_cast<char>(i + 1));
  }
  EXPECT_GT(disk.stats().evictions, 0);
  EXPECT_GT(disk.stats().page_writes, 0);
  // Evicted pages re-read their written-back contents.
  for (int i = 0; i < 3; ++i) {
    ExpectPage(&pool, ids[i], static_cast<char>(i + 1));
  }
  EXPECT_GT(disk.stats().page_reads, 0);
}

TEST(SwizzlePoolTest, AllPinnedIsResourceExhausted) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("pinned")).ok());
  SwizzlePool pool(&disk, Sizing(2));

  PageId a = kInvalidPageId, b = kInvalidPageId, c = kInvalidPageId;
  PageMutGuard ga, gb, gc;
  ASSERT_TRUE(pool.Allocate(&a, &ga).ok());
  ASSERT_TRUE(pool.Allocate(&b, &gb).ok());
  const Status full = pool.Allocate(&c, &gc);
  EXPECT_EQ(full.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(gc.data(), nullptr);
  ga.Release();
  ASSERT_TRUE(pool.Allocate(&c, &gc).ok());  // Freed frame reclaimed.
}

TEST(SwizzlePoolTest, SyncWriteBackFaultLosesNothing) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("evfault")).ok());
  FaultInjector injector;
  SwizzlePool pool(&disk, Sizing(1));

  const PageId dirty = MustAllocate(&pool, 77);

  // Every write fails: the synchronous eviction write-back surfaces the
  // error and must leave the dirty page cached and intact.
  disk.set_fault_injector(&injector);
  injector.SetProbability(FaultInjector::Op::kWrite, 1.0);
  PageId fresh = kInvalidPageId;
  PageMutGuard guard;
  const Status evict = pool.Allocate(&fresh, &guard);
  EXPECT_EQ(evict.code(), Status::Code::kIoError);
  EXPECT_NE(evict.message().find("injected write fault"), std::string::npos)
      << evict.ToString();

  // Heal the disk: the page is still cached with its data; flush persists.
  disk.set_fault_injector(nullptr);
  ExpectPage(&pool, dirty, 77);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  ExpectPage(&pool, dirty, 77);  // Re-read from disk.
}

TEST(SwizzlePoolTest, FailedReadDoesNotCacheGarbage) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("readfault")).ok());
  FaultInjector injector;
  SwizzlePool pool(&disk, Sizing(2));

  const PageId id = MustAllocate(&pool, 11);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();

  disk.set_fault_injector(&injector);
  injector.FailOnce(FaultInjector::Op::kRead, 0);
  PageGuard guard;
  const Status failed = pool.Fetch(id, &guard);
  EXPECT_EQ(failed.code(), Status::Code::kIoError);
  EXPECT_EQ(guard.data(), nullptr);

  // Nothing was installed: the retry re-reads from disk and sees real data.
  const int64_t reads_before = disk.stats().page_reads;
  ExpectPage(&pool, id, 11);
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);
  disk.set_fault_injector(nullptr);
}

TEST(SwizzlePoolTest, PinnedPageSurvivesEvictionPressure) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("pin2")).ok());
  SwizzlePool pool(&disk, Sizing(2));

  PageId pinned = kInvalidPageId;
  PageMutGuard guard;
  ASSERT_TRUE(pool.Allocate(&pinned, &guard).ok());
  guard.data()[7] = 99;

  // Churn the other frame.
  for (int i = 0; i < 5; ++i) MustAllocate(&pool, static_cast<char>(i));
  EXPECT_EQ(guard.data()[7], 99);  // Still resident and intact.
}

TEST(SwizzlePoolTest, MultiPartitionPoolKeepsPagesIntact) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("part")).ok());
  // 8 frames over 4 partitions: partition p caches pages with id % 4 == p.
  SwizzlePool pool(&disk, Sizing(8, /*partitions=*/4));
  EXPECT_EQ(pool.frames(), 8);
  EXPECT_EQ(pool.partitions(), 4);

  PageId ids[8];
  for (int i = 0; i < 8; ++i) {
    ids[i] = MustAllocate(&pool, static_cast<char>(i + 1));
  }
  for (int i = 0; i < 8; ++i) {
    ExpectPage(&pool, ids[i], static_cast<char>(i + 1));
  }
  // Working set == capacity per partition: no eviction, every fetch hit.
  EXPECT_EQ(disk.stats().evictions, 0);
  EXPECT_EQ(pool.hit_count(), 8);
}

TEST(SwizzlePoolTest, ClearResetsFrames) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("clear")).ok());
  SwizzlePool pool(&disk, Sizing(2));
  const PageId a = MustAllocate(&pool, 5);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  const int64_t reads_before = disk.stats().page_reads;
  ExpectPage(&pool, a, 5);  // After Clear, fetching re-reads from disk.
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);
}

// Second-chance regression: a page touched on every round keeps getting its
// referenced bit re-armed, so the clock sweep almost always passes it over
// and evicts the untouched fillers instead. Only the hot page is ever
// re-fetched, so page_reads counts exactly its evictions: cooling-FIFO
// order without the second chance would evict it roughly every pool-size
// rounds (~5 times here); the referenced bit must hold that to the rare
// full-lap wraparound where clock legitimately claims it.
TEST(SwizzlePoolTest, ClockSecondChanceKeepsTouchedPageResident) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("clock")).ok());
  SwizzlePool pool(&disk, Sizing(4, 1, 0, 4, /*cooling_batch=*/1));

  const PageId hot = MustAllocate(&pool, 0x5C);
  for (int round = 0; round < 20; ++round) {
    MustAllocate(&pool, static_cast<char>(round));  // Forces eviction.
    ExpectPage(&pool, hot, 0x5C);                   // Re-arms referenced.
  }
  // 21 allocations into 4 frames: everything past the initial fill evicts.
  EXPECT_GE(disk.stats().evictions, 17);
  EXPECT_LE(disk.stats().page_reads, 2);
}

// Cooling regression: with a sweep batch covering the whole pool, one
// eviction demotes every idle frame to COOLING; touching a cooled page
// promotes it back to HOT via a swip CAS — no disk read.
TEST(SwizzlePoolTest, CoolingPromotionAvoidsDiskRead) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("cool")).ok());
  SwizzlePool pool(&disk, Sizing(4, 1, 0, 4, /*cooling_batch=*/4));

  PageId ids[4];
  for (int i = 0; i < 4; ++i) {
    ids[i] = MustAllocate(&pool, static_cast<char>(0x20 + i));
  }
  // One more allocation: the sweep strips all referenced bits, cools the
  // whole pool, and evicts exactly the cooling-FIFO head (the first page).
  MustAllocate(&pool, 0x77);
  EXPECT_EQ(disk.stats().evictions, 1);
  pool.PublishMetrics();
  EXPECT_GE(obs::MetricRegistry::Global()
                .GetGauge("pool.cooling_frames")->value(), 1);

  // The three survivors are cooling; fetching each promotes without I/O.
  const int64_t promotions_before =
      obs::MetricRegistry::Global()
          .GetCounter("pool.cooling_promotions")->value();
  const int64_t reads_before = disk.stats().page_reads;
  for (int i = 3; i >= 1; --i) {
    ExpectPage(&pool, ids[i], static_cast<char>(0x20 + i));
  }
  EXPECT_EQ(disk.stats().page_reads, reads_before);
  EXPECT_EQ(obs::MetricRegistry::Global()
                    .GetCounter("pool.cooling_promotions")->value() -
                promotions_before,
            3);
  // The FIFO head was the page actually unswizzled; it re-reads from disk.
  ExpectPage(&pool, ids[0], 0x20);
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);
}

TEST(SwizzlePoolTest, AsyncWriteBackFlushesOnDrain) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("async")).ok());
  SwizzlePool pool(&disk, Sizing(2, 1, /*writer_threads=*/2));

  PageId ids[6];
  for (int i = 0; i < 6; ++i) {
    ids[i] = MustAllocate(&pool, static_cast<char>(0x30 + i));
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  for (int i = 0; i < 6; ++i) {
    ExpectPage(&pool, ids[i], static_cast<char>(0x30 + i));
  }
}

// Async fault contract: a failed background write parks the bytes in the
// writer pool; re-fetching the evicted page is served from that buffer (the
// freshest version — disk is stale), FlushAll surfaces the error after a
// retry, and healing the disk lets the data reach it. Nothing is lost.
TEST(SwizzlePoolTest, AsyncWriteBackFailureRetainsBytes) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("asyncfault")).ok());
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  injector.SetProbability(FaultInjector::Op::kWrite, 1.0);
  SwizzlePool pool(&disk, Sizing(2, 1, /*writer_threads=*/1));

  const PageId victim = MustAllocate(&pool, 0x5A);
  // Churn both frames: the dirty victim is evicted through the (failing)
  // async path. Eviction itself must not fail — degrade, don't die.
  MustAllocate(&pool, 1);
  MustAllocate(&pool, 2);

  // Re-fetch sees the parked bytes, not the stale disk (which has zeros):
  // no disk read happens for the recovered page.
  {
    PageGuard guard;
    ASSERT_TRUE(pool.Fetch(victim, &guard).ok());
    EXPECT_EQ(guard.data()[0], 0x5A);
    EXPECT_EQ(guard.data()[kPageSize - 1], 0x5A);
  }

  // The flush retries and still fails: the error surfaces, bytes retained.
  const Status flush = pool.FlushAll();
  EXPECT_EQ(flush.code(), Status::Code::kIoError);
  EXPECT_NE(flush.message().find("unflushed"), std::string::npos)
      << flush.ToString();

  // Heal: the retained data reaches disk and survives a full cache drop.
  injector.Reset();
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  ExpectPage(&pool, victim, 0x5A);
  disk.set_fault_injector(nullptr);
}

TEST(WriterPoolTest, SamePageWritesApplyInOrder) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("wporder")).ok());
  PageId id = kInvalidPageId;
  ASSERT_TRUE(disk.Allocate(&id).ok());

  WriterPool writer(&disk, /*threads=*/2, /*queue_capacity=*/4);
  char buf[kPageSize];
  for (int i = 1; i <= 5; ++i) {
    std::memset(buf, i, kPageSize);
    writer.Enqueue(id, buf);  // Coalesces or queues; never reorders.
  }
  ASSERT_TRUE(writer.Drain().ok());
  char read_buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage(id, read_buf).ok());
  EXPECT_EQ(read_buf[0], 5);  // The newest version won.
  EXPECT_EQ(read_buf[kPageSize - 1], 5);
}

TEST(WriterPoolTest, DrainRetriesFailedJobs) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("wpretry")).ok());
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  PageId id = kInvalidPageId;
  ASSERT_TRUE(disk.Allocate(&id).ok());

  injector.SetProbability(FaultInjector::Op::kWrite, 1.0);
  WriterPool writer(&disk, 1, 4);
  char buf[kPageSize];
  std::memset(buf, 0x6B, kPageSize);
  writer.Enqueue(id, buf);

  // While the write keeps failing, Lookup serves the buffered bytes.
  char out[kPageSize] = {};
  for (int i = 0; i < 1000 && !writer.Lookup(id, out); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(writer.Lookup(id, out));
  EXPECT_EQ(out[0], 0x6B);

  // Heal mid-flight: Drain's synchronous retry lands the page.
  injector.Reset();
  ASSERT_TRUE(writer.Drain().ok());
  EXPECT_EQ(writer.failed_count(), 0);
  char read_buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage(id, read_buf).ok());
  EXPECT_EQ(read_buf[0], 0x6B);
  disk.set_fault_injector(nullptr);
}

// Concurrent property sweep: readers and writers over a paged working set
// twice the pool size (constant eviction, cooling churn, async write-back),
// checked against an atomic oracle. Each page holds a counter and a fill
// derived from it; exclusive latching makes every reader snapshot
// self-consistent, and the final counters must equal the oracle exactly.
TEST(SwizzlePoolTest, ConcurrentMutationsMatchOracle) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("sweep")).ok());
  constexpr int kPages = 16;
  constexpr int kThreads = 4;
  constexpr int kRounds = 300;
  SwizzlePool pool(&disk,
                   Sizing(8, /*partitions=*/2, /*writer_threads=*/2,
                          /*writeback_queue=*/8));

  PageId ids[kPages];
  for (int i = 0; i < kPages; ++i) {
    PageId id = kInvalidPageId;
    PageMutGuard guard;
    ASSERT_TRUE(pool.Allocate(&id, &guard).ok());
    std::memset(guard.data(), 0, kPageSize);
    ids[i] = id;
  }

  std::atomic<int64_t> expected[kPages] = {};
  std::atomic<int> violations{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(1000 + t);
      for (int r = 0; r < kRounds; ++r) {
        const int i = static_cast<int>(rng.Uniform(kPages));
        if (rng.Uniform(3) == 0) {
          // Mutate: bump the counter and re-derive the fill from it.
          PageMutGuard guard;
          const Status status = pool.FetchMut(ids[i], &guard);
          if (!status.ok()) {
            violations.fetch_add(1);
            continue;
          }
          int64_t counter = 0;
          std::memcpy(&counter, guard.data(), sizeof(counter));
          ++counter;
          std::memcpy(guard.data(), &counter, sizeof(counter));
          std::memset(guard.data() + sizeof(counter),
                      static_cast<char>(counter & 0x7f),
                      kPageSize - sizeof(counter));
          guard.Release();
          expected[i].fetch_add(1);
        } else {
          // Read: the snapshot must be self-consistent (fill matches the
          // counter) no matter what eviction/promotion raced with it.
          PageGuard guard;
          const Status status = pool.Fetch(ids[i], &guard);
          if (!status.ok()) {
            violations.fetch_add(1);
            continue;
          }
          int64_t counter = 0;
          std::memcpy(&counter, guard.data(), sizeof(counter));
          const char fill = static_cast<char>(counter & 0x7f);
          if (guard.data()[sizeof(counter)] != fill ||
              guard.data()[kPageSize / 2] != fill ||
              guard.data()[kPageSize - 1] != fill) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0);

  ASSERT_TRUE(pool.FlushAll().ok());
  for (int i = 0; i < kPages; ++i) {
    PageGuard guard;
    ASSERT_TRUE(pool.Fetch(ids[i], &guard).ok());
    int64_t counter = 0;
    std::memcpy(&counter, guard.data(), sizeof(counter));
    EXPECT_EQ(counter, expected[i].load()) << "page " << i;
  }
}

// Single-threaded randomized op stream applied to both engines in lockstep:
// identical allocations, writes, reads, flushes, and clears must produce
// byte-identical page images at every read and on both disks at the end.
TEST(SwizzlePoolTest, OpStreamMatchesClassicBufferPool) {
  DiskManager classic_disk, swizzle_disk;
  ASSERT_TRUE(classic_disk.Open(TempPath("ops_classic")).ok());
  ASSERT_TRUE(swizzle_disk.Open(TempPath("ops_swizzle")).ok());
  BufferPool classic(&classic_disk, 4);
  SwizzlePool swizzle(&swizzle_disk, Sizing(4));

  Rng rng(20260808);
  std::vector<PageId> pages;
  for (int op = 0; op < 500; ++op) {
    const uint64_t kind = rng.Uniform(10);
    if (pages.empty() || kind < 2) {  // Allocate (ids must agree).
      PageId cid = kInvalidPageId;
      char* cdata = nullptr;
      ASSERT_TRUE(classic.Allocate(&cid, &cdata).ok());
      PageId sid = kInvalidPageId;
      PageMutGuard sguard;
      ASSERT_TRUE(swizzle.Allocate(&sid, &sguard).ok());
      ASSERT_EQ(cid, sid);
      const char fill = static_cast<char>(rng.Uniform(256));
      std::memset(cdata, fill, kPageSize);
      std::memset(sguard.data(), fill, kPageSize);
      classic.Unpin(cid, /*dirty=*/true);
      pages.push_back(cid);
    } else if (kind < 5) {  // Overwrite a random page.
      const PageId id = pages[rng.Uniform(pages.size())];
      char* cdata = nullptr;
      ASSERT_TRUE(classic.Fetch(id, &cdata).ok());
      PageMutGuard sguard;
      ASSERT_TRUE(swizzle.FetchMut(id, &sguard).ok());
      const char fill = static_cast<char>(rng.Uniform(256));
      const int offset = static_cast<int>(rng.Uniform(kPageSize));
      cdata[offset] = fill;
      sguard.data()[offset] = fill;
      classic.Unpin(id, /*dirty=*/true);
    } else if (kind < 9) {  // Read and compare the full page.
      const PageId id = pages[rng.Uniform(pages.size())];
      char* cdata = nullptr;
      ASSERT_TRUE(classic.Fetch(id, &cdata).ok());
      PageGuard sguard;
      ASSERT_TRUE(swizzle.Fetch(id, &sguard).ok());
      ASSERT_EQ(std::memcmp(cdata, sguard.data(), kPageSize), 0)
          << "op " << op << " page " << id;
      classic.Unpin(id, /*dirty=*/false);
    } else {  // Flush, occasionally dropping the caches entirely.
      ASSERT_TRUE(classic.FlushAll().ok());
      ASSERT_TRUE(swizzle.FlushAll().ok());
      if (rng.Uniform(2) == 0) {
        classic.Clear();
        swizzle.Clear();
      }
    }
  }

  ASSERT_TRUE(classic.FlushAll().ok());
  ASSERT_TRUE(swizzle.FlushAll().ok());
  char cbuf[kPageSize], sbuf[kPageSize];
  for (const PageId id : pages) {
    ASSERT_TRUE(classic_disk.ReadPage(id, cbuf).ok());
    ASSERT_TRUE(swizzle_disk.ReadPage(id, sbuf).ok());
    ASSERT_EQ(std::memcmp(cbuf, sbuf, kPageSize), 0) << "page " << id;
  }
}

}  // namespace
}  // namespace partminer
