// Fast-tier coverage of the differential fuzzing harness itself: a handful
// of seeds through the full miner matrix, repro read/write plumbing, and
// the checked-in divergence-corpus replay. The heavy sweeps (hundreds of
// seeds, full fault-injection grids) run in fuzz_slow_test.cc and
// tools/run_fuzz.sh under the `slow` label.

#include "testing/differential.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datagen/generator.h"
#include "testing/fault_sweep.h"

namespace partminer {
namespace {

TEST(FuzzSmokeTest, SmallSeedSweepHasNoDivergence) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const testing::DifferentialResult result =
        testing::RunDifferentialSeed(seed, /*smoke=*/true);
    EXPECT_TRUE(result.ok()) << "seed " << seed << ":\n" << result.divergence;
    EXPECT_GE(result.configurations, 14) << "matrix lost configurations";
  }
}

TEST(FuzzSmokeTest, CaseParamsAreDeterministic) {
  const testing::FuzzCaseParams a = testing::MakeFuzzCase(41, true);
  const testing::FuzzCaseParams b = testing::MakeFuzzCase(41, true);
  EXPECT_EQ(a.gen.num_graphs, b.gen.num_graphs);
  EXPECT_EQ(a.gen.seed, b.gen.seed);
  EXPECT_EQ(a.min_support, b.min_support);
  EXPECT_EQ(a.max_edges, b.max_edges);
  EXPECT_EQ(a.k, b.k);
  // Different seeds explore different configurations.
  const testing::FuzzCaseParams c = testing::MakeFuzzCase(42, true);
  EXPECT_NE(a.gen.seed, c.gen.seed);
}

TEST(FuzzSmokeTest, ReproFilesRoundTrip) {
  const testing::FuzzCaseParams params = testing::MakeFuzzCase(3, true);
  const GraphDatabase db = GenerateDatabase(params.gen);

  const std::string path = "/tmp/partminer_fuzz_repro_" +
                           std::to_string(::getpid()) + ".lg";
  ASSERT_TRUE(
      testing::WriteReproFile(path, db, params, "synthetic divergence").ok());

  testing::DifferentialResult replayed;
  const Status status = testing::ReplayReproFile(path, &replayed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The database is healthy, so the replayed matrix agrees; what matters is
  // that the full configuration matrix ran from the persisted parameters.
  EXPECT_TRUE(replayed.ok()) << replayed.divergence;
  EXPECT_GE(replayed.configurations, 14);
  std::remove(path.c_str());
}

TEST(FuzzSmokeTest, ReplayRejectsFilesWithoutReproHeader) {
  const std::string path = "/tmp/partminer_fuzz_bad_" +
                           std::to_string(::getpid()) + ".lg";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("t # 0\nv 0 1\n", f);
  fclose(f);
  testing::DifferentialResult result;
  EXPECT_EQ(testing::ReplayReproFile(path, &result).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(FuzzSmokeTest, MinimizeKeepsPassingDatabasesIntact) {
  // Minimization only removes graphs while the divergence persists; on a
  // healthy database it must return the input unchanged.
  const testing::FuzzCaseParams params = testing::MakeFuzzCase(2, true);
  const GraphDatabase db = GenerateDatabase(params.gen);
  const GraphDatabase minimized = testing::MinimizeDivergence(db, params);
  EXPECT_EQ(minimized.size(), db.size());
}

// The checked-in corpus replay: every divergence the fuzzer ever minimized
// into data/corpus/divergence/ must stay fixed.
TEST(FuzzReplayTest, DivergenceCorpusStaysFixed) {
  const std::string dir =
      std::string(PARTMINER_SOURCE_DIR) + "/data/corpus/divergence";
  int divergences = -1, replayed = -1;
  const Status status =
      testing::ReplayReproDir(dir, &divergences, &replayed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(divergences, 0) << replayed << " repros, " << divergences
                            << " still diverge";
}

}  // namespace
}  // namespace partminer
