#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "graph/canonical.h"
#include "partition/db_partition.h"
#include "partition/graph_part.h"
#include "partition/multilevel.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(GraphPartTest, TrivialGraphs) {
  Graph empty;
  EXPECT_TRUE(GraphPart(empty, GraphPartOptions{}).side.empty());

  Graph one;
  one.AddVertex(0);
  const Bisection b = GraphPart(one, GraphPartOptions{});
  EXPECT_EQ(b.side, (std::vector<int>{0}));
}

TEST(GraphPartTest, BalancedHalves) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 10, 5, 3, 2);
    const Bisection b = GraphPart(g, GraphPartOptions{1.0, 1.0});
    int side0 = 0;
    for (const int s : b.side) side0 += (s == 0);
    EXPECT_EQ(side0, 5);  // DFSScan collects exactly |V|/2 vertices.
  }
}

TEST(GraphPartTest, IsolationCriterionGroupsHotVertices) {
  // A path of 8 vertices with the 4 hottest at one end: lambda=(1,0) must
  // put all hot vertices on side 0.
  Graph g;
  for (int i = 0; i < 8; ++i) g.AddVertex(0);
  for (int i = 0; i < 7; ++i) g.AddEdge(i, i + 1, 0);
  for (int i = 0; i < 4; ++i) g.set_update_freq(i, 10);
  const Bisection b = GraphPart(g, GraphPartOptions{1.0, 0.0});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b.side[i], 0) << i;
  for (int i = 4; i < 8; ++i) EXPECT_EQ(b.side[i], 1) << i;
}

TEST(GraphPartTest, MinCutCriterionFindsNarrowCut) {
  // Two 5-cliques joined by a single bridge: (0,1) must cut only the bridge.
  Graph g;
  for (int i = 0; i < 10; ++i) g.AddVertex(0);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      g.AddEdge(a, b, 0);
      g.AddEdge(5 + a, 5 + b, 0);
    }
  }
  g.AddEdge(4, 5, 0);
  const Bisection b = GraphPart(g, GraphPartOptions{0.0, 1.0});
  EXPECT_EQ(b.cut_edges, 1);
}

TEST(GraphPartTest, SplitWithConnectiveEdgesCoversEveryEdge) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 9, 4, 3, 2);
    const Bisection b = GraphPart(g, GraphPartOptions{1.0, 1.0});
    const auto [g1, g2] = SplitWithConnectiveEdges(g, b.side);
    // Connective edges are duplicated: totals add up with the cut counted
    // twice (Section 4.1).
    EXPECT_EQ(g1.EdgeCount() + g2.EdgeCount(), g.EdgeCount() + b.cut_edges);
    EXPECT_EQ(CountCutEdges(g, b.side), b.cut_edges);
  }
}

TEST(MultilevelTest, FindsNarrowCutOnDumbbell) {
  Graph g;
  for (int i = 0; i < 16; ++i) g.AddVertex(0);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      g.AddEdge(a, b, 0);
      g.AddEdge(8 + a, 8 + b, 0);
    }
  }
  g.AddEdge(7, 8, 0);
  const std::vector<int> side = MultilevelBisect(g, MultilevelOptions{});
  EXPECT_EQ(CountCutEdges(g, side), 1);
}

TEST(MultilevelTest, ProducesTwoNonEmptySides) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 20, 10, 3, 2);
    const std::vector<int> side = MultilevelBisect(g, MultilevelOptions{});
    int side0 = 0;
    for (const int s : side) side0 += (s == 0);
    EXPECT_GT(side0, 0);
    EXPECT_LT(side0, 20);
  }
}

TEST(PartitionedDatabaseTest, UnitsCoverEveryEdge) {
  Rng rng(5);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 9, 4, 3, 2);
  for (const int k : {2, 3, 4, 6}) {
    PartitionOptions options;
    options.k = k;
    const PartitionedDatabase part = PartitionedDatabase::Create(db, options);
    // Root materialization reproduces each graph exactly (same canonical
    // code) — the lossless-recovery precondition of Theorem 1.
    const GraphDatabase root = part.Materialize(db, 0, k);
    ASSERT_EQ(root.size(), db.size());
    for (int i = 0; i < db.size(); ++i) {
      EXPECT_EQ(root.graph(i).EdgeCount(), db.graph(i).EdgeCount());
      EXPECT_EQ(MinimumDfsCode(root.graph(i)), MinimumDfsCode(db.graph(i)));
    }
    // Unit edge counts: every edge in >=1 unit; cut edges in exactly 2.
    int64_t unit_edges = 0;
    for (int j = 0; j < k; ++j) {
      unit_edges += part.MaterializeUnit(db, j).TotalEdges();
    }
    EXPECT_EQ(unit_edges, db.TotalEdges() + part.TotalCutEdges(db));
  }
}

TEST(PartitionedDatabaseTest, MergeTreeShape) {
  GraphDatabase db;
  db.Add(Graph(1));
  for (const int k : {1, 2, 3, 5, 6, 8}) {
    PartitionOptions options;
    options.k = k;
    const PartitionedDatabase part = PartitionedDatabase::Create(db, options);
    const auto& tree = part.tree();
    EXPECT_EQ(tree[0].lo, 0);
    EXPECT_EQ(tree[0].hi, k);
    int leaves = 0;
    std::set<int> seen_units;
    for (const MergeTreeNode& node : tree) {
      if (node.left == -1) {
        EXPECT_EQ(node.hi - node.lo, 1);
        seen_units.insert(node.lo);
        ++leaves;
      } else {
        EXPECT_EQ(tree[node.left].lo, node.lo);
        EXPECT_EQ(tree[node.right].hi, node.hi);
        EXPECT_EQ(tree[node.left].hi, tree[node.right].lo);
      }
    }
    EXPECT_EQ(leaves, k);
    EXPECT_EQ(static_cast<int>(seen_units.size()), k);
  }
}

TEST(PartitionedDatabaseTest, TouchedUnitsCoverChangedEdges) {
  GeneratorParams params;
  params.num_graphs = 12;
  params.avg_edges = 12;
  params.num_labels = 5;
  params.num_kernels = 10;
  params.seed = 9;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.2, 10);

  PartitionOptions options;
  options.k = 4;
  PartitionedDatabase part = PartitionedDatabase::Create(db, options);

  // Snapshot unit databases, apply updates, and verify that every unit
  // whose materialization changed is flagged by TouchedUnits.
  std::vector<GraphDatabase> before;
  for (int j = 0; j < options.k; ++j) {
    before.push_back(part.MaterializeUnit(db, j));
  }
  UpdateOptions upd;
  upd.fraction_graphs = 0.5;
  upd.seed = 77;
  const UpdateLog log = ApplyUpdates(&db, params.num_labels, upd);
  part.ExtendAssignments(db);
  const SetWord touched = part.TouchedUnits(db, log.touched_vertices);

  for (int j = 0; j < options.k; ++j) {
    const GraphDatabase after = part.MaterializeUnit(db, j);
    // Materialize is deterministic, so a structural dump comparison detects
    // any change (unit subgraphs may be disconnected, so canonical codes are
    // not applicable here).
    bool changed = false;
    for (int i = 0; i < db.size() && !changed; ++i) {
      if (before[j].graph(i).DebugString() != after.graph(i).DebugString()) {
        changed = true;
      }
    }
    if (changed) {
      EXPECT_TRUE(touched.Test(j)) << "unit " << j << " changed but untouched";
    }
  }
  EXPECT_FALSE(touched.Empty());
}

TEST(PartitionedDatabaseTest, IsolationCriteriaReduceTouchedUnits) {
  // With hotspots concentrated, Partition1/3 should route updates into
  // fewer units on average than pure min-cut partitioning.
  GeneratorParams params;
  params.num_graphs = 30;
  params.avg_edges = 16;
  params.num_labels = 6;
  params.num_kernels = 15;
  params.seed = 4;
  GraphDatabase base = GenerateDatabase(params);
  AssignUpdateHotspots(&base, 0.15, 11);

  auto average_touched = [&](PartitionCriteria criteria) {
    GraphDatabase db = base;  // Fresh copy per criteria.
    PartitionOptions options;
    options.k = 4;
    options.criteria = criteria;
    PartitionedDatabase part = PartitionedDatabase::Create(db, options);
    UpdateOptions upd;
    upd.fraction_graphs = 0.8;
    upd.seed = 123;
    const UpdateLog log = ApplyUpdates(&db, params.num_labels, upd);
    part.ExtendAssignments(db);
    return part.AverageTouchedUnits(db, log.touched_vertices);
  };

  const double isolation = average_touched(PartitionCriteria::kIsolation);
  const double combined = average_touched(PartitionCriteria::kCombined);
  const double metis = average_touched(PartitionCriteria::kMultilevel);
  // The update-aware criteria should not be worse than topology-only METIS.
  EXPECT_LE(isolation, metis + 0.25);
  EXPECT_LE(combined, metis + 0.25);
}

}  // namespace
}  // namespace partminer
