#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

Graph PathGraph(std::initializer_list<Label> vlabels,
                std::initializer_list<Label> elabels) {
  Graph g;
  for (const Label l : vlabels) g.AddVertex(l);
  int v = 0;
  for (const Label l : elabels) {
    g.AddEdge(v, v + 1, l);
    ++v;
  }
  return g;
}

TEST(IsomorphismTest, SingleEdgeMatch) {
  const Graph host = PathGraph({0, 1, 2}, {5, 6});
  EXPECT_TRUE(ContainsSubgraph(host, PathGraph({0, 1}, {5})));
  EXPECT_TRUE(ContainsSubgraph(host, PathGraph({1, 0}, {5})));
  EXPECT_FALSE(ContainsSubgraph(host, PathGraph({0, 1}, {6})));
  EXPECT_FALSE(ContainsSubgraph(host, PathGraph({0, 2}, {5})));
}

TEST(IsomorphismTest, NonInducedSemantics) {
  // Pattern path 0-1-2 embeds in a triangle even though the triangle has an
  // extra edge (subgraph isomorphism is not induced).
  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(1);
  triangle.AddVertex(2);
  triangle.AddEdge(0, 1, 0);
  triangle.AddEdge(1, 2, 0);
  triangle.AddEdge(2, 0, 0);
  EXPECT_TRUE(ContainsSubgraph(triangle, PathGraph({0, 1, 2}, {0, 0})));
}

TEST(IsomorphismTest, InjectivityRequired) {
  // Pattern a-b-a needs two distinct 'a' vertices.
  const Graph pattern = PathGraph({0, 1, 0}, {0, 0});
  const Graph host_ok = PathGraph({0, 1, 0}, {0, 0});
  const Graph host_small = PathGraph({0, 1}, {0});
  EXPECT_TRUE(ContainsSubgraph(host_ok, pattern));
  EXPECT_FALSE(ContainsSubgraph(host_small, pattern));
}

TEST(IsomorphismTest, CycleInPath) {
  // A triangle pattern cannot embed in a path of the same labels.
  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddEdge(0, 1, 0);
  triangle.AddEdge(1, 2, 0);
  triangle.AddEdge(2, 0, 0);
  const Graph path = PathGraph({0, 0, 0, 0}, {0, 0, 0});
  EXPECT_FALSE(ContainsSubgraph(path, triangle));
  EXPECT_TRUE(ContainsSubgraph(triangle, triangle));
}

TEST(IsomorphismTest, EverySubgraphOfItselfMatches) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 8, 4, 3, 2);
    EXPECT_TRUE(ContainsSubgraph(g, g));
    EXPECT_TRUE(ContainsSubgraph(g, testutil::Permuted(&rng, g)));
  }
}

TEST(IsomorphismTest, SupportCounting) {
  GraphDatabase db;
  db.Add(PathGraph({0, 1, 2}, {0, 0}));   // Contains 0-1.
  db.Add(PathGraph({0, 1}, {0}));         // Contains 0-1.
  db.Add(PathGraph({2, 1}, {0}));         // Does not.
  const SubgraphMatcher matcher(PathGraph({0, 1}, {0}));
  std::vector<int> tids;
  EXPECT_EQ(matcher.CountSupport(db, &tids), 2);
  EXPECT_EQ(tids, (std::vector<int>{0, 1}));

  tids.clear();
  EXPECT_EQ(matcher.CountSupportAmong(db, {1, 2}, &tids), 1);
  EXPECT_EQ(tids, (std::vector<int>{1}));
}

TEST(IsomorphismTest, LargerPatternThanHostFailsFast) {
  const Graph host = PathGraph({0, 1}, {0});
  const Graph pattern = PathGraph({0, 1, 0, 1}, {0, 0, 0});
  EXPECT_FALSE(ContainsSubgraph(host, pattern));
}

}  // namespace
}  // namespace partminer
