// Pins the operator-facing JSON schemas: the `metrics`, `health`, `dump`,
// and `ping` results must keep their field names and types stable, because
// pmtop, loadgen's breakdown report, and bench_compare.py all consume them.
// Unlike service_proto_test this is shape-based, not byte-exact — values
// (uptime, latencies) vary run to run; the contract is presence and type.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "service/daemon.h"
#include "service/json.h"
#include "service/session.h"

namespace partminer {
namespace service {
namespace {

GraphDatabase SchemaDatabase() {
  GraphDatabase db;
  for (int i = 0; i < 3; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 5);
    db.Add(std::move(g));
  }
  return db;
}

class ServiceSchemaTest : public ::testing::Test {
 protected:
  ServiceSchemaTest() : session_(MakeOptions()), daemon_(&session_, {}) {
    obs::FlightRecorder::Global().Reset();
    EXPECT_TRUE(session_.Init(SchemaDatabase()).ok());
  }

  static SessionOptions MakeOptions() {
    SessionOptions options;
    options.miner.min_support_count = 2;
    return options;
  }

  /// Handles `line` and returns the parsed `result` object, failing the
  /// test on protocol errors.
  Json Result(const std::string& line) {
    bool shutdown = false;
    const std::string response = daemon_.HandleLine(line, &shutdown);
    Json parsed;
    EXPECT_TRUE(Json::Parse(response, &parsed).ok()) << response;
    const Json* ok = parsed.Get("ok");
    EXPECT_TRUE(ok != nullptr && ok->AsBool()) << response;
    const Json* result = parsed.Get("result");
    EXPECT_NE(result, nullptr) << response;
    return result != nullptr ? *result : Json::Object();
  }

  static void ExpectInt(const Json& obj, const char* key) {
    const Json* field = obj.Get(key);
    ASSERT_NE(field, nullptr) << "missing field '" << key << "'";
    EXPECT_TRUE(field->is_int()) << "field '" << key << "' not an integer";
  }

  static void ExpectNumber(const Json& obj, const char* key) {
    const Json* field = obj.Get(key);
    ASSERT_NE(field, nullptr) << "missing field '" << key << "'";
    EXPECT_TRUE(field->is_number()) << "field '" << key << "' not a number";
  }

  static void ExpectString(const Json& obj, const char* key) {
    const Json* field = obj.Get(key);
    ASSERT_NE(field, nullptr) << "missing field '" << key << "'";
    EXPECT_TRUE(field->is_string()) << "field '" << key << "' not a string";
  }

  MinerSession session_;
  Daemon daemon_;
};

TEST_F(ServiceSchemaTest, PingSchema) {
  const Json result = Result(R"({"id":1,"cmd":"ping"})");
  ExpectInt(result, "epoch");
  ExpectInt(result, "graphs");
  ExpectInt(result, "patterns");
  ExpectInt(result, "support");
  ExpectInt(result, "queue_depth");
}

TEST_F(ServiceSchemaTest, HealthSchema) {
  const Json result = Result(R"({"id":1,"cmd":"health"})");
  ExpectString(result, "state");
  const std::string& state = result.Get("state")->AsString();
  EXPECT_TRUE(state == "starting" || state == "serving" ||
              state == "degraded" || state == "overloaded")
      << state;
  ExpectInt(result, "epoch");
  ExpectInt(result, "queue_depth");
}

TEST_F(ServiceSchemaTest, MetricsSchemaIncludesOperatorFields) {
  // Drive one request through every timed segment first so the per-verb and
  // pipeline histograms exist in the registry.
  Result(
      R"({"id":1,"cmd":"update","wait":true,"edits":[)"
      R"({"kind":"relabel","graph":0,"vertex":0,"label":3}]})");
  // Verb latency is observed after the response is rendered, so a metrics
  // request only sees its own verb histogram from the second call on.
  Result(R"({"id":2,"cmd":"metrics"})");
  const Json result = Result(R"({"id":3,"cmd":"metrics"})");
  ExpectInt(result, "queue_depth");
  ExpectInt(result, "epoch");
  ExpectInt(result, "uptime_ms");
  ExpectString(result, "state");

  const Json* registry = result.Get("registry");
  ASSERT_NE(registry, nullptr);
  ASSERT_TRUE(registry->is_object());
  const Json* histograms = registry->Get("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(histograms->is_object());
  // Every histogram export carries count/sum and the quantile estimates.
  int checked = 0;
  for (const auto& [name, histogram] : histograms->fields()) {
    ASSERT_TRUE(histogram.is_object()) << name;
    ExpectInt(histogram, "count");
    ExpectNumber(histogram, "sum");
    ExpectNumber(histogram, "p50");
    ExpectNumber(histogram, "p95");
    ExpectNumber(histogram, "p99");
    const Json* buckets = histogram.Get("buckets");
    ASSERT_NE(buckets, nullptr) << name;
    EXPECT_TRUE(buckets->is_array()) << name;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  // The lifecycle segments the loadgen breakdown reads must be present.
  for (const char* name :
       {"service.request_ms", "service.queue_wait_ms",
        "service.coalesce_ms", "service.phase_a_ms", "service.phase_b_ms",
        "service.update_pipeline_ms", "service.verb.update_ms",
        "service.verb.metrics_ms"}) {
    EXPECT_NE(histograms->Get(name), nullptr)
        << "registry lost histogram '" << name << "'";
  }
}

TEST_F(ServiceSchemaTest, DumpSchema) {
  Result(
      R"({"id":1,"cmd":"update","wait":true,"edits":[)"
      R"({"kind":"relabel","graph":0,"vertex":0,"label":3}]})");
  const Json result = Result(R"({"id":2,"cmd":"dump"})");
  ExpectInt(result, "dropped");
  const Json* events = result.Get("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->items().empty());
  for (const Json& event : events->items()) {
    ASSERT_TRUE(event.is_object());
    ExpectInt(event, "seq");
    ExpectInt(event, "ts_us");
    ExpectString(event, "type");
    ExpectInt(event, "a");
    ExpectInt(event, "b");
    ExpectInt(event, "c");
    const Json* detail = event.Get("detail");
    if (detail != nullptr) {
      EXPECT_TRUE(detail->is_string());
    }
  }
}

}  // namespace
}  // namespace service
}  // namespace partminer
