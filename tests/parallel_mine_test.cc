#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/gaston.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

/// Bit-identical result check: same patterns in the SAME insertion order,
/// with equal supports, TID lists and exactness flags. This is strictly
/// stronger than set equality — it is what the deterministic merge of
/// task-local subtree results guarantees.
void ExpectBitIdentical(const PatternSet& serial, const PatternSet& parallel,
                        const std::string& what) {
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  for (int i = 0; i < serial.size(); ++i) {
    const PatternInfo& a = serial.patterns()[i];
    const PatternInfo& b = parallel.patterns()[i];
    EXPECT_EQ(a.code.ToString(), b.code.ToString())
        << what << ": order diverges at index " << i;
    EXPECT_EQ(a.support, b.support) << what << ": " << a.code.ToString();
    EXPECT_EQ(a.tids, b.tids) << what << ": " << a.code.ToString();
    EXPECT_EQ(a.exact_tids, b.exact_tids) << what << ": " << a.code.ToString();
  }
}

GraphDatabase DenseDatabase(uint64_t seed) {
  Rng rng(seed);
  return testutil::RandomDatabase(&rng, 20, 10, 4, 3, 2);
}

TEST(ParallelMineTest, GSpanIdenticalAcrossThreadCounts) {
  const GraphDatabase db = DenseDatabase(7);
  GSpanMiner miner;

  MinerOptions serial;
  serial.min_support = 3;
  FrontierMap serial_frontier;
  serial.capture_frontier = &serial_frontier;
  const PatternSet expected = miner.Mine(db, serial);
  ASSERT_GT(expected.size(), 0);

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    MinerOptions parallel;
    parallel.min_support = 3;
    parallel.pool = &pool;
    parallel.parallel_spawn_min_embeddings = 1;  // Force subtree fan-out.
    FrontierMap frontier;
    parallel.capture_frontier = &frontier;
    const PatternSet got = miner.Mine(db, parallel);
    ExpectBitIdentical(expected, got,
                       "gspan threads=" + std::to_string(threads));
    EXPECT_EQ(serial_frontier == frontier, true)
        << "gspan frontier diverged at threads=" << threads;
  }
}

TEST(ParallelMineTest, GastonIdenticalAcrossThreadCounts) {
  const GraphDatabase db = DenseDatabase(11);
  GastonMiner serial_miner;

  MinerOptions serial;
  serial.min_support = 3;
  FrontierMap serial_frontier;
  serial.capture_frontier = &serial_frontier;
  const PatternSet expected = serial_miner.Mine(db, serial);
  ASSERT_GT(expected.size(), 0);
  const GastonStats serial_stats = serial_miner.stats();

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    GastonMiner miner;
    MinerOptions parallel;
    parallel.min_support = 3;
    parallel.pool = &pool;
    parallel.parallel_spawn_min_embeddings = 1;
    FrontierMap frontier;
    parallel.capture_frontier = &frontier;
    const PatternSet got = miner.Mine(db, parallel);
    ExpectBitIdentical(expected, got,
                       "gaston threads=" + std::to_string(threads));
    EXPECT_EQ(serial_frontier == frontier, true)
        << "gaston frontier diverged at threads=" << threads;
    // Phase statistics are sums over the same subtrees — identical too.
    EXPECT_EQ(serial_stats.frequent_paths, miner.stats().frequent_paths);
    EXPECT_EQ(serial_stats.frequent_trees, miner.stats().frequent_trees);
    EXPECT_EQ(serial_stats.frequent_cyclic, miner.stats().frequent_cyclic);
    EXPECT_EQ(serial_stats.path_fast_checks, miner.stats().path_fast_checks);
    EXPECT_EQ(serial_stats.generic_min_checks,
              miner.stats().generic_min_checks);
  }
}

TEST(ParallelMineTest, PartMinerIdenticalAcrossThreadCounts) {
  const GraphDatabase db = DenseDatabase(13);

  PartMinerOptions serial;
  serial.min_support_count = 3;
  serial.partition.k = 4;
  serial.unit_mining_threads = 0;
  PartMiner serial_miner(serial);
  const PatternSet expected = serial_miner.Mine(db).patterns;
  ASSERT_GT(expected.size(), 0);

  for (const int threads : {1, 2, 8}) {
    PartMinerOptions options = serial;
    options.unit_mining_threads = threads;
    PartMiner miner(options);
    ExpectBitIdentical(expected, miner.Mine(db).patterns,
                       "partminer threads=" + std::to_string(threads));
  }
}

TEST(ParallelMineTest, IncPartMinerIdenticalAcrossThreadCounts) {
  GeneratorParams params;
  params.num_graphs = 16;
  params.avg_edges = 10;
  params.num_labels = 5;
  params.num_kernels = 8;
  params.avg_kernel_edges = 3;
  params.seed = 77;

  auto run = [&](int threads) {
    GraphDatabase db = GenerateDatabase(params);
    AssignUpdateHotspots(&db, 0.2, 78);
    PartMinerOptions options;
    options.min_support_count = 4;
    options.partition.k = 4;
    options.unit_mining_threads = threads;
    PartMiner miner(options);
    miner.Mine(db);
    UpdateOptions upd;
    upd.fraction_graphs = 0.5;
    upd.seed = 79;
    const UpdateLog log = ApplyUpdates(&db, 5, upd);
    IncPartMiner inc;
    return inc.Update(&miner, db, log);
  };

  const IncPartMinerResult expected = run(0);
  ASSERT_GT(expected.patterns.size(), 0);
  for (const int threads : {1, 2, 8}) {
    const IncPartMinerResult got = run(threads);
    const std::string what = "inc threads=" + std::to_string(threads);
    ExpectBitIdentical(expected.patterns, got.patterns, what);
    ExpectBitIdentical(expected.uf, got.uf, what + " uf");
    ExpectBitIdentical(expected.if_, got.if_, what + " if");
    ExpectBitIdentical(expected.fi, got.fi, what + " fi");
    EXPECT_EQ(expected.prune_set_size, got.prune_set_size) << what;
    EXPECT_EQ(expected.remined_units.bits(), got.remined_units.bits()) << what;
  }
}

}  // namespace
}  // namespace partminer
