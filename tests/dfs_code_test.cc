#include "graph/dfs_code.h"

#include <gtest/gtest.h>

#include "graph/graph.h"

namespace partminer {
namespace {

TEST(DfsEdgeTest, ForwardDetection) {
  EXPECT_TRUE((DfsEdge{0, 1, 0, 0, 0}).IsForward());
  EXPECT_FALSE((DfsEdge{3, 0, 0, 0, 0}).IsForward());
}

TEST(DfsEdgeTest, ForwardForwardOrder) {
  // Same discovered vertex: the deeper source is smaller.
  EXPECT_LT(CompareDfsEdge({2, 3, 0, 0, 0}, {1, 3, 0, 0, 0}), 0);
  // Earlier discovered vertex is smaller.
  EXPECT_LT(CompareDfsEdge({0, 2, 9, 9, 9}, {2, 3, 0, 0, 0}), 0);
}

TEST(DfsEdgeTest, BackwardBackwardOrder) {
  EXPECT_LT(CompareDfsEdge({2, 0, 0, 0, 0}, {3, 1, 0, 0, 0}), 0);
  EXPECT_LT(CompareDfsEdge({3, 0, 9, 9, 9}, {3, 1, 0, 0, 0}), 0);
}

TEST(DfsEdgeTest, BackwardBeforeForwardFromSameVertex) {
  // Backward (i1, j1) precedes forward (i2, j2) iff i1 < j2.
  EXPECT_LT(CompareDfsEdge({3, 0, 9, 9, 9}, {3, 4, 0, 0, 0}), 0);
  EXPECT_GT(CompareDfsEdge({3, 0, 0, 0, 0}, {1, 2, 9, 9, 9}), 0);
}

TEST(DfsEdgeTest, EqualPositionsCompareLabels) {
  EXPECT_LT(CompareDfsEdge({0, 1, 0, 0, 0}, {0, 1, 0, 0, 1}), 0);
  EXPECT_LT(CompareDfsEdge({0, 1, 0, 0, 5}, {0, 1, 0, 1, 0}), 0);
  EXPECT_LT(CompareDfsEdge({0, 1, 0, 5, 5}, {0, 1, 1, 0, 0}), 0);
  EXPECT_EQ(CompareDfsEdge({0, 1, 1, 2, 3}, {0, 1, 1, 2, 3}), 0);
}

TEST(DfsCodeTest, VertexCountAndRightmostPath) {
  DfsCode code;
  code.Append({0, 1, 0, 0, 0});
  code.Append({1, 2, 0, 0, 1});
  code.Append({1, 3, 0, 2, 2});
  code.Append({3, 0, 2, 1, 0});
  EXPECT_EQ(code.VertexCount(), 4);
  // Rightmost path: root 0 -> 1 -> 3 (vertex 2 was left earlier).
  const std::vector<int> path = code.RightmostPath();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 3);
}

TEST(DfsCodeTest, ToGraphRoundTrip) {
  DfsCode code;
  code.Append({0, 1, 5, 7, 6});
  code.Append({1, 2, 6, 8, 5});
  code.Append({2, 0, 5, 9, 5});
  const Graph g = code.ToGraph();
  EXPECT_EQ(g.VertexCount(), 3);
  EXPECT_EQ(g.EdgeCount(), 3);
  EXPECT_EQ(g.vertex_label(0), 5);
  EXPECT_EQ(g.vertex_label(1), 6);
  EXPECT_EQ(g.vertex_label(2), 5);
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 7);
  EXPECT_EQ(g.EdgeLabelBetween(1, 2), 8);
  EXPECT_EQ(g.EdgeLabelBetween(2, 0), 9);
}

TEST(DfsCodeTest, LexicographicCompareAndPrefix) {
  DfsCode a, b;
  a.Append({0, 1, 0, 0, 0});
  b.Append({0, 1, 0, 0, 0});
  b.Append({1, 2, 0, 0, 0});
  EXPECT_LT(a.Compare(b), 0);  // Prefix is smaller.
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(DfsCodeTest, HashDiffersForDifferentCodes) {
  DfsCode a, b;
  a.Append({0, 1, 0, 0, 1});
  b.Append({0, 1, 0, 1, 0});
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a.Hash(), a.Hash());
}

TEST(DfsCodeTest, ToStringRendersTuples) {
  DfsCode a;
  a.Append({0, 1, 2, 3, 4});
  EXPECT_EQ(a.ToString(), "(0,1,2,3,4)");
}

}  // namespace
}  // namespace partminer
