#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"

namespace partminer {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/partminer_storage_test_") + tag + "_" +
         std::to_string(::getpid());
}

/// Allocates a pinned page, asserting success.
char* MustAllocate(BufferPool* pool, PageId* id) {
  char* frame = nullptr;
  const Status status = pool->Allocate(id, &frame);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(frame, nullptr);
  return frame;
}

/// Fetches a pinned page, asserting success.
char* MustFetch(BufferPool* pool, PageId id) {
  char* frame = nullptr;
  const Status status = pool->Fetch(id, &frame);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(frame, nullptr);
  return frame;
}

PageId MustAllocatePage(DiskManager* disk) {
  PageId id = kInvalidPageId;
  EXPECT_TRUE(disk->Allocate(&id).ok());
  return id;
}

TEST(DiskManagerTest, RoundTripPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("rt")).ok());
  const PageId a = MustAllocatePage(&disk);
  const PageId b = MustAllocatePage(&disk);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);

  char write_buf[kPageSize];
  char read_buf[kPageSize];
  std::memset(write_buf, 0xAB, kPageSize);
  ASSERT_TRUE(disk.WritePage(b, write_buf).ok());
  ASSERT_TRUE(disk.ReadPage(b, read_buf).ok());
  EXPECT_EQ(std::memcmp(write_buf, read_buf, kPageSize), 0);

  // Never-written page reads as zeros.
  ASSERT_TRUE(disk.ReadPage(a, read_buf).ok());
  for (int i = 0; i < kPageSize; ++i) ASSERT_EQ(read_buf[i], 0) << i;
  EXPECT_EQ(disk.stats().page_reads, 2);
  EXPECT_EQ(disk.stats().page_writes, 1);
}

TEST(DiskManagerTest, ResetDropsPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("reset")).ok());
  MustAllocatePage(&disk);
  MustAllocatePage(&disk);
  EXPECT_EQ(disk.page_count(), 2);
  ASSERT_TRUE(disk.Reset().ok());
  EXPECT_EQ(disk.page_count(), 0);
}

TEST(DiskManagerTest, InjectedFaultsSurfaceAsIoError) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("inject")).ok());
  FaultInjector injector;
  disk.set_fault_injector(&injector);

  const PageId page = MustAllocatePage(&disk);
  char buf[kPageSize] = {};

  injector.FailOnce(FaultInjector::Op::kRead, 0);
  const Status read = disk.ReadPage(page, buf);
  EXPECT_EQ(read.code(), Status::Code::kIoError);
  EXPECT_NE(read.message().find("injected read fault"), std::string::npos)
      << read.ToString();
  EXPECT_TRUE(disk.ReadPage(page, buf).ok());  // Fault was one-shot.

  injector.FailOnce(FaultInjector::Op::kWrite, 0);
  EXPECT_EQ(disk.WritePage(page, buf).code(), Status::Code::kIoError);
  EXPECT_TRUE(disk.WritePage(page, buf).ok());

  injector.FailOnce(FaultInjector::Op::kAlloc, 0);
  PageId id = 0;
  EXPECT_EQ(disk.Allocate(&id).code(), Status::Code::kIoError);
  EXPECT_EQ(id, kInvalidPageId);
  EXPECT_TRUE(disk.Allocate(&id).ok());

  EXPECT_EQ(disk.stats().injected_faults, 3);
  disk.set_fault_injector(nullptr);
}

TEST(FaultInjectorTest, SchedulesAreDeterministic) {
  // Same seed and probability: two injectors agree on every decision.
  FaultInjector a(42), b(42);
  a.SetProbability(FaultInjector::Op::kRead, 0.3);
  b.SetProbability(FaultInjector::Op::kRead, 0.3);
  int faults = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.ShouldFail(FaultInjector::Op::kRead);
    EXPECT_EQ(fa, b.ShouldFail(FaultInjector::Op::kRead)) << i;
    faults += fa ? 1 : 0;
  }
  EXPECT_GT(faults, 20);   // ~60 expected.
  EXPECT_LT(faults, 120);
  EXPECT_EQ(a.operations(FaultInjector::Op::kRead), 200);
  EXPECT_EQ(a.injected(FaultInjector::Op::kRead), faults);
}

TEST(FaultInjectorTest, FailNWindowAndReset) {
  FaultInjector injector;
  injector.FailN(FaultInjector::Op::kWrite, 2, 3);
  int pattern = 0;
  for (int i = 0; i < 8; ++i) {
    pattern = pattern * 2 +
              (injector.ShouldFail(FaultInjector::Op::kWrite) ? 1 : 0);
  }
  EXPECT_EQ(pattern, 0b00111000);
  injector.FailN(FaultInjector::Op::kWrite, 0, 1);
  injector.Reset();
  EXPECT_FALSE(injector.ShouldFail(FaultInjector::Op::kWrite));
  EXPECT_EQ(injector.total_injected(), 3);
}

TEST(BufferPoolTest, FetchCachesPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("cache")).ok());
  BufferPool pool(&disk, 4);

  PageId id;
  char* data = MustAllocate(&pool, &id);
  data[0] = 42;
  pool.Unpin(id, /*dirty=*/true);

  // Cached fetch: no disk read.
  const int64_t reads_before = disk.stats().page_reads;
  char* again = MustFetch(&pool, id);
  EXPECT_EQ(again[0], 42);
  EXPECT_EQ(disk.stats().page_reads, reads_before);
  pool.Unpin(id, false);
  EXPECT_GT(disk.stats().pool_hits, 0);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("evict")).ok());
  BufferPool pool(&disk, 2);

  // Fill three pages through a two-frame pool.
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    char* data = MustAllocate(&pool, &ids[i]);
    data[0] = static_cast<char>(i + 1);
    pool.Unpin(ids[i], true);
  }
  EXPECT_GT(disk.stats().evictions, 0);
  EXPECT_GT(disk.stats().page_writes, 0);

  // Page 0 was evicted; fetching it re-reads the written-back contents.
  char* data = MustFetch(&pool, ids[0]);
  EXPECT_EQ(data[0], 1);
  pool.Unpin(ids[0], false);
  EXPECT_GT(disk.stats().page_reads, 0);
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("pinned")).ok());
  BufferPool pool(&disk, 2);
  PageId a, b, c;
  char* frame = nullptr;
  MustAllocate(&pool, &a);
  MustAllocate(&pool, &b);
  const Status full = pool.Allocate(&c, &frame);
  EXPECT_EQ(full.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(frame, nullptr);
  pool.Unpin(a, false);
  MustAllocate(&pool, &c);  // LRU frame reclaimed.
}

TEST(BufferPoolTest, EvictionWriteBackFaultLosesNothing) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("evfault")).ok());
  FaultInjector injector;
  BufferPool pool(&disk, 1);

  PageId dirty;
  char* data = MustAllocate(&pool, &dirty);
  data[0] = 77;
  pool.Unpin(dirty, /*dirty=*/true);

  // Every write fails: the eviction write-back surfaces the error and must
  // leave the dirty page cached and intact.
  disk.set_fault_injector(&injector);
  injector.SetProbability(FaultInjector::Op::kWrite, 1.0);
  PageId fresh;
  char* frame = nullptr;
  const Status evict = pool.Allocate(&fresh, &frame);
  EXPECT_EQ(evict.code(), Status::Code::kIoError);
  EXPECT_NE(evict.message().find("injected write fault"), std::string::npos)
      << evict.ToString();

  // Heal the disk: the page is still cached with its data, and a flush
  // now persists it.
  disk.set_fault_injector(nullptr);
  char* survived = MustFetch(&pool, dirty);
  EXPECT_EQ(survived[0], 77);
  pool.Unpin(dirty, false);
  EXPECT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  char* reread = MustFetch(&pool, dirty);
  EXPECT_EQ(reread[0], 77);
  pool.Unpin(dirty, false);
}

TEST(BufferPoolTest, FailedReadDoesNotCacheGarbage) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("readfault")).ok());
  FaultInjector injector;
  BufferPool pool(&disk, 2);

  PageId id;
  char* data = MustAllocate(&pool, &id);
  data[0] = 11;
  pool.Unpin(id, true);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();

  disk.set_fault_injector(&injector);
  injector.FailOnce(FaultInjector::Op::kRead, 0);
  char* frame = nullptr;
  const Status failed = pool.Fetch(id, &frame);
  EXPECT_EQ(failed.code(), Status::Code::kIoError);
  EXPECT_EQ(frame, nullptr);

  // The failed fetch must not have installed anything: the retry re-reads
  // from disk and sees the real data.
  const int64_t reads_before = disk.stats().page_reads;
  char* retry = MustFetch(&pool, id);
  EXPECT_EQ(retry[0], 11);
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);
  pool.Unpin(id, false);
  disk.set_fault_injector(nullptr);
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("pin2")).ok());
  BufferPool pool(&disk, 2);
  PageId pinned;
  char* data = MustAllocate(&pool, &pinned);
  data[7] = 99;

  // Churn the other frame.
  for (int i = 0; i < 5; ++i) {
    PageId id;
    MustAllocate(&pool, &id);
    pool.Unpin(id, true);
  }
  EXPECT_EQ(data[7], 99);  // Still resident and intact.
  pool.Unpin(pinned, true);
}

TEST(BufferPoolTest, ShardedPoolKeepsPagesIntact) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("shard")).ok());
  // 8 frames over 4 shards: shard s caches pages with id % 4 == s.
  BufferPool pool(&disk, 8, /*shards=*/4);
  EXPECT_EQ(pool.frames(), 8);
  EXPECT_EQ(pool.shards(), 4);

  PageId ids[8];
  for (int i = 0; i < 8; ++i) {
    char* data = MustAllocate(&pool, &ids[i]);
    data[0] = static_cast<char>(i + 1);
    pool.Unpin(ids[i], true);
  }
  for (int i = 0; i < 8; ++i) {
    char* data = MustFetch(&pool, ids[i]);
    EXPECT_EQ(data[0], static_cast<char>(i + 1));
    pool.Unpin(ids[i], false);
  }
  // Every page fits in its shard (2 frames each), so no eviction happened
  // and every Fetch above was a hit.
  EXPECT_EQ(disk.stats().evictions, 0);
  EXPECT_EQ(disk.stats().pool_hits, 8);
}

TEST(BufferPoolTest, ShardedEvictionWritesBack) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("shardevict")).ok());
  // 2 shards, 1 frame each: allocating 4 pages evicts within each shard.
  BufferPool pool(&disk, 2, /*shards=*/2);
  PageId ids[4];
  for (int i = 0; i < 4; ++i) {
    char* data = MustAllocate(&pool, &ids[i]);
    data[0] = static_cast<char>(0x10 + i);
    pool.Unpin(ids[i], true);
  }
  EXPECT_GT(disk.stats().evictions, 0);
  for (int i = 0; i < 4; ++i) {
    char* data = MustFetch(&pool, ids[i]);
    EXPECT_EQ(data[0], static_cast<char>(0x10 + i));
    pool.Unpin(ids[i], false);
  }
}

TEST(BufferPoolTest, ConcurrentFetchesKeepStatsExact) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("conc")).ok());
  constexpr int kPages = 16;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  BufferPool pool(&disk, kPages, /*shards=*/4);

  PageId ids[kPages];
  for (int i = 0; i < kPages; ++i) {
    char* data = MustAllocate(&pool, &ids[i]);
    std::memset(data, i + 1, kPageSize);
    pool.Unpin(ids[i], true);
  }
  const int64_t hits_before = disk.stats().pool_hits;
  const int64_t misses_before = disk.stats().pool_misses;

  std::atomic<int> corrupt{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int r = 0; r < kRounds; ++r) {
        const int i = (r * (t + 1)) % kPages;
        char* data = nullptr;
        if (!pool.Fetch(ids[i], &data).ok() || data == nullptr ||
            data[0] != static_cast<char>(i + 1) ||
            data[kPageSize - 1] != static_cast<char>(i + 1)) {
          corrupt.fetch_add(1);
        }
        if (data != nullptr) pool.Unpin(ids[i], false);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(corrupt.load(), 0);
  // Every page stayed resident (capacity == working set), so every fetch
  // was a hit and the atomic counters account for each one exactly.
  EXPECT_EQ(disk.stats().pool_hits - hits_before, kThreads * kRounds);
  EXPECT_EQ(disk.stats().pool_misses, misses_before);
}

TEST(BufferPoolTest, ConcurrentFetchesUnderInjectedFaultsStayConsistent) {
  // Probabilistic read faults while many workers fetch: every failure must
  // be a clean Status and every success must return intact data.
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("concfault")).ok());
  constexpr int kPages = 32;
  constexpr int kThreads = 8;
  constexpr int kRounds = 150;
  BufferPool pool(&disk, 4, /*shards=*/2);  // Tiny pool: constant eviction.

  PageId ids[kPages];
  for (int i = 0; i < kPages; ++i) {
    char* data = MustAllocate(&pool, &ids[i]);
    std::memset(data, i + 1, kPageSize);
    pool.Unpin(ids[i], true);
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  FaultInjector injector(7);
  injector.SetProbability(FaultInjector::Op::kRead, 0.05);
  injector.SetProbability(FaultInjector::Op::kWrite, 0.05);
  disk.set_fault_injector(&injector);

  std::atomic<int> corrupt{0};
  std::atomic<int> clean_failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int r = 0; r < kRounds; ++r) {
        const int i = (r * (t + 3)) % kPages;
        char* data = nullptr;
        const Status status = pool.Fetch(ids[i], &data);
        if (!status.ok()) {
          clean_failures.fetch_add(1);
          if (data != nullptr) corrupt.fetch_add(1);  // Contract violation.
          continue;
        }
        if (data == nullptr || data[0] != static_cast<char>(i + 1) ||
            data[kPageSize - 1] != static_cast<char>(i + 1)) {
          corrupt.fetch_add(1);
        }
        if (data != nullptr) pool.Unpin(ids[i], false);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  disk.set_fault_injector(nullptr);
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_GT(clean_failures.load(), 0);  // p=0.05 over ~1000 misses.
}

TEST(BufferPoolTest, ClearResetsFrames) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("clear")).ok());
  BufferPool pool(&disk, 2);
  PageId a;
  MustAllocate(&pool, &a);
  pool.Unpin(a, true);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  // After Clear, fetching re-reads from disk.
  const int64_t reads_before = disk.stats().page_reads;
  MustFetch(&pool, a);
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);
  pool.Unpin(a, false);
}

}  // namespace
}  // namespace partminer
