#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace partminer {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/partminer_storage_test_") + tag + "_" +
         std::to_string(::getpid());
}

TEST(DiskManagerTest, RoundTripPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("rt")).ok());
  const PageId a = disk.Allocate();
  const PageId b = disk.Allocate();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);

  char write_buf[kPageSize];
  char read_buf[kPageSize];
  std::memset(write_buf, 0xAB, kPageSize);
  ASSERT_TRUE(disk.WritePage(b, write_buf).ok());
  ASSERT_TRUE(disk.ReadPage(b, read_buf).ok());
  EXPECT_EQ(std::memcmp(write_buf, read_buf, kPageSize), 0);

  // Never-written page reads as zeros.
  ASSERT_TRUE(disk.ReadPage(a, read_buf).ok());
  for (int i = 0; i < kPageSize; ++i) ASSERT_EQ(read_buf[i], 0) << i;
  EXPECT_EQ(disk.stats().page_reads, 2);
  EXPECT_EQ(disk.stats().page_writes, 1);
}

TEST(DiskManagerTest, ResetDropsPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("reset")).ok());
  disk.Allocate();
  disk.Allocate();
  EXPECT_EQ(disk.page_count(), 2);
  ASSERT_TRUE(disk.Reset().ok());
  EXPECT_EQ(disk.page_count(), 0);
}

TEST(BufferPoolTest, FetchCachesPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("cache")).ok());
  BufferPool pool(&disk, 4);

  PageId id;
  char* data = pool.Allocate(&id);
  ASSERT_NE(data, nullptr);
  data[0] = 42;
  pool.Unpin(id, /*dirty=*/true);

  // Cached fetch: no disk read.
  const int64_t reads_before = disk.stats().page_reads;
  char* again = pool.Fetch(id);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again[0], 42);
  EXPECT_EQ(disk.stats().page_reads, reads_before);
  pool.Unpin(id, false);
  EXPECT_GT(disk.stats().pool_hits, 0);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("evict")).ok());
  BufferPool pool(&disk, 2);

  // Fill three pages through a two-frame pool.
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    char* data = pool.Allocate(&ids[i]);
    ASSERT_NE(data, nullptr);
    data[0] = static_cast<char>(i + 1);
    pool.Unpin(ids[i], true);
  }
  EXPECT_GT(disk.stats().evictions, 0);
  EXPECT_GT(disk.stats().page_writes, 0);

  // Page 0 was evicted; fetching it re-reads the written-back contents.
  char* data = pool.Fetch(ids[0]);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data[0], 1);
  pool.Unpin(ids[0], false);
  EXPECT_GT(disk.stats().page_reads, 0);
}

TEST(BufferPoolTest, AllPinnedReturnsNull) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("pinned")).ok());
  BufferPool pool(&disk, 2);
  PageId a, b, c;
  ASSERT_NE(pool.Allocate(&a), nullptr);
  ASSERT_NE(pool.Allocate(&b), nullptr);
  EXPECT_EQ(pool.Allocate(&c), nullptr);  // No frame available.
  pool.Unpin(a, false);
  EXPECT_NE(pool.Allocate(&c), nullptr);  // LRU frame reclaimed.
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("pin2")).ok());
  BufferPool pool(&disk, 2);
  PageId pinned;
  char* data = pool.Allocate(&pinned);
  ASSERT_NE(data, nullptr);
  data[7] = 99;

  // Churn the other frame.
  for (int i = 0; i < 5; ++i) {
    PageId id;
    char* p = pool.Allocate(&id);
    ASSERT_NE(p, nullptr);
    pool.Unpin(id, true);
  }
  EXPECT_EQ(data[7], 99);  // Still resident and intact.
  pool.Unpin(pinned, true);
}

TEST(BufferPoolTest, ShardedPoolKeepsPagesIntact) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("shard")).ok());
  // 8 frames over 4 shards: shard s caches pages with id % 4 == s.
  BufferPool pool(&disk, 8, /*shards=*/4);
  EXPECT_EQ(pool.frames(), 8);
  EXPECT_EQ(pool.shards(), 4);

  PageId ids[8];
  for (int i = 0; i < 8; ++i) {
    char* data = pool.Allocate(&ids[i]);
    ASSERT_NE(data, nullptr);
    data[0] = static_cast<char>(i + 1);
    pool.Unpin(ids[i], true);
  }
  for (int i = 0; i < 8; ++i) {
    char* data = pool.Fetch(ids[i]);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data[0], static_cast<char>(i + 1));
    pool.Unpin(ids[i], false);
  }
  // Every page fits in its shard (2 frames each), so no eviction happened
  // and every Fetch above was a hit.
  EXPECT_EQ(disk.stats().evictions, 0);
  EXPECT_EQ(disk.stats().pool_hits, 8);
}

TEST(BufferPoolTest, ShardedEvictionWritesBack) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("shardevict")).ok());
  // 2 shards, 1 frame each: allocating 4 pages evicts within each shard.
  BufferPool pool(&disk, 2, /*shards=*/2);
  PageId ids[4];
  for (int i = 0; i < 4; ++i) {
    char* data = pool.Allocate(&ids[i]);
    ASSERT_NE(data, nullptr);
    data[0] = static_cast<char>(0x10 + i);
    pool.Unpin(ids[i], true);
  }
  EXPECT_GT(disk.stats().evictions, 0);
  for (int i = 0; i < 4; ++i) {
    char* data = pool.Fetch(ids[i]);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data[0], static_cast<char>(0x10 + i));
    pool.Unpin(ids[i], false);
  }
}

TEST(BufferPoolTest, ConcurrentFetchesKeepStatsExact) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("conc")).ok());
  constexpr int kPages = 16;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  BufferPool pool(&disk, kPages, /*shards=*/4);

  PageId ids[kPages];
  for (int i = 0; i < kPages; ++i) {
    char* data = pool.Allocate(&ids[i]);
    ASSERT_NE(data, nullptr);
    std::memset(data, i + 1, kPageSize);
    pool.Unpin(ids[i], true);
  }
  const int64_t hits_before = disk.stats().pool_hits;
  const int64_t misses_before = disk.stats().pool_misses;

  std::atomic<int> corrupt{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int r = 0; r < kRounds; ++r) {
        const int i = (r * (t + 1)) % kPages;
        char* data = pool.Fetch(ids[i]);
        if (data == nullptr || data[0] != static_cast<char>(i + 1) ||
            data[kPageSize - 1] != static_cast<char>(i + 1)) {
          corrupt.fetch_add(1);
        }
        if (data != nullptr) pool.Unpin(ids[i], false);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(corrupt.load(), 0);
  // Every page stayed resident (capacity == working set), so every fetch
  // was a hit and the atomic counters account for each one exactly.
  EXPECT_EQ(disk.stats().pool_hits - hits_before, kThreads * kRounds);
  EXPECT_EQ(disk.stats().pool_misses, misses_before);
}

TEST(BufferPoolTest, ClearResetsFrames) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(TempPath("clear")).ok());
  BufferPool pool(&disk, 2);
  PageId a;
  ASSERT_NE(pool.Allocate(&a), nullptr);
  pool.Unpin(a, true);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.Clear();
  // After Clear, fetching re-reads from disk.
  const int64_t reads_before = disk.stats().page_reads;
  ASSERT_NE(pool.Fetch(a), nullptr);
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);
  pool.Unpin(a, false);
}

}  // namespace
}  // namespace partminer
