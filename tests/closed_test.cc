#include "miner/closed.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/isomorphism.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

/// Definitional reference: p is closed iff no pattern in `complete` with
/// strictly more edges contains p with equal support; maximal iff no such
/// super-pattern exists at all.
bool IsClosedRef(const PatternInfo& p, const PatternSet& complete) {
  const Graph pg = p.code.ToGraph();
  for (const PatternInfo& q : complete.patterns()) {
    if (q.code.size() <= p.code.size()) continue;
    if (q.support == p.support && ContainsSubgraph(q.code.ToGraph(), pg)) {
      return false;
    }
  }
  return true;
}

bool IsMaximalRef(const PatternInfo& p, const PatternSet& complete) {
  const Graph pg = p.code.ToGraph();
  for (const PatternInfo& q : complete.patterns()) {
    if (q.code.size() <= p.code.size()) continue;
    if (ContainsSubgraph(q.code.ToGraph(), pg)) return false;
  }
  return true;
}

TEST(ClosedPatternsTest, MatchesDefinitionOnRandomDatabases) {
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 7, 3, 3, 2);
    GSpanMiner miner;
    MinerOptions options;
    options.min_support = 3;
    const PatternSet complete = miner.Mine(db, options);
    const PatternSet closed = ClosedPatterns(complete);
    const PatternSet maximal = MaximalPatterns(complete);

    for (const PatternInfo& p : complete.patterns()) {
      EXPECT_EQ(closed.Contains(p.code), IsClosedRef(p, complete))
          << "closed " << p.code.ToString();
      EXPECT_EQ(maximal.Contains(p.code), IsMaximalRef(p, complete))
          << "maximal " << p.code.ToString();
    }
    // Maximal ⊆ closed ⊆ complete.
    EXPECT_LE(maximal.size(), closed.size());
    EXPECT_LE(closed.size(), complete.size());
    for (const PatternInfo& p : maximal.patterns()) {
      EXPECT_TRUE(closed.Contains(p.code));
    }
  }
}

TEST(ClosedPatternsTest, ChainCollapsesToLongestPattern) {
  // Every graph is the same path a-b-c: all subpatterns share support, so
  // only the full path is closed (and maximal).
  GraphDatabase db;
  for (int i = 0; i < 4; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddVertex(2);
    g.AddEdge(0, 1, 0);
    g.AddEdge(1, 2, 0);
    db.Add(g);
  }
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 4;
  const PatternSet complete = miner.Mine(db, options);
  EXPECT_EQ(complete.size(), 3);  // Two edges + the path.
  const PatternSet closed = ClosedPatterns(complete);
  ASSERT_EQ(closed.size(), 1);
  EXPECT_EQ(closed.patterns()[0].code.size(), 2u);
  EXPECT_EQ(MaximalPatterns(complete).size(), 1);
}

TEST(ClosedPatternsTest, SupportDropKeepsSubpatternClosed) {
  // Edge (0)-(1) appears in 3 graphs; the path 0-1-2 only in 2: the edge is
  // closed (its super has lower support) but not maximal.
  GraphDatabase db;
  for (int i = 0; i < 3; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 0);
    if (i < 2) {
      g.AddVertex(2);
      g.AddEdge(1, 2, 0);
    }
    db.Add(g);
  }
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 2;
  const PatternSet complete = miner.Mine(db, options);
  const PatternSet closed = ClosedPatterns(complete);
  const PatternSet maximal = MaximalPatterns(complete);

  DfsCode edge01;
  edge01.Append({0, 1, 0, 0, 1});
  EXPECT_TRUE(closed.Contains(edge01));
  EXPECT_FALSE(maximal.Contains(edge01));
}

}  // namespace
}  // namespace partminer
