#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/canonical.h"
#include "miner/brute_force.h"
#include "miner/gaston.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

/// Asserts two pattern sets contain exactly the same codes with the same
/// supports.
void ExpectSamePatterns(const PatternSet& a, const PatternSet& b,
                        const std::string& what) {
  EXPECT_EQ(a.SortedCodeStrings(), b.SortedCodeStrings()) << what;
  for (const PatternInfo& p : a.patterns()) {
    const PatternInfo* q = b.Find(p.code);
    ASSERT_NE(q, nullptr) << what << ": missing " << p.code.ToString();
    EXPECT_EQ(p.support, q->support) << what << ": " << p.code.ToString();
    EXPECT_EQ(p.tids, q->tids) << what << ": " << p.code.ToString();
  }
}

GraphDatabase TinyDatabase() {
  // Three small graphs sharing a frequent a-x-b edge and a triangle motif.
  GraphDatabase db;
  {
    Graph g;  // Triangle 0-1-2 labels (0,1,2), edges all label 0.
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddVertex(2);
    g.AddEdge(0, 1, 0);
    g.AddEdge(1, 2, 0);
    g.AddEdge(2, 0, 0);
    db.Add(g);
  }
  {
    Graph g;  // Path 0-1-2 with same labels.
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddVertex(2);
    g.AddEdge(0, 1, 0);
    g.AddEdge(1, 2, 0);
    db.Add(g);
  }
  {
    Graph g;  // Single edge 0-1.
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 0);
    db.Add(g);
  }
  return db;
}

TEST(GSpanTest, TinyDatabaseSupports) {
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 2;
  const PatternSet result = miner.Mine(TinyDatabase(), options);

  // Edge (0)-(1): in all three graphs.
  DfsCode edge01;
  edge01.Append({0, 1, 0, 0, 1});
  const PatternInfo* p = result.Find(edge01);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->support, 3);
  EXPECT_EQ(p->tids.ToVector(), (std::vector<int>{0, 1, 2}));

  // Path 0-1-2: in the triangle and the path graph.
  DfsCode path;
  path.Append({0, 1, 0, 0, 1});
  path.Append({1, 2, 1, 0, 2});
  const PatternInfo* q = result.Find(path);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->support, 2);

  // Triangle: support 1, must be absent.
  DfsCode triangle;
  triangle.Append({0, 1, 0, 0, 1});
  triangle.Append({1, 2, 1, 0, 2});
  triangle.Append({2, 0, 2, 0, 0});
  EXPECT_EQ(result.Find(triangle), nullptr);
}

TEST(GSpanTest, MinSupportOneFindsEverything) {
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 1;
  const PatternSet result = miner.Mine(TinyDatabase(), options);
  BruteForceMiner reference;
  const PatternSet expected = reference.Mine(TinyDatabase(), options);
  ExpectSamePatterns(expected, result, "minsup=1");
}

TEST(GSpanTest, MatchesBruteForceOnRandomDatabases) {
  Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 8, 6, 2, 2, 2);
    for (const int minsup : {1, 2, 3}) {
      MinerOptions options;
      options.min_support = minsup;
      options.max_edges = 5;
      GSpanMiner gspan;
      BruteForceMiner brute;
      ExpectSamePatterns(brute.Mine(db, options), gspan.Mine(db, options),
                         "trial " + std::to_string(trial) + " minsup " +
                             std::to_string(minsup));
    }
  }
}

TEST(GSpanTest, OrderPruningDoesNotChangeResults) {
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 6, 6, 3, 3, 2);
    MinerOptions with, without;
    with.min_support = 2;
    without.min_support = 2;
    with.enable_order_pruning = true;
    without.enable_order_pruning = false;
    GSpanMiner miner;
    ExpectSamePatterns(miner.Mine(db, without), miner.Mine(db, with),
                       "pruning trial " + std::to_string(trial));
  }
}

TEST(GSpanTest, MaxEdgesBoundsPatternSize) {
  GSpanMiner miner;
  MinerOptions options;
  options.min_support = 1;
  options.max_edges = 2;
  const PatternSet result = miner.Mine(TinyDatabase(), options);
  EXPECT_LE(result.MaxEdgeCount(), 2);
  EXPECT_GT(result.size(), 0);
}

TEST(GastonTest, MatchesGSpanOnRandomDatabases) {
  Rng rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 8, 7, 3, 3, 2);
    MinerOptions options;
    options.min_support = 2;
    GSpanMiner gspan;
    GastonMiner gaston;
    ExpectSamePatterns(gspan.Mine(db, options), gaston.Mine(db, options),
                       "gaston trial " + std::to_string(trial));
  }
}

TEST(GastonTest, PhaseStatsAccountForAllPatterns) {
  Rng rng(55);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 7, 3, 3, 2);
  MinerOptions options;
  options.min_support = 2;
  GastonMiner gaston;
  const PatternSet result = gaston.Mine(db, options);
  EXPECT_EQ(gaston.stats().TotalFrequent(), result.size());
  // Gaston's observation: paths and trees dominate.
  EXPECT_GT(gaston.stats().frequent_paths, 0);
}

TEST(GastonTest, StraightPathCodeDetection) {
  DfsCode straight;
  straight.Append({0, 1, 0, 0, 1});
  straight.Append({1, 2, 1, 0, 0});
  EXPECT_TRUE(IsStraightPathCode(straight));

  DfsCode branched;
  branched.Append({0, 1, 0, 0, 1});
  branched.Append({0, 2, 0, 0, 1});
  EXPECT_FALSE(IsStraightPathCode(branched));

  DfsCode cyclic;
  cyclic.Append({0, 1, 0, 0, 0});
  cyclic.Append({1, 2, 0, 0, 0});
  cyclic.Append({2, 0, 0, 0, 0});
  EXPECT_FALSE(IsStraightPathCode(cyclic));
}

TEST(GastonTest, PathFastCheckMatchesGenericOnRandomPathCodes) {
  // Build random path patterns, compute all their valid codes via
  // permutations of growth, and compare the specialized check with the
  // generic one.
  Rng rng(808);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(5));
    Graph path;
    path.AddVertex(static_cast<Label>(rng.Uniform(3)));
    for (int i = 1; i < n; ++i) {
      path.AddVertex(static_cast<Label>(rng.Uniform(3)));
      path.AddEdge(i - 1, i, static_cast<Label>(rng.Uniform(2)));
    }
    const DfsCode min_code = MinimumDfsCode(path);
    EXPECT_TRUE(IsMinimalPathCode(min_code)) << min_code.ToString();
    EXPECT_EQ(IsMinimalPathCode(min_code), IsMinimalDfsCode(min_code));
  }
}

TEST(GastonTest, PathFastCheckRejectsNonMinimalWalk) {
  // Path z-a-z: the straight walk from either 'z' endpoint starts (0,1,z,..)
  // but the minimal code roots at the middle 'a' vertex.
  Graph path;
  path.AddVertex(5);  // z
  path.AddVertex(0);  // a
  path.AddVertex(5);  // z
  path.AddEdge(0, 1, 0);
  path.AddEdge(1, 2, 0);

  DfsCode straight;
  straight.Append({0, 1, 5, 0, 0});
  straight.Append({1, 2, 0, 0, 5});
  EXPECT_FALSE(IsMinimalPathCode(straight));
  EXPECT_FALSE(IsMinimalDfsCode(straight));

  DfsCode rooted_mid;
  rooted_mid.Append({0, 1, 0, 0, 5});
  rooted_mid.Append({0, 2, 0, 0, 5});
  EXPECT_TRUE(IsMinimalPathCode(rooted_mid));
  EXPECT_TRUE(IsMinimalDfsCode(rooted_mid));
  EXPECT_EQ(MinimumDfsCode(path), rooted_mid);
}

TEST(BruteForceTest, CountsTriangleOnce) {
  BruteForceMiner miner;
  MinerOptions options;
  options.min_support = 1;
  GraphDatabase db;
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 0, 0);
  db.Add(g);
  const PatternSet result = miner.Mine(db, options);
  // Patterns: edge, path-2, triangle -> 3 distinct canonical codes.
  EXPECT_EQ(result.size(), 3);
}

}  // namespace
}  // namespace partminer
