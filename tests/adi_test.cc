#include <gtest/gtest.h>

#include "adi/adi_miner.h"
#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "graph/canonical.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

void ExpectSameResults(const PatternSet& expected, const PatternSet& actual,
                       const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what;
    EXPECT_EQ(p.support, q->support) << what << " " << p.code.ToString();
    EXPECT_EQ(p.tids, q->tids) << what << " " << p.code.ToString();
  }
}

TEST(AdiIndexTest, RoundTripsGraphsThroughPages) {
  Rng rng(12);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 120, 14, 6, 4, 3);

  AdiMineOptions options;
  options.pool.frames = 2;  // Tiny pool: forces eviction during the scan.
  AdiMine adi(options);
  ASSERT_TRUE(adi.BuildIndex(db).ok());
  EXPECT_GT(adi.index().pages_used(), 2);

  for (int i = 0; i < db.size(); ++i) {
    Graph g;
    ASSERT_TRUE(adi.index().LoadGraph(i, &g).ok()) << i;
    ASSERT_EQ(g.VertexCount(), db.graph(i).VertexCount()) << i;
    ASSERT_EQ(g.EdgeCount(), db.graph(i).EdgeCount()) << i;
    EXPECT_EQ(MinimumDfsCode(g), MinimumDfsCode(db.graph(i))) << i;
  }
  EXPECT_GT(adi.io_stats().evictions, 0);
  EXPECT_GT(adi.io_stats().page_reads, 0);
}

TEST(AdiIndexTest, EdgeTableSupportsMatchSingleEdgeMining) {
  Rng rng(21);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 15, 8, 3, 3, 2);
  AdiMine adi;
  ASSERT_TRUE(adi.BuildIndex(db).ok());

  GSpanMiner gspan;
  MinerOptions options;
  options.min_support = 3;
  options.max_edges = 1;
  const PatternSet edges = gspan.Mine(db, options);
  int frequent_triples = 0;
  for (const auto& [triple, tids] : adi.index().edge_table()) {
    (void)triple;
    if (static_cast<int>(tids.size()) >= 3) ++frequent_triples;
  }
  EXPECT_EQ(frequent_triples, edges.size());
}

TEST(AdiMineTest, MatchesGSpan) {
  Rng rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 12, 8, 3, 3, 2);
    AdiMine adi;
    ASSERT_TRUE(adi.BuildIndex(db).ok());
    MinerOptions options;
    options.min_support = 3;
    GSpanMiner gspan;
    ExpectSameResults(gspan.Mine(db, options), adi.Mine(options),
                      "trial " + std::to_string(trial));
  }
}

TEST(AdiMineTest, RebuildReflectsUpdates) {
  GeneratorParams params;
  params.num_graphs = 20;
  params.avg_edges = 10;
  params.num_labels = 5;
  params.num_kernels = 8;
  GraphDatabase db = GenerateDatabase(params);

  AdiMine adi;
  ASSERT_TRUE(adi.BuildIndex(db).ok());
  MinerOptions options;
  options.min_support = 4;
  const PatternSet before = adi.Mine(options);

  UpdateOptions upd;
  upd.fraction_graphs = 0.6;
  upd.seed = 2;
  ApplyUpdates(&db, params.num_labels, upd);
  ASSERT_TRUE(adi.RebuildIndex(db).ok());
  const PatternSet after = adi.Mine(options);

  GSpanMiner gspan;
  ExpectSameResults(gspan.Mine(db, options), after, "post-rebuild");
  // A rebuild really rewrote the file.
  EXPECT_GT(adi.io_stats().page_writes, 0);
  (void)before;
}

// The acceptance bar for the swizzle engine: on a database whose page file
// is far larger than the configured pool (constant eviction + cooling
// churn), mining output must be bit-identical — codes, supports, and TID
// sets — across the classic pool, the swizzle pool with synchronous
// write-back, and the swizzle pool with async writer threads.
TEST(AdiMineTest, EnginesBitIdenticalOnDatabaseLargerThanPool) {
  Rng rng(47);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 400, 14, 6, 4, 3);
  MinerOptions options;
  options.min_support = 25;
  options.max_edges = 3;

  auto mine_with = [&](const PoolSizing& pool, const std::string& what) {
    AdiMineOptions adi_options;
    adi_options.pool = pool;
    AdiMine adi(adi_options);
    EXPECT_TRUE(adi.BuildIndex(db).ok()) << what;
    // The index must not fit: every scan pays evictions.
    EXPECT_GT(adi.index().pages_used(), pool.frames) << what;
    PatternSet patterns;
    EXPECT_TRUE(adi.Mine(options, &patterns).ok()) << what;
    EXPECT_GT(adi.io_stats().evictions, 0) << what;
    return patterns;
  };

  GSpanMiner gspan;
  const PatternSet expected = gspan.Mine(db, options);

  PoolSizing classic;
  classic.engine = StorageEngine::kClassic;
  classic.frames = 8;
  ExpectSameResults(expected, mine_with(classic, "classic"), "classic");

  PoolSizing swizzle;
  swizzle.engine = StorageEngine::kSwizzle;
  swizzle.frames = 8;
  ExpectSameResults(expected, mine_with(swizzle, "swizzle"), "swizzle");

  PoolSizing multi = swizzle;
  multi.partitions = 4;
  ExpectSameResults(expected, mine_with(multi, "swizzle partitions=4"),
                    "swizzle partitions=4");

  PoolSizing async = swizzle;
  async.writer_threads = 2;
  async.writeback_queue = 8;
  ExpectSameResults(expected, mine_with(async, "swizzle async"),
                    "swizzle async");
}

// Both engines must also agree when the database fits (pure hot-path reads
// after the build) — this pins the swizzled fast path itself.
TEST(AdiMineTest, EnginesBitIdenticalOnResidentDatabase) {
  Rng rng(53);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 40, 10, 4, 3, 2);
  MinerOptions options;
  options.min_support = 4;

  for (const StorageEngine engine :
       {StorageEngine::kClassic, StorageEngine::kSwizzle}) {
    AdiMineOptions adi_options;
    adi_options.pool.engine = engine;
    adi_options.pool.frames = 512;
    AdiMine adi(adi_options);
    ASSERT_TRUE(adi.BuildIndex(db).ok());
    GSpanMiner gspan;
    ExpectSameResults(gspan.Mine(db, options), adi.Mine(options),
                      StorageEngineName(engine));
  }
}

TEST(AdiMineTest, ScanSkipsGraphsWithoutFrequentEdges) {
  // One graph with unique labels shares no frequent edge; the scan must
  // leave it undecoded (it appears as an empty placeholder).
  GraphDatabase db;
  for (int i = 0; i < 3; ++i) {
    Graph g;
    g.AddVertex(0);
    g.AddVertex(1);
    g.AddEdge(0, 1, 0);
    db.Add(g);
  }
  Graph odd;
  odd.AddVertex(7);
  odd.AddVertex(8);
  odd.AddEdge(0, 1, 9);
  db.Add(odd);

  AdiMine adi;
  ASSERT_TRUE(adi.BuildIndex(db).ok());
  MinerOptions options;
  options.min_support = 2;
  const PatternSet result = adi.Mine(options);
  ASSERT_EQ(result.size(), 1);
  EXPECT_EQ(result.patterns()[0].support, 3);
}

}  // namespace
}  // namespace partminer
