#include "core/part_miner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/generator.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

void ExpectSameResults(const PatternSet& expected, const PatternSet& actual,
                       const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what << ": missing " << p.code.ToString();
    EXPECT_EQ(p.support, q->support) << what << ": " << p.code.ToString();
    EXPECT_EQ(p.tids, q->tids) << what << ": " << p.code.ToString();
  }
}

/// The headline property (Theorems 1-3): PartMiner output is exactly the
/// gSpan result on the unpartitioned database — same patterns, same
/// supports, same TID lists — for every k and partition criteria.
struct PartMinerCase {
  int k;
  PartitionCriteria criteria;
  int min_support;
};

class PartMinerEquivalence : public ::testing::TestWithParam<PartMinerCase> {};

TEST_P(PartMinerEquivalence, MatchesGSpan) {
  const PartMinerCase& c = GetParam();
  Rng rng(1000 + c.k * 17 + static_cast<int>(c.criteria));
  const GraphDatabase db = testutil::RandomDatabase(&rng, 14, 8, 3, 3, 2);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = c.min_support;
  const PatternSet expected = gspan.Mine(db, full);

  PartMinerOptions options;
  options.min_support_count = c.min_support;
  options.partition.k = c.k;
  options.partition.criteria = c.criteria;
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);

  ExpectSameResults(expected, result.patterns,
                    "k=" + std::to_string(c.k) +
                        " criteria=" + PartitionCriteriaName(c.criteria));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartMinerEquivalence,
    ::testing::Values(
        PartMinerCase{1, PartitionCriteria::kCombined, 3},
        PartMinerCase{2, PartitionCriteria::kCombined, 3},
        PartMinerCase{2, PartitionCriteria::kIsolation, 3},
        PartMinerCase{2, PartitionCriteria::kMinCut, 3},
        PartMinerCase{2, PartitionCriteria::kMultilevel, 3},
        PartMinerCase{3, PartitionCriteria::kCombined, 3},
        PartMinerCase{4, PartitionCriteria::kCombined, 3},
        PartMinerCase{4, PartitionCriteria::kMinCut, 4},
        PartMinerCase{6, PartitionCriteria::kCombined, 4},
        PartMinerCase{2, PartitionCriteria::kCombined, 2}),
    [](const ::testing::TestParamInfo<PartMinerCase>& info) {
      return std::string("k") + std::to_string(info.param.k) + "_" +
             PartitionCriteriaName(info.param.criteria) + "_sup" +
             std::to_string(info.param.min_support);
    });

TEST(PartMinerTest, GastonAndGSpanUnitMinersAgree) {
  Rng rng(2);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 12, 8, 3, 3, 2);
  PartMinerOptions a, b;
  a.min_support_count = b.min_support_count = 3;
  a.partition.k = b.partition.k = 3;
  a.unit_miner = UnitMinerKind::kGaston;
  b.unit_miner = UnitMinerKind::kGSpan;
  PartMiner ma(a), mb(b);
  ExpectSameResults(ma.Mine(db).patterns, mb.Mine(db).patterns,
                    "unit miner kinds");
}

TEST(PartMinerTest, SupportFractionResolution) {
  PartMinerOptions options;
  options.min_support_fraction = 0.04;
  PartMiner miner(options);
  EXPECT_EQ(miner.ResolveSupport(100), 4);
  EXPECT_EQ(miner.ResolveSupport(101), 5);   // ceil.
  EXPECT_EQ(miner.ResolveSupport(10), 1);
  options.min_support_count = 7;
  PartMiner absolute(options);
  EXPECT_EQ(absolute.ResolveSupport(100), 7);
}

TEST(PartMinerTest, NodeSupportHalvesPerDepth) {
  GraphDatabase db;
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  db.Add(g);
  PartMinerOptions options;
  options.min_support_count = 8;
  options.partition.k = 4;
  PartMiner miner(options);
  miner.Mine(db);
  const auto& tree = miner.partitioned().tree();
  for (size_t i = 0; i < tree.size(); ++i) {
    const int expected = std::max(1, 8 >> tree[i].depth);
    EXPECT_EQ(miner.NodeSupport(static_cast<int>(i)), expected);
  }
}

TEST(PartMinerTest, TimingFieldsPopulated) {
  GeneratorParams params;
  params.num_graphs = 20;
  params.avg_edges = 10;
  params.num_labels = 6;
  params.num_kernels = 10;
  GraphDatabase db = GenerateDatabase(params);
  PartMinerOptions options;
  options.min_support_fraction = 0.3;
  options.partition.k = 3;
  PartMiner miner(options);
  const PartMinerResult r = miner.Mine(db);
  EXPECT_EQ(static_cast<int>(r.unit_mining_seconds.size()), 3);
  EXPECT_GE(r.AggregateSeconds(), r.ParallelSeconds());
  EXPECT_GT(r.patterns.size(), 0);
  EXPECT_EQ(r.min_support_count, 6);
}

TEST(PartMinerTest, ParallelUnitMiningMatchesSerial) {
  Rng rng(91);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 16, 8, 3, 3, 2);
  PartMinerOptions serial, parallel;
  serial.min_support_count = parallel.min_support_count = 3;
  serial.partition.k = parallel.partition.k = 4;
  serial.unit_mining_threads = 0;
  parallel.unit_mining_threads = 4;
  PartMiner a(serial), b(parallel);
  ExpectSameResults(a.Mine(db).patterns, b.Mine(db).patterns,
                    "parallel unit mining");
}

TEST(PartMinerTest, MaxEdgesRespected) {
  Rng rng(8);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 8, 3, 3, 2);
  PartMinerOptions options;
  options.min_support_count = 2;
  options.partition.k = 2;
  options.max_edges = 3;
  PartMiner miner(options);
  const PartMinerResult r = miner.Mine(db);
  EXPECT_LE(r.patterns.MaxEdgeCount(), 3);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 2;
  full.max_edges = 3;
  ExpectSameResults(gspan.Mine(db, full), r.patterns, "max_edges=3");
}

}  // namespace
}  // namespace partminer
