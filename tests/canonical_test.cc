#include "graph/canonical.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/dfs_code.h"
#include "graph/graph.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(CanonicalTest, SingleEdgeCanonicalOrientation) {
  Graph g;
  g.AddVertex(3);
  g.AddVertex(1);
  g.AddEdge(0, 1, 7);
  const DfsCode code = MinimumDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  // The smaller vertex label becomes DFS index 0.
  EXPECT_EQ(code[0].from_label, 1);
  EXPECT_EQ(code[0].edge_label, 7);
  EXPECT_EQ(code[0].to_label, 3);
}

TEST(CanonicalTest, PaperFigure1MinimumCode) {
  // Figure 1(b) of the paper: code(G, T1) is the minimum DFS code of G.
  const Graph g = testutil::PaperFigure1Graph();
  const DfsCode code = MinimumDfsCode(g);
  ASSERT_EQ(code.size(), 4u);
  EXPECT_EQ(code[0], (DfsEdge{0, 1, 0, 0, 0}));  // (v0,v1,0,a,0)
  EXPECT_EQ(code[1], (DfsEdge{1, 2, 0, 0, 1}));  // (v1,v2,0,a,1)
  EXPECT_EQ(code[2], (DfsEdge{1, 3, 0, 2, 2}));  // (v1,v3,0,c,2)
  EXPECT_EQ(code[3], (DfsEdge{3, 0, 2, 1, 0}));  // (v3,v0,2,b,0)
}

TEST(CanonicalTest, PaperFigure1NonMinimalCodesRejected) {
  // Figure 1(c): code(G, T2) = (0,1,0,a,0)(1,2,0,b,2)(2,0,2,c,0)(0,3,0,a,1).
  DfsCode t2;
  t2.Append({0, 1, 0, 0, 0});
  t2.Append({1, 2, 0, 1, 2});
  t2.Append({2, 0, 2, 2, 0});
  t2.Append({0, 3, 0, 0, 1});
  EXPECT_FALSE(IsMinimalDfsCode(t2));

  // Figure 1(d): code(G, T3) = (0,1,0,a,0)(1,2,0,c,2)(2,0,2,b,0)(0,3,0,a,1).
  DfsCode t3;
  t3.Append({0, 1, 0, 0, 0});
  t3.Append({1, 2, 0, 2, 2});
  t3.Append({2, 0, 2, 1, 0});
  t3.Append({0, 3, 0, 0, 1});
  EXPECT_FALSE(IsMinimalDfsCode(t3));
}

TEST(CanonicalTest, MinimumCodeIsMinimal) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 6, 3, 3, 2);
    const DfsCode code = MinimumDfsCode(g);
    EXPECT_TRUE(IsMinimalDfsCode(code)) << code.ToString();
  }
}

TEST(CanonicalTest, GreedyMatchesExhaustive) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 5, 3, 2, 2);
    const DfsCode greedy = MinimumDfsCode(g);
    const DfsCode exhaustive = MinimumDfsCodeExhaustive(g);
    EXPECT_EQ(greedy, exhaustive)
        << "greedy=" << greedy.ToString()
        << " exhaustive=" << exhaustive.ToString() << "\n"
        << g.DebugString();
  }
}

TEST(CanonicalTest, InvariantUnderVertexPermutation) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 7, 4, 3, 2);
    const Graph h = testutil::Permuted(&rng, g);
    EXPECT_EQ(MinimumDfsCode(g), MinimumDfsCode(h));
  }
}

TEST(CanonicalTest, DistinguishesLabelings) {
  // Two triangles differing in one edge label must get different codes.
  Graph a, b;
  for (Graph* g : {&a, &b}) {
    g->AddVertex(0);
    g->AddVertex(0);
    g->AddVertex(0);
    g->AddEdge(0, 1, 0);
    g->AddEdge(1, 2, 0);
  }
  a.AddEdge(2, 0, 0);
  b.AddEdge(2, 0, 1);
  EXPECT_NE(MinimumDfsCode(a), MinimumDfsCode(b));
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(CanonicalTest, RoundTripThroughToGraph) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 6, 2, 4, 3);
    const DfsCode code = MinimumDfsCode(g);
    EXPECT_EQ(MinimumDfsCode(code.ToGraph()), code);
  }
}

TEST(CanonicalTest, IsomorphicIffSameCode) {
  Rng rng(5);
  // Random pairs: permuted copies must match, independently sampled graphs
  // must match exactly when codes match.
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = testutil::RandomConnectedGraph(&rng, 5, 2, 2, 1);
    const Graph h = testutil::RandomConnectedGraph(&rng, 5, 2, 2, 1);
    const bool same_code =
        g.EdgeCount() == h.EdgeCount() && MinimumDfsCode(g) == MinimumDfsCode(h);
    EXPECT_EQ(AreIsomorphic(g, h), same_code);
    EXPECT_TRUE(AreIsomorphic(g, testutil::Permuted(&rng, g)));
  }
}

TEST(CanonicalTest, AutomorphicTriangleIsHandled) {
  // Fully symmetric triangle: many tied embeddings must not confuse the
  // greedy construction.
  Graph g;
  g.AddVertex(1);
  g.AddVertex(1);
  g.AddVertex(1);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2, 2);
  g.AddEdge(2, 0, 2);
  const DfsCode code = MinimumDfsCode(g);
  ASSERT_EQ(code.size(), 3u);
  EXPECT_EQ(code[0], (DfsEdge{0, 1, 1, 2, 1}));
  EXPECT_EQ(code[1], (DfsEdge{1, 2, 1, 2, 1}));
  EXPECT_EQ(code[2], (DfsEdge{2, 0, 1, 2, 1}));
}

}  // namespace
}  // namespace partminer
