#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace partminer {
namespace {

// Small busy-wait so tasks overlap long enough for stealing to happen even
// on a machine with few cores.
void SpinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.width(), 4);
    TaskGroup group(&pool);
    for (int i = 0; i < 100; ++i) {
      group.Spawn([&ran]() { ran.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(ran.load(), 100);
  }
}

TEST(ThreadPoolTest, NullPoolRunsInline) {
  // The serial fast path: no pool, Spawn executes immediately on the caller.
  int ran = 0;
  TaskGroup group(nullptr);
  const std::thread::id self = std::this_thread::get_id();
  group.Spawn([&]() {
    ++ran;
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
  EXPECT_EQ(ran, 1);  // Already done, before Wait.
  group.Wait();
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  // Recursive fork-join deeper and wider than the pool: every level waits
  // for its children from inside a pool task, which only terminates if
  // waiting workers help execute queued tasks.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    TaskGroup group(&pool);
    for (int i = 0; i < 3; ++i) {
      group.Spawn([&recurse, depth]() { recurse(depth - 1); });
    }
    group.Wait();
  };
  TaskGroup root(&pool);
  root.Spawn([&recurse]() { recurse(4); });
  root.Wait();
  EXPECT_EQ(leaves.load(), 3 * 3 * 3 * 3);
  EXPECT_GE(pool.stats().executed.load(), 1 + 3 + 9 + 27 + 81);
}

TEST(ThreadPoolTest, StealsUnderSkewedLoad) {
  // One task fans 200 children into its own worker's deque; the other three
  // workers have empty deques and can only make progress by stealing.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskGroup outer(&pool);
    outer.Spawn([&]() {
      TaskGroup inner(&pool);
      for (int i = 0; i < 200; ++i) {
        inner.Spawn([&ran]() {
          SpinFor(std::chrono::microseconds(200));
          ran.fetch_add(1);
        });
      }
      inner.Wait();
    });
    outer.Wait();
  }
  EXPECT_EQ(ran.load(), 200);
  EXPECT_GT(pool.stats().steals.load(), 0);
  // A steal moves half the victim's queue, so moved >= batches.
  EXPECT_GE(pool.stats().steal_moved_tasks.load(),
            pool.stats().steals.load());
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  // Destroy the pool while tasks are still queued (no TaskGroup, nothing
  // waits): the destructor must run every one of them before joining.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, ShutdownDrainsTasksSpawnedDuringShutdown) {
  // Tasks that spawn more tasks while the destructor is draining.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran, &pool]() {
        ran.fetch_add(1);
        pool.Submit([&ran]() { ran.fetch_add(1); });
      });
    }
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TryRunOneTaskHelpsFromExternalThread) {
  ThreadPool pool(1);
  // Park the single worker so the queue backs up. Wait until the worker has
  // actually dequeued the parking task — otherwise the external helper
  // below could run it and spin on `release` itself.
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  pool.Submit([&parked, &release]() {
    parked.store(true);
    while (!release.load()) {
      SpinFor(std::chrono::microseconds(50));
    }
  });
  while (!parked.load()) {
    SpinFor(std::chrono::microseconds(50));
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran]() { ran.fetch_add(1); });
  }
  // The external caller executes queued tasks itself.
  int helped = 0;
  while (pool.TryRunOneTask()) ++helped;
  EXPECT_GT(helped, 0);
  EXPECT_EQ(ran.load(), helped);
  release.store(true);
}

TEST(ThreadPoolTest, CurrentIdentifiesWorkers) {
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::Current(), nullptr);
  std::atomic<int> inside{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&]() {
      if (ThreadPool::Current() == &pool) inside.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(inside.load(), 8);
}

TEST(ThreadPoolTest, StatsCountSubmissions) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 25; ++i) group.Spawn([]() {});
  group.Wait();
  EXPECT_EQ(pool.stats().submitted.load(), 25);
  EXPECT_EQ(pool.stats().executed.load(), 25);
}

}  // namespace
}  // namespace partminer
