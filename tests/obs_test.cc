// Tests for the observability layer: metric registry semantics, concurrent
// mutation, trace-event export well-formedness, and an end-to-end check that
// PartMiner's span hierarchy is self-consistent under concurrent unit mining.

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/part_miner.h"
#include "datagen/generator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace partminer {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricRegistry;
using obs::TraceEvent;
using obs::Tracer;

// --- Minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals). Good enough to catch escaping and comma bugs in the
// exporters without a JSON dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Unescaped.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_])) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(MetricRegistryTest, CounterAndGaugeSemantics) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  // Same name, same handle.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);

  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);

  registry.ResetAll();
  EXPECT_EQ(c->value(), 0);  // Handle survives the reset.
  EXPECT_EQ(g->value(), 0);
}

TEST(MetricRegistryTest, HistogramBucketSemantics) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // <= 1
  h->Observe(1.0);    // <= 1 (boundary goes to its bucket)
  h->Observe(5.0);    // <= 10
  h->Observe(99.0);   // <= 100
  h->Observe(1e6);    // Overflow.
  EXPECT_EQ(h->count(), 5);
  EXPECT_NEAR(h->sum(), 0.5 + 1.0 + 5.0 + 99.0 + 1e6, 2.0);
  const std::vector<int64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
  // Bounds passed on later lookups of an existing name are ignored.
  EXPECT_EQ(registry.GetHistogram("test.hist", {5.0}), h);
}

TEST(MetricRegistryTest, QuantileOnEmptyHistogramIsZero) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("test.quantile_empty", {1.0, 10.0});
  EXPECT_EQ(h->Quantile(0.5), 0.0);
  EXPECT_EQ(h->Quantile(0.99), 0.0);
}

TEST(MetricRegistryTest, QuantileInterpolatesWithinBucket) {
  MetricRegistry registry;
  // One bucket (0, 10]: five observations spread the rank uniformly across
  // the bucket, so the estimate is linear interpolation from 0 to 10.
  Histogram* h = registry.GetHistogram("test.quantile_single", {10.0});
  for (int i = 0; i < 5; ++i) h->Observe(5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 2.0);   // rank clamps to 1 of 5.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 5.0);   // rank 2.5 of 5.
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 10.0);  // rank 5 of 5.
}

TEST(MetricRegistryTest, QuantileWalksCumulativeBuckets) {
  MetricRegistry registry;
  // Buckets (0,1], (1,2], (2,4] with counts 2 / 6 / 2.
  Histogram* h = registry.GetHistogram("test.quantile_multi",
                                       {1.0, 2.0, 4.0});
  for (int i = 0; i < 2; ++i) h->Observe(0.5);
  for (int i = 0; i < 6; ++i) h->Observe(1.5);
  for (int i = 0; i < 2; ++i) h->Observe(3.0);
  // rank 5 of 10 lands halfway through the middle bucket: 1 + 0.5 * (2-1).
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 1.5);
  // rank 9 of 10 lands halfway through the last bucket: 2 + 0.5 * (4-2).
  EXPECT_DOUBLE_EQ(h->Quantile(0.9), 3.0);
  // rank 2 of 10 is exactly the end of the first bucket.
  EXPECT_DOUBLE_EQ(h->Quantile(0.2), 1.0);
}

TEST(MetricRegistryTest, QuantileOverflowClampsToLastFiniteBound) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("test.quantile_overflow",
                                       {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  for (int i = 0; i < 3; ++i) h->Observe(1000.0);  // Overflow bucket.
  // Ranks past the finite buckets cannot be interpolated; they clamp to the
  // last finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 10.0);
  // A rank inside the finite buckets still interpolates normally: rank 1
  // exhausts the single-count first bucket, landing on its upper bound.
  EXPECT_DOUBLE_EQ(h->Quantile(0.1), 1.0);
}

TEST(MetricRegistryTest, JsonExportIncludesQuantileEstimates) {
  MetricRegistry registry;
  registry.GetHistogram("test.quantile_export", {1.0, 10.0})->Observe(5.0);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricRegistryTest, ConcurrentIncrementsAreExact) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  Histogram* h = registry.GetHistogram("test.concurrent_hist", {10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(t < kThreads / 2 ? 1.0 : 100.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->count(), int64_t{kThreads} * kPerThread);
  const std::vector<int64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], int64_t{kThreads} / 2 * kPerThread);
  EXPECT_EQ(buckets[1], int64_t{kThreads} / 2 * kPerThread);
}

TEST(MetricRegistryTest, JsonExportIsWellFormed) {
  MetricRegistry registry;
  registry.GetCounter("json.counter \"quoted\\name\"")->Add(3);
  registry.GetGauge("json.gauge")->Set(-5);
  registry.GetHistogram("json.hist", {1.0, 2.5})->Observe(1.7);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
  // The text export lists every metric.
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("json.gauge"), std::string::npos);
  EXPECT_NE(text.find("json.hist"), std::string::npos);
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.Stop();
  const size_t before = tracer.Snapshot().size();
  { PM_TRACE_SPAN("disabled_span", {{"x", 1}}); }
  EXPECT_EQ(tracer.Snapshot().size(), before);
}

TEST(TracerTest, NestedSpansExportWellFormedChromeJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  {
    PM_TRACE_SPAN("outer", {{"k", 4}, {"label", "demo \"x\""}});
    {
      PM_TRACE_SPAN("inner", {{"ratio", 0.5}});
    }
    { PM_TRACE_SPAN("inner"); }
  }
  tracer.Stop();

  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Snapshot orders parents before children; both inners nest inside outer.
  EXPECT_STREQ(events[0].name, "outer");
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
    if (std::string(e.name) == "inner") {
      EXPECT_GE(e.ts_us, events[0].ts_us);
      EXPECT_LE(e.ts_us + e.dur_us, events[0].ts_us + events[0].dur_us);
    }
  }

  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
}

// On one thread, RAII spans form a stack: any two recorded intervals are
// either disjoint or nested. Across threads no such relation is required.
bool IntervalsConsistent(const std::vector<TraceEvent>& events) {
  for (size_t a = 0; a < events.size(); ++a) {
    for (size_t b = a + 1; b < events.size(); ++b) {
      if (events[a].tid != events[b].tid) continue;
      const int64_t a0 = events[a].ts_us, a1 = a0 + events[a].dur_us;
      const int64_t b0 = events[b].ts_us, b1 = b0 + events[b].dur_us;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
      if (!disjoint && !nested) return false;
    }
  }
  return true;
}

TEST(TracerTest, PartMinerEmitsOneSpanPerUnitUnderConcurrentMining) {
  GeneratorParams params;
  params.num_graphs = 40;
  params.num_kernels = 8;
  params.seed = 7;
  const GraphDatabase db = GenerateDatabase(params);

  PartMinerOptions options;
  options.min_support_fraction = 0.2;
  options.partition.k = 4;
  options.unit_mining_threads = 2;

  Tracer& tracer = Tracer::Global();
  tracer.Start();
  PartMiner miner(options);
  const PartMinerResult result = miner.Mine(db);
  tracer.Stop();
  EXPECT_GT(result.patterns.size(), 0);

  const std::vector<TraceEvent> events = tracer.Snapshot();
  std::set<int64_t> units_seen;
  int partition_spans = 0, merge_spans = 0, verify_spans = 0, root_spans = 0;
  int64_t unit_mining_begin = -1, unit_mining_end = -1;
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (name == "unit_mine") {
      for (const obs::TraceArg& arg : e.args) {
        if (std::string(arg.key) == "unit") units_seen.insert(arg.number);
      }
    } else if (name == "partition") {
      ++partition_spans;
    } else if (name == "merge") {
      ++merge_spans;
    } else if (name == "verify") {
      ++verify_spans;
    } else if (name == "part_miner.mine") {
      ++root_spans;
    } else if (name == "unit_mining") {
      unit_mining_begin = e.ts_us;
      unit_mining_end = e.ts_us + e.dur_us;
    }
  }
  // One unit_mine span per unit, each tagged with a distinct unit index.
  EXPECT_EQ(units_seen.size(), 4u);
  EXPECT_EQ(*units_seen.begin(), 0);
  EXPECT_EQ(*units_seen.rbegin(), 3);
  EXPECT_EQ(partition_spans, 1);
  EXPECT_EQ(merge_spans, 1);
  EXPECT_EQ(verify_spans, 1);
  EXPECT_EQ(root_spans, 1);

  // Worker spans land inside the unit_mining phase even across threads
  // (the phase joins the workers before it closes).
  ASSERT_GE(unit_mining_begin, 0);
  int unit_spans = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "unit_mine") continue;
    ++unit_spans;
    EXPECT_GE(e.ts_us, unit_mining_begin);
    EXPECT_LE(e.ts_us + e.dur_us, unit_mining_end);
  }
  EXPECT_EQ(unit_spans, 4);

  EXPECT_TRUE(IntervalsConsistent(events));

  // The wired pipeline counters moved.
  MetricRegistry& registry = MetricRegistry::Global();
  EXPECT_GT(registry.GetCounter("miner.root_extension_embeddings")->value(),
            0);
  EXPECT_GT(registry.GetCounter("miner.minimality_checks")->value(), 0);
  EXPECT_GT(registry.GetCounter("iso.embedding_extensions")->value(), 0);
  EXPECT_GT(registry.GetCounter("verify.patterns_in")->value(), 0);
  EXPECT_GT(registry.GetCounter("merge.inherited_patterns")->value(), 0);
  EXPECT_GT(registry.GetCounter("merge.candidates_counted")->value(), 0);
}

}  // namespace
}  // namespace partminer
