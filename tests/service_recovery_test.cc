// Crash/restart recovery for the resident mining service: a session that
// applies updates, snapshots, dies, and is restored from the snapshot must
// continue to a pattern set bit-identical to an uninterrupted session — and
// both must agree with a from-scratch re-mine of the final database.

#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/random.h"
#include "core/part_miner.h"
#include "datagen/edit_stream.h"
#include "gtest/gtest.h"
#include "service/session.h"
#include "storage/fault_injector.h"
#include "tests/test_util.h"

namespace partminer {
namespace service {
namespace {

SessionOptions MakeOptions() {
  SessionOptions options;
  options.miner.min_support_count = 3;
  options.miner.partition.k = 2;
  return options;
}

std::string TempPrefix(const char* tag) {
  return "/tmp/pm_service_recovery_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

void RemoveSnapshot(const std::string& prefix) {
  std::remove((prefix + ".db.lg").c_str());
  std::remove((prefix + ".state").c_str());
}

/// Exact pattern-set equality: codes, supports, and TID sets.
void ExpectSamePatterns(const PatternSet& expected, const PatternSet& actual,
                        const char* what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what << ": missing " << p.code.ToString();
    EXPECT_EQ(q->support, p.support) << what << ": " << p.code.ToString();
    EXPECT_TRUE(q->tids == p.tids) << what << ": " << p.code.ToString();
  }
}

class ServiceRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(20260808);
    db_ = testutil::RandomDatabase(&rng, /*graphs=*/24, /*vertices=*/8,
                                   /*extra_edges=*/3, /*vertex_labels=*/4,
                                   /*edge_labels=*/3);
    EditStreamOptions stream;
    stream.seed = 7;
    stream.requests = 4;
    stream.update_fraction = 1.0;
    stream.edits_per_update = 5;
    stream.num_labels = 4;
    stream.resident_support = 3;
    batches_.clear();
    for (const StreamItem& item : GenerateEditStream(db_, stream)) {
      batches_.push_back(item.edits);
    }
    ASSERT_EQ(batches_.size(), 4u);
  }

  GraphDatabase db_;
  std::vector<std::vector<EditOp>> batches_;
};

TEST_F(ServiceRecoveryTest, RestoredSessionMatchesUninterruptedRun) {
  // Uninterrupted reference: all four batches in one session.
  MinerSession uninterrupted(MakeOptions());
  ASSERT_TRUE(uninterrupted.Init(db_).ok());
  for (const auto& batch : batches_) {
    BatchResult result;
    ASSERT_TRUE(uninterrupted.ApplyBatch(batch, &result).ok());
    EXPECT_EQ(result.rejected, 0) << result.first_rejection;
  }
  const uint64_t expected_digest = uninterrupted.digest();

  // Interrupted run: two batches, snapshot, session destroyed ("crash"),
  // restore, remaining two batches.
  const std::string prefix = TempPrefix("mid");
  {
    MinerSession doomed(MakeOptions());
    ASSERT_TRUE(doomed.Init(db_).ok());
    BatchResult result;
    ASSERT_TRUE(doomed.ApplyBatch(batches_[0], &result).ok());
    ASSERT_TRUE(doomed.ApplyBatch(batches_[1], &result).ok());
    SnapshotResult snapshot;
    ASSERT_TRUE(doomed.Snapshot(prefix, &snapshot).ok());
    EXPECT_EQ(snapshot.epoch, doomed.epoch());
  }  // ~MinerSession: the crash.

  MinerSession restored(MakeOptions());
  ASSERT_TRUE(
      restored.InitFromSnapshot(prefix + ".db.lg", prefix + ".state").ok());
  // Epochs are session-local and restart at zero; the digest is what
  // carries identity across the restart.
  EXPECT_EQ(restored.epoch(), 0u);
  for (size_t i = 2; i < batches_.size(); ++i) {
    BatchResult result;
    ASSERT_TRUE(restored.ApplyBatch(batches_[i], &result).ok());
    EXPECT_EQ(result.rejected, 0) << result.first_rejection;
  }

  EXPECT_EQ(restored.digest(), expected_digest);
  ExpectSamePatterns(uninterrupted.VerifiedPatterns(),
                     restored.VerifiedPatterns(), "restored vs uninterrupted");

  // Both must equal a from-scratch mine of the final database (the
  // incremental path and the restart path may not drift from the oracle).
  GraphDatabase replayed = db_;
  for (const auto& batch : batches_) {
    UpdateLog log;
    const EditBatchOutcome outcome = ApplyEditBatch(&replayed, batch, &log);
    ASSERT_EQ(outcome.rejected, 0) << outcome.first_rejection;
  }
  PartMiner oracle(MakeOptions().miner);
  oracle.Mine(replayed);
  ExpectSamePatterns(oracle.verified(), restored.VerifiedPatterns(),
                     "restored vs from-scratch oracle");
  EXPECT_EQ(PatternSetDigest(oracle.verified()), expected_digest);
  RemoveSnapshot(prefix);
}

TEST_F(ServiceRecoveryTest, SnapshotAfterEveryBatchRestoresEveryEpoch) {
  // Restoring any intermediate snapshot and replaying the tail converges to
  // the same final digest, no matter where the "crash" landed.
  MinerSession reference(MakeOptions());
  ASSERT_TRUE(reference.Init(db_).ok());
  std::vector<std::string> prefixes;
  for (size_t i = 0; i < batches_.size(); ++i) {
    BatchResult result;
    ASSERT_TRUE(reference.ApplyBatch(batches_[i], &result).ok());
    const std::string prefix = TempPrefix(("e" + std::to_string(i)).c_str());
    SnapshotResult snapshot;
    ASSERT_TRUE(reference.Snapshot(prefix, &snapshot).ok());
    prefixes.push_back(prefix);
  }
  for (size_t crash = 0; crash < prefixes.size(); ++crash) {
    MinerSession restored(MakeOptions());
    ASSERT_TRUE(restored
                    .InitFromSnapshot(prefixes[crash] + ".db.lg",
                                      prefixes[crash] + ".state")
                    .ok());
    for (size_t i = crash + 1; i < batches_.size(); ++i) {
      BatchResult result;
      ASSERT_TRUE(restored.ApplyBatch(batches_[i], &result).ok());
    }
    EXPECT_EQ(restored.digest(), reference.digest())
        << "crash after batch " << crash;
  }
  for (const std::string& prefix : prefixes) RemoveSnapshot(prefix);
}

TEST_F(ServiceRecoveryTest, FailedRestoreLeavesSessionUnready) {
  const std::string prefix = TempPrefix("bad");
  {
    MinerSession session(MakeOptions());
    ASSERT_TRUE(session.Init(db_).ok());
    SnapshotResult snapshot;
    ASSERT_TRUE(session.Snapshot(prefix, &snapshot).ok());
  }
  // Truncate the state file: the checksummed load must fail cleanly and the
  // half-restored session must refuse to serve.
  {
    FILE* f = std::fopen((prefix + ".state").c_str(), "r+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(f), 64), 0);
    std::fclose(f);
  }
  MinerSession broken(MakeOptions());
  const Status restore =
      broken.InitFromSnapshot(prefix + ".db.lg", prefix + ".state");
  EXPECT_FALSE(restore.ok());
  EXPECT_FALSE(broken.ready());
  QueryReply reply;
  EXPECT_FALSE(broken.Query({}, &reply).ok());
  RemoveSnapshot(prefix);
}

TEST_F(ServiceRecoveryTest, InjectedReadFaultFailsRestoreThenRetryWorks) {
  const std::string prefix = TempPrefix("fault");
  {
    MinerSession session(MakeOptions());
    ASSERT_TRUE(session.Init(db_).ok());
    SnapshotResult snapshot;
    ASSERT_TRUE(session.Snapshot(prefix, &snapshot).ok());
  }
  FaultInjector injector(1);
  injector.FailOnce(FaultInjector::Op::kRead, 0);
  MinerSession session(MakeOptions());
  session.set_fault_injector(&injector);
  EXPECT_FALSE(
      session.InitFromSnapshot(prefix + ".db.lg", prefix + ".state").ok());
  EXPECT_FALSE(session.ready());
  // The scripted fault is consumed; the retry restores the same state.
  EXPECT_TRUE(
      session.InitFromSnapshot(prefix + ".db.lg", prefix + ".state").ok());
  EXPECT_TRUE(session.ready());
  RemoveSnapshot(prefix);
}

}  // namespace
}  // namespace service
}  // namespace partminer
