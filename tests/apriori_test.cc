#include "miner/apriori.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

TEST(AprioriMinerTest, MatchesGSpanOnRandomDatabases) {
  Rng rng(2718);
  for (int trial = 0; trial < 6; ++trial) {
    const GraphDatabase db = testutil::RandomDatabase(&rng, 10, 7, 3, 3, 2);
    for (const int minsup : {2, 3}) {
      MinerOptions options;
      options.min_support = minsup;
      GSpanMiner gspan;
      AprioriMiner apriori;
      const PatternSet expected = gspan.Mine(db, options);
      const PatternSet actual = apriori.Mine(db, options);
      EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings())
          << "trial " << trial << " minsup " << minsup;
      for (const PatternInfo& p : expected.patterns()) {
        const PatternInfo* q = actual.Find(p.code);
        ASSERT_NE(q, nullptr);
        EXPECT_EQ(p.support, q->support) << p.code.ToString();
        EXPECT_EQ(p.tids, q->tids) << p.code.ToString();
      }
    }
  }
}

TEST(AprioriMinerTest, StatsShowGenerateAndCountProfile) {
  Rng rng(12);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 12, 8, 3, 3, 2);
  MinerOptions options;
  options.min_support = 3;
  AprioriMiner miner;
  const PatternSet patterns = miner.Mine(db, options);
  EXPECT_EQ(miner.stats().frequent_found, patterns.size());
  // The Apriori signature: far more candidates counted than kept.
  EXPECT_GT(miner.stats().candidates_counted, patterns.size());
  EXPECT_GE(miner.stats().candidates_generated,
            miner.stats().candidates_counted);
}

TEST(AprioriMinerTest, MaxEdgesBoundsLevels) {
  Rng rng(13);
  const GraphDatabase db = testutil::RandomDatabase(&rng, 8, 7, 3, 2, 2);
  MinerOptions options;
  options.min_support = 2;
  options.max_edges = 2;
  AprioriMiner miner;
  const PatternSet patterns = miner.Mine(db, options);
  EXPECT_LE(patterns.MaxEdgeCount(), 2);

  GSpanMiner gspan;
  const PatternSet expected = gspan.Mine(db, options);
  EXPECT_EQ(expected.SortedCodeStrings(), patterns.SortedCodeStrings());
}

}  // namespace
}  // namespace partminer
