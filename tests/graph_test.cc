#include "graph/graph.h"

#include <gtest/gtest.h>

namespace partminer {
namespace {

TEST(GraphTest, AddVertexAndEdgeBasics) {
  Graph g;
  EXPECT_EQ(g.VertexCount(), 0);
  const VertexId a = g.AddVertex(5);
  const VertexId b = g.AddVertex(6);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  const int32_t eid = g.AddEdge(a, b, 9);
  EXPECT_EQ(eid, 0);
  EXPECT_EQ(g.EdgeCount(), 1);
  EXPECT_EQ(g.Degree(a), 1);
  EXPECT_EQ(g.Degree(b), 1);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, a));
  EXPECT_EQ(g.EdgeLabelBetween(a, b), 9);
  EXPECT_EQ(g.EdgeLabelBetween(b, a), 9);
}

TEST(GraphTest, AdjacencyHoldsBothHalfEdges) {
  Graph g(3);
  g.AddEdge(0, 1, 4);
  g.AddEdge(1, 2, 5);
  ASSERT_EQ(g.adjacency(1).size(), 2u);
  EXPECT_EQ(g.adjacency(1)[0].to, 0);
  EXPECT_EQ(g.adjacency(1)[1].to, 2);
  // Shared undirected edge ids.
  EXPECT_EQ(g.adjacency(0)[0].eid, g.adjacency(1)[0].eid);
}

TEST(GraphTest, SetEdgeLabelUpdatesBothDirections) {
  Graph g(2);
  g.AddEdge(0, 1, 1);
  EXPECT_TRUE(g.SetEdgeLabel(1, 0, 8));
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 8);
  EXPECT_EQ(g.adjacency(0)[0].label, 8);
  EXPECT_EQ(g.adjacency(1)[0].label, 8);
  EXPECT_FALSE(g.SetEdgeLabel(0, 0, 3));  // No such edge.
}

TEST(GraphTest, IsConnected) {
  Graph g(4);
  g.AddEdge(0, 1, 0);
  g.AddEdge(2, 3, 0);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(1, 2, 0);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_FALSE(Graph().IsConnected());  // Empty graph.
  EXPECT_TRUE(Graph(1).IsConnected());  // Single vertex.
}

TEST(GraphTest, UndirectedEdgesListsEachOnce) {
  Graph g(3);
  g.AddEdge(0, 1, 7);
  g.AddEdge(1, 2, 8);
  g.AddEdge(2, 0, 9);
  const std::vector<EdgeEntry> edges = g.UndirectedEdges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].label, 7);
  EXPECT_EQ(edges[1].label, 8);
  EXPECT_EQ(edges[2].label, 9);
}

TEST(GraphTest, CompactIsolatedVertices) {
  Graph g(5);
  for (VertexId v = 0; v < 5; ++v) g.set_vertex_label(v, v * 10);
  g.AddEdge(1, 3, 6);  // Vertices 0, 2, 4 are isolated.
  g.set_update_freq(3, 7);
  const std::vector<VertexId> mapping = g.CompactIsolatedVertices();
  EXPECT_EQ(g.VertexCount(), 2);
  EXPECT_EQ(mapping[0], -1);
  EXPECT_EQ(mapping[1], 0);
  EXPECT_EQ(mapping[3], 1);
  EXPECT_EQ(g.vertex_label(0), 10);
  EXPECT_EQ(g.vertex_label(1), 30);
  EXPECT_EQ(g.update_freq(1), 7u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(GraphTest, UpdateFrequencyBookkeeping) {
  Graph g(2);
  EXPECT_EQ(g.update_freq(0), 0u);
  g.BumpUpdateFreq(0);
  g.BumpUpdateFreq(0);
  g.set_update_freq(1, 5);
  EXPECT_EQ(g.update_freq(0), 2u);
  EXPECT_EQ(g.update_freq(1), 5u);
}

TEST(GraphTest, DebugStringFormat) {
  Graph g(2);
  g.set_vertex_label(0, 3);
  g.set_vertex_label(1, 4);
  g.AddEdge(0, 1, 5);
  EXPECT_EQ(g.DebugString(), "v 0 3\nv 1 4\ne 0 1 5\n");
}

TEST(GraphDatabaseTest, GidDefaultsToIndex) {
  GraphDatabase db;
  EXPECT_TRUE(db.empty());
  db.Add(Graph(1));
  db.Add(Graph(2), 42);
  EXPECT_EQ(db.size(), 2);
  EXPECT_EQ(db.gid(0), 0);
  EXPECT_EQ(db.gid(1), 42);
}

TEST(GraphDatabaseTest, TotalEdges) {
  GraphDatabase db;
  Graph g(3);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  db.Add(g);
  db.Add(Graph(1));
  EXPECT_EQ(db.TotalEdges(), 2);
}

TEST(GraphDeathTest, RejectsInvalidEdges) {
  Graph g(2);
  EXPECT_DEATH(g.AddEdge(0, 0, 1), "Check failed");   // Self loop.
  EXPECT_DEATH(g.AddEdge(0, 5, 1), "Check failed");   // Out of range.
}

}  // namespace
}  // namespace partminer
