// Slow-tier fuzzing: a deeper differential seed sweep and the full
// fault-injection grids (probabilistic p in {0.001, 0.01, 0.1} and
// scripted fail-once schedules over read/write/alloc). `ctest -L slow`
// runs these; tools/run_fuzz.sh runs the same sweeps under ASan.

#include <gtest/gtest.h>

#include "testing/differential.h"
#include "testing/fault_sweep.h"

namespace partminer {
namespace {

TEST(FuzzSlowTest, DifferentialSeedSweep) {
  for (uint64_t seed = 100; seed < 140; ++seed) {
    const testing::DifferentialResult result =
        testing::RunDifferentialSeed(seed, /*smoke=*/false);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ":\n" << result.divergence;
  }
}

TEST(FuzzSlowTest, AdiFaultSweepHoldsContract) {
  const testing::FaultSweepOutcome outcome = testing::RunAdiFaultSweep(1);
  EXPECT_GT(outcome.runs, 100);
  // The grid must actually exercise both outcomes: injected faults that
  // surface as clean errors, and low-p runs that complete correctly.
  EXPECT_GT(outcome.clean_failures, 0);
  EXPECT_GT(outcome.successes, 0);
  for (const std::string& v : outcome.violations) ADD_FAILURE() << v;
}

TEST(FuzzSlowTest, StateIoFaultSweepHoldsContract) {
  const testing::FaultSweepOutcome outcome = testing::RunStateIoFaultSweep(2);
  EXPECT_GT(outcome.runs, 50);
  EXPECT_GT(outcome.clean_failures, 0);
  EXPECT_GT(outcome.successes, 0);  // The untampered control load.
  for (const std::string& v : outcome.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace partminer
