// Slow-tier fuzzing: a deeper differential seed sweep and the full
// fault-injection grids (probabilistic p in {0.001, 0.01, 0.1} and
// scripted fail-once schedules over read/write/alloc). `ctest -L slow`
// runs these; tools/run_fuzz.sh runs the same sweeps under ASan.

#include <gtest/gtest.h>

#include "testing/differential.h"
#include "testing/fault_sweep.h"

namespace partminer {
namespace {

TEST(FuzzSlowTest, DifferentialSeedSweep) {
  for (uint64_t seed = 100; seed < 140; ++seed) {
    const testing::DifferentialResult result =
        testing::RunDifferentialSeed(seed, /*smoke=*/false);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ":\n" << result.divergence;
  }
}

TEST(FuzzSlowTest, AdiFaultSweepHoldsContract) {
  // The full grid, once per storage engine: classic pool, swizzle pool with
  // synchronous write-back, and swizzle with async writer threads (whose
  // failed-write retention path is distinct).
  PoolSizing async = testing::AdiSweepPoolSizing(StorageEngine::kSwizzle);
  async.writer_threads = 2;
  async.writeback_queue = 4;
  const struct {
    const char* label;
    PoolSizing pool;
  } engines[] = {
      {"classic", testing::AdiSweepPoolSizing(StorageEngine::kClassic)},
      {"swizzle", testing::AdiSweepPoolSizing(StorageEngine::kSwizzle)},
      {"swizzle+writers", async}};
  for (const auto& engine : engines) {
    const testing::FaultSweepOutcome outcome =
        testing::RunAdiFaultSweep(1, engine.pool);
    EXPECT_GT(outcome.runs, 100) << engine.label;
    // The grid must actually exercise both outcomes: injected faults that
    // surface as clean errors, and low-p runs that complete correctly.
    EXPECT_GT(outcome.clean_failures, 0) << engine.label;
    EXPECT_GT(outcome.successes, 0) << engine.label;
    for (const std::string& v : outcome.violations) {
      ADD_FAILURE() << engine.label << ": " << v;
    }
  }
}

TEST(FuzzSlowTest, StateIoFaultSweepHoldsContract) {
  const testing::FaultSweepOutcome outcome = testing::RunStateIoFaultSweep(2);
  EXPECT_GT(outcome.runs, 50);
  EXPECT_GT(outcome.clean_failures, 0);
  EXPECT_GT(outcome.successes, 0);  // The untampered control load.
  for (const std::string& v : outcome.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace partminer
