#include "core/inc_part_miner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/gspan.h"
#include "tests/test_util.h"

namespace partminer {
namespace {

void ExpectSameResults(const PatternSet& expected, const PatternSet& actual,
                       const std::string& what) {
  EXPECT_EQ(expected.SortedCodeStrings(), actual.SortedCodeStrings()) << what;
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    ASSERT_NE(q, nullptr) << what << ": missing " << p.code.ToString();
    EXPECT_EQ(p.support, q->support) << what << ": " << p.code.ToString();
    EXPECT_EQ(p.tids, q->tids) << what << ": " << p.code.ToString();
  }
}

GraphDatabase MakeDatabase(uint64_t seed, int graphs = 16) {
  GeneratorParams params;
  params.num_graphs = graphs;
  params.avg_edges = 10;
  params.num_labels = 5;
  params.num_kernels = 8;
  params.avg_kernel_edges = 3;
  params.seed = seed;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.2, seed + 1);
  return db;
}

struct IncCase {
  int k;
  UpdateKind kind;
  double fraction;
};

class IncPartMinerEquivalence : public ::testing::TestWithParam<IncCase> {};

/// The incremental headline property: after updates, IncPartMiner's result
/// equals a from-scratch gSpan mining of the updated database, and the
/// UF/FI/IF sets partition old/new results exactly.
TEST_P(IncPartMinerEquivalence, MatchesFromScratch) {
  const IncCase& c = GetParam();
  GraphDatabase db = MakeDatabase(42 + c.k);

  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = c.k;
  PartMiner miner(options);
  const PartMinerResult before = miner.Mine(db);

  UpdateOptions upd;
  upd.fraction_graphs = c.fraction;
  upd.kinds = {c.kind};
  upd.seed = 99 + c.k;
  const UpdateLog log = ApplyUpdates(&db, 5, upd);
  ASSERT_FALSE(log.updated_graphs.empty());

  IncPartMiner inc;
  const IncPartMinerResult result = inc.Update(&miner, db, log);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 4;
  const PatternSet expected = gspan.Mine(db, full);
  ExpectSameResults(expected, result.patterns, "incremental vs scratch");

  // Classification exactness.
  for (const PatternInfo& p : result.uf.patterns()) {
    EXPECT_TRUE(before.patterns.Contains(p.code));
    EXPECT_TRUE(expected.Contains(p.code));
  }
  for (const PatternInfo& p : result.if_.patterns()) {
    EXPECT_FALSE(before.patterns.Contains(p.code));
    EXPECT_TRUE(expected.Contains(p.code));
  }
  for (const PatternInfo& p : result.fi.patterns()) {
    EXPECT_TRUE(before.patterns.Contains(p.code));
    EXPECT_FALSE(expected.Contains(p.code));
  }
  EXPECT_EQ(result.uf.size() + result.if_.size(),
            static_cast<int>(expected.size()));
  EXPECT_EQ(result.uf.size() + result.fi.size(), before.patterns.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncPartMinerEquivalence,
    ::testing::Values(IncCase{2, UpdateKind::kRelabel, 0.3},
                      IncCase{2, UpdateKind::kAddEdge, 0.3},
                      IncCase{2, UpdateKind::kAddVertex, 0.3},
                      IncCase{3, UpdateKind::kRelabel, 0.5},
                      IncCase{4, UpdateKind::kAddEdge, 0.5},
                      IncCase{4, UpdateKind::kAddVertex, 0.8},
                      IncCase{6, UpdateKind::kRelabel, 0.8}),
    [](const ::testing::TestParamInfo<IncCase>& info) {
      const char* kind =
          info.param.kind == UpdateKind::kRelabel     ? "relabel"
          : info.param.kind == UpdateKind::kAddEdge   ? "addedge"
                                                      : "addvertex";
      return "k" + std::to_string(info.param.k) + "_" + kind + "_f" +
             std::to_string(static_cast<int>(info.param.fraction * 100));
    });

TEST(IncPartMinerTest, ForcedDeltaPathStaysExactAcrossRounds) {
  // Force the frontier-backed delta sweep at every node for every round —
  // the path whose correctness depends on multi-round frontier maintenance
  // (stripping, refresh, promotion, subtree cuts).
  GraphDatabase db = MakeDatabase(99);
  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 3;
  options.inc_delta_sweep_max_fraction = 1.0;
  PartMiner miner(options);
  miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 4;

  IncPartMiner inc;
  for (int round = 0; round < 6; ++round) {
    UpdateOptions upd;
    upd.fraction_graphs = 0.3;
    upd.updates_per_graph = 2;
    upd.kinds = {static_cast<UpdateKind>(round % 3)};
    upd.seed = 4000 + round;
    const UpdateLog log = ApplyUpdates(&db, 5, upd);
    const IncPartMinerResult result = inc.Update(&miner, db, log);
    ExpectSameResults(gspan.Mine(db, full), result.patterns,
                      "forced-delta round " + std::to_string(round));
  }
}

TEST(IncPartMinerTest, MultipleRoundsStayExact) {
  GraphDatabase db = MakeDatabase(7);
  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 4;
  PartMiner miner(options);
  miner.Mine(db);

  GSpanMiner gspan;
  MinerOptions full;
  full.min_support = 4;

  IncPartMiner inc;
  for (int round = 0; round < 4; ++round) {
    UpdateOptions upd;
    upd.fraction_graphs = 0.4;
    upd.seed = 1000 + round;
    const UpdateLog log = ApplyUpdates(&db, 5, upd);
    const IncPartMinerResult result = inc.Update(&miner, db, log);
    ExpectSameResults(gspan.Mine(db, full), result.patterns,
                      "round " + std::to_string(round));
  }
}

TEST(IncPartMinerTest, UntouchedUnitsAreNotRemined) {
  GraphDatabase db = MakeDatabase(13, /*graphs=*/20);
  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 4;
  PartMiner miner(options);
  miner.Mine(db);

  // One surgical update: relabel a degree-1 vertex of graph 0. The touched
  // units are at most {unit(v), unit(neighbor)} — strictly fewer than k.
  Graph& g0 = db.mutable_graph(0);
  VertexId leaf = -1;
  for (VertexId v = 0; v < g0.VertexCount(); ++v) {
    if (g0.Degree(v) == 1) {
      leaf = v;
      break;
    }
  }
  ASSERT_NE(leaf, -1) << "expected a degree-1 vertex in the first graph";
  g0.set_vertex_label(leaf, g0.vertex_label(leaf) + 100);
  g0.BumpUpdateFreq(leaf);
  UpdateLog log;
  log.updated_graphs = {0};
  log.touched_vertices = {{0, leaf}};

  IncPartMiner inc;
  const IncPartMinerResult result = inc.Update(&miner, db, log);
  EXPECT_LT(result.remined_units.Count(), 4)
      << "expected at least one unit untouched";
  for (int j = 0; j < 4; ++j) {
    if (!result.remined_units.Test(j)) {
      EXPECT_EQ(result.unit_mining_seconds[j], 0.0);
    }
  }
}

TEST(IncPartMinerTest, IncrementalWorkIsBoundedByUpdates) {
  GraphDatabase db = MakeDatabase(21, /*graphs=*/24);
  PartMinerOptions options;
  options.min_support_count = 5;
  options.partition.k = 2;
  PartMiner miner(options);
  const PartMinerResult before = miner.Mine(db);

  UpdateOptions upd;
  upd.fraction_graphs = 0.1;
  upd.seed = 3;
  const UpdateLog log = ApplyUpdates(&db, 5, upd);

  IncPartMiner inc;
  const IncPartMinerResult result = inc.Update(&miner, db, log);
  // The incremental merge delta-recounts the cached patterns (touching only
  // updated graphs) and counts far fewer fresh candidates than the initial
  // mine verified patterns.
  EXPECT_GT(result.merge_stats.delta_recounts, 0);
  EXPECT_LT(result.merge_stats.candidates_counted,
            before.merge_stats.candidates_counted);
  // The final verification trusts the exact merge output: at most the stale
  // pre-update patterns (FI candidates) are re-examined.
  EXPECT_LE(result.verify_stats.graphs_examined,
            static_cast<int64_t>(log.updated_graphs.size()) *
                (before.patterns.size() + 1));
}

TEST(IncPartMinerTest, RequiresMinedState) {
  PartMinerOptions options;
  PartMiner miner(options);
  IncPartMiner inc;
  GraphDatabase db;
  UpdateLog log;
  EXPECT_DEATH(inc.Update(&miner, db, log), "requires a completed Mine");
}

}  // namespace
}  // namespace partminer
