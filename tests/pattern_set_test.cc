#include "miner/pattern_set.h"

#include <gtest/gtest.h>

namespace partminer {
namespace {

PatternInfo MakePattern(Label a, Label e, Label b, int support) {
  PatternInfo p;
  p.code.Append({0, 1, a, e, b});
  p.support = support;
  for (int i = 0; i < support; ++i) p.tids.Add(i);
  return p;
}

TEST(PatternSetTest, UpsertInsertsAndReplaces) {
  PatternSet set;
  EXPECT_TRUE(set.Upsert(MakePattern(0, 0, 0, 3)));
  EXPECT_FALSE(set.Upsert(MakePattern(0, 0, 0, 5)));  // Replace.
  EXPECT_EQ(set.size(), 1);
  DfsCode code;
  code.Append({0, 1, 0, 0, 0});
  ASSERT_NE(set.Find(code), nullptr);
  EXPECT_EQ(set.Find(code)->support, 5);
}

TEST(PatternSetTest, EraseKeepsIndexConsistent) {
  PatternSet set;
  set.Upsert(MakePattern(0, 0, 0, 1));
  set.Upsert(MakePattern(1, 1, 1, 2));
  set.Upsert(MakePattern(2, 2, 2, 3));

  DfsCode first;
  first.Append({0, 1, 0, 0, 0});
  EXPECT_TRUE(set.Erase(first));
  EXPECT_FALSE(set.Erase(first));  // Already gone.
  EXPECT_EQ(set.size(), 2);

  // The swapped-in pattern must still be findable.
  DfsCode third;
  third.Append({0, 1, 2, 2, 2});
  ASSERT_NE(set.Find(third), nullptr);
  EXPECT_EQ(set.Find(third)->support, 3);
}

TEST(PatternSetTest, WithEdgeCountAndMax) {
  PatternSet set;
  PatternInfo p1 = MakePattern(0, 0, 0, 1);
  PatternInfo p2;
  p2.code.Append({0, 1, 0, 0, 0});
  p2.code.Append({1, 2, 0, 0, 0});
  set.Upsert(p1);
  set.Upsert(p2);
  EXPECT_EQ(set.WithEdgeCount(1).size(), 1u);
  EXPECT_EQ(set.WithEdgeCount(2).size(), 1u);
  EXPECT_EQ(set.WithEdgeCount(3).size(), 0u);
  EXPECT_EQ(set.MaxEdgeCount(), 2);
  EXPECT_EQ(PatternSet().MaxEdgeCount(), 0);
}

TEST(PatternSetTest, MergeFromKeepsExisting) {
  PatternSet a, b;
  a.Upsert(MakePattern(0, 0, 0, 7));
  b.Upsert(MakePattern(0, 0, 0, 1));  // Same code, different support.
  b.Upsert(MakePattern(1, 1, 1, 2));
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 2);
  DfsCode code;
  code.Append({0, 1, 0, 0, 0});
  EXPECT_EQ(a.Find(code)->support, 7);  // Existing entry wins.
}

TEST(PatternSetTest, SortedCodeStringsIsSorted) {
  PatternSet set;
  set.Upsert(MakePattern(2, 0, 2, 1));
  set.Upsert(MakePattern(0, 0, 0, 1));
  set.Upsert(MakePattern(1, 0, 1, 1));
  const std::vector<std::string> codes = set.SortedCodeStrings();
  ASSERT_EQ(codes.size(), 3u);
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
}

TEST(PatternSetTest, ExactTidsDefaultsTrue) {
  PatternInfo p = MakePattern(0, 0, 0, 1);
  EXPECT_TRUE(p.exact_tids);
}

}  // namespace
}  // namespace partminer
