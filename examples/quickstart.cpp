// Quickstart: generate a small graph database, mine it three ways (gSpan,
// Gaston, PartMiner), verify they agree, and print the top patterns.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/part_miner.h"
#include "miner/closed.h"
#include "datagen/generator.h"
#include "miner/gaston.h"
#include "miner/gspan.h"

int main() {
  using namespace partminer;

  // 1. A synthetic database in the paper's parameterization (Table 1):
  //    200 graphs, ~20 edges each, 20 labels, 12 planted kernels.
  GeneratorParams params;
  params.num_graphs = 200;
  params.avg_edges = 20;
  params.num_labels = 20;
  params.num_kernels = 12;
  params.avg_kernel_edges = 5;
  params.seed = 42;
  const GraphDatabase db = GenerateDatabase(params);
  std::printf("database %s: %d graphs, %lld edges total\n",
              params.Tag().c_str(), db.size(),
              static_cast<long long>(db.TotalEdges()));

  // 2. Mine at 5% minimum support with the two memory-based miners.
  MinerOptions options;
  options.min_support = static_cast<int>(0.05 * db.size());

  GSpanMiner gspan;
  const PatternSet by_gspan = gspan.Mine(db, options);

  GastonMiner gaston;
  const PatternSet by_gaston = gaston.Mine(db, options);
  std::printf("gSpan found %d frequent subgraphs; Gaston found %d\n",
              by_gspan.size(), by_gaston.size());
  std::printf("Gaston phase breakdown: %lld paths, %lld trees, %lld cyclic "
              "(the Gaston observation: trees dominate)\n",
              static_cast<long long>(gaston.stats().frequent_paths),
              static_cast<long long>(gaston.stats().frequent_trees),
              static_cast<long long>(gaston.stats().frequent_cyclic));

  // 3. PartMiner: partition into 4 units, mine the units at reduced support,
  //    merge-join, verify — same result (Theorems 1-3).
  PartMinerOptions pm_options;
  pm_options.min_support_count = options.min_support;
  pm_options.partition.k = 4;
  PartMiner part_miner(pm_options);
  const PartMinerResult result = part_miner.Mine(db);
  std::printf("PartMiner (k=4) found %d patterns in %.3fs aggregate / %.3fs "
              "parallel\n",
              result.patterns.size(), result.AggregateSeconds(),
              result.ParallelSeconds());

  const bool identical =
      by_gspan.SortedCodeStrings() == result.patterns.SortedCodeStrings() &&
      by_gspan.SortedCodeStrings() == by_gaston.SortedCodeStrings();
  std::printf("all three miners agree: %s\n", identical ? "yes" : "NO!");

  // 4. Condensed representations (CloseGraph/SPIN-style, see
  //    miner/closed.h): closed and maximal subsets of the same result.
  const PatternSet closed = ClosedPatterns(result.patterns);
  const PatternSet maximal = MaximalPatterns(result.patterns);
  std::printf("condensed: %d closed, %d maximal (of %d)\n", closed.size(),
              maximal.size(), result.patterns.size());

  // 5. The five most frequent non-trivial patterns.
  std::vector<const PatternInfo*> ranked;
  for (const PatternInfo& p : result.patterns.patterns()) {
    if (p.code.size() >= 2) ranked.push_back(&p);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const PatternInfo* a, const PatternInfo* b) {
              return a->support > b->support;
            });
  std::printf("top patterns (support, edges, DFS code):\n");
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %4d  %zu  %s\n", ranked[i]->support,
                ranked[i]->code.size(), ranked[i]->code.ToString().c_str());
  }
  return identical ? 0 : 1;
}
