// Partition laboratory: shows what the bi-partitioning criteria of
// Section 4.1 do to a single graph with a hot (frequently-updated) region —
// cut sizes, isolation quality, and the recovered subgraphs with their
// connective edges — and contrasts GraphPart with the METIS-style
// multilevel bisector.
//
// Build & run:
//   ./build/examples/partition_lab

#include <cstdio>

#include "datagen/generator.h"
#include "partition/db_partition.h"
#include "partition/graph_part.h"
#include "partition/multilevel.h"

int main() {
  using namespace partminer;

  // One synthetic graph with a hot region.
  GeneratorParams params;
  params.num_graphs = 1;
  params.avg_edges = 40;
  params.num_labels = 8;
  params.num_kernels = 4;
  params.seed = 11;
  GraphDatabase db = GenerateDatabase(params);
  AssignUpdateHotspots(&db, 0.2, 12);
  const Graph& g = db.graph(0);

  int hot = 0;
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    if (g.update_freq(v) > 0) ++hot;
  }
  std::printf("graph: %d vertices, %d edges, %d hot vertices\n",
              g.VertexCount(), g.EdgeCount(), hot);
  std::printf("%-28s %8s %10s %12s\n", "criterion", "cut", "hot-in-V*",
              "balance");

  auto report = [&](const char* name, const std::vector<int>& side) {
    int cut = CountCutEdges(g, side);
    int hot_in0 = 0, side0 = 0;
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      if (side[v] == 0) {
        ++side0;
        if (g.update_freq(v) > 0) ++hot_in0;
      }
    }
    std::printf("%-28s %8d %9d/%d %7d/%d\n", name, cut, hot_in0, hot, side0,
                g.VertexCount());
  };

  report("Partition1 (isolation)", GraphPart(g, {1.0, 0.0}).side);
  report("Partition2 (min-cut)", GraphPart(g, {0.0, 1.0}).side);
  report("Partition3 (combined)",
         GraphPart(g, {static_cast<double>(g.EdgeCount()), 1.0}).side);
  report("METIS-style multilevel", MultilevelBisect(g, MultilevelOptions{}));

  // Materialize the two subgraphs under Partition3 and show the connective
  // edge bookkeeping of Section 4.1.
  const Bisection best =
      GraphPart(g, {static_cast<double>(g.EdgeCount()), 1.0});
  const auto [g1, g2] = SplitWithConnectiveEdges(g, best.side);
  std::printf(
      "\nPartition3 subgraphs: G1 %d vertices/%d edges, G2 %d vertices/%d "
      "edges;\nconnective edges duplicated into both: %d "
      "(G1+G2 = original + cut: %d + %d = %d + %d)\n",
      g1.VertexCount(), g1.EdgeCount(), g2.VertexCount(), g2.EdgeCount(),
      best.cut_edges, g1.EdgeCount(), g2.EdgeCount(), g.EdgeCount(),
      best.cut_edges);

  // The same machinery database-wide: DBPartition into 4 units.
  GeneratorParams many = params;
  many.num_graphs = 50;
  GraphDatabase big = GenerateDatabase(many);
  AssignUpdateHotspots(&big, 0.15, 13);
  PartitionOptions po;
  po.k = 4;
  po.criteria = PartitionCriteria::kCombined;
  const PartitionedDatabase part = PartitionedDatabase::Create(big, po);
  std::printf("\nDBPartition of %d graphs into k=4 units: %lld cut edges; "
              "unit edge totals:", big.size(),
              static_cast<long long>(part.TotalCutEdges(big)));
  for (int j = 0; j < 4; ++j) {
    std::printf(" %lld",
                static_cast<long long>(
                    part.MaterializeUnit(big, j).TotalEdges()));
  }
  std::printf("\n");
  return 0;
}
