// Dynamic scenario from the paper's introduction: spatio-temporal data
// modeled as graphs under a continuous stream of updates. A fleet of
// "district maps" (road-intersection graphs with labeled junction types and
// road categories) receives localized construction updates round after
// round; IncPartMiner maintains the frequent-substructure catalog
// incrementally while a from-scratch miner re-pays the full cost each round.
//
// Build & run:
//   ./build/examples/dynamic_road_network

#include <cstdio>

#include "common/timing.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "core/state_io.h"
#include "datagen/generator.h"
#include "datagen/update_generator.h"
#include "miner/gspan.h"

int main() {
  using namespace partminer;

  // District maps: junction-type vertex labels, road-category edge labels.
  GeneratorParams params;
  params.num_graphs = 250;
  params.avg_edges = 22;
  params.num_labels = 12;   // Junction/road categories.
  params.num_kernels = 15;  // Common street motifs (grids, arterials...).
  params.avg_kernel_edges = 5;
  params.seed = 7;
  GraphDatabase db = GenerateDatabase(params);

  // Construction happens in localized hot zones (Section 4.1's premise).
  AssignUpdateHotspots(&db, 0.15, 8);

  PartMinerOptions options;
  options.min_support_fraction = 0.05;
  options.partition.k = 4;
  options.partition.criteria = PartitionCriteria::kCombined;  // Partition3.
  PartMiner miner(options);
  const PartMinerResult initial = miner.Mine(db);
  std::printf("initial catalog: %d frequent motifs (%.3fs)\n",
              initial.patterns.size(), initial.AggregateSeconds());

  GSpanMiner from_scratch;
  MinerOptions scratch_options;
  scratch_options.min_support = initial.min_support_count;

  double inc_total = 0, scratch_total = 0;
  IncPartMiner inc;
  const std::string state_path = "/tmp/partminer_road_network.state";
  for (int round = 1; round <= 5; ++round) {
    if (round == 4) {
      // Simulate a maintenance-process restart: persist the state, drop the
      // in-memory miner, and resume from disk.
      Status status = SaveMinerStateFile(miner, state_path);
      if (!status.ok()) {
        std::printf("save failed: %s\n", status.ToString().c_str());
        return 1;
      }
      PartMiner reloaded(options);
      status = LoadMinerStateFile(state_path, &reloaded);
      if (!status.ok()) {
        std::printf("load failed: %s\n", status.ToString().c_str());
        return 1;
      }
      miner = std::move(reloaded);
      std::printf("-- state persisted and restored (simulated restart) --\n");
    }
    // A handful of districts (~4%) receive construction updates this round.
    UpdateOptions upd;
    upd.fraction_graphs = 0.04;
    upd.updates_per_graph = 2;
    upd.hotspot_locality = 1.0;
    upd.seed = 100 + round;
    const UpdateLog log = ApplyUpdates(&db, params.num_labels, upd);

    Stopwatch inc_watch;
    const IncPartMinerResult r = inc.Update(&miner, db, log);
    const double inc_seconds = inc_watch.ElapsedSeconds();
    inc_total += inc_seconds;

    Stopwatch scratch_watch;
    const PatternSet expected = from_scratch.Mine(db, scratch_options);
    const double scratch_seconds = scratch_watch.ElapsedSeconds();
    scratch_total += scratch_seconds;

    const bool ok =
        expected.SortedCodeStrings() == r.patterns.SortedCodeStrings();
    std::printf(
        "round %d: %2zu districts updated | IncPartMiner %.3fs "
        "(units re-examined: %d/%d) vs from-scratch %.3fs | motifs %d "
        "(+%d new, -%d gone) %s\n",
        round, log.updated_graphs.size(), inc_seconds,
        r.remined_units.Count(), options.partition.k, scratch_seconds,
        r.patterns.size(), r.if_.size(), r.fi.size(),
        ok ? "" : "MISMATCH!");
    if (!ok) return 1;
  }
  std::printf("five rounds: incremental %.3fs vs from-scratch %.3fs "
              "(%.1fx saved)\n",
              inc_total, scratch_total, scratch_total / inc_total);
  return 0;
}
