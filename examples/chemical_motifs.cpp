// Frequent-substructure discovery on molecule-like graphs — the classic
// application domain of gSpan/Gaston-style miners. Builds a small corpus of
// synthetic molecules over a chemical alphabet (atoms as vertex labels,
// bond orders as edge labels), mines the common functional motifs, writes
// the corpus in the standard gSpan text format, and round-trips it through
// the reader.
//
// Build & run:
//   ./build/examples/chemical_motifs

#include <cstdio>
#include <sstream>

#include "common/random.h"
#include "graph/graph_io.h"
#include "miner/gaston.h"

namespace {

using namespace partminer;

// Atom alphabet: 0=C, 1=N, 2=O, 3=S. Bonds: 0=single, 1=double, 2=aromatic.
constexpr const char* kAtoms[] = {"C", "N", "O", "S"};

/// A crude molecule generator: a carbon backbone (path), a chance of an
/// aromatic 6-ring, plus heteroatom decorations.
Graph RandomMolecule(Rng* rng) {
  Graph g;
  const int backbone = 3 + static_cast<int>(rng->Uniform(5));
  for (int i = 0; i < backbone; ++i) g.AddVertex(0);  // Carbons.
  for (int i = 1; i < backbone; ++i) g.AddEdge(i - 1, i, 0);

  if (rng->Bernoulli(0.6)) {
    // Fuse an aromatic ring onto a random backbone carbon.
    const VertexId anchor = static_cast<VertexId>(rng->Uniform(backbone));
    VertexId prev = anchor;
    VertexId first = -1;
    for (int i = 0; i < 5; ++i) {
      const VertexId c = g.AddVertex(0);
      if (first == -1) first = c;
      g.AddEdge(prev, c, 2);  // Aromatic bond.
      prev = c;
    }
    g.AddEdge(prev, anchor, 2);
    (void)first;
  }
  // Decorate with heteroatoms.
  const int decorations = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < decorations; ++i) {
    const VertexId host = static_cast<VertexId>(rng->Uniform(g.VertexCount()));
    const Label atom = 1 + static_cast<Label>(rng->Uniform(3));  // N/O/S.
    const Label bond = rng->Bernoulli(0.3) ? 1 : 0;
    const VertexId v = g.AddVertex(atom);
    g.AddEdge(host, v, bond);
  }
  return g;
}

std::string RenderPattern(const DfsCode& code) {
  // Human-readable rendering: atom symbols and bond markers (-, =, :).
  const Graph g = code.ToGraph();
  std::ostringstream out;
  out << "{";
  for (const EdgeEntry& e : g.UndirectedEdges()) {
    const char* bond = e.label == 0 ? "-" : (e.label == 1 ? "=" : ":");
    out << kAtoms[g.vertex_label(e.from) % 4] << bond
        << kAtoms[g.vertex_label(e.to) % 4] << " ";
  }
  out << "}";
  return out.str();
}

}  // namespace

int main() {
  using namespace partminer;
  Rng rng(2026);
  GraphDatabase molecules;
  for (int i = 0; i < 300; ++i) molecules.Add(RandomMolecule(&rng));

  // Persist in the de-facto standard format and read it back.
  const std::string path = "/tmp/partminer_molecules.lg";
  Status status = WriteGraphDatabaseFile(molecules, path);
  if (!status.ok()) {
    std::printf("write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  GraphDatabase reloaded;
  status = ReadGraphDatabaseFile(path, &reloaded);
  if (!status.ok() || reloaded.size() != molecules.size()) {
    std::printf("round-trip failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote and reloaded %d molecules via %s\n", reloaded.size(),
              path.c_str());

  GastonMiner miner;
  MinerOptions options;
  options.min_support = static_cast<int>(0.25 * reloaded.size());
  options.max_edges = 6;
  const PatternSet motifs = miner.Mine(reloaded, options);

  std::printf("motifs occurring in >=25%% of molecules: %d\n", motifs.size());
  int shown = 0;
  for (const PatternInfo& p : motifs.patterns()) {
    if (p.code.size() < 3) continue;
    std::printf("  support %3d: %s\n", p.support,
                RenderPattern(p.code).c_str());
    if (++shown == 8) break;
  }
  std::printf("phases: %lld paths / %lld trees / %lld cyclic\n",
              static_cast<long long>(miner.stats().frequent_paths),
              static_cast<long long>(miner.stats().frequent_trees),
              static_cast<long long>(miner.stats().frequent_cyclic));
  return 0;
}
