# Empty compiler generated dependencies file for inc_part_miner_test.
# This may be replaced when dependencies are built.
