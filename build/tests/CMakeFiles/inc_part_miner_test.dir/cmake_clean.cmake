file(REMOVE_RECURSE
  "CMakeFiles/inc_part_miner_test.dir/inc_part_miner_test.cc.o"
  "CMakeFiles/inc_part_miner_test.dir/inc_part_miner_test.cc.o.d"
  "inc_part_miner_test"
  "inc_part_miner_test.pdb"
  "inc_part_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inc_part_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
