file(REMOVE_RECURSE
  "CMakeFiles/part_miner_test.dir/part_miner_test.cc.o"
  "CMakeFiles/part_miner_test.dir/part_miner_test.cc.o.d"
  "part_miner_test"
  "part_miner_test.pdb"
  "part_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
