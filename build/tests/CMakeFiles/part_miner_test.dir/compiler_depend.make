# Empty compiler generated dependencies file for part_miner_test.
# This may be replaced when dependencies are built.
