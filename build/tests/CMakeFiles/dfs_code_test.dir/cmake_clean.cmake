file(REMOVE_RECURSE
  "CMakeFiles/dfs_code_test.dir/dfs_code_test.cc.o"
  "CMakeFiles/dfs_code_test.dir/dfs_code_test.cc.o.d"
  "dfs_code_test"
  "dfs_code_test.pdb"
  "dfs_code_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_code_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
