file(REMOVE_RECURSE
  "CMakeFiles/partminer_cli.dir/partminer_cli.cc.o"
  "CMakeFiles/partminer_cli.dir/partminer_cli.cc.o.d"
  "partminer"
  "partminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partminer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
