# Empty dependencies file for partminer_cli.
# This may be replaced when dependencies are built.
