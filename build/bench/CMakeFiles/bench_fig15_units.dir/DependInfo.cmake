
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_units.cc" "bench/CMakeFiles/bench_fig15_units.dir/bench_fig15_units.cc.o" "gcc" "bench/CMakeFiles/bench_fig15_units.dir/bench_fig15_units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_adi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
