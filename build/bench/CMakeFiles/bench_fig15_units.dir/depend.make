# Empty dependencies file for bench_fig15_units.
# This may be replaced when dependencies are built.
