file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_criteria.dir/bench_fig13_criteria.cc.o"
  "CMakeFiles/bench_fig13_criteria.dir/bench_fig13_criteria.cc.o.d"
  "bench_fig13_criteria"
  "bench_fig13_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
