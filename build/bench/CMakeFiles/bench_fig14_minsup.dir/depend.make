# Empty dependencies file for bench_fig14_minsup.
# This may be replaced when dependencies are built.
