file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_minsup.dir/bench_fig14_minsup.cc.o"
  "CMakeFiles/bench_fig14_minsup.dir/bench_fig14_minsup.cc.o.d"
  "bench_fig14_minsup"
  "bench_fig14_minsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_minsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
