file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_miners.dir/bench_micro_miners.cc.o"
  "CMakeFiles/bench_micro_miners.dir/bench_micro_miners.cc.o.d"
  "bench_micro_miners"
  "bench_micro_miners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_miners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
