# Empty dependencies file for bench_micro_miners.
# This may be replaced when dependencies are built.
