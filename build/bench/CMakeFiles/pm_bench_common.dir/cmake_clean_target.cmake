file(REMOVE_RECURSE
  "libpm_bench_common.a"
)
