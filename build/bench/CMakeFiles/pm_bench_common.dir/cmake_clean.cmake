file(REMOVE_RECURSE
  "CMakeFiles/pm_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/pm_bench_common.dir/bench_common.cc.o.d"
  "libpm_bench_common.a"
  "libpm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
