file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_updates.dir/bench_fig17_updates.cc.o"
  "CMakeFiles/bench_fig17_updates.dir/bench_fig17_updates.cc.o.d"
  "bench_fig17_updates"
  "bench_fig17_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
