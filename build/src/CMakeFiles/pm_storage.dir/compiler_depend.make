# Empty compiler generated dependencies file for pm_storage.
# This may be replaced when dependencies are built.
