file(REMOVE_RECURSE
  "libpm_storage.a"
)
