file(REMOVE_RECURSE
  "CMakeFiles/pm_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/pm_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/pm_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/pm_storage.dir/storage/disk_manager.cc.o.d"
  "libpm_storage.a"
  "libpm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
