file(REMOVE_RECURSE
  "libpm_adi.a"
)
