file(REMOVE_RECURSE
  "CMakeFiles/pm_adi.dir/adi/adi_index.cc.o"
  "CMakeFiles/pm_adi.dir/adi/adi_index.cc.o.d"
  "CMakeFiles/pm_adi.dir/adi/adi_miner.cc.o"
  "CMakeFiles/pm_adi.dir/adi/adi_miner.cc.o.d"
  "libpm_adi.a"
  "libpm_adi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_adi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
