# Empty compiler generated dependencies file for pm_adi.
# This may be replaced when dependencies are built.
