file(REMOVE_RECURSE
  "CMakeFiles/pm_core.dir/core/inc_part_miner.cc.o"
  "CMakeFiles/pm_core.dir/core/inc_part_miner.cc.o.d"
  "CMakeFiles/pm_core.dir/core/merge_join.cc.o"
  "CMakeFiles/pm_core.dir/core/merge_join.cc.o.d"
  "CMakeFiles/pm_core.dir/core/part_miner.cc.o"
  "CMakeFiles/pm_core.dir/core/part_miner.cc.o.d"
  "CMakeFiles/pm_core.dir/core/state_io.cc.o"
  "CMakeFiles/pm_core.dir/core/state_io.cc.o.d"
  "CMakeFiles/pm_core.dir/core/verify.cc.o"
  "CMakeFiles/pm_core.dir/core/verify.cc.o.d"
  "libpm_core.a"
  "libpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
