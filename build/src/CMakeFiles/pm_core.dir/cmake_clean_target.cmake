file(REMOVE_RECURSE
  "libpm_core.a"
)
