
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/inc_part_miner.cc" "src/CMakeFiles/pm_core.dir/core/inc_part_miner.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/inc_part_miner.cc.o.d"
  "/root/repo/src/core/merge_join.cc" "src/CMakeFiles/pm_core.dir/core/merge_join.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/merge_join.cc.o.d"
  "/root/repo/src/core/part_miner.cc" "src/CMakeFiles/pm_core.dir/core/part_miner.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/part_miner.cc.o.d"
  "/root/repo/src/core/state_io.cc" "src/CMakeFiles/pm_core.dir/core/state_io.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/state_io.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/CMakeFiles/pm_core.dir/core/verify.cc.o" "gcc" "src/CMakeFiles/pm_core.dir/core/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
