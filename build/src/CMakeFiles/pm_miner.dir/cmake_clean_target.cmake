file(REMOVE_RECURSE
  "libpm_miner.a"
)
