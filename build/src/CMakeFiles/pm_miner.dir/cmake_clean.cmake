file(REMOVE_RECURSE
  "CMakeFiles/pm_miner.dir/miner/apriori.cc.o"
  "CMakeFiles/pm_miner.dir/miner/apriori.cc.o.d"
  "CMakeFiles/pm_miner.dir/miner/brute_force.cc.o"
  "CMakeFiles/pm_miner.dir/miner/brute_force.cc.o.d"
  "CMakeFiles/pm_miner.dir/miner/closed.cc.o"
  "CMakeFiles/pm_miner.dir/miner/closed.cc.o.d"
  "CMakeFiles/pm_miner.dir/miner/engine.cc.o"
  "CMakeFiles/pm_miner.dir/miner/engine.cc.o.d"
  "CMakeFiles/pm_miner.dir/miner/extensions.cc.o"
  "CMakeFiles/pm_miner.dir/miner/extensions.cc.o.d"
  "CMakeFiles/pm_miner.dir/miner/gaston.cc.o"
  "CMakeFiles/pm_miner.dir/miner/gaston.cc.o.d"
  "CMakeFiles/pm_miner.dir/miner/gspan.cc.o"
  "CMakeFiles/pm_miner.dir/miner/gspan.cc.o.d"
  "libpm_miner.a"
  "libpm_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
