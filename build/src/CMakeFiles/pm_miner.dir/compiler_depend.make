# Empty compiler generated dependencies file for pm_miner.
# This may be replaced when dependencies are built.
