
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/miner/apriori.cc" "src/CMakeFiles/pm_miner.dir/miner/apriori.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/apriori.cc.o.d"
  "/root/repo/src/miner/brute_force.cc" "src/CMakeFiles/pm_miner.dir/miner/brute_force.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/brute_force.cc.o.d"
  "/root/repo/src/miner/closed.cc" "src/CMakeFiles/pm_miner.dir/miner/closed.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/closed.cc.o.d"
  "/root/repo/src/miner/engine.cc" "src/CMakeFiles/pm_miner.dir/miner/engine.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/engine.cc.o.d"
  "/root/repo/src/miner/extensions.cc" "src/CMakeFiles/pm_miner.dir/miner/extensions.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/extensions.cc.o.d"
  "/root/repo/src/miner/gaston.cc" "src/CMakeFiles/pm_miner.dir/miner/gaston.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/gaston.cc.o.d"
  "/root/repo/src/miner/gspan.cc" "src/CMakeFiles/pm_miner.dir/miner/gspan.cc.o" "gcc" "src/CMakeFiles/pm_miner.dir/miner/gspan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
