file(REMOVE_RECURSE
  "CMakeFiles/pm_datagen.dir/datagen/generator.cc.o"
  "CMakeFiles/pm_datagen.dir/datagen/generator.cc.o.d"
  "CMakeFiles/pm_datagen.dir/datagen/update_generator.cc.o"
  "CMakeFiles/pm_datagen.dir/datagen/update_generator.cc.o.d"
  "libpm_datagen.a"
  "libpm_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
