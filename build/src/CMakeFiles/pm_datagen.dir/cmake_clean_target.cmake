file(REMOVE_RECURSE
  "libpm_datagen.a"
)
