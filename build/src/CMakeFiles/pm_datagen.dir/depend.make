# Empty dependencies file for pm_datagen.
# This may be replaced when dependencies are built.
