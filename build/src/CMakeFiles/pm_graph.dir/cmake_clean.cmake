file(REMOVE_RECURSE
  "CMakeFiles/pm_graph.dir/graph/canonical.cc.o"
  "CMakeFiles/pm_graph.dir/graph/canonical.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/dfs_code.cc.o"
  "CMakeFiles/pm_graph.dir/graph/dfs_code.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/graph.cc.o"
  "CMakeFiles/pm_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/pm_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/pm_graph.dir/graph/isomorphism.cc.o"
  "CMakeFiles/pm_graph.dir/graph/isomorphism.cc.o.d"
  "libpm_graph.a"
  "libpm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
