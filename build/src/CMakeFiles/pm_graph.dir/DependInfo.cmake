
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/canonical.cc" "src/CMakeFiles/pm_graph.dir/graph/canonical.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/canonical.cc.o.d"
  "/root/repo/src/graph/dfs_code.cc" "src/CMakeFiles/pm_graph.dir/graph/dfs_code.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/dfs_code.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/pm_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/pm_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "src/CMakeFiles/pm_graph.dir/graph/isomorphism.cc.o" "gcc" "src/CMakeFiles/pm_graph.dir/graph/isomorphism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
