file(REMOVE_RECURSE
  "libpm_graph.a"
)
