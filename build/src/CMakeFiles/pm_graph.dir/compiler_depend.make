# Empty compiler generated dependencies file for pm_graph.
# This may be replaced when dependencies are built.
