
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/db_partition.cc" "src/CMakeFiles/pm_partition.dir/partition/db_partition.cc.o" "gcc" "src/CMakeFiles/pm_partition.dir/partition/db_partition.cc.o.d"
  "/root/repo/src/partition/graph_part.cc" "src/CMakeFiles/pm_partition.dir/partition/graph_part.cc.o" "gcc" "src/CMakeFiles/pm_partition.dir/partition/graph_part.cc.o.d"
  "/root/repo/src/partition/multilevel.cc" "src/CMakeFiles/pm_partition.dir/partition/multilevel.cc.o" "gcc" "src/CMakeFiles/pm_partition.dir/partition/multilevel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
