file(REMOVE_RECURSE
  "CMakeFiles/pm_partition.dir/partition/db_partition.cc.o"
  "CMakeFiles/pm_partition.dir/partition/db_partition.cc.o.d"
  "CMakeFiles/pm_partition.dir/partition/graph_part.cc.o"
  "CMakeFiles/pm_partition.dir/partition/graph_part.cc.o.d"
  "CMakeFiles/pm_partition.dir/partition/multilevel.cc.o"
  "CMakeFiles/pm_partition.dir/partition/multilevel.cc.o.d"
  "libpm_partition.a"
  "libpm_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
