file(REMOVE_RECURSE
  "libpm_partition.a"
)
