# Empty dependencies file for pm_partition.
# This may be replaced when dependencies are built.
