file(REMOVE_RECURSE
  "CMakeFiles/pm_common.dir/common/logging.cc.o"
  "CMakeFiles/pm_common.dir/common/logging.cc.o.d"
  "libpm_common.a"
  "libpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
