file(REMOVE_RECURSE
  "libpm_common.a"
)
