file(REMOVE_RECURSE
  "CMakeFiles/chemical_motifs.dir/chemical_motifs.cpp.o"
  "CMakeFiles/chemical_motifs.dir/chemical_motifs.cpp.o.d"
  "chemical_motifs"
  "chemical_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemical_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
