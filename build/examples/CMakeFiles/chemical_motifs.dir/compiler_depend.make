# Empty compiler generated dependencies file for chemical_motifs.
# This may be replaced when dependencies are built.
