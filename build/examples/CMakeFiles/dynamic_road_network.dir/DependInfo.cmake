
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dynamic_road_network.cpp" "examples/CMakeFiles/dynamic_road_network.dir/dynamic_road_network.cpp.o" "gcc" "examples/CMakeFiles/dynamic_road_network.dir/dynamic_road_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
