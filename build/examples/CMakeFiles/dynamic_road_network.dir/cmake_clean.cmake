file(REMOVE_RECURSE
  "CMakeFiles/dynamic_road_network.dir/dynamic_road_network.cpp.o"
  "CMakeFiles/dynamic_road_network.dir/dynamic_road_network.cpp.o.d"
  "dynamic_road_network"
  "dynamic_road_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_road_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
