# Empty dependencies file for dynamic_road_network.
# This may be replaced when dependencies are built.
