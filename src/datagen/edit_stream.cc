#include "datagen/edit_stream.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"

namespace partminer {

namespace {

const char* KindName(const EditOp& op) {
  switch (op.kind) {
    case UpdateKind::kRelabel:
      return op.edge_target ? "relabel_edge" : "relabel";
    case UpdateKind::kAddEdge:
      return "add_edge";
    case UpdateKind::kAddVertex:
      return "add_vertex";
  }
  return "?";
}

}  // namespace

std::string EditOp::ToString() const {
  std::ostringstream out;
  out << KindName(*this) << " g" << graph;
  switch (kind) {
    case UpdateKind::kRelabel:
      if (edge_target) {
        out << " {" << u << "," << v << "} -> " << label;
      } else {
        out << " v" << u << " -> " << label;
      }
      break;
    case UpdateKind::kAddEdge:
      out << " +{" << u << "," << v << "} label " << label;
      break;
    case UpdateKind::kAddVertex:
      out << " attach v" << u << " vlabel " << label << " elabel "
          << edge_label;
      break;
  }
  return out.str();
}

Status ValidateEdit(const GraphDatabase& db, const EditOp& op) {
  if (op.graph < 0 || op.graph >= db.size()) {
    return Status::InvalidArgument("graph index " + std::to_string(op.graph) +
                                   " out of range [0, " +
                                   std::to_string(db.size()) + ")");
  }
  const Graph& g = db.graph(op.graph);
  const auto vertex_ok = [&g](VertexId v) {
    return v >= 0 && v < g.VertexCount();
  };
  if (op.label < 0) return Status::InvalidArgument("negative label");
  switch (op.kind) {
    case UpdateKind::kRelabel:
      if (!vertex_ok(op.u)) {
        return Status::InvalidArgument("vertex " + std::to_string(op.u) +
                                       " out of range");
      }
      if (op.edge_target) {
        if (!vertex_ok(op.v)) {
          return Status::InvalidArgument("vertex " + std::to_string(op.v) +
                                         " out of range");
        }
        if (!g.HasEdge(op.u, op.v)) {
          return Status::NotFound("no edge {" + std::to_string(op.u) + "," +
                                  std::to_string(op.v) + "} to relabel");
        }
      }
      return Status::Ok();
    case UpdateKind::kAddEdge:
      if (!vertex_ok(op.u) || !vertex_ok(op.v)) {
        return Status::InvalidArgument("edge endpoint out of range");
      }
      if (op.u == op.v) return Status::InvalidArgument("self-loop");
      if (g.HasEdge(op.u, op.v)) {
        return Status::InvalidArgument("edge {" + std::to_string(op.u) + "," +
                                       std::to_string(op.v) +
                                       "} already exists");
      }
      return Status::Ok();
    case UpdateKind::kAddVertex:
      if (op.edge_label < 0) {
        return Status::InvalidArgument("negative edge label");
      }
      if (!vertex_ok(op.u)) {
        return Status::InvalidArgument("attach vertex " +
                                       std::to_string(op.u) + " out of range");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown edit kind");
}

EditBatchOutcome ApplyEditBatch(GraphDatabase* db,
                                const std::vector<EditOp>& edits,
                                UpdateLog* log) {
  EditBatchOutcome outcome;
  for (const EditOp& op : edits) {
    const Status valid = ValidateEdit(*db, op);
    if (!valid.ok()) {
      ++outcome.rejected;
      if (outcome.first_rejection.empty()) {
        outcome.first_rejection = op.ToString() + ": " + valid.ToString();
      }
      continue;
    }
    Graph& g = db->mutable_graph(op.graph);
    const auto touch = [&](VertexId v) {
      g.BumpUpdateFreq(v);
      log->touched_vertices.emplace_back(op.graph, v);
    };
    switch (op.kind) {
      case UpdateKind::kRelabel:
        if (op.edge_target) {
          g.SetEdgeLabel(op.u, op.v, op.label);
          touch(op.u);
          touch(op.v);
        } else {
          g.set_vertex_label(op.u, op.label);
          touch(op.u);
        }
        break;
      case UpdateKind::kAddEdge:
        g.AddEdge(op.u, op.v, op.label);
        touch(op.u);
        touch(op.v);
        break;
      case UpdateKind::kAddVertex: {
        const VertexId added = g.AddVertex(op.label);
        g.AddEdge(op.u, added, op.edge_label);
        touch(op.u);
        touch(added);
        break;
      }
    }
    ++outcome.applied;
    if (std::find(log->updated_graphs.begin(), log->updated_graphs.end(),
                  op.graph) == log->updated_graphs.end()) {
      log->updated_graphs.push_back(op.graph);
    }
  }
  return outcome;
}

std::vector<StreamItem> GenerateEditStream(const GraphDatabase& db,
                                           const EditStreamOptions& options) {
  Rng rng(options.seed);
  std::vector<StreamItem> items;
  items.reserve(options.requests);

  // Pool of initially-non-adjacent vertex pairs, one use each: add_edge
  // edits drawn from it can never collide regardless of how batches from
  // different connections interleave. Capped per graph so pool construction
  // stays linear-ish on dense graphs.
  struct EdgeSlot {
    int graph;
    VertexId u, v;
  };
  std::vector<EdgeSlot> edge_pool;
  for (int gi = 0; gi < db.size(); ++gi) {
    const Graph& g = db.graph(gi);
    int collected = 0;
    for (VertexId u = 0; u < g.VertexCount() && collected < 64; ++u) {
      for (VertexId v = u + 1; v < g.VertexCount() && collected < 64; ++v) {
        if (!g.HasEdge(u, v)) {
          edge_pool.push_back({gi, u, v});
          ++collected;
        }
      }
    }
  }
  // Seeded shuffle so consumption order is deterministic.
  for (size_t i = edge_pool.size(); i > 1; --i) {
    std::swap(edge_pool[i - 1], edge_pool[rng.Uniform(i)]);
  }
  size_t next_edge_slot = 0;

  const double total_weight = options.relabel_weight +
                              options.add_edge_weight +
                              options.add_vertex_weight;
  PM_CHECK_GT(total_weight, 0.0);

  for (int r = 0; r < options.requests; ++r) {
    StreamItem item;
    if (rng.Bernoulli(options.update_fraction) && db.size() > 0) {
      item.is_update = true;
      const int edits = 1 + static_cast<int>(
                                rng.Uniform(options.edits_per_update));
      for (int e = 0; e < edits; ++e) {
        EditOp op;
        op.graph = static_cast<int>(rng.Uniform(db.size()));
        const Graph& g = db.graph(op.graph);
        if (g.VertexCount() == 0) continue;
        double pick = rng.UniformDouble() * total_weight;
        if (pick < options.relabel_weight) {
          op.kind = UpdateKind::kRelabel;
          op.u = static_cast<VertexId>(rng.Uniform(g.VertexCount()));
          op.label = static_cast<Label>(rng.Uniform(options.num_labels));
        } else if (pick < options.relabel_weight + options.add_edge_weight &&
                   next_edge_slot < edge_pool.size()) {
          const EdgeSlot slot = edge_pool[next_edge_slot++];
          op.kind = UpdateKind::kAddEdge;
          op.graph = slot.graph;
          op.u = slot.u;
          op.v = slot.v;
          op.label = static_cast<Label>(rng.Uniform(options.num_labels));
        } else {
          op.kind = UpdateKind::kAddVertex;
          // Attach to an initial vertex: those exist from epoch 0 onward.
          op.u = static_cast<VertexId>(rng.Uniform(g.VertexCount()));
          op.label = static_cast<Label>(rng.Uniform(options.num_labels));
          op.edge_label = static_cast<Label>(rng.Uniform(options.num_labels));
        }
        item.edits.push_back(op);
      }
      if (item.edits.empty()) item.is_update = false;
    }
    if (!item.is_update) {
      const int spread = std::max(
          1, static_cast<int>(options.resident_support *
                              options.query_support_spread) -
                 options.resident_support + 1);
      item.query_support =
          options.resident_support + static_cast<int>(rng.Uniform(spread));
      item.query_limit = rng.Bernoulli(0.05) ? 5 : 0;
    }
    items.push_back(std::move(item));
  }
  return items;
}

Status WriteEditStream(const std::vector<StreamItem>& items,
                       std::ostream& out) {
  out << "editstream v1\n";
  for (const StreamItem& item : items) {
    if (!item.is_update) {
      out << "q " << item.query_support << " " << item.query_limit << "\n";
      continue;
    }
    out << "u " << item.edits.size() << "\n";
    for (const EditOp& op : item.edits) {
      out << "e " << KindName(op) << " " << op.graph;
      switch (op.kind) {
        case UpdateKind::kRelabel:
          if (op.edge_target) {
            out << " " << op.u << " " << op.v << " " << op.label;
          } else {
            out << " " << op.u << " " << op.label;
          }
          break;
        case UpdateKind::kAddEdge:
          out << " " << op.u << " " << op.v << " " << op.label;
          break;
        case UpdateKind::kAddVertex:
          out << " " << op.u << " " << op.label << " " << op.edge_label;
          break;
      }
      out << "\n";
    }
  }
  if (!out) return Status::IoError("edit stream write failed");
  return Status::Ok();
}

Status WriteEditStreamFile(const std::vector<StreamItem>& items,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  return WriteEditStream(items, out).WithContext("writing " + path);
}

Status ReadEditStream(std::istream& in, std::vector<StreamItem>* items) {
  items->clear();
  std::string line;
  int line_no = 0;
  if (!std::getline(in, line) || line != "editstream v1") {
    return Status::Corruption("missing 'editstream v1' header");
  }
  ++line_no;
  int pending_edits = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string tag;
    tokens >> tag;
    const auto error = [&](const std::string& what) {
      return Status::Corruption("edit stream line " + std::to_string(line_no) +
                                ": " + what);
    };
    if (tag == "q") {
      if (pending_edits > 0) return error("query inside an update batch");
      StreamItem item;
      if (!(tokens >> item.query_support >> item.query_limit)) {
        return error("bad query line");
      }
      items->push_back(std::move(item));
    } else if (tag == "u") {
      if (pending_edits > 0) return error("update inside an update batch");
      if (!(tokens >> pending_edits) || pending_edits < 0) {
        return error("bad update header");
      }
      StreamItem item;
      item.is_update = true;
      items->push_back(std::move(item));
      if (pending_edits == 0) items->back().is_update = true;
    } else if (tag == "e") {
      if (pending_edits <= 0) return error("edit outside an update batch");
      --pending_edits;
      std::string kind;
      EditOp op;
      if (!(tokens >> kind >> op.graph)) return error("bad edit line");
      bool parsed = false;
      if (kind == "relabel") {
        op.kind = UpdateKind::kRelabel;
        parsed = static_cast<bool>(tokens >> op.u >> op.label);
      } else if (kind == "relabel_edge") {
        op.kind = UpdateKind::kRelabel;
        op.edge_target = true;
        parsed = static_cast<bool>(tokens >> op.u >> op.v >> op.label);
      } else if (kind == "add_edge") {
        op.kind = UpdateKind::kAddEdge;
        parsed = static_cast<bool>(tokens >> op.u >> op.v >> op.label);
      } else if (kind == "add_vertex") {
        op.kind = UpdateKind::kAddVertex;
        parsed = static_cast<bool>(tokens >> op.u >> op.label >> op.edge_label);
      } else {
        return error("unknown edit kind '" + kind + "'");
      }
      if (!parsed) return error("bad " + kind + " edit line");
      items->back().edits.push_back(op);
    } else {
      return error("unknown tag '" + tag + "'");
    }
  }
  if (pending_edits > 0) return Status::Corruption("truncated update batch");
  return Status::Ok();
}

Status ReadEditStreamFile(const std::string& path,
                          std::vector<StreamItem>* items) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadEditStream(in, items).WithContext("reading " + path);
}

}  // namespace partminer
