#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace partminer {

namespace {

/// Random connected graph with roughly `edges` edges: a random spanning tree
/// over a proportionate number of vertices plus random chords.
Graph RandomKernel(Rng* rng, int edges, int num_labels) {
  edges = std::max(1, edges);
  // Keep kernels tree-ish (the paper's frequent patterns are mostly trees):
  // ~80% of edges go to the spanning tree.
  const int vertices =
      std::max(2, std::min(edges + 1, static_cast<int>(edges * 0.8) + 1));
  Graph g;
  for (int i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng->Uniform(num_labels)));
  }
  for (int v = 1; v < vertices; ++v) {
    g.AddEdge(static_cast<VertexId>(rng->Uniform(v)), v,
              static_cast<Label>(rng->Uniform(num_labels)));
  }
  int attempts = 4 * edges;
  while (g.EdgeCount() < edges && attempts-- > 0) {
    const VertexId u = static_cast<VertexId>(rng->Uniform(vertices));
    const VertexId v = static_cast<VertexId>(rng->Uniform(vertices));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v, static_cast<Label>(rng->Uniform(num_labels)));
  }
  return g;
}

/// Copies `kernel` into `g` as fresh vertices; returns the id of one copied
/// vertex so the caller can bridge it to the rest of the graph.
VertexId EmbedKernel(Graph* g, const Graph& kernel) {
  const VertexId base = g->VertexCount();
  for (VertexId v = 0; v < kernel.VertexCount(); ++v) {
    g->AddVertex(kernel.vertex_label(v));
  }
  for (const EdgeEntry& e : kernel.UndirectedEdges()) {
    g->AddEdge(base + e.from, base + e.to, e.label);
  }
  return base;
}

}  // namespace

std::string GeneratorParams::Tag() const {
  std::ostringstream out;
  out << "D" << num_graphs << "T" << avg_edges << "N" << num_labels << "L"
      << num_kernels << "I" << avg_kernel_edges;
  return out.str();
}

GraphDatabase GenerateDatabase(const GeneratorParams& params) {
  PM_CHECK_GT(params.num_graphs, 0);
  PM_CHECK_GT(params.num_labels, 0);
  PM_CHECK_GT(params.num_kernels, 0);
  Rng rng(params.seed);

  // Potentially frequent kernels with exponentially distributed popularity
  // (a few kernels appear in many graphs; the tail is rare).
  std::vector<Graph> kernels;
  std::vector<double> cumulative;
  double total_weight = 0;
  kernels.reserve(params.num_kernels);
  for (int i = 0; i < params.num_kernels; ++i) {
    const int size = rng.PoissonLike(params.avg_kernel_edges, 1);
    kernels.push_back(RandomKernel(&rng, size, params.num_labels));
    const double weight = -std::log(1.0 - rng.UniformDouble() * 0.999999);
    total_weight += weight;
    cumulative.push_back(total_weight);
  }
  auto sample_kernel = [&]() -> const Graph& {
    const double x = rng.UniformDouble() * total_weight;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
    return kernels[it - cumulative.begin()];
  };

  GraphDatabase db;
  for (int gi = 0; gi < params.num_graphs; ++gi) {
    const int target_edges = std::max(1, rng.PoissonLike(params.avg_edges, 1));
    Graph g;

    // Overlay kernels until the edge budget is ~70% consumed.
    while (g.EdgeCount() < target_edges * 0.7) {
      const Graph& kernel = sample_kernel();
      const VertexId anchor = EmbedKernel(&g, kernel);
      if (anchor > 0) {
        // Bridge the new kernel to the existing part to stay connected.
        const VertexId other = static_cast<VertexId>(rng.Uniform(anchor));
        const VertexId inside =
            anchor + static_cast<VertexId>(
                         rng.Uniform(g.VertexCount() - anchor));
        g.AddEdge(other, inside,
                  static_cast<Label>(rng.Uniform(params.num_labels)));
      }
      if (g.EdgeCount() >= target_edges) break;
    }

    // Pad with random noise edges/vertices up to the target size.
    int attempts = 4 * target_edges;
    while (g.EdgeCount() < target_edges && attempts-- > 0) {
      if (rng.Bernoulli(0.5) && g.VertexCount() >= 2) {
        const VertexId u = static_cast<VertexId>(rng.Uniform(g.VertexCount()));
        const VertexId v = static_cast<VertexId>(rng.Uniform(g.VertexCount()));
        if (u == v || g.HasEdge(u, v)) continue;
        g.AddEdge(u, v, static_cast<Label>(rng.Uniform(params.num_labels)));
      } else {
        const VertexId v =
            g.AddVertex(static_cast<Label>(rng.Uniform(params.num_labels)));
        const VertexId u = static_cast<VertexId>(rng.Uniform(v));
        g.AddEdge(u, v, static_cast<Label>(rng.Uniform(params.num_labels)));
      }
    }
    PM_CHECK(g.IsConnected());
    db.Add(std::move(g));
  }
  return db;
}

void AssignUpdateHotspots(GraphDatabase* db, double fraction, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < db->size(); ++i) {
    Graph& g = db->mutable_graph(i);
    const int n = g.VertexCount();
    if (n == 0) continue;
    // Updates in the paper's motivating applications (spatio-temporal data)
    // have spatial locality: the frequently-changing vertices form a
    // connected region, which is precisely what the isolation criterion of
    // Section 4.1 can confine to one unit. Mark a BFS ball around a random
    // center as hot.
    const int target = std::max(1, static_cast<int>(fraction * n));
    std::vector<VertexId> queue = {static_cast<VertexId>(rng.Uniform(n))};
    std::vector<bool> seen(n, false);
    seen[queue[0]] = true;
    size_t head = 0;
    int marked = 0;
    while (marked < target && head < queue.size()) {
      const VertexId v = queue[head++];
      // Geometric-ish positive frequency, mean ~2, hotter near the center.
      uint32_t f = 1;
      while (rng.Bernoulli(0.5) && f < 16) ++f;
      g.set_update_freq(v, f);
      ++marked;
      for (const EdgeEntry& e : g.adjacency(v)) {
        if (!seen[e.to]) {
          seen[e.to] = true;
          queue.push_back(e.to);
        }
      }
    }
  }
}

}  // namespace partminer
