#include "datagen/update_generator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace partminer {

namespace {

/// Picks an update target vertex, preferring hotspots (positive ufreq) and,
/// among them, *interior* ones (all neighbors also hot): updates then stay
/// inside the hot region, which is the behavior the isolation criterion of
/// Section 4.1 is designed to exploit.
VertexId PickVertex(Rng* rng, const Graph& g, double hotspot_locality) {
  if (rng->Bernoulli(hotspot_locality)) {
    std::vector<VertexId> hot;
    std::vector<VertexId> interior;
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      if (g.update_freq(v) == 0) continue;
      hot.push_back(v);
      bool all_hot = true;
      for (const EdgeEntry& e : g.adjacency(v)) {
        if (g.update_freq(e.to) == 0) {
          all_hot = false;
          break;
        }
      }
      if (all_hot) interior.push_back(v);
    }
    if (!interior.empty()) return interior[rng->Uniform(interior.size())];
    if (!hot.empty()) return hot[rng->Uniform(hot.size())];
  }
  return static_cast<VertexId>(rng->Uniform(g.VertexCount()));
}

Label PickLabel(Rng* rng, int num_labels, double new_label_probability) {
  if (rng->Bernoulli(new_label_probability)) {
    return static_cast<Label>(num_labels + rng->Uniform(4));
  }
  return static_cast<Label>(rng->Uniform(num_labels));
}

}  // namespace

UpdateLog ApplyUpdates(GraphDatabase* db, int num_labels,
                       const UpdateOptions& options) {
  PM_CHECK(!options.kinds.empty());
  Rng rng(options.seed);
  UpdateLog log;

  for (int gi = 0; gi < db->size(); ++gi) {
    if (!rng.Bernoulli(options.fraction_graphs)) continue;
    Graph& g = db->mutable_graph(gi);
    if (g.VertexCount() == 0) continue;
    log.updated_graphs.push_back(gi);

    for (int step = 0; step < options.updates_per_graph; ++step) {
      const UpdateKind kind = options.kinds[rng.Uniform(options.kinds.size())];
      switch (kind) {
        case UpdateKind::kRelabel: {
          const VertexId v = PickVertex(&rng, g, options.hotspot_locality);
          if (rng.Bernoulli(0.5) || g.Degree(v) == 0) {
            // Relabel the vertex itself.
            g.set_vertex_label(
                v, PickLabel(&rng, num_labels, options.new_label_probability));
            g.BumpUpdateFreq(v);
            log.touched_vertices.emplace_back(gi, v);
          } else {
            // Relabel an incident edge, preferring one staying inside the
            // hot region; both endpoints are touched.
            const auto& adj = g.adjacency(v);
            std::vector<const EdgeEntry*> hot_edges;
            for (const EdgeEntry& candidate : adj) {
              if (g.update_freq(candidate.to) > 0) {
                hot_edges.push_back(&candidate);
              }
            }
            const EdgeEntry e =
                !hot_edges.empty() && rng.Bernoulli(options.hotspot_locality)
                    ? *hot_edges[rng.Uniform(hot_edges.size())]
                    : adj[rng.Uniform(adj.size())];
            g.SetEdgeLabel(
                e.from, e.to,
                PickLabel(&rng, num_labels, options.new_label_probability));
            g.BumpUpdateFreq(e.from);
            g.BumpUpdateFreq(e.to);
            log.touched_vertices.emplace_back(gi, e.from);
            log.touched_vertices.emplace_back(gi, e.to);
          }
          break;
        }
        case UpdateKind::kAddEdge: {
          if (g.VertexCount() < 2) break;
          const VertexId u = PickVertex(&rng, g, options.hotspot_locality);
          bool added = false;
          for (int attempt = 0; attempt < 8 && !added; ++attempt) {
            // The second endpoint is also locality-biased: new edges appear
            // inside the frequently-updated region, which is what the
            // isolation criterion of Section 4.1 banks on.
            const VertexId v = PickVertex(&rng, g, options.hotspot_locality);
            if (v == u || g.HasEdge(u, v)) continue;
            g.AddEdge(u, v,
                      PickLabel(&rng, num_labels,
                                options.new_label_probability));
            g.BumpUpdateFreq(u);
            g.BumpUpdateFreq(v);
            log.touched_vertices.emplace_back(gi, u);
            log.touched_vertices.emplace_back(gi, v);
            added = true;
          }
          break;
        }
        case UpdateKind::kAddVertex: {
          const VertexId attach = PickVertex(&rng, g, options.hotspot_locality);
          const VertexId v = g.AddVertex(
              PickLabel(&rng, num_labels, options.new_label_probability));
          g.AddEdge(attach, v,
                    PickLabel(&rng, num_labels,
                              options.new_label_probability));
          g.BumpUpdateFreq(attach);
          g.BumpUpdateFreq(v);
          log.touched_vertices.emplace_back(gi, attach);
          log.touched_vertices.emplace_back(gi, v);
          break;
        }
      }
    }
  }
  return log;
}

}  // namespace partminer
