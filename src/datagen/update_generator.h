#ifndef PARTMINER_DATAGEN_UPDATE_GENERATOR_H_
#define PARTMINER_DATAGEN_UPDATE_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace partminer {

/// The three update kinds of Section 5: (1) relabel an existing vertex or
/// edge, (2) add a new edge between existing vertices, (3) add a new vertex
/// together with an edge attaching it.
enum class UpdateKind {
  kRelabel = 0,
  kAddEdge = 1,
  kAddVertex = 2,
};

struct UpdateOptions {
  /// Fraction of database graphs that receive updates (the paper varies this
  /// from 20% to 80%).
  double fraction_graphs = 0.4;

  /// Number of individual updates applied to each selected graph.
  int updates_per_graph = 2;

  /// Update kinds to sample from (uniformly).
  std::vector<UpdateKind> kinds = {UpdateKind::kRelabel, UpdateKind::kAddEdge,
                                   UpdateKind::kAddVertex};

  /// Probability that a relabel introduces a label outside [0, num_labels)
  /// ("existing or new labels" in the paper).
  double new_label_probability = 0.2;

  /// Probability that an update targets a hotspot vertex (one with positive
  /// update frequency) when the graph has any. Models the temporal locality
  /// that the isolation criterion of Section 4.1 exploits.
  double hotspot_locality = 0.8;

  uint64_t seed = 7;
};

/// What an update round touched: which graphs changed, and which vertices
/// (by database index and vertex id, post-update ids for new vertices).
struct UpdateLog {
  std::vector<int> updated_graphs;
  std::vector<std::pair<int, VertexId>> touched_vertices;
};

/// Applies random updates to `db` in place. Every touched vertex gets its
/// update frequency bumped. `num_labels` is the generator's N parameter.
UpdateLog ApplyUpdates(GraphDatabase* db, int num_labels,
                       const UpdateOptions& options);

}  // namespace partminer

#endif  // PARTMINER_DATAGEN_UPDATE_GENERATOR_H_
