#ifndef PARTMINER_DATAGEN_GENERATOR_H_
#define PARTMINER_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace partminer {

/// Parameters of the synthetic graph generator (Table 1 of the paper, after
/// the generator of Kuramochi & Karypis used by ADI [15]): L potentially
/// frequent kernels of average size I are planted into D graphs of average
/// size T edges over N distinct labels.
struct GeneratorParams {
  int num_graphs = 1000;      // D: total number of graphs.
  int num_labels = 20;        // N: possible vertex/edge labels.
  int avg_edges = 20;         // T: average number of edges per graph.
  int avg_kernel_edges = 5;   // I: average edges in frequent kernels.
  int num_kernels = 200;      // L: number of potentially frequent kernels.
  uint64_t seed = 1;

  /// Tag like "D1000T20N20L200I5" used in experiment reports, mirroring the
  /// dataset naming of Section 5.
  std::string Tag() const;
};

/// Generates a database of connected labeled graphs: each graph overlays one
/// or more kernels (sampled with exponentially distributed popularity, so a
/// subset of kernels is genuinely frequent) connected by bridge edges, then
/// pads with random vertices/edges up to its target size.
GraphDatabase GenerateDatabase(const GeneratorParams& params);

/// Marks a random `fraction` of each graph's vertices as update hotspots by
/// assigning them positive update frequencies (geometric, mean ~2). The
/// partitioning criteria of Section 4.1 consume these frequencies, and the
/// update generator prefers hot vertices, modeling the paper's assumption
/// that updates concentrate on frequently-changing vertices.
void AssignUpdateHotspots(GraphDatabase* db, double fraction, uint64_t seed);

}  // namespace partminer

#endif  // PARTMINER_DATAGEN_GENERATOR_H_
