#ifndef PARTMINER_DATAGEN_EDIT_STREAM_H_
#define PARTMINER_DATAGEN_EDIT_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/update_generator.h"
#include "graph/graph.h"

namespace partminer {

/// One explicit graph edit — the request-level form of the three update
/// kinds of Section 5 that the service protocol and the load generator
/// speak. ApplyUpdates draws random edits internally; EditOp spells one out
/// so a client can ship it over the wire and a session can validate it
/// against the live database before mutating anything.
struct EditOp {
  UpdateKind kind = UpdateKind::kRelabel;
  /// True for kRelabel targeting the edge {u, v} instead of vertex u.
  bool edge_target = false;
  int graph = 0;  // Database index.
  VertexId u = 0;
  VertexId v = 0;        // kAddEdge / edge relabel second endpoint.
  Label label = 0;       // New vertex/edge label; vertex label for kAddVertex.
  Label edge_label = 0;  // Attaching-edge label for kAddVertex (u = attach).

  std::string ToString() const;
};

/// Validates `op` against the current shape of `db` without mutating it.
/// Rejections (vertex out of range, duplicate edge, self-loop, negative
/// label) come back as InvalidArgument naming the offending field.
Status ValidateEdit(const GraphDatabase& db, const EditOp& op);

/// Result of applying one edit batch: every edit is individually atomic —
/// validated against the database state its predecessors produced, applied
/// if valid, skipped (and counted) otherwise. There is no torn state to
/// roll back, and a batch mixing valid and stale edits degrades to the
/// valid subset instead of failing wholesale.
struct EditBatchOutcome {
  int applied = 0;
  int rejected = 0;
  std::string first_rejection;  // Empty when rejected == 0.
};

/// Applies `edits` in order with per-edit validation. Touched vertices get
/// their update frequency bumped and are recorded in `log` exactly like
/// ApplyUpdates, so IncPartMiner routing sees the same shape of evidence.
EditBatchOutcome ApplyEditBatch(GraphDatabase* db,
                                const std::vector<EditOp>& edits,
                                UpdateLog* log);

/// One request of a generated service workload: either an update batch or
/// a frequent-pattern query.
struct StreamItem {
  bool is_update = false;
  std::vector<EditOp> edits;  // is_update only.
  int query_support = 0;      // 0 = the session's resident support.
  int query_limit = 0;        // Patterns to return (0 = count + digest only).
};

struct EditStreamOptions {
  uint64_t seed = 1;
  int requests = 1000;
  /// Fraction of requests that are update batches (the rest are queries).
  double update_fraction = 0.1;
  int edits_per_update = 4;
  /// Relative weights of the three edit kinds inside update batches.
  double relabel_weight = 0.5;
  double add_edge_weight = 0.3;
  double add_vertex_weight = 0.2;
  int num_labels = 20;
  /// Query support values are drawn from [resident, resident * this].
  double query_support_spread = 1.5;
  int resident_support = 2;
};

/// Generates a seeded mixed update/query stream that stays valid no matter
/// how the update batches interleave across client connections:
///  - relabels and add_vertex attachments only reference vertices of the
///    *initial* database (which never disappear — the update model only
///    adds),
///  - every add_edge uses a distinct initially-non-adjacent vertex pair, so
///    no two edits in the whole stream can collide into a duplicate edge.
/// The load generator distributes the items round-robin over its
/// connections; any serialization of them is a valid history.
std::vector<StreamItem> GenerateEditStream(const GraphDatabase& db,
                                           const EditStreamOptions& options);

/// Replay persistence: a line-oriented text format ("editstream v1") so a
/// measured workload can be re-run bit-identically against a later build.
///   q <support> <limit>
///   u <n>            (followed by n edit lines)
///   e relabel <graph> <vertex> <label>
///   e relabel_edge <graph> <u> <v> <label>
///   e add_edge <graph> <u> <v> <label>
///   e add_vertex <graph> <attach> <vertex_label> <edge_label>
Status WriteEditStream(const std::vector<StreamItem>& items,
                       std::ostream& out);
Status WriteEditStreamFile(const std::vector<StreamItem>& items,
                           const std::string& path);
Status ReadEditStream(std::istream& in, std::vector<StreamItem>* items);
Status ReadEditStreamFile(const std::string& path,
                          std::vector<StreamItem>* items);

}  // namespace partminer

#endif  // PARTMINER_DATAGEN_EDIT_STREAM_H_
