#ifndef PARTMINER_GRAPH_GRAPH_IO_H_
#define PARTMINER_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace partminer {

/// Reads a graph database in the de-facto standard gSpan text format:
///
///   t # <gid>
///   v <vertex-id> <label>
///   e <from> <to> <label>
///
/// Vertex ids within a graph must be dense starting from 0. Lines beginning
/// with '#' (other than the `t # gid` header) and blank lines are ignored.
Status ReadGraphDatabase(std::istream& in, GraphDatabase* db);

/// Convenience overload reading from a file path.
Status ReadGraphDatabaseFile(const std::string& path, GraphDatabase* db);

/// Writes `db` in the same format.
Status WriteGraphDatabase(const GraphDatabase& db, std::ostream& out);

/// Convenience overload writing to a file path.
Status WriteGraphDatabaseFile(const GraphDatabase& db,
                              const std::string& path);

}  // namespace partminer

#endif  // PARTMINER_GRAPH_GRAPH_IO_H_
