#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace partminer {

namespace {

Status ParseError(int line_number, const std::string& line,
                  const std::string& why) {
  std::ostringstream msg;
  msg << "line " << line_number << " ('" << line << "'): " << why;
  return Status::Corruption(msg.str());
}

}  // namespace

Status ReadGraphDatabase(std::istream& in, GraphDatabase* db) {
  std::string line;
  int line_number = 0;
  bool have_graph = false;
  Graph current;
  GraphId current_gid = -1;

  auto flush = [&]() {
    if (have_graph) db->Add(std::move(current), current_gid);
    current = Graph();
    have_graph = false;
  };

  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string tag;
    if (!(tokens >> tag)) continue;  // Blank line.
    std::string extra;
    if (tag == "t") {
      std::string hash;
      long gid = -1;
      if (!(tokens >> hash >> gid) || hash != "#") {
        return ParseError(line_number, line, "expected 't # <gid>'");
      }
      if (gid < 0) {
        return ParseError(line_number, line,
                          "negative graph id " + std::to_string(gid));
      }
      if (tokens >> extra) {
        return ParseError(line_number, line,
                          "trailing tokens after 't # <gid>'");
      }
      flush();
      have_graph = true;
      current_gid = static_cast<GraphId>(gid);
    } else if (tag == "v") {
      long id = -1, label = -1;
      if (!(tokens >> id >> label)) {
        return ParseError(line_number, line, "expected 'v <id> <label>'");
      }
      if (tokens >> extra) {
        return ParseError(line_number, line,
                          "trailing tokens after 'v <id> <label>'");
      }
      if (!have_graph) {
        return ParseError(line_number, line, "vertex before 't' header");
      }
      if (id < current.VertexCount()) {
        return ParseError(line_number, line,
                          "duplicate vertex id " + std::to_string(id));
      }
      if (id != current.VertexCount()) {
        return ParseError(
            line_number, line,
            "non-dense vertex id " + std::to_string(id) + " (expected " +
                std::to_string(current.VertexCount()) + ")");
      }
      current.AddVertex(static_cast<Label>(label));
    } else if (tag == "e") {
      long from = -1, to = -1, label = -1;
      if (!(tokens >> from >> to >> label)) {
        return ParseError(line_number, line,
                          "expected 'e <from> <to> <label>'");
      }
      if (tokens >> extra) {
        return ParseError(line_number, line,
                          "trailing tokens after 'e <from> <to> <label>'");
      }
      if (!have_graph) {
        return ParseError(line_number, line, "edge before 't' header");
      }
      if (from == to) {
        return ParseError(line_number, line,
                          "self-loop edge at vertex " + std::to_string(from));
      }
      if (from < 0 || to < 0 || from >= current.VertexCount() ||
          to >= current.VertexCount()) {
        const long dangling =
            (from < 0 || from >= current.VertexCount()) ? from : to;
        return ParseError(
            line_number, line,
            "dangling edge endpoint " + std::to_string(dangling) +
                " (graph has " + std::to_string(current.VertexCount()) +
                " vertices)");
      }
      if (current.HasEdge(static_cast<VertexId>(from),
                          static_cast<VertexId>(to))) {
        return ParseError(line_number, line,
                          "duplicate edge " + std::to_string(from) + "-" +
                              std::to_string(to));
      }
      current.AddEdge(static_cast<VertexId>(from), static_cast<VertexId>(to),
                      static_cast<Label>(label));
    } else if (tag[0] == '#') {
      continue;  // Comment.
    } else {
      return ParseError(line_number, line, "unknown record tag '" + tag + "'");
    }
  }
  flush();
  return Status::Ok();
}

Status ReadGraphDatabaseFile(const std::string& path, GraphDatabase* db) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadGraphDatabase(in, db);
}

Status WriteGraphDatabase(const GraphDatabase& db, std::ostream& out) {
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    out << "t # " << db.gid(i) << "\n";
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      out << "v " << v << " " << g.vertex_label(v) << "\n";
    }
    for (const EdgeEntry& e : g.UndirectedEdges()) {
      out << "e " << e.from << " " << e.to << " " << e.label << "\n";
    }
  }
  if (!out) return Status::IoError("write failed");
  return Status::Ok();
}

Status WriteGraphDatabaseFile(const GraphDatabase& db,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteGraphDatabase(db, out);
}

}  // namespace partminer
