#ifndef PARTMINER_GRAPH_CANONICAL_H_
#define PARTMINER_GRAPH_CANONICAL_H_

#include "graph/dfs_code.h"
#include "graph/graph.h"

namespace partminer {

/// Computes the minimum DFS code of a connected graph (Section 3). The
/// minimum code is a canonical label: two connected labeled graphs are
/// isomorphic iff their minimum DFS codes are equal. The graph must be
/// connected and have at least one edge.
///
/// Implementation: greedy stepwise minimization over all partial embeddings
/// (the procedure underlying gSpan's is_min test), with a backtracking
/// fallback should the greedy frontier ever dead-end.
DfsCode MinimumDfsCode(const Graph& graph);

/// True iff `code` is the minimum DFS code of the graph it encodes. Used by
/// the miners to prune duplicate enumeration branches. Cheaper than building
/// the full minimum code because it stops at the first differing position.
///
/// Verdicts are memoized in a sharded, bounded, thread-safe cache keyed by
/// the full DFS code (never by its hash alone, so collisions cannot corrupt
/// a verdict): the same candidate codes recur across partition units, merge
/// levels, and incremental rounds, and minimality is a pure function of the
/// code. Hits/misses/evictions are published as canon.cache_* counters.
bool IsMinimalDfsCode(const DfsCode& code);

/// Process-wide escape hatch for the minimality memo cache (the CLI/bench
/// flag --no-canon-cache). Defaults to enabled; verdicts are identical with
/// the cache on or off.
bool MinimalityCacheEnabled();
void SetMinimalityCacheEnabled(bool enabled);

/// Drops every cached verdict. Tests and benchmarks use this to delimit
/// measurement windows (cold vs warm cache).
void ClearMinimalityCache();

/// Exhaustive-reference implementation of MinimumDfsCode that explores every
/// valid DFS enumeration with full backtracking. Exponential in the worst
/// case; exposed so property tests can validate the greedy fast path against
/// the ground truth on small graphs.
DfsCode MinimumDfsCodeExhaustive(const Graph& graph);

/// Canonical label equality: isomorphism test for connected labeled graphs.
bool AreIsomorphic(const Graph& a, const Graph& b);

}  // namespace partminer

#endif  // PARTMINER_GRAPH_CANONICAL_H_
