#ifndef PARTMINER_GRAPH_CANONICAL_H_
#define PARTMINER_GRAPH_CANONICAL_H_

#include "graph/dfs_code.h"
#include "graph/graph.h"

namespace partminer {

/// Computes the minimum DFS code of a connected graph (Section 3). The
/// minimum code is a canonical label: two connected labeled graphs are
/// isomorphic iff their minimum DFS codes are equal. The graph must be
/// connected and have at least one edge.
///
/// Implementation: greedy stepwise minimization over all partial embeddings
/// (the procedure underlying gSpan's is_min test), with a backtracking
/// fallback should the greedy frontier ever dead-end.
DfsCode MinimumDfsCode(const Graph& graph);

/// True iff `code` is the minimum DFS code of the graph it encodes. Used by
/// the miners to prune duplicate enumeration branches. Cheaper than building
/// the full minimum code because it stops at the first differing position.
bool IsMinimalDfsCode(const DfsCode& code);

/// Exhaustive-reference implementation of MinimumDfsCode that explores every
/// valid DFS enumeration with full backtracking. Exponential in the worst
/// case; exposed so property tests can validate the greedy fast path against
/// the ground truth on small graphs.
DfsCode MinimumDfsCodeExhaustive(const Graph& graph);

/// Canonical label equality: isomorphism test for connected labeled graphs.
bool AreIsomorphic(const Graph& a, const Graph& b);

}  // namespace partminer

#endif  // PARTMINER_GRAPH_CANONICAL_H_
