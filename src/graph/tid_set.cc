#include "graph/tid_set.h"

#include <algorithm>
#include <ostream>

#include "common/logging.h"

namespace partminer {

TidSet TidSet::FromVector(const std::vector<int>& tids) {
  TidSet set;
  if (!tids.empty()) {
    const int max_tid = *std::max_element(tids.begin(), tids.end());
    set.words_.resize(static_cast<std::size_t>(max_tid) / 64 + 1, 0);
  }
  for (const int tid : tids) set.Add(tid);
  return set;
}

void TidSet::Add(int tid) {
  PM_CHECK_GE(tid, 0);
  const std::size_t w = static_cast<std::size_t>(tid) / 64;
  if (w >= words_.size()) words_.resize(w + 1, 0);
  words_[w] |= uint64_t{1} << (tid % 64);
}

void TidSet::Remove(int tid) {
  const std::size_t w = static_cast<std::size_t>(tid) / 64;
  if (w >= words_.size()) return;
  words_[w] &= ~(uint64_t{1} << (tid % 64));
  Trim();
}

bool TidSet::Contains(int tid) const {
  if (tid < 0) return false;
  const std::size_t w = static_cast<std::size_t>(tid) / 64;
  return w < words_.size() && (words_[w] >> (tid % 64)) & 1;
}

int TidSet::Count() const {
  int count = 0;
  for (const uint64_t word : words_) count += __builtin_popcountll(word);
  return count;
}

std::vector<int> TidSet::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&out](int tid) { out.push_back(tid); });
  return out;
}

TidSet& TidSet::operator&=(const TidSet& other) {
  if (words_.size() > other.words_.size()) {
    words_.resize(other.words_.size());
  }
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
  Trim();
  return *this;
}

TidSet& TidSet::operator|=(const TidSet& other) {
  if (words_.size() < other.words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

TidSet& TidSet::operator-=(const TidSet& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < n; ++w) {
    words_[w] &= ~other.words_[w];
  }
  Trim();
  return *this;
}

bool TidSet::Includes(const TidSet& other) const {
  if (other.words_.size() > words_.size()) return false;
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    if ((other.words_[w] & ~words_[w]) != 0) return false;
  }
  return true;
}

void TidSet::Trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

std::ostream& operator<<(std::ostream& os, const TidSet& set) {
  os << '{';
  bool first = true;
  set.ForEach([&](int tid) {
    if (!first) os << ", ";
    first = false;
    os << tid;
  });
  return os << '}';
}

}  // namespace partminer
