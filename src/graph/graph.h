#ifndef PARTMINER_GRAPH_GRAPH_H_
#define PARTMINER_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"

namespace partminer {

class LabelIndex;

/// Vertex index within a single graph.
using VertexId = int32_t;
/// Vertex or edge label. Labels are small non-negative integers; the paper's
/// parameter N bounds the number of distinct labels.
using Label = int32_t;
/// Graph identifier within a database.
using GraphId = int32_t;

constexpr Label kNoLabel = -1;

/// A half-edge in an adjacency list: the edge (from, to) with label `label`.
/// Undirected edges are stored as two half-edges, one per endpoint. `eid`
/// identifies the undirected edge (both half-edges share it), which lets the
/// isomorphism code mark edges used.
struct EdgeEntry {
  VertexId from = 0;
  VertexId to = 0;
  Label label = kNoLabel;
  int32_t eid = -1;
};

/// An undirected labeled graph G = (V, E, L_V, L_E) per Section 3 of the
/// paper. Vertices are dense integers [0, VertexCount()). The graph also
/// carries per-vertex update frequencies (`ufreq`), which drive the
/// partitioning criteria of Section 4.1.
class Graph {
 public:
  Graph() = default;

  /// Constructs a graph with `n` vertices, all labeled `kNoLabel`.
  explicit Graph(int n) { Resize(n); }

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Grows (or shrinks) the vertex set to `n` vertices. New vertices get
  /// label kNoLabel and ufreq 0.
  void Resize(int n) {
    vertex_labels_.resize(n, kNoLabel);
    adjacency_.resize(n);
    update_freq_.resize(n, 0);
  }

  /// Appends a vertex with the given label; returns its id.
  VertexId AddVertex(Label label) {
    vertex_labels_.push_back(label);
    adjacency_.emplace_back();
    update_freq_.push_back(0);
    return static_cast<VertexId>(vertex_labels_.size() - 1);
  }

  /// Adds an undirected edge {u, v} with label `label`; returns the edge id.
  /// Self-loops and duplicate edges are not supported by the mining
  /// algorithms and are rejected with a fatal check.
  int32_t AddEdge(VertexId u, VertexId v, Label label) {
    PM_CHECK_NE(u, v);
    PM_CHECK_GE(u, 0);
    PM_CHECK_GE(v, 0);
    PM_CHECK_LT(u, VertexCount());
    PM_CHECK_LT(v, VertexCount());
    const int32_t eid = edge_count_++;
    adjacency_[u].push_back(EdgeEntry{u, v, label, eid});
    adjacency_[v].push_back(EdgeEntry{v, u, label, eid});
    return eid;
  }

  int VertexCount() const { return static_cast<int>(vertex_labels_.size()); }
  /// Number of undirected edges; the "size" of the graph in the paper.
  int EdgeCount() const { return edge_count_; }

  Label vertex_label(VertexId v) const { return vertex_labels_[v]; }
  void set_vertex_label(VertexId v, Label label) { vertex_labels_[v] = label; }

  /// Half-edges incident to `v`.
  const std::vector<EdgeEntry>& adjacency(VertexId v) const {
    return adjacency_[v];
  }

  /// Degree of `v`.
  int Degree(VertexId v) const {
    return static_cast<int>(adjacency_[v].size());
  }

  /// Returns the label of edge {u, v}, or kNoLabel if absent.
  Label EdgeLabelBetween(VertexId u, VertexId v) const {
    for (const EdgeEntry& e : adjacency_[u]) {
      if (e.to == v) return e.label;
    }
    return kNoLabel;
  }

  /// True if an edge {u, v} exists.
  bool HasEdge(VertexId u, VertexId v) const {
    return EdgeLabelBetween(u, v) != kNoLabel;
  }

  /// Relabels every half-edge of undirected edge {u, v}. Returns false when
  /// the edge does not exist.
  bool SetEdgeLabel(VertexId u, VertexId v, Label label);

  /// Per-vertex update frequency (Section 4.1). Incremented by the update
  /// generator whenever an update touches the vertex.
  uint32_t update_freq(VertexId v) const { return update_freq_[v]; }
  void set_update_freq(VertexId v, uint32_t f) { update_freq_[v] = f; }
  void BumpUpdateFreq(VertexId v) { ++update_freq_[v]; }

  /// True when a path exists between every pair of vertices (and the graph
  /// is nonempty).
  bool IsConnected() const;

  /// Lists each undirected edge exactly once (from < to not guaranteed; the
  /// entry is the half-edge stored first).
  std::vector<EdgeEntry> UndirectedEdges() const;

  /// Renumbers vertices so that only vertices incident to at least one edge
  /// remain, dropping isolated vertices. Returns the mapping old->new
  /// (-1 for dropped vertices).
  std::vector<VertexId> CompactIsolatedVertices();

  /// Debug rendering: one line per vertex and edge.
  std::string DebugString() const;

 private:
  std::vector<Label> vertex_labels_;
  std::vector<std::vector<EdgeEntry>> adjacency_;
  std::vector<uint32_t> update_freq_;
  int32_t edge_count_ = 0;
};

/// A graph database: a set of (gid, Graph) tuples (Section 3).
class GraphDatabase {
 public:
  GraphDatabase() = default;

  // The cached label index is an artifact of the graph content, not part of
  // the database's value: copies and moves transfer only the graphs and let
  // the destination rebuild its own index on first use (the mutex member is
  // neither copyable nor movable anyway).
  GraphDatabase(const GraphDatabase& other)
      : graphs_(other.graphs_), gids_(other.gids_) {}
  GraphDatabase& operator=(const GraphDatabase& other) {
    if (this != &other) {
      graphs_ = other.graphs_;
      gids_ = other.gids_;
      InvalidateLabelIndex();
    }
    return *this;
  }
  GraphDatabase(GraphDatabase&& other) noexcept
      : graphs_(std::move(other.graphs_)), gids_(std::move(other.gids_)) {}
  GraphDatabase& operator=(GraphDatabase&& other) noexcept {
    if (this != &other) {
      graphs_ = std::move(other.graphs_);
      gids_ = std::move(other.gids_);
      InvalidateLabelIndex();
    }
    return *this;
  }

  /// Adds a graph; returns its database index. `gid` defaults to the index.
  GraphId Add(Graph graph, GraphId gid = -1) {
    const GraphId index = static_cast<GraphId>(graphs_.size());
    graphs_.push_back(std::move(graph));
    gids_.push_back(gid < 0 ? index : gid);
    InvalidateLabelIndex();
    return index;
  }

  int size() const { return static_cast<int>(graphs_.size()); }
  bool empty() const { return graphs_.empty(); }

  const Graph& graph(int index) const { return graphs_[index]; }
  /// Mutable access invalidates the cached label index: the caller may change
  /// labels or edges, and a stale index could prune true embeddings.
  Graph& mutable_graph(int index) {
    InvalidateLabelIndex();
    return graphs_[index];
  }
  GraphId gid(int index) const { return gids_[index]; }

  /// The database's inverted label index (see label_index.h), built lazily on
  /// first use and shared until the next mutation. Thread-safe: concurrent
  /// mining workers counting support against the same database get the same
  /// instance. The shared_ptr keeps a handed-out index valid even if the
  /// database is mutated (or destroyed) while a counting pass still holds it.
  std::shared_ptr<const LabelIndex> label_index() const;

  /// Total number of edges across all member graphs.
  int64_t TotalEdges() const {
    int64_t total = 0;
    for (const Graph& g : graphs_) total += g.EdgeCount();
    return total;
  }

 private:
  void InvalidateLabelIndex() {
    std::lock_guard<std::mutex> lock(label_index_mu_);
    label_index_.reset();
  }

  std::vector<Graph> graphs_;
  std::vector<GraphId> gids_;
  mutable std::mutex label_index_mu_;
  mutable std::shared_ptr<const LabelIndex> label_index_;
};

}  // namespace partminer

#endif  // PARTMINER_GRAPH_GRAPH_H_
