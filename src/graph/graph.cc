#include "graph/graph.h"

#include <mutex>
#include <sstream>
#include <vector>

#include "graph/label_index.h"

namespace partminer {

std::shared_ptr<const LabelIndex> GraphDatabase::label_index() const {
  std::lock_guard<std::mutex> lock(label_index_mu_);
  if (label_index_ == nullptr) {
    label_index_ = std::make_shared<const LabelIndex>(*this);
  }
  return label_index_;
}

bool Graph::SetEdgeLabel(VertexId u, VertexId v, Label label) {
  bool found = false;
  for (EdgeEntry& e : adjacency_[u]) {
    if (e.to == v) {
      e.label = label;
      found = true;
    }
  }
  if (!found) return false;
  for (EdgeEntry& e : adjacency_[v]) {
    if (e.to == u) e.label = label;
  }
  return true;
}

bool Graph::IsConnected() const {
  const int n = VertexCount();
  if (n == 0) return false;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const EdgeEntry& e : adjacency_[v]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == n;
}

std::vector<EdgeEntry> Graph::UndirectedEdges() const {
  std::vector<EdgeEntry> edges(edge_count_);
  std::vector<bool> emitted(edge_count_, false);
  for (VertexId v = 0; v < VertexCount(); ++v) {
    for (const EdgeEntry& e : adjacency_[v]) {
      if (!emitted[e.eid]) {
        emitted[e.eid] = true;
        edges[e.eid] = e;
      }
    }
  }
  return edges;
}

std::vector<VertexId> Graph::CompactIsolatedVertices() {
  const int n = VertexCount();
  std::vector<VertexId> mapping(n, -1);
  int next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!adjacency_[v].empty()) mapping[v] = next++;
  }
  if (next == n) return mapping;  // Nothing to drop.

  std::vector<Label> labels(next);
  std::vector<std::vector<EdgeEntry>> adjacency(next);
  std::vector<uint32_t> ufreq(next);
  for (VertexId v = 0; v < n; ++v) {
    if (mapping[v] < 0) continue;
    labels[mapping[v]] = vertex_labels_[v];
    ufreq[mapping[v]] = update_freq_[v];
    adjacency[mapping[v]].reserve(adjacency_[v].size());
    for (const EdgeEntry& e : adjacency_[v]) {
      adjacency[mapping[v]].push_back(
          EdgeEntry{mapping[e.from], mapping[e.to], e.label, e.eid});
    }
  }
  vertex_labels_ = std::move(labels);
  adjacency_ = std::move(adjacency);
  update_freq_ = std::move(ufreq);
  return mapping;
}

std::string Graph::DebugString() const {
  std::ostringstream out;
  for (VertexId v = 0; v < VertexCount(); ++v) {
    out << "v " << v << " " << vertex_labels_[v] << "\n";
  }
  for (const EdgeEntry& e : UndirectedEdges()) {
    out << "e " << e.from << " " << e.to << " " << e.label << "\n";
  }
  return out.str();
}

}  // namespace partminer
