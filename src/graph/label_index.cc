#include "graph/label_index.h"

#include <atomic>
#include <utility>

#include "obs/metrics.h"

namespace partminer {

namespace {
std::atomic<bool> g_label_index_enabled{true};
}  // namespace

bool LabelIndexEnabled() {
  return g_label_index_enabled.load(std::memory_order_relaxed);
}

void SetLabelIndexEnabled(bool enabled) {
  g_label_index_enabled.store(enabled, std::memory_order_relaxed);
  PM_METRIC_GAUGE("prune.index_enabled")->Set(enabled ? 1 : 0);
}

uint64_t LabelIndex::TripleKey(Label a, Label elabel, Label b) {
  if (a > b) std::swap(a, b);
  constexpr uint64_t kMask = (uint64_t{1} << 21) - 1;
  return ((static_cast<uint64_t>(static_cast<uint32_t>(a)) & kMask) << 42) |
         ((static_cast<uint64_t>(static_cast<uint32_t>(elabel)) & kMask)
          << 21) |
         (static_cast<uint64_t>(static_cast<uint32_t>(b)) & kMask);
}

LabelIndex::LabelIndex(const GraphDatabase& db) : graph_count_(db.size()) {
  PM_METRIC_COUNTER("prune.index_builds")->Increment();
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      vertex_tids_[g.vertex_label(v)].Add(i);  // Add is idempotent.
    }
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      for (const EdgeEntry& e : g.adjacency(v)) {
        if (e.to < v) continue;  // Each undirected edge once.
        edge_tids_[TripleKey(g.vertex_label(v), e.label,
                             g.vertex_label(e.to))]
            .Add(i);
      }
    }
  }
}

TidSet LabelIndex::CandidatesFor(const Graph& pattern) const {
  PM_METRIC_COUNTER("prune.index_queries")->Increment();
  TidSet candidates;
  bool seeded = false;
  auto intersect = [&candidates, &seeded](const TidSet& tids) {
    if (!seeded) {
      candidates = tids;
      seeded = true;
    } else {
      candidates &= tids;
    }
    return !candidates.Empty();
  };

  for (VertexId v = 0; v < pattern.VertexCount(); ++v) {
    const auto it = vertex_tids_.find(pattern.vertex_label(v));
    if (it == vertex_tids_.end()) return TidSet();
    if (!intersect(it->second)) return TidSet();
  }
  for (VertexId v = 0; v < pattern.VertexCount(); ++v) {
    for (const EdgeEntry& e : pattern.adjacency(v)) {
      if (e.to < v) continue;
      const auto it = edge_tids_.find(
          TripleKey(pattern.vertex_label(v), e.label,
                    pattern.vertex_label(e.to)));
      if (it == edge_tids_.end()) return TidSet();
      if (!intersect(it->second)) return TidSet();
    }
  }
  if (!seeded) {
    // Empty pattern constrains nothing: every graph is a candidate.
    for (int i = 0; i < graph_count_; ++i) candidates.Add(i);
  }
  return candidates;
}

}  // namespace partminer
