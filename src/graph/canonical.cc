#include "graph/canonical.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

namespace {

// ---------------------------------------------------------------------------
// Minimality memo cache. Sharded by the high bits of the code hash (the low
// bits select the bucket inside each shard's map), bounded per shard with a
// whole-shard epoch flush on overflow: eviction never takes a second pass
// over the map, and a flushed shard simply refills with the codes the current
// mining phase is actually re-checking. Keys are full DFS codes, so a hash
// collision costs a probe, never a wrong verdict.
// ---------------------------------------------------------------------------

constexpr int kCacheShardBits = 4;
constexpr int kCacheShards = 1 << kCacheShardBits;
constexpr std::size_t kMaxEntriesPerShard = std::size_t{1} << 14;

struct CacheShard {
  std::mutex mu;
  std::unordered_map<DfsCode, bool, DfsCodeHash> verdicts;
};

CacheShard* CacheShards() {
  // Leaked on purpose: metric handles follow the same never-destroyed rule,
  // and worker threads may outlive static destruction order otherwise.
  static CacheShard* const shards = new CacheShard[kCacheShards];
  return shards;
}

CacheShard& ShardFor(std::size_t hash) {
  return CacheShards()[(hash >> (sizeof(std::size_t) * 8 - kCacheShardBits)) &
                       (kCacheShards - 1)];
}

std::atomic<bool> g_minimality_cache_enabled{true};

}  // namespace

bool MinimalityCacheEnabled() {
  return g_minimality_cache_enabled.load(std::memory_order_relaxed);
}

void SetMinimalityCacheEnabled(bool enabled) {
  g_minimality_cache_enabled.store(enabled, std::memory_order_relaxed);
  PM_METRIC_GAUGE("canon.cache_enabled")->Set(enabled ? 1 : 0);
}

void ClearMinimalityCache() {
  for (int s = 0; s < kCacheShards; ++s) {
    CacheShard& shard = CacheShards()[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.verdicts.clear();
  }
}

namespace {

/// A partial embedding of the code built so far into the target graph.
struct Embedding {
  std::vector<VertexId> map;  // DFS index -> graph vertex.
  std::vector<int> inv;       // Graph vertex -> DFS index, -1 if unmapped.
  std::vector<bool> used;     // Per undirected edge id.
};

/// One possible next code entry together with the embedding and concrete
/// graph edge realizing it.
struct Candidate {
  DfsEdge tuple;
  int embedding_index = 0;
  EdgeEntry edge;  // Oriented from the already-mapped endpoint.
};

/// Enumerates all valid rightmost extensions of `code` under `emb`.
/// `on_path[v]` marks DFS indices on the rightmost path; `path` is the
/// rightmost path itself (root first); `next_index` is the DFS index a
/// forward edge would assign.
void CollectCandidates(const Graph& g, const DfsCode& code,
                       const std::vector<int>& path,
                       const std::vector<bool>& on_path, int next_index,
                       const Embedding& emb, int embedding_index,
                       std::vector<Candidate>* out) {
  if (path.empty()) return;
  const int rm = path.back();
  const VertexId rm_vertex = emb.map[rm];

  // Backward extensions: from the rightmost vertex to a rightmost-path
  // vertex. If the previous code entry is a backward edge from the same
  // source, only larger targets keep the code valid.
  int min_backward_to = -1;
  if (!code.empty()) {
    const DfsEdge& last = code[code.size() - 1];
    if (!last.IsForward() && last.from == rm) min_backward_to = last.to + 1;
  }
  for (const EdgeEntry& e : g.adjacency(rm_vertex)) {
    if (emb.used[e.eid]) continue;
    const int j = e.to < static_cast<VertexId>(emb.inv.size()) ? emb.inv[e.to]
                                                               : -1;
    if (j < 0 || !on_path[j] || j < min_backward_to) continue;
    Candidate c;
    c.tuple = DfsEdge{rm, j, g.vertex_label(rm_vertex), e.label,
                      g.vertex_label(e.to)};
    c.embedding_index = embedding_index;
    c.edge = e;
    out->push_back(c);
  }

  // Forward extensions: from any rightmost-path vertex to an unmapped
  // vertex, which receives DFS index `next_index`.
  for (const int i : path) {
    const VertexId u = emb.map[i];
    for (const EdgeEntry& e : g.adjacency(u)) {
      if (emb.used[e.eid]) continue;
      if (emb.inv[e.to] != -1) continue;
      Candidate c;
      c.tuple = DfsEdge{i, next_index, g.vertex_label(u), e.label,
                        g.vertex_label(e.to)};
      c.embedding_index = embedding_index;
      c.edge = e;
      out->push_back(c);
    }
  }
}

Embedding ExtendEmbedding(const Embedding& emb, const Candidate& c) {
  Embedding next = emb;
  next.used[c.edge.eid] = true;
  if (c.tuple.IsForward()) {
    PM_CHECK_EQ(static_cast<int>(next.map.size()), c.tuple.to);
    next.map.push_back(c.edge.to);
    next.inv[c.edge.to] = c.tuple.to;
  }
  return next;
}

/// Seeds the search: all single-edge embeddings realizing the minimal (or,
/// for the exhaustive variant, every) initial tuple.
std::vector<Candidate> InitialCandidates(const Graph& g) {
  std::vector<Candidate> out;
  for (VertexId u = 0; u < g.VertexCount(); ++u) {
    for (const EdgeEntry& e : g.adjacency(u)) {
      Candidate c;
      c.tuple = DfsEdge{0, 1, g.vertex_label(u), e.label,
                        g.vertex_label(e.to)};
      c.embedding_index = -1;  // No parent embedding yet.
      c.edge = e;
      out.push_back(c);
    }
  }
  return out;
}

Embedding SeedEmbedding(const Graph& g, const Candidate& c) {
  Embedding emb;
  emb.inv.assign(g.VertexCount(), -1);
  emb.used.assign(g.EdgeCount(), false);
  emb.map = {c.edge.from, c.edge.to};
  emb.inv[c.edge.from] = 0;
  emb.inv[c.edge.to] = 1;
  emb.used[c.edge.eid] = true;
  return emb;
}

/// Smallest candidate tuple, or nullptr when `cands` is empty.
const Candidate* MinCandidate(const std::vector<Candidate>& cands) {
  const Candidate* best = nullptr;
  for (const Candidate& c : cands) {
    if (best == nullptr || CompareDfsEdge(c.tuple, best->tuple) < 0) {
      best = &c;
    }
  }
  return best;
}

/// Runs the greedy stepwise minimization. When `reference` is non-null the
/// run compares each chosen tuple against (*reference)[step] and stops early:
/// result -1 means the graph admits a smaller code than the reference, 0
/// means the greedy code equals the reference. When `reference` is null the
/// greedy minimum code is written to `out`. Returns false only on a dead end
/// (never expected; see the argument in MinimumDfsCode).
bool GreedyMinimize(const Graph& g, const DfsCode* reference, DfsCode* out,
                    int* comparison) {
  const int edge_total = g.EdgeCount();
  PM_CHECK_GT(edge_total, 0);

  DfsCode code;
  std::vector<Embedding> embeddings;

  // Step 0.
  {
    std::vector<Candidate> cands = InitialCandidates(g);
    const Candidate* min = MinCandidate(cands);
    PM_CHECK(min != nullptr);
    if (reference != nullptr) {
      const int cmp = CompareDfsEdge(min->tuple, (*reference)[0]);
      if (cmp != 0) {
        *comparison = cmp;
        return true;
      }
    }
    code.Append(min->tuple);
    for (const Candidate& c : cands) {
      if (CompareDfsEdge(c.tuple, min->tuple) == 0) {
        embeddings.push_back(SeedEmbedding(g, c));
      }
    }
  }

  while (static_cast<int>(code.size()) < edge_total) {
    const std::vector<int> path = code.RightmostPath();
    std::vector<bool> on_path(code.VertexCount(), false);
    for (const int i : path) on_path[i] = true;
    const int next_index = code.VertexCount();

    std::vector<Candidate> cands;
    for (size_t ei = 0; ei < embeddings.size(); ++ei) {
      CollectCandidates(g, code, path, on_path, next_index, embeddings[ei],
                        static_cast<int>(ei), &cands);
    }
    const Candidate* min = MinCandidate(cands);
    if (min == nullptr) return false;  // Dead end (defensive; see caller).

    if (reference != nullptr) {
      const int cmp = CompareDfsEdge(min->tuple, (*reference)[code.size()]);
      if (cmp != 0) {
        *comparison = cmp;
        return true;
      }
    }

    std::vector<Embedding> next;
    for (const Candidate& c : cands) {
      if (CompareDfsEdge(c.tuple, min->tuple) == 0) {
        next.push_back(ExtendEmbedding(embeddings[c.embedding_index], c));
      }
    }
    code.Append(min->tuple);
    embeddings = std::move(next);
  }

  if (comparison != nullptr) *comparison = 0;
  if (out != nullptr) *out = std::move(code);
  return true;
}

/// Full backtracking search over valid DFS codes, exploring candidate tuples
/// in ascending order; the first complete code found is the minimum.
bool ExhaustiveSearch(const Graph& g, DfsCode* code,
                      std::vector<Embedding>* embeddings, int edge_total,
                      DfsCode* result) {
  if (static_cast<int>(code->size()) == edge_total) {
    *result = *code;
    return true;
  }
  const std::vector<int> path = code->RightmostPath();
  std::vector<bool> on_path(code->VertexCount(), false);
  for (const int i : path) on_path[i] = true;
  const int next_index = code->VertexCount();

  std::vector<Candidate> cands;
  for (size_t ei = 0; ei < embeddings->size(); ++ei) {
    CollectCandidates(g, *code, path, on_path, next_index, (*embeddings)[ei],
                      static_cast<int>(ei), &cands);
  }
  if (cands.empty()) return false;

  // Distinct tuples in ascending order.
  std::vector<DfsEdge> tuples;
  for (const Candidate& c : cands) tuples.push_back(c.tuple);
  std::sort(tuples.begin(), tuples.end(),
            [](const DfsEdge& a, const DfsEdge& b) {
              return CompareDfsEdge(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());

  for (const DfsEdge& tuple : tuples) {
    std::vector<Embedding> next;
    for (const Candidate& c : cands) {
      if (CompareDfsEdge(c.tuple, tuple) == 0) {
        next.push_back(ExtendEmbedding((*embeddings)[c.embedding_index], c));
      }
    }
    code->Append(tuple);
    if (ExhaustiveSearch(g, code, &next, edge_total, result)) return true;
    code->PopBack();
  }
  return false;
}

}  // namespace

DfsCode MinimumDfsCode(const Graph& graph) {
  DfsCode result;
  if (GreedyMinimize(graph, /*reference=*/nullptr, &result,
                     /*comparison=*/nullptr)) {
    return result;
  }
  // Greedy construction cannot dead-end for connected graphs: a vertex only
  // leaves the rightmost path once all its incident edges are used, because
  // forward extensions from deeper vertices and backward extensions from the
  // rightmost vertex always compare smaller than the extension that would
  // remove it from the path. The fallback below is purely defensive.
  PM_LOG(Warning) << "greedy minimum-DFS-code construction dead-ended; "
                     "falling back to exhaustive search";
  return MinimumDfsCodeExhaustive(graph);
}

DfsCode MinimumDfsCodeExhaustive(const Graph& graph) {
  const int edge_total = graph.EdgeCount();
  PM_CHECK_GT(edge_total, 0);

  std::vector<Candidate> initial = InitialCandidates(graph);
  std::vector<DfsEdge> tuples;
  for (const Candidate& c : initial) tuples.push_back(c.tuple);
  std::sort(tuples.begin(), tuples.end(),
            [](const DfsEdge& a, const DfsEdge& b) {
              return CompareDfsEdge(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());

  DfsCode result;
  for (const DfsEdge& tuple : tuples) {
    DfsCode code;
    code.Append(tuple);
    std::vector<Embedding> embeddings;
    for (const Candidate& c : initial) {
      if (CompareDfsEdge(c.tuple, tuple) == 0) {
        embeddings.push_back(SeedEmbedding(graph, c));
      }
    }
    if (ExhaustiveSearch(graph, &code, &embeddings, edge_total, &result)) {
      return result;
    }
  }
  PM_CHECK(false) << "no valid DFS code found; graph disconnected?";
  return result;
}

bool IsMinimalDfsCode(const DfsCode& code) {
  PM_METRIC_COUNTER("miner.minimality_checks")->Increment();
  if (code.empty()) return true;

  CacheShard* shard = nullptr;
  if (MinimalityCacheEnabled()) {
    shard = &ShardFor(DfsCodeHash{}(code));
    std::lock_guard<std::mutex> lock(shard->mu);
    const auto it = shard->verdicts.find(code);
    if (it != shard->verdicts.end()) {
      PM_METRIC_COUNTER("canon.cache_hits")->Increment();
      return it->second;
    }
    PM_METRIC_COUNTER("canon.cache_misses")->Increment();
  }

  const Graph g = code.ToGraph();
  int comparison = 1;
  const bool completed =
      GreedyMinimize(g, &code, /*out=*/nullptr, &comparison);
  PM_CHECK(completed) << "greedy minimization dead-ended during is-min check";
  // comparison < 0: a strictly smaller code exists -> not minimal.
  // comparison == 0: greedy reproduced `code` -> minimal.
  // comparison > 0 cannot happen for valid codes (the given code is itself a
  //   candidate at every step).
  PM_CHECK_LE(comparison, 0) << "invalid DFS code passed to IsMinimalDfsCode: "
                             << code.ToString();
  const bool minimal = comparison == 0;

  if (shard != nullptr) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->verdicts.size() >= kMaxEntriesPerShard) {
      PM_METRIC_COUNTER("canon.cache_evictions")
          ->Add(static_cast<int64_t>(shard->verdicts.size()));
      shard->verdicts.clear();
    }
    shard->verdicts.emplace(code, minimal);
  }
  return minimal;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.VertexCount() != b.VertexCount() || a.EdgeCount() != b.EdgeCount()) {
    return false;
  }
  if (a.EdgeCount() == 0) {
    // Edgeless graphs: compare vertex label multisets.
    std::vector<Label> la, lb;
    for (VertexId v = 0; v < a.VertexCount(); ++v) {
      la.push_back(a.vertex_label(v));
    }
    for (VertexId v = 0; v < b.VertexCount(); ++v) {
      lb.push_back(b.vertex_label(v));
    }
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    return la == lb;
  }
  return MinimumDfsCode(a) == MinimumDfsCode(b);
}

}  // namespace partminer
