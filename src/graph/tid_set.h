#ifndef PARTMINER_GRAPH_TID_SET_H_
#define PARTMINER_GRAPH_TID_SET_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace partminer {

/// A dense bitset over database graph indices (TIDs), one bit per graph in
/// 64-bit words. This is the set representation behind every TID list in the
/// mining stack: intersect/union/difference are word-wide operations and
/// support is a popcount, which turns the merge-join's per-candidate set
/// arithmetic (kept = cached \ updated, new = kept ∪ hits) and the label
/// index's candidate pruning into a handful of machine instructions per 64
/// graphs instead of per-element merges of sorted vectors.
///
/// Invariant: no trailing zero words. Every mutator restores it, so equality
/// is plain word-vector equality regardless of what capacity the operands
/// ever reached, and Empty() is words_.empty().
class TidSet {
 public:
  TidSet() = default;

  /// Builds from a list of TIDs (any order, duplicates fine).
  static TidSet FromVector(const std::vector<int>& tids);

  void Add(int tid);
  void Remove(int tid);
  bool Contains(int tid) const;

  /// Number of TIDs present (the support).
  int Count() const;
  bool Empty() const { return words_.empty(); }
  void Clear() { words_.clear(); }

  /// Ascending list of the TIDs present.
  std::vector<int> ToVector() const;

  /// In-place intersection / union / difference.
  TidSet& operator&=(const TidSet& other);
  TidSet& operator|=(const TidSet& other);
  TidSet& operator-=(const TidSet& other);

  /// True when `other` is a subset of this set.
  bool Includes(const TidSet& other) const;

  /// Calls `fn(tid)` for every member in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<int>(w) * 64 + bit);
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const TidSet& a, const TidSet& b) {
    return a.words_ == b.words_;
  }
  friend bool operator!=(const TidSet& a, const TidSet& b) {
    return !(a == b);
  }

  /// Renders as "{0, 3, 17}" — picked up by gtest failure messages.
  friend std::ostream& operator<<(std::ostream& os, const TidSet& set);

 private:
  /// Drops trailing zero words (restores the class invariant).
  void Trim();

  std::vector<uint64_t> words_;
};

}  // namespace partminer

#endif  // PARTMINER_GRAPH_TID_SET_H_
