#ifndef PARTMINER_GRAPH_DFS_CODE_H_
#define PARTMINER_GRAPH_DFS_CODE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace partminer {

/// One entry of a DFS code: the 5-tuple (i, j, l_i, l_(i,j), l_j) of
/// Yan & Han's gSpan encoding, which the paper adopts in Section 3.
/// `from`/`to` are DFS discovery indices; the edge is *forward* when
/// from < to (tree edge discovering vertex `to`) and *backward* otherwise.
struct DfsEdge {
  int32_t from = 0;
  int32_t to = 0;
  Label from_label = kNoLabel;
  Label edge_label = kNoLabel;
  Label to_label = kNoLabel;

  bool IsForward() const { return from < to; }

  friend bool operator==(const DfsEdge& a, const DfsEdge& b) {
    return a.from == b.from && a.to == b.to && a.from_label == b.from_label &&
           a.edge_label == b.edge_label && a.to_label == b.to_label;
  }
};

/// Total order on DFS-code entries (gSpan's neighborhood order). Returns
/// negative / zero / positive like strcmp. Both entries must be extensions of
/// the same partial code for the structural comparison to be meaningful.
int CompareDfsEdge(const DfsEdge& a, const DfsEdge& b);

/// A DFS code: an edge sequence encoding a connected labeled graph
/// (Figure 1 of the paper). Two graphs are isomorphic iff their *minimum*
/// DFS codes are equal, which makes the minimum code a canonical label.
class DfsCode {
 public:
  DfsCode() = default;

  void Append(const DfsEdge& e) { edges_.push_back(e); }
  void PopBack() { edges_.pop_back(); }
  void Clear() { edges_.clear(); }

  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }
  const DfsEdge& operator[](size_t i) const { return edges_[i]; }
  const std::vector<DfsEdge>& edges() const { return edges_; }

  /// Number of vertices of the encoded graph (max DFS index + 1).
  int VertexCount() const;

  /// Reconstructs the encoded pattern graph. Vertex v of the result carries
  /// the DFS index v, so MinimumDfsCode(ToGraph()) round-trips canonically.
  Graph ToGraph() const;

  /// DFS indices on the rightmost path, root first. Empty for empty codes.
  std::vector<int> RightmostPath() const;

  /// Lexicographic comparison using CompareDfsEdge per position; shorter
  /// prefix compares smaller.
  int Compare(const DfsCode& other) const;

  /// Stable 64-bit hash (FNV-1a over the tuple stream).
  uint64_t Hash() const;

  /// Rendering like "(0,1,a,x,b)(1,2,b,y,c)" with numeric labels.
  std::string ToString() const;

  friend bool operator==(const DfsCode& a, const DfsCode& b) {
    return a.edges_ == b.edges_;
  }
  friend bool operator<(const DfsCode& a, const DfsCode& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::vector<DfsEdge> edges_;
};

/// Hash functor for unordered containers keyed by DfsCode.
struct DfsCodeHash {
  size_t operator()(const DfsCode& code) const {
    return static_cast<size_t>(code.Hash());
  }
};

}  // namespace partminer

#endif  // PARTMINER_GRAPH_DFS_CODE_H_
