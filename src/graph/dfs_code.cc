#include "graph/dfs_code.h"

#include <algorithm>
#include <sstream>

namespace partminer {

namespace {

/// Three-way comparison of label triples.
int CompareLabels(const DfsEdge& a, const DfsEdge& b) {
  if (a.from_label != b.from_label) return a.from_label < b.from_label ? -1 : 1;
  if (a.edge_label != b.edge_label) return a.edge_label < b.edge_label ? -1 : 1;
  if (a.to_label != b.to_label) return a.to_label < b.to_label ? -1 : 1;
  return 0;
}

}  // namespace

int CompareDfsEdge(const DfsEdge& a, const DfsEdge& b) {
  const bool fa = a.IsForward();
  const bool fb = b.IsForward();
  if (a.from == b.from && a.to == b.to) {
    return CompareLabels(a, b);
  }
  // gSpan neighborhood order on edge positions.
  if (fa && fb) {
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
    // Same discovered vertex: the edge from the deeper vertex is smaller.
    return a.from > b.from ? -1 : 1;
  }
  if (!fa && !fb) {
    if (a.from != b.from) return a.from < b.from ? -1 : 1;
    return a.to < b.to ? -1 : 1;
  }
  if (!fa && fb) {
    // Backward (i1, j1) precedes forward (i2, j2) iff i1 < j2.
    return a.from < b.to ? -1 : 1;
  }
  // Forward a, backward b: a precedes iff j1 <= i2.
  return a.to <= b.from ? -1 : 1;
}

int DfsCode::VertexCount() const {
  int max_index = -1;
  for (const DfsEdge& e : edges_) {
    max_index = std::max(max_index, std::max(e.from, e.to));
  }
  return max_index + 1;
}

Graph DfsCode::ToGraph() const {
  Graph g(VertexCount());
  for (const DfsEdge& e : edges_) {
    if (e.IsForward()) {
      g.set_vertex_label(e.from, e.from_label);
      g.set_vertex_label(e.to, e.to_label);
    }
  }
  // A valid nonempty code starts with a forward edge, so all labels are set
  // by the loop above; backward edges only add adjacency.
  for (const DfsEdge& e : edges_) {
    g.AddEdge(e.from, e.to, e.edge_label);
  }
  return g;
}

std::vector<int> DfsCode::RightmostPath() const {
  if (edges_.empty()) return {};
  // parent[v] for each vertex discovered by a forward edge.
  const int n = VertexCount();
  std::vector<int> parent(n, -1);
  int rightmost = 0;
  for (const DfsEdge& e : edges_) {
    if (e.IsForward()) {
      parent[e.to] = e.from;
      rightmost = e.to;
    }
  }
  std::vector<int> path;
  for (int v = rightmost; v != -1; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

int DfsCode::Compare(const DfsCode& other) const {
  const size_t n = std::min(edges_.size(), other.edges_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = CompareDfsEdge(edges_[i], other.edges_[i]);
    if (c != 0) return c;
  }
  if (edges_.size() == other.edges_.size()) return 0;
  return edges_.size() < other.edges_.size() ? -1 : 1;
}

uint64_t DfsCode::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](int64_t v) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    h *= 0x100000001b3ULL;
  };
  for (const DfsEdge& e : edges_) {
    mix(e.from);
    mix(e.to);
    mix(e.from_label);
    mix(e.edge_label);
    mix(e.to_label);
  }
  return h;
}

std::string DfsCode::ToString() const {
  std::ostringstream out;
  for (const DfsEdge& e : edges_) {
    out << "(" << e.from << "," << e.to << "," << e.from_label << ","
        << e.edge_label << "," << e.to_label << ")";
  }
  return out.str();
}

}  // namespace partminer
