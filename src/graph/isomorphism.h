#ifndef PARTMINER_GRAPH_ISOMORPHISM_H_
#define PARTMINER_GRAPH_ISOMORPHISM_H_

#include <vector>

#include "graph/graph.h"
#include "graph/tid_set.h"

namespace partminer {

/// Subgraph-isomorphism tests (Section 3): an injective mapping of pattern
/// vertices to host vertices preserving vertex labels, and mapping every
/// pattern edge to a host edge with the same label (non-induced).
///
/// The matcher is a backtracking search with a connected, most-constrained-
/// first vertex ordering precomputed per pattern. For the pattern sizes that
/// arise in frequent-subgraph mining (a handful of edges) this is the
/// standard tool; it is what the merge-join's CheckFrequency step uses.
class SubgraphMatcher {
 public:
  /// Prepares the matching order for `pattern`. The pattern must be
  /// connected and non-empty. The pattern is copied; the matcher stays valid
  /// after the original is destroyed.
  explicit SubgraphMatcher(const Graph& pattern);

  /// True iff the pattern occurs in `host`.
  bool Matches(const Graph& host) const;

  /// Number of database graphs containing the pattern. When `tids` is
  /// non-null it receives the indices of the containing graphs.
  int CountSupport(const GraphDatabase& db, std::vector<int>* tids) const;
  int CountSupport(const GraphDatabase& db, TidSet* tids) const;

  /// Like CountSupport but only examines `candidates` (database indices);
  /// used with TID lists to avoid scanning graphs that cannot contain the
  /// pattern.
  int CountSupportAmong(const GraphDatabase& db,
                        const std::vector<int>& candidates,
                        std::vector<int>* tids) const;
  int CountSupportAmong(const GraphDatabase& db, const TidSet& candidates,
                        TidSet* tids) const;

 private:
  struct Constraint {
    int earlier_position;  // Position in the matching order.
    Label edge_label;
  };

  bool MatchFrom(const Graph& host, int position,
                 std::vector<VertexId>* assignment,
                 std::vector<bool>* used) const;

  Graph pattern_;
  std::vector<VertexId> order_;            // Pattern vertices, match order.
  std::vector<std::vector<Constraint>> constraints_;  // Per order position.
  std::vector<int> pattern_degree_;        // Per order position.
};

/// One-shot convenience wrapper around SubgraphMatcher.
bool ContainsSubgraph(const Graph& host, const Graph& pattern);

}  // namespace partminer

#endif  // PARTMINER_GRAPH_ISOMORPHISM_H_
