#ifndef PARTMINER_GRAPH_LABEL_INDEX_H_
#define PARTMINER_GRAPH_LABEL_INDEX_H_

#include <cstdint>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/tid_set.h"

namespace partminer {

/// Inverted label index of a graph database: vertex label → TidSet of the
/// graphs containing at least one vertex with that label, and normalized
/// edge triple (min endpoint label, edge label, max endpoint label) → TidSet
/// of the graphs containing at least one such edge. Built in one O(V+E)
/// sweep per database; GraphDatabase::label_index() builds it lazily and
/// caches it until the database is mutated.
///
/// CandidatesFor(pattern) intersects the sets of every distinct pattern
/// label and edge triple. Any graph hosting an embedding necessarily
/// contains all of them, so the intersection is a certified *superset* of
/// the true TIDs — support counting runs the backtracking isomorphism test
/// only inside it and never visits a graph the index has ruled out. This is
/// the cheap label pre-filter before exact matching (cf. Peregrine's
/// pattern-aware pruning); it cannot change which patterns are found, only
/// how many hopeless hosts get scanned.
class LabelIndex {
 public:
  explicit LabelIndex(const GraphDatabase& db);

  /// Superset of the indices of graphs that can contain `pattern`.
  TidSet CandidatesFor(const Graph& pattern) const;

  /// Size of the database the index was built over.
  int graph_count() const { return graph_count_; }

 private:
  // Edge triple packed into three 21-bit fields. Labels ≥ 2^21 alias, which
  // merely unions unrelated TidSets — the candidate set stays a superset and
  // only the pruning power degrades.
  static uint64_t TripleKey(Label a, Label elabel, Label b);

  std::unordered_map<Label, TidSet> vertex_tids_;
  std::unordered_map<uint64_t, TidSet> edge_tids_;
  int graph_count_ = 0;
};

/// Process-wide escape hatch for the index-based candidate pruning (the
/// CLI/bench flag --no-prune-index). Defaults to enabled. Counting paths
/// check it before consulting GraphDatabase::label_index(); output is
/// bit-identical either way.
bool LabelIndexEnabled();
void SetLabelIndexEnabled(bool enabled);

}  // namespace partminer

#endif  // PARTMINER_GRAPH_LABEL_INDEX_H_
