#include "graph/isomorphism.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

SubgraphMatcher::SubgraphMatcher(const Graph& pattern) : pattern_(pattern) {
  const int n = pattern_.VertexCount();
  PM_CHECK_GT(n, 0);

  // Connected matching order, most-constrained first: start from a vertex of
  // maximal degree, then repeatedly add the unvisited vertex with the most
  // already-ordered neighbors (ties: higher degree).
  std::vector<bool> placed(n, false);
  std::vector<int> connections(n, 0);
  order_.reserve(n);

  VertexId start = 0;
  for (VertexId v = 1; v < n; ++v) {
    if (pattern_.Degree(v) > pattern_.Degree(start)) start = v;
  }
  order_.push_back(start);
  placed[start] = true;
  for (const EdgeEntry& e : pattern_.adjacency(start)) ++connections[e.to];

  while (static_cast<int>(order_.size()) < n) {
    VertexId best = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == -1 || connections[v] > connections[best] ||
          (connections[v] == connections[best] &&
           pattern_.Degree(v) > pattern_.Degree(best))) {
        best = v;
      }
    }
    PM_CHECK_GT(connections[best], 0)
        << "SubgraphMatcher requires a connected pattern";
    order_.push_back(best);
    placed[best] = true;
    for (const EdgeEntry& e : pattern_.adjacency(best)) ++connections[e.to];
  }

  // Adjacency constraints to earlier positions, per position.
  std::vector<int> position_of(n, -1);
  for (int p = 0; p < n; ++p) position_of[order_[p]] = p;
  constraints_.resize(n);
  pattern_degree_.resize(n);
  for (int p = 0; p < n; ++p) {
    pattern_degree_[p] = pattern_.Degree(order_[p]);
    for (const EdgeEntry& e : pattern_.adjacency(order_[p])) {
      const int q = position_of[e.to];
      if (q < p) constraints_[p].push_back(Constraint{q, e.label});
    }
  }
}

bool SubgraphMatcher::MatchFrom(const Graph& host, int position,
                                std::vector<VertexId>* assignment,
                                std::vector<bool>* used) const {
  if (position == static_cast<int>(order_.size())) return true;

  const Label want_label = pattern_.vertex_label(order_[position]);
  const auto& cons = constraints_[position];

  auto try_vertex = [&](VertexId h) -> bool {
    if ((*used)[h]) return false;
    if (host.vertex_label(h) != want_label) return false;
    if (host.Degree(h) < pattern_degree_[position]) return false;
    for (const Constraint& c : cons) {
      if (host.EdgeLabelBetween(h, (*assignment)[c.earlier_position]) !=
          c.edge_label) {
        return false;
      }
    }
    (*assignment)[position] = h;
    (*used)[h] = true;
    if (MatchFrom(host, position + 1, assignment, used)) return true;
    (*used)[h] = false;
    return false;
  };

  if (cons.empty()) {
    // Only position 0 (connected order): try every host vertex.
    for (VertexId h = 0; h < host.VertexCount(); ++h) {
      if (try_vertex(h)) return true;
    }
    return false;
  }

  // Candidates are neighbors of the host vertex matched to the first
  // constraint; the edge-label check inside try_vertex re-verifies.
  const VertexId anchor = (*assignment)[cons[0].earlier_position];
  for (const EdgeEntry& e : host.adjacency(anchor)) {
    if (e.label != cons[0].edge_label) continue;
    if (try_vertex(e.to)) return true;
  }
  return false;
}

bool SubgraphMatcher::Matches(const Graph& host) const {
  PM_METRIC_COUNTER("iso.subgraph_tests")->Increment();
  if (host.VertexCount() < pattern_.VertexCount() ||
      host.EdgeCount() < pattern_.EdgeCount()) {
    return false;
  }
  std::vector<VertexId> assignment(order_.size(), -1);
  std::vector<bool> used(host.VertexCount(), false);
  return MatchFrom(host, 0, &assignment, &used);
}

int SubgraphMatcher::CountSupport(const GraphDatabase& db,
                                  std::vector<int>* tids) const {
  int support = 0;
  for (int i = 0; i < db.size(); ++i) {
    if (Matches(db.graph(i))) {
      ++support;
      if (tids != nullptr) tids->push_back(i);
    }
  }
  return support;
}

int SubgraphMatcher::CountSupportAmong(const GraphDatabase& db,
                                       const std::vector<int>& candidates,
                                       std::vector<int>* tids) const {
  int support = 0;
  for (const int i : candidates) {
    if (Matches(db.graph(i))) {
      ++support;
      if (tids != nullptr) tids->push_back(i);
    }
  }
  return support;
}

int SubgraphMatcher::CountSupport(const GraphDatabase& db,
                                  TidSet* tids) const {
  int support = 0;
  for (int i = 0; i < db.size(); ++i) {
    if (Matches(db.graph(i))) {
      ++support;
      if (tids != nullptr) tids->Add(i);
    }
  }
  return support;
}

int SubgraphMatcher::CountSupportAmong(const GraphDatabase& db,
                                       const TidSet& candidates,
                                       TidSet* tids) const {
  int support = 0;
  candidates.ForEach([&](int i) {
    if (Matches(db.graph(i))) {
      ++support;
      if (tids != nullptr) tids->Add(i);
    }
  });
  return support;
}

bool ContainsSubgraph(const Graph& host, const Graph& pattern) {
  return SubgraphMatcher(pattern).Matches(host);
}

}  // namespace partminer
