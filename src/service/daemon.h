#ifndef PARTMINER_SERVICE_DAEMON_H_
#define PARTMINER_SERVICE_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timing.h"
#include "service/json.h"
#include "service/session.h"

namespace partminer {
namespace service {

/// Client-side encoder for one edit, the exact inverse of the daemon's
/// request parser. Shared by loadgen, the fault sweep, and the protocol
/// tests so encoder and decoder stay adjacent.
Json EditToJson(const EditOp& op);

struct DaemonOptions {
  /// Backpressure bound: total edits sitting in the update queue (enqueued
  /// but not yet applied). An update that would push past the cap is
  /// rejected with an `overloaded` error instead of growing the queue.
  int queue_cap_edits = 4096;
  /// Coalescing bound: the batcher drains up to this many edits from the
  /// queue into one IncPartMiner round, amortizing the phase-A re-mine
  /// across every waiting client.
  int batch_max_edits = 256;
  /// Default snapshot path prefix for `snapshot` requests without `path`.
  std::string snapshot_prefix;
  /// Slow-request log threshold in milliseconds; 0 disables. A request whose
  /// HandleLine wall time exceeds this is logged at Warning and recorded as
  /// a kSlowRequest flight event.
  double slow_ms = 0;
};

/// The partminerd request engine: newline-delimited JSON in, one JSON
/// response line out per request (DESIGN.md section 12 specifies the
/// protocol). Transport-agnostic — HandleLine is the whole protocol, and
/// the stdio/unix-socket servers are thin line pumps around it, which is
/// also what makes the protocol table-testable in-process.
///
/// Threading: any number of threads may call HandleLine concurrently (one
/// per client connection). Queries run on the calling thread under the
/// session's shared lock; updates are enqueued into the bounded queue and
/// applied by the single internal batcher thread, which coalesces adjacent
/// batches up to batch_max_edits per IncPartMiner round.
class Daemon {
 public:
  Daemon(MinerSession* session, const DaemonOptions& options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Processes one request line, returning the response line (no trailing
  /// newline). Never throws and never aborts: malformed input produces a
  /// structured error response. `shutdown` is set when the request asked
  /// the daemon to stop.
  std::string HandleLine(const std::string& line, bool* shutdown);

  /// Serves one client over an iostream pair (--stdio mode, and the
  /// in-process golden tests). Returns on EOF or `shutdown`.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Unix-domain-socket server: accepts connections on `path` (unlinking
  /// any stale socket file first), one thread per connection, until a
  /// `shutdown` request or Stop(). Pending updates are drained before
  /// returning.
  Status ServeUnixSocket(const std::string& path);

  /// Asks the server loops to stop (thread-safe, idempotent).
  void Stop();

  /// Blocks until every update enqueued before the call has been applied
  /// (or dropped by a failed batch). Used by `sync` and by shutdown drain.
  void WaitQueueDrained();

  int queue_depth_edits() const;

 private:
  struct PendingBatch {
    uint64_t seq = 0;
    /// Lifecycle id of the request that enqueued this batch (flight events
    /// carry it so a slow round can be matched back to its admission).
    uint64_t request_id = 0;
    /// Started at admission; read at dequeue (queue wait) and after apply
    /// (whole update pipeline: queue wait + coalesce + phase A + phase B).
    Stopwatch queued;
    std::vector<EditOp> edits;
    /// Set for wait:true updates; fulfilled with the response fragment
    /// after the batch (coalesced with its neighbors) is applied.
    std::shared_ptr<std::promise<std::pair<Status, BatchResult>>> done;
  };

  void BatcherLoop();
  void ServeConnection(int fd);
  std::string HandleUpdate(const Json& request, const Json* id,
                           uint64_t request_id);
  std::string HandleQuery(const Json& request, const Json* id);
  /// Operator health summary: "starting" until the session is ready,
  /// "overloaded" at >= 80% queue occupancy, "degraded" (sticky) after a
  /// dropped batch or failed snapshot write, else "serving".
  std::string HealthState();

  MinerSession* session_;
  DaemonOptions options_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  /// Monotonic per-request id, assigned on entry to HandleLine; appears in
  /// trace spans, flight events and the slow-request log.
  std::atomic<uint64_t> next_request_id_{0};
  /// Sticky degraded flag (see HealthState).
  std::atomic<bool> degraded_{false};

  mutable std::mutex qmu_;
  std::condition_variable queue_cv_;    // Batcher wakeup.
  std::condition_variable drained_cv_;  // Sync / drain waiters.
  std::deque<PendingBatch> queue_;
  int queued_edits_ = 0;
  /// Highest queue occupancy seen (edits); exported as the
  /// service.queue_high_water gauge. high_water_logged_ is the occupancy at
  /// the last kQueueHighWater flight event — a new event fires only when
  /// the high water doubles, so a steadily climbing queue logs O(log n)
  /// events instead of one per enqueue.
  int high_water_ = 0;
  int high_water_logged_ = 0;
  uint64_t next_seq_ = 1;
  bool applying_ = false;
  bool stopping_ = false;

  std::thread batcher_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  int listen_fd_ = -1;
};

}  // namespace service
}  // namespace partminer

#endif  // PARTMINER_SERVICE_DAEMON_H_
