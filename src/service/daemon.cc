#include "service/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/timing.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/json.h"

namespace partminer {
namespace service {

namespace {

/// A request line larger than this is rejected outright — backpressure
/// applies to bytes too, not just queued edits.
constexpr size_t kMaxLineBytes = 4u << 20;

const char* ErrorCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "ok";
    case Status::Code::kInvalidArgument: return "invalid_argument";
    case Status::Code::kIoError: return "io_error";
    case Status::Code::kCorruption: return "corruption";
    case Status::Code::kNotFound: return "not_found";
    case Status::Code::kOutOfRange: return "out_of_range";
    case Status::Code::kResourceExhausted: return "resource_exhausted";
  }
  return "internal";
}

/// Response envelope: {"id":...,}"ok":bool, then "result" or "error".
/// Field order is fixed so the protocol golden tests can pin exact bytes.
std::string RenderResponse(const Json* id, Json result) {
  Json response = Json::Object();
  if (id != nullptr) response.Set("id", *id);
  response.Set("ok", Json::Bool(true));
  response.Set("result", std::move(result));
  return response.Dump();
}

std::string RenderError(const Json* id, const std::string& code,
                        const std::string& message) {
  Json error = Json::Object();
  error.Set("code", Json::Str(code));
  error.Set("message", Json::Str(message));
  Json response = Json::Object();
  if (id != nullptr) response.Set("id", *id);
  response.Set("ok", Json::Bool(false));
  response.Set("error", std::move(error));
  PM_METRIC_COUNTER("service.errors")->Increment();
  return response.Dump();
}

std::string RenderStatusError(const Json* id, const Status& status) {
  return RenderError(id, ErrorCodeName(status.code()), status.message());
}

/// Reads a required integer field that must fit in `int`.
Status GetIntField(const Json& object, const char* key, int* out) {
  const Json* field = object.Get(key);
  if (field == nullptr) {
    return Status::InvalidArgument(std::string("missing field '") + key + "'");
  }
  if (!field->is_int()) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be an integer");
  }
  const int64_t v = field->AsInt();
  if (v < INT32_MIN || v > INT32_MAX) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' out of range");
  }
  *out = static_cast<int>(v);
  return Status::Ok();
}

Status ParseEdit(const Json& item, int graph_count, EditOp* op) {
  if (!item.is_object()) {
    return Status::InvalidArgument("edit must be an object");
  }
  const Json* kind = item.Get("kind");
  if (kind == nullptr || !kind->is_string()) {
    return Status::InvalidArgument("edit missing string field 'kind'");
  }
  const std::string& name = kind->AsString();
  PARTMINER_RETURN_IF_ERROR(GetIntField(item, "graph", &op->graph));
  // The update model never adds or removes database graphs, so the range
  // check needs no lock: graph_count is fixed for the session's lifetime.
  if (op->graph < 0 || op->graph >= graph_count) {
    return Status::InvalidArgument("field 'graph' out of range [0, " +
                                   std::to_string(graph_count) + ")");
  }
  int u = 0, v = 0, label = 0;
  if (name == "relabel") {
    op->kind = UpdateKind::kRelabel;
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "vertex", &u));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "label", &label));
    op->u = u;
    op->label = label;
  } else if (name == "relabel_edge") {
    op->kind = UpdateKind::kRelabel;
    op->edge_target = true;
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "u", &u));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "v", &v));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "label", &label));
    op->u = u;
    op->v = v;
    op->label = label;
  } else if (name == "add_edge") {
    op->kind = UpdateKind::kAddEdge;
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "u", &u));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "v", &v));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "label", &label));
    op->u = u;
    op->v = v;
    op->label = label;
  } else if (name == "add_vertex") {
    op->kind = UpdateKind::kAddVertex;
    int vertex_label = 0, edge_label = 0;
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "attach", &u));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "vertex_label",
                                          &vertex_label));
    PARTMINER_RETURN_IF_ERROR(GetIntField(item, "edge_label", &edge_label));
    op->u = u;
    op->label = vertex_label;
    op->edge_label = edge_label;
  } else {
    return Status::InvalidArgument(
        "unknown edit kind '" + name +
        "' (want relabel|relabel_edge|add_edge|add_vertex)");
  }
  if (op->label < 0 || op->edge_label < 0) {
    return Status::InvalidArgument("labels must be non-negative");
  }
  return Status::Ok();
}

/// Interned per-verb latency histogram names. Any verb outside the protocol
/// maps onto one shared "unknown" histogram so hostile clients cannot mint
/// unbounded metric names, and the registry lookup never allocates.
const char* VerbLatencyMetric(const std::string& command) {
  if (command == "ping") return "service.verb.ping_ms";
  if (command == "update") return "service.verb.update_ms";
  if (command == "query") return "service.verb.query_ms";
  if (command == "snapshot") return "service.verb.snapshot_ms";
  if (command == "metrics") return "service.verb.metrics_ms";
  if (command == "sync") return "service.verb.sync_ms";
  if (command == "health") return "service.verb.health_ms";
  if (command == "dump") return "service.verb.dump_ms";
  if (command == "shutdown") return "service.verb.shutdown_ms";
  return "service.verb.unknown_ms";
}

Json BatchResultJson(const BatchResult& result) {
  Json out = Json::Object();
  out.Set("epoch", Json::Number(static_cast<int64_t>(result.epoch)));
  out.Set("applied", Json::Number(static_cast<int64_t>(result.applied)));
  out.Set("rejected", Json::Number(static_cast<int64_t>(result.rejected)));
  if (result.rejected > 0) {
    out.Set("first_rejection", Json::Str(result.first_rejection));
  }
  out.Set("patterns", Json::Number(static_cast<int64_t>(result.patterns)));
  out.Set("remined_units",
          Json::Number(static_cast<int64_t>(result.remined_units)));
  return out;
}

}  // namespace

Json EditToJson(const EditOp& op) {
  Json edit = Json::Object();
  switch (op.kind) {
    case UpdateKind::kRelabel:
      edit.Set("kind", Json::Str(op.edge_target ? "relabel_edge" : "relabel"));
      edit.Set("graph", Json::Number(static_cast<int64_t>(op.graph)));
      if (op.edge_target) {
        edit.Set("u", Json::Number(static_cast<int64_t>(op.u)));
        edit.Set("v", Json::Number(static_cast<int64_t>(op.v)));
      } else {
        edit.Set("vertex", Json::Number(static_cast<int64_t>(op.u)));
      }
      edit.Set("label", Json::Number(static_cast<int64_t>(op.label)));
      break;
    case UpdateKind::kAddEdge:
      edit.Set("kind", Json::Str("add_edge"));
      edit.Set("graph", Json::Number(static_cast<int64_t>(op.graph)));
      edit.Set("u", Json::Number(static_cast<int64_t>(op.u)));
      edit.Set("v", Json::Number(static_cast<int64_t>(op.v)));
      edit.Set("label", Json::Number(static_cast<int64_t>(op.label)));
      break;
    case UpdateKind::kAddVertex:
      edit.Set("kind", Json::Str("add_vertex"));
      edit.Set("graph", Json::Number(static_cast<int64_t>(op.graph)));
      edit.Set("attach", Json::Number(static_cast<int64_t>(op.u)));
      edit.Set("vertex_label", Json::Number(static_cast<int64_t>(op.label)));
      edit.Set("edge_label",
               Json::Number(static_cast<int64_t>(op.edge_label)));
      break;
  }
  return edit;
}

Daemon::Daemon(MinerSession* session, const DaemonOptions& options)
    : session_(session), options_(options) {
  PM_CHECK_GT(options_.queue_cap_edits, 0);
  PM_CHECK_GT(options_.batch_max_edits, 0);
  PM_METRIC_GAUGE("service.queue_cap")->Set(options_.queue_cap_edits);
  PM_METRIC_GAUGE("service.batch_max")->Set(options_.batch_max_edits);
  PM_METRIC_GAUGE("service.queue_depth")->Set(0);
  batcher_ = std::thread([this] { BatcherLoop(); });
}

Daemon::~Daemon() {
  Stop();
  if (batcher_.joinable()) batcher_.join();
}

void Daemon::BatcherLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(qmu_);
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // Drained: every acked edit was applied.
      continue;
    }
    // Coalesce adjacent batches up to batch_max_edits into one incremental
    // round. The first batch is always taken so an oversized single batch
    // still makes progress.
    std::vector<PendingBatch> taken;
    int edits = 0;
    while (!queue_.empty() &&
           (taken.empty() ||
            edits + static_cast<int>(queue_.front().edits.size()) <=
                options_.batch_max_edits)) {
      edits += static_cast<int>(queue_.front().edits.size());
      taken.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queued_edits_ -= edits;
    PM_METRIC_GAUGE("service.queue_depth")->Set(queued_edits_);
    applying_ = true;
    lock.unlock();

    // Queue wait ends at dequeue; the same stopwatch keeps running so the
    // post-apply reading is the whole update pipeline for that request.
    for (const PendingBatch& batch : taken) {
      PM_METRIC_HISTOGRAM("service.queue_wait_ms")
          ->Observe(batch.queued.ElapsedMillis());
    }
    Stopwatch coalesce_watch;
    std::vector<EditOp> combined;
    combined.reserve(edits);
    for (const PendingBatch& batch : taken) {
      combined.insert(combined.end(), batch.edits.begin(), batch.edits.end());
    }
    PM_METRIC_HISTOGRAM("service.coalesce_ms")
        ->Observe(coalesce_watch.ElapsedMillis());
    BatchResult result;
    Status status;
    {
      PM_TRACE_SPAN("batcher_round",
                    {{"edits", edits}, {"batches", taken.size()}});
      status = session_->ApplyBatch(combined, &result);
    }
    if (!status.ok()) {
      // Degrade, don't die: the batch is dropped, the failure is counted
      // and logged, waiters get the error, and the daemon keeps serving
      // (health reports "degraded" from here on — acked edits were lost).
      degraded_.store(true, std::memory_order_relaxed);
      PM_METRIC_COUNTER("service.batches_failed")->Increment();
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kBatchFailed,
          static_cast<int64_t>(taken.front().seq), edits,
          static_cast<int64_t>(taken.size()), status.message().c_str());
      PM_LOG(Warning) << "service: dropped batch of " << edits
                      << " edits: " << status.ToString();
    } else {
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kBatchApplied,
          static_cast<int64_t>(result.epoch), edits,
          static_cast<int64_t>(taken.size()));
    }
    PM_METRIC_COUNTER("service.batches_coalesced")
        ->Add(static_cast<int64_t>(taken.size()) - 1);
    for (PendingBatch& batch : taken) {
      PM_METRIC_HISTOGRAM("service.update_pipeline_ms")
          ->Observe(batch.queued.ElapsedMillis());
      if (batch.done) batch.done->set_value({status, result});
    }

    lock.lock();
    applying_ = false;
    const bool drained = queue_.empty();
    lock.unlock();
    if (drained) drained_cv_.notify_all();
  }
}

void Daemon::WaitQueueDrained() {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && !applying_; });
}

int Daemon::queue_depth_edits() const {
  std::lock_guard<std::mutex> lock(qmu_);
  return queued_edits_;
}

std::string Daemon::HandleLine(const std::string& line, bool* shutdown) {
  *shutdown = false;
  PM_METRIC_COUNTER("service.requests")->Increment();
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  Stopwatch watch;
  if (line.size() > kMaxLineBytes) {
    return RenderError(nullptr, "bad_request", "request line too large");
  }

  Json request;
  const Status parsed = Json::Parse(line, &request);
  if (!parsed.ok()) {
    return RenderError(nullptr, "bad_request", parsed.message());
  }
  if (!request.is_object()) {
    return RenderError(nullptr, "bad_request", "request must be an object");
  }
  const Json* id = request.Get("id");
  if (id != nullptr && !id->is_int() && !id->is_string()) {
    return RenderError(nullptr, "bad_request",
                       "field 'id' must be an integer or a string");
  }
  const Json* cmd = request.Get("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return RenderError(id, "bad_request", "missing string field 'cmd'");
  }
  const std::string& command = cmd->AsString();
  obs::TraceSpan request_span("request");
  request_span.AddArg({"verb", command});
  request_span.AddArg({"id", static_cast<int64_t>(request_id)});

  std::string response;
  if (command == "ping") {
    Json result = Json::Object();
    result.Set("epoch",
               Json::Number(static_cast<int64_t>(session_->epoch())));
    result.Set("graphs",
               Json::Number(static_cast<int64_t>(session_->graph_count())));
    result.Set("patterns",
               Json::Number(static_cast<int64_t>(session_->pattern_count())));
    result.Set("support", Json::Number(
                              static_cast<int64_t>(session_->resident_support())));
    result.Set("queue_depth",
               Json::Number(static_cast<int64_t>(queue_depth_edits())));
    response = RenderResponse(id, std::move(result));
  } else if (command == "update") {
    response = HandleUpdate(request, id, request_id);
  } else if (command == "query") {
    response = HandleQuery(request, id);
  } else if (command == "snapshot") {
    const Json* path = request.Get("path");
    std::string prefix = options_.snapshot_prefix;
    if (path != nullptr) {
      if (!path->is_string()) {
        return RenderError(id, "invalid_argument",
                           "field 'path' must be a string");
      }
      prefix = path->AsString();
    }
    if (prefix.empty()) {
      return RenderError(id, "invalid_argument",
                         "no 'path' given and the daemon has no "
                         "--snapshot-prefix");
    }
    SnapshotResult snapshot;
    const Status status = session_->Snapshot(prefix, &snapshot);
    if (!status.ok()) {
      // A snapshot that failed past argument validation lost durability the
      // operator asked for: go (stickily) degraded and leave a flight event.
      if (status.code() != Status::Code::kInvalidArgument) {
        degraded_.store(true, std::memory_order_relaxed);
        obs::FlightRecorder::Global().Record(
            obs::FlightEventType::kSnapshotFailed,
            static_cast<int64_t>(session_->epoch()), 0, 0,
            status.message().c_str());
      }
      response = RenderStatusError(id, status);
    } else {
      Json result = Json::Object();
      result.Set("epoch", Json::Number(static_cast<int64_t>(snapshot.epoch)));
      result.Set("db_path", Json::Str(snapshot.db_path));
      result.Set("state_path", Json::Str(snapshot.state_path));
      response = RenderResponse(id, std::move(result));
    }
  } else if (command == "metrics") {
    // The registry pretty-prints with newlines; reparse so the splice stays
    // a single line (the protocol's framing unit).
    Json registry;
    const Status parsed_registry =
        Json::Parse(obs::MetricRegistry::Global().ToJson(), &registry);
    Json result = Json::Object();
    if (parsed_registry.ok()) {
      result.Set("registry", std::move(registry));
    } else {
      result.Set("registry", Json::Null());
    }
    result.Set("queue_depth",
               Json::Number(static_cast<int64_t>(queue_depth_edits())));
    result.Set("epoch",
               Json::Number(static_cast<int64_t>(session_->epoch())));
    const int64_t uptime_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count();
    result.Set("uptime_ms", Json::Number(uptime_ms));
    result.Set("state", Json::Str(HealthState()));
    response = RenderResponse(id, std::move(result));
  } else if (command == "health") {
    Json result = Json::Object();
    result.Set("state", Json::Str(HealthState()));
    result.Set("epoch",
               Json::Number(static_cast<int64_t>(session_->epoch())));
    result.Set("queue_depth",
               Json::Number(static_cast<int64_t>(queue_depth_edits())));
    response = RenderResponse(id, std::move(result));
  } else if (command == "dump") {
    // Reparse for the same reason as `metrics`: the dump must splice into
    // the single-line response framing.
    Json events;
    const Status parsed_dump =
        Json::Parse(obs::FlightRecorder::Global().ToJson(), &events);
    if (!parsed_dump.ok()) {
      response = RenderError(id, "internal",
                             "flight recorder dump failed to parse");
    } else {
      response = RenderResponse(id, std::move(events));
    }
  } else if (command == "sync") {
    WaitQueueDrained();
    Json result = Json::Object();
    result.Set("epoch",
               Json::Number(static_cast<int64_t>(session_->epoch())));
    result.Set("digest", Json::Str(std::to_string(session_->digest())));
    response = RenderResponse(id, std::move(result));
  } else if (command == "shutdown") {
    *shutdown = true;
    Json result = Json::Object();
    result.Set("stopping", Json::Bool(true));
    response = RenderResponse(id, std::move(result));
  } else {
    response = RenderError(id, "unknown_command",
                           "unknown command '" + command + "'");
  }

  const double elapsed_ms = watch.ElapsedMillis();
  obs::MetricRegistry::Global()
      .GetHistogram("service.request_ms")
      ->Observe(elapsed_ms);
  // Note: per-verb handles cannot go through PM_METRIC_HISTOGRAM — the
  // macro's static handle would pin whichever verb arrived first.
  obs::MetricRegistry::Global()
      .GetHistogram(VerbLatencyMetric(command))
      ->Observe(elapsed_ms);
  if (options_.slow_ms > 0 && elapsed_ms > options_.slow_ms) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kSlowRequest,
        static_cast<int64_t>(request_id),
        static_cast<int64_t>(elapsed_ms * 1e3), 0, command.c_str());
    PM_LOG(Warning) << "service: slow request id=" << request_id
                    << " verb=" << command << " took " << elapsed_ms
                    << " ms (threshold " << options_.slow_ms << " ms)";
  }
  return response;
}

std::string Daemon::HealthState() {
  if (!session_->ready()) return "starting";
  const int depth = queue_depth_edits();
  if (depth * 5 >= options_.queue_cap_edits * 4) return "overloaded";
  if (degraded_.load(std::memory_order_relaxed)) return "degraded";
  return "serving";
}

std::string Daemon::HandleUpdate(const Json& request, const Json* id,
                                 uint64_t request_id) {
  const Json* edits_field = request.Get("edits");
  if (edits_field == nullptr || !edits_field->is_array()) {
    return RenderError(id, "invalid_argument",
                       "update requires an array field 'edits'");
  }
  if (edits_field->items().empty()) {
    return RenderError(id, "invalid_argument", "'edits' must be non-empty");
  }
  const Json* wait_field = request.Get("wait");
  if (wait_field != nullptr && !wait_field->is_bool()) {
    return RenderError(id, "invalid_argument", "field 'wait' must be a bool");
  }
  const bool wait = wait_field != nullptr && wait_field->AsBool();

  const int graph_count = session_->graph_count();
  std::vector<EditOp> edits;
  edits.reserve(edits_field->items().size());
  for (size_t i = 0; i < edits_field->items().size(); ++i) {
    EditOp op;
    const Status status = ParseEdit(edits_field->items()[i], graph_count, &op);
    if (!status.ok()) {
      return RenderStatusError(
          id, status.WithContext("edits[" + std::to_string(i) + "]"));
    }
    edits.push_back(op);
  }

  PendingBatch batch;
  batch.edits = std::move(edits);
  std::future<std::pair<Status, BatchResult>> done;
  if (wait) {
    batch.done =
        std::make_shared<std::promise<std::pair<Status, BatchResult>>>();
    done = batch.done->get_future();
  }

  uint64_t seq = 0;
  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (stopping_) {
      return RenderError(id, "unavailable", "daemon is shutting down");
    }
    const int incoming = static_cast<int>(batch.edits.size());
    if (queued_edits_ + incoming > options_.queue_cap_edits) {
      PM_METRIC_COUNTER("service.overloaded")->Increment();
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kRequestRejected,
          static_cast<int64_t>(request_id), incoming, queued_edits_,
          "overloaded");
      return RenderError(
          id, "overloaded",
          "update queue full (" + std::to_string(queued_edits_) + " of " +
              std::to_string(options_.queue_cap_edits) +
              " edits pending); retry later");
    }
    seq = next_seq_++;
    batch.seq = seq;
    batch.request_id = request_id;
    batch.queued.Restart();
    queued_edits_ += incoming;
    depth = queued_edits_;
    queue_.push_back(std::move(batch));
    PM_METRIC_GAUGE("service.queue_depth")->Set(queued_edits_);
    if (queued_edits_ > high_water_) {
      high_water_ = queued_edits_;
      PM_METRIC_GAUGE("service.queue_high_water")->Set(high_water_);
      // Log a flight event only when the high water doubles, so a climbing
      // queue leaves O(log cap) events rather than one per admission.
      if (high_water_logged_ == 0 || high_water_ >= 2 * high_water_logged_) {
        high_water_logged_ = high_water_;
        obs::FlightRecorder::Global().Record(
            obs::FlightEventType::kQueueHighWater, high_water_,
            options_.queue_cap_edits, 0);
      }
    }
  }
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kRequestAdmitted,
      static_cast<int64_t>(request_id), static_cast<int64_t>(seq), depth);
  queue_cv_.notify_one();

  if (!wait) {
    Json result = Json::Object();
    result.Set("queued", Json::Bool(true));
    result.Set("seq", Json::Number(static_cast<int64_t>(seq)));
    result.Set("queue_depth", Json::Number(static_cast<int64_t>(depth)));
    return RenderResponse(id, std::move(result));
  }
  const std::pair<Status, BatchResult> applied = done.get();
  if (!applied.first.ok()) return RenderStatusError(id, applied.first);
  // Note: counts describe the coalesced round this batch was applied in.
  return RenderResponse(id, BatchResultJson(applied.second));
}

std::string Daemon::HandleQuery(const Json& request, const Json* id) {
  QueryRequest query;
  const Json* support = request.Get("support");
  if (support != nullptr) {
    if (!support->is_int() || support->AsInt() < 0 ||
        support->AsInt() > INT32_MAX) {
      return RenderError(id, "invalid_argument",
                         "field 'support' must be a non-negative integer");
    }
    query.support = static_cast<int>(support->AsInt());
  }
  const Json* limit = request.Get("limit");
  if (limit != nullptr) {
    if (!limit->is_int() || limit->AsInt() < -1 || limit->AsInt() > 1000000) {
      return RenderError(id, "invalid_argument",
                         "field 'limit' must be an integer in [-1, 1000000]");
    }
    query.limit = static_cast<int>(limit->AsInt());
  }
  const Json* pattern = request.Get("pattern");
  if (pattern != nullptr) {
    if (!pattern->is_string()) {
      return RenderError(id, "invalid_argument",
                         "field 'pattern' must be a gSpan-format string");
    }
    query.pattern_text = pattern->AsString();
  }

  QueryReply reply;
  const Status status = session_->Query(query, &reply);
  if (!status.ok()) return RenderStatusError(id, status);

  Json result = Json::Object();
  result.Set("epoch", Json::Number(static_cast<int64_t>(reply.epoch)));
  // Digests are 64-bit; JSON numbers are doubles, so ship them as strings.
  result.Set("digest", Json::Str(std::to_string(reply.digest)));
  result.Set("support", Json::Number(static_cast<int64_t>(reply.support)));
  result.Set("count", Json::Number(static_cast<int64_t>(reply.count)));
  if (query.limit != 0) {
    Json patterns = Json::Array();
    for (const auto& [code, pattern_support] : reply.patterns) {
      Json entry = Json::Object();
      entry.Set("code", Json::Str(code));
      entry.Set("support",
                Json::Number(static_cast<int64_t>(pattern_support)));
      patterns.Append(std::move(entry));
    }
    result.Set("patterns", std::move(patterns));
  }
  if (reply.has_containment) {
    result.Set("contained", Json::Bool(reply.contained));
    if (reply.contained) {
      result.Set("pattern_support",
                 Json::Number(static_cast<int64_t>(reply.pattern_support)));
    }
  }
  return RenderResponse(id, std::move(result));
}

void Daemon::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    bool shutdown = false;
    const std::string response = HandleLine(line, &shutdown);
    Stopwatch reply_watch;
    out << response << "\n";
    out.flush();
    PM_METRIC_HISTOGRAM("service.reply_write_ms")
        ->Observe(reply_watch.ElapsedMillis());
    if (shutdown) {
      Stop();
      WaitQueueDrained();
      return;
    }
  }
}

void Daemon::Stop() {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    first = !stopping_;
    stopping_ = true;
  }
  if (first) {
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kShutdown);
  }
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Daemon::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      bool shutdown = false;
      std::string response = HandleLine(line, &shutdown);
      response.push_back('\n');
      Stopwatch reply_watch;
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t n = ::send(fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return;
        sent += static_cast<size_t>(n);
      }
      PM_METRIC_HISTOGRAM("service.reply_write_ms")
          ->Observe(reply_watch.ElapsedMillis());
      if (shutdown) {
        Stop();
        return;
      }
    }
    if (buffer.size() > kMaxLineBytes) {
      bool ignored = false;
      std::string response =
          HandleLine(std::string(kMaxLineBytes + 1, ' '), &ignored);
      response.push_back('\n');
      (void)::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
      return;
    }
    // Socket-read segment: includes blocking for the client's next byte,
    // so under a closed-loop client this is dominated by think time.
    Stopwatch read_watch;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;
    PM_METRIC_HISTOGRAM("service.sock_read_ms")
        ->Observe(read_watch.ElapsedMillis());
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

Status Daemon::ServeUnixSocket(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IoError("listen " + path + ": " + std::strerror(errno));
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    listen_fd_ = fd;
  }

  std::vector<std::thread> connections;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(qmu_);
      if (stopping_) break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(conn);
    }
    PM_METRIC_COUNTER("service.connections")->Increment();
    connections.emplace_back([this, conn] { ServeConnection(conn); });
  }

  // Shutdown: every acked update is applied before the daemon exits.
  WaitQueueDrained();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int conn : conn_fds_) ::shutdown(conn, SHUT_RDWR);
  }
  for (std::thread& t : connections) t.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int conn : conn_fds_) ::close(conn);
    conn_fds_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path.c_str());
  return Status::Ok();
}

}  // namespace service
}  // namespace partminer
