#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace partminer {
namespace service {

namespace {

/// Hard recursion bound: a hostile client sending "[[[[[..." must get an
/// error, not a stack overflow. 64 is far beyond any legitimate request.
constexpr int kMaxDepth = 64;

struct Parser {
  const char* p;
  const char* end;
  const char* begin;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        "json parse error at byte " + std::to_string(p - begin) + ": " + what);
  }

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end - p) < n || std::strncmp(p, lit, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  Status ParseString(std::string* out) {
    if (p >= end || *p != '"') return Error("expected '\"'");
    ++p;
    out->clear();
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return Status::Ok();
      }
      if (c == '\\') {
        ++p;
        if (p >= end) break;
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end - p < 5) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = p[i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            p += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences; the protocol never needs
            // astral characters to round-trip exactly).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("bad escape character");
        }
        ++p;
        continue;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      out->push_back(static_cast<char>(c));
      ++p;
    }
    return Error("unterminated string");
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (p >= end) return Error("unexpected end of input");
    switch (*p) {
      case 'n':
        if (!Literal("null")) return Error("expected 'null'");
        *out = Json::Null();
        return Status::Ok();
      case 't':
        if (!Literal("true")) return Error("expected 'true'");
        *out = Json::Bool(true);
        return Status::Ok();
      case 'f':
        if (!Literal("false")) return Error("expected 'false'");
        *out = Json::Bool(false);
        return Status::Ok();
      case '"': {
        std::string s;
        PARTMINER_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::Str(std::move(s));
        return Status::Ok();
      }
      case '[': {
        ++p;
        Json array = Json::Array();
        SkipWs();
        if (p < end && *p == ']') {
          ++p;
          *out = std::move(array);
          return Status::Ok();
        }
        for (;;) {
          Json item;
          PARTMINER_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
          array.Append(std::move(item));
          SkipWs();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            *out = std::move(array);
            return Status::Ok();
          }
          return Error("expected ',' or ']' in array");
        }
      }
      case '{': {
        ++p;
        Json object = Json::Object();
        SkipWs();
        if (p < end && *p == '}') {
          ++p;
          *out = std::move(object);
          return Status::Ok();
        }
        for (;;) {
          SkipWs();
          std::string key;
          PARTMINER_RETURN_IF_ERROR(ParseString(&key));
          SkipWs();
          if (p >= end || *p != ':') return Error("expected ':' in object");
          ++p;
          Json value;
          PARTMINER_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
          object.Set(key, std::move(value));
          SkipWs();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            *out = std::move(object);
            return Status::Ok();
          }
          return Error("expected ',' or '}' in object");
        }
      }
      default: {
        // Number.
        const char* start = p;
        if (p < end && *p == '-') ++p;
        const char* digits_start = p;
        while (p < end && *p >= '0' && *p <= '9') ++p;
        if (p == digits_start) return Error("expected a value");
        bool integral = true;
        if (p < end && *p == '.') {
          integral = false;
          ++p;
          const char* frac_start = p;
          while (p < end && *p >= '0' && *p <= '9') ++p;
          if (p == frac_start) return Error("digits required after '.'");
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
          integral = false;
          ++p;
          if (p < end && (*p == '+' || *p == '-')) ++p;
          const char* exp_start = p;
          while (p < end && *p >= '0' && *p <= '9') ++p;
          if (p == exp_start) return Error("digits required in exponent");
        }
        const std::string token(start, p);
        errno = 0;
        char* parse_end = nullptr;
        const double value = std::strtod(token.c_str(), &parse_end);
        if (errno != 0 || parse_end != token.c_str() + token.size()) {
          return Error("bad number '" + token + "'");
        }
        if (integral && value >= -9.2e18 && value <= 9.2e18) {
          *out = Json::Number(static_cast<int64_t>(value));
        } else {
          *out = Json::Number(value);
        }
        return Status::Ok();
      }
    }
  }
};

}  // namespace

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber: {
      if (is_int_) {
        out->append(std::to_string(int_));
        return;
      }
      if (!std::isfinite(number_)) {
        out->append("null");
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      // Shortest round-trip: prefer %g precisions that re-parse exactly.
      for (int precision = 1; precision <= 16; ++precision) {
        char trial[32];
        std::snprintf(trial, sizeof(trial), "%.*g", precision, number_);
        if (std::strtod(trial, nullptr) == number_) {
          out->append(trial);
          return;
        }
      }
      out->append(buf);
      return;
    }
    case Type::kString:
      if (raw_) {
        out->append(string_);
      } else {
        AppendJsonString(string_, out);
      }
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : fields_) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(key, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Status Json::Parse(const std::string& text, Json* out) {
  Parser parser{text.data(), text.data() + text.size(), text.data()};
  PARTMINER_RETURN_IF_ERROR(parser.ParseValue(out, 0));
  parser.SkipWs();
  if (parser.p != parser.end) {
    return parser.Error("trailing characters after value");
  }
  return Status::Ok();
}

}  // namespace service
}  // namespace partminer
