#ifndef PARTMINER_SERVICE_CLIENT_H_
#define PARTMINER_SERVICE_CLIENT_H_

#include <string>

namespace partminer {
namespace service {

/// One blocking unix-socket client connection speaking the daemon's
/// newline-delimited JSON protocol: send one request line, read one
/// response line. Shared by loadgen's closed-loop workers and pmtop's
/// polling loop so transport framing lives in exactly one place.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to the AF_UNIX stream socket at `path`. False on failure.
  bool Connect(const std::string& path);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `line` + '\n' and reads one response line (without the
  /// terminator). False on any I/O failure; the connection is then dead.
  bool RoundTrip(const std::string& line, std::string* response);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace service
}  // namespace partminer

#endif  // PARTMINER_SERVICE_CLIENT_H_
