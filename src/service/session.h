#ifndef PARTMINER_SERVICE_SESSION_H_
#define PARTMINER_SERVICE_SESSION_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/edit_stream.h"
#include "graph/graph.h"
#include "storage/fault_injector.h"

namespace partminer {
namespace service {

/// Order-independent identity of a pattern set: FNV-1a over the sorted
/// (canonical code, support) pairs. Two states with the same digest mined
/// the same patterns at the same supports — the currency of the recovery
/// and concurrency tests, and of the `digest` protocol field.
uint64_t PatternSetDigest(const PatternSet& patterns);

struct SessionOptions {
  PartMinerOptions miner;
  /// Label-space hint recorded in snapshots and echoed by `info`; edits may
  /// exceed it (the paper's "existing or new labels").
  int num_labels = 20;
};

/// Result of one applied update batch.
struct BatchResult {
  uint64_t epoch = 0;  // Epoch after this batch.
  int applied = 0;
  int rejected = 0;
  std::string first_rejection;
  int remined_units = 0;
  int patterns = 0;
  double apply_seconds = 0;
  /// Lifecycle breakdown (DESIGN.md section 13): phase B is applying the
  /// edits to the resident database; phase A is the incremental re-mine
  /// round (routing, unit re-mines, merge, verify, digest). Together they
  /// tile apply_seconds.
  double phase_a_seconds = 0;
  double phase_b_seconds = 0;
};

struct QueryRequest {
  /// Absolute support threshold; 0 uses the session's resident support.
  /// Values below the resident support are OutOfRange (the resident state
  /// only knows patterns at or above it).
  int support = 0;
  /// Number of patterns to return: 0 = count + digest only, -1 = all,
  /// n > 0 = the n highest-support patterns (ties by code).
  int limit = 0;
  /// Optional containment probe: a single connected graph in gSpan text
  /// format. Frequency of that exact pattern is decided against the
  /// resident verified set.
  std::string pattern_text;
};

struct QueryReply {
  uint64_t epoch = 0;
  uint64_t digest = 0;  // Digest of the full resident pattern set.
  int support = 0;      // Threshold the reply was evaluated at.
  int count = 0;        // Patterns frequent at `support`.
  /// (canonical code string, support), at most `limit` entries.
  std::vector<std::pair<std::string, int>> patterns;
  bool has_containment = false;
  bool contained = false;
  int pattern_support = 0;  // Exact support when contained.
};

struct SnapshotResult {
  uint64_t epoch = 0;
  std::string db_path;
  std::string state_path;
};

/// The daemon's resident mining state: one database + PartMiner partition
/// kept in memory across requests, updated in place by IncPartMiner so the
/// incremental machinery finally serves more than one request per process.
///
/// Concurrency contract (enforced with one reader/writer lock):
///  - ApplyBatch takes the lock exclusively; there is exactly one writer
///    (the daemon's batcher thread), so batches serialize into a linear
///    epoch history 1, 2, 3, ...
///  - Query and Snapshot take it shared: any number of concurrent readers
///    observe a consistent epoch — never a half-applied batch.
///  - Every epoch's pattern-set digest (FNV-1a over sorted code/support
///    pairs) is retained; DigestAt lets tests prove that a concurrent
///    query's (epoch, digest) pair matches the state the batcher actually
///    produced at that epoch.
///
/// Degrade-don't-die: every failure path (invalid edits, injected storage
/// faults on snapshot I/O, admission failure) returns a Status that the
/// daemon maps to a structured error response. Nothing here aborts the
/// process, and a failed operation leaves the resident state untouched.
class MinerSession {
 public:
  explicit MinerSession(const SessionOptions& options);
  ~MinerSession();

  MinerSession(const MinerSession&) = delete;
  MinerSession& operator=(const MinerSession&) = delete;

  /// Mines `db` from scratch and becomes ready (epoch 0).
  Status Init(GraphDatabase db);

  /// Restores database + miner state from a Snapshot() pair. The restored
  /// session restarts its epoch counter at 0 (epochs are session-local;
  /// pattern-set digests, not epoch numbers, are what survive restarts).
  Status InitFromSnapshot(const std::string& db_path,
                          const std::string& state_path);

  /// Applies one edit batch and incrementally re-mines. Exclusive.
  Status ApplyBatch(const std::vector<EditOp>& edits, BatchResult* result);

  /// Frequent-pattern retrieval / containment at a given support. Shared.
  Status Query(const QueryRequest& request, QueryReply* reply);

  /// Writes `<prefix>.db.lg` + `<prefix>.state` (state_io v2, checksummed).
  /// Shared — snapshots run concurrently with queries.
  Status Snapshot(const std::string& prefix, SnapshotResult* result);

  bool ready() const;
  uint64_t epoch() const;
  uint64_t digest() const;
  /// Digest recorded when `epoch` was produced, or 0 when unknown.
  uint64_t DigestAt(uint64_t epoch) const;
  int resident_support() const;
  int graph_count() const;
  int pattern_count() const;
  const SessionOptions& options() const { return options_; }

  /// Testing/fuzzing hook: storage faults for the *resident* paths. The
  /// injector is consulted on batch admission (alloc), snapshot writes
  /// (write) and snapshot restores (read); an armed fault fails the request
  /// with a clean Status and leaves the session serving.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// In-process copy of the resident verified pattern set (tests diff it
  /// against a from-scratch oracle). Shared lock.
  PatternSet VerifiedPatterns() const;

 private:
  Status CheckReadyLocked() const;
  void RecordEpochLocked();

  SessionOptions options_;
  FaultInjector* injector_ = nullptr;

  mutable std::shared_mutex mu_;
  bool ready_ = false;
  uint64_t epoch_ = 0;
  uint64_t digest_ = 0;
  GraphDatabase db_;
  std::unique_ptr<PartMiner> miner_;
  IncPartMiner inc_;
  std::unordered_map<uint64_t, uint64_t> epoch_digests_;
};

}  // namespace service
}  // namespace partminer

#endif  // PARTMINER_SERVICE_SESSION_H_
