#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace partminer {
namespace service {

bool LineClient::Connect(const std::string& path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    Close();
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  return true;
}

void LineClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool LineClient::RoundTrip(const std::string& line, std::string* response) {
  if (fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  *response = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return true;
}

}  // namespace service
}  // namespace partminer
