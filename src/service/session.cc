#include "service/session.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "common/timing.h"
#include "core/state_io.h"
#include "graph/canonical.h"
#include "graph/graph_io.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace partminer {
namespace service {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(uint64_t* h, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

/// Every injected fault leaves a flight-recorder event before the Status
/// surfaces — the post-mortem trail a degraded fault-injected run is judged
/// by (and what the fault-sweep asserts on).
Status RecordInjectedFault(FaultInjector::Op op, const std::string& context) {
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kFaultInjected, 0, 0, 0,
      (std::string(FaultInjector::OpName(op)) + " " + context).c_str());
  return FaultInjector::InjectedFault(op, context);
}

}  // namespace

MinerSession::MinerSession(const SessionOptions& options)
    : options_(options) {}

MinerSession::~MinerSession() = default;

uint64_t PatternSetDigest(const PatternSet& patterns) {
  std::vector<std::pair<std::string, int>> entries;
  entries.reserve(patterns.size());
  for (const PatternInfo& p : patterns.patterns()) {
    entries.emplace_back(p.code.ToString(), p.support);
  }
  std::sort(entries.begin(), entries.end());
  uint64_t h = kFnvOffset;
  for (const auto& [code, support] : entries) {
    FnvMix(&h, code.data(), code.size());
    FnvMix(&h, &support, sizeof(support));
  }
  return h;
}

Status MinerSession::CheckReadyLocked() const {
  if (!ready_) return Status::InvalidArgument("session not initialized");
  return Status::Ok();
}

void MinerSession::RecordEpochLocked() {
  digest_ = PatternSetDigest(miner_->verified());
  epoch_digests_[epoch_] = digest_;
  PM_METRIC_GAUGE("service.epoch")->Set(static_cast<int64_t>(epoch_));
  PM_METRIC_GAUGE("service.patterns")->Set(miner_->verified().size());
}

Status MinerSession::Init(GraphDatabase db) {
  std::unique_lock lock(mu_);
  db_ = std::move(db);
  if (db_.empty()) return Status::InvalidArgument("empty database");
  miner_ = std::make_unique<PartMiner>(options_.miner);
  miner_->Mine(db_);
  epoch_ = 0;
  ready_ = true;
  epoch_digests_.clear();
  RecordEpochLocked();
  return Status::Ok();
}

Status MinerSession::InitFromSnapshot(const std::string& db_path,
                                      const std::string& state_path) {
  std::unique_lock lock(mu_);
  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultInjector::Op::kRead)) {
    return RecordInjectedFault(FaultInjector::Op::kRead,
                               "reading snapshot " + db_path);
  }
  GraphDatabase db;
  PARTMINER_RETURN_IF_ERROR_CTX(ReadGraphDatabaseFile(db_path, &db),
                                "restoring snapshot database");
  if (db.empty()) return Status::Corruption("snapshot database is empty");
  auto miner = std::make_unique<PartMiner>(options_.miner);
  PARTMINER_RETURN_IF_ERROR_CTX(LoadMinerStateFile(state_path, miner.get()),
                                "restoring miner state");
  // Only adopt the new state once both halves restored; a failed restore
  // leaves any previous resident state serving.
  db_ = std::move(db);
  miner_ = std::move(miner);
  epoch_ = 0;
  ready_ = true;
  epoch_digests_.clear();
  RecordEpochLocked();
  return Status::Ok();
}

Status MinerSession::ApplyBatch(const std::vector<EditOp>& edits,
                                BatchResult* result) {
  Stopwatch watch;
  std::unique_lock lock(mu_);
  PARTMINER_RETURN_IF_ERROR(CheckReadyLocked());
  if (edits.empty()) return Status::InvalidArgument("empty edit batch");
  // Admission: an injected alloc fault models the arena/queue memory the
  // batch would pin during re-mining. Nothing has mutated yet, so failing
  // here is free.
  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultInjector::Op::kAlloc)) {
    return RecordInjectedFault(FaultInjector::Op::kAlloc,
                               "admitting update batch");
  }

  // Phase B: apply the edits to the resident database.
  Stopwatch phase_watch;
  UpdateLog log;
  EditBatchOutcome outcome;
  {
    PM_TRACE_SPAN("phase_b_apply", {{"edits", edits.size()}});
    outcome = ApplyEditBatch(&db_, edits, &log);
  }
  result->phase_b_seconds = phase_watch.ElapsedSeconds();
  result->applied = outcome.applied;
  result->rejected = outcome.rejected;
  result->first_rejection = outcome.first_rejection;
  PM_METRIC_COUNTER("service.edits_applied")->Add(outcome.applied);
  PM_METRIC_COUNTER("service.edits_rejected")->Add(outcome.rejected);

  // Phase A: the incremental re-mine round (routing, unit re-mines, merge,
  // verify) plus the epoch digest that publishes it.
  phase_watch.Restart();
  if (outcome.applied > 0) {
    PM_TRACE_SPAN("phase_a_remine", {{"applied", outcome.applied}});
    const IncPartMinerResult inc = inc_.Update(miner_.get(), db_, log);
    result->remined_units = inc.remined_units.Count();
    ++epoch_;
    RecordEpochLocked();
  }
  result->phase_a_seconds = phase_watch.ElapsedSeconds();
  result->epoch = epoch_;
  result->patterns = miner_->verified().size();
  result->apply_seconds = watch.ElapsedSeconds();
  PM_METRIC_COUNTER("service.batches_applied")->Increment();
  obs::MetricRegistry::Global()
      .GetHistogram("service.batch_edits", obs::Histogram::DefaultSizeBounds())
      ->Observe(static_cast<double>(edits.size()));
  PM_METRIC_HISTOGRAM("service.batch_apply_ms")
      ->Observe(result->apply_seconds * 1e3);
  PM_METRIC_HISTOGRAM("service.phase_a_ms")
      ->Observe(result->phase_a_seconds * 1e3);
  PM_METRIC_HISTOGRAM("service.phase_b_ms")
      ->Observe(result->phase_b_seconds * 1e3);
  return Status::Ok();
}

Status MinerSession::Query(const QueryRequest& request, QueryReply* reply) {
  std::shared_lock lock(mu_);
  PARTMINER_RETURN_IF_ERROR(CheckReadyLocked());
  const int resident = miner_->root_support();
  const int support = request.support == 0 ? resident : request.support;
  if (support < resident) {
    return Status::OutOfRange(
        "support " + std::to_string(support) +
        " below the resident threshold " + std::to_string(resident) +
        " (the resident state only knows patterns at or above it)");
  }
  reply->epoch = epoch_;
  reply->digest = digest_;
  reply->support = support;

  const PatternSet& verified = miner_->verified();
  std::vector<const PatternInfo*> frequent;
  for (const PatternInfo& p : verified.patterns()) {
    if (p.support >= support) frequent.push_back(&p);
  }
  reply->count = static_cast<int>(frequent.size());

  if (request.limit != 0) {
    std::sort(frequent.begin(), frequent.end(),
              [](const PatternInfo* a, const PatternInfo* b) {
                if (a->support != b->support) return a->support > b->support;
                return a->code.Compare(b->code) < 0;
              });
    const size_t take = request.limit < 0
                            ? frequent.size()
                            : std::min(frequent.size(),
                                       static_cast<size_t>(request.limit));
    reply->patterns.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      reply->patterns.emplace_back(frequent[i]->code.ToString(),
                                   frequent[i]->support);
    }
  }

  if (!request.pattern_text.empty()) {
    reply->has_containment = true;
    std::istringstream in(request.pattern_text);
    GraphDatabase pattern_db;
    PARTMINER_RETURN_IF_ERROR_CTX(ReadGraphDatabase(in, &pattern_db),
                                  "parsing containment pattern");
    if (pattern_db.size() != 1) {
      return Status::InvalidArgument(
          "containment pattern must be exactly one graph, got " +
          std::to_string(pattern_db.size()));
    }
    const Graph& pattern = pattern_db.graph(0);
    if (pattern.EdgeCount() < 1 || !pattern.IsConnected()) {
      return Status::InvalidArgument(
          "containment pattern must be connected with at least one edge");
    }
    const DfsCode code = MinimumDfsCode(pattern);
    const PatternInfo* found = verified.Find(code);
    // Absent from the verified set means support < resident <= `support`,
    // so "not frequent at the queried support" is exact either way.
    reply->contained = found != nullptr && found->support >= support;
    reply->pattern_support = found != nullptr ? found->support : 0;
  }
  PM_METRIC_COUNTER("service.queries")->Increment();
  return Status::Ok();
}

Status MinerSession::Snapshot(const std::string& prefix,
                              SnapshotResult* result) {
  std::shared_lock lock(mu_);
  PARTMINER_RETURN_IF_ERROR(CheckReadyLocked());
  if (prefix.empty()) return Status::InvalidArgument("empty snapshot prefix");
  result->epoch = epoch_;
  result->db_path = prefix + ".db.lg";
  result->state_path = prefix + ".state";
  // One injector consultation per file write, mirroring the DiskManager
  // hook: a scripted write fault fails this snapshot cleanly and the next
  // attempt (next schedule point) succeeds.
  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultInjector::Op::kWrite)) {
    return RecordInjectedFault(FaultInjector::Op::kWrite,
                               "writing " + result->db_path);
  }
  PARTMINER_RETURN_IF_ERROR_CTX(WriteGraphDatabaseFile(db_, result->db_path),
                                "snapshotting database");
  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultInjector::Op::kWrite)) {
    return RecordInjectedFault(FaultInjector::Op::kWrite,
                               "writing " + result->state_path);
  }
  PARTMINER_RETURN_IF_ERROR_CTX(
      SaveMinerStateFile(*miner_, result->state_path),
      "snapshotting miner state");
  PM_METRIC_COUNTER("service.snapshots")->Increment();
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kSnapshotWritten,
      static_cast<int64_t>(epoch_), 0, 0, prefix.c_str());
  return Status::Ok();
}

bool MinerSession::ready() const {
  std::shared_lock lock(mu_);
  return ready_;
}

uint64_t MinerSession::epoch() const {
  std::shared_lock lock(mu_);
  return epoch_;
}

uint64_t MinerSession::digest() const {
  std::shared_lock lock(mu_);
  return digest_;
}

uint64_t MinerSession::DigestAt(uint64_t epoch) const {
  std::shared_lock lock(mu_);
  const auto it = epoch_digests_.find(epoch);
  return it == epoch_digests_.end() ? 0 : it->second;
}

int MinerSession::resident_support() const {
  std::shared_lock lock(mu_);
  return ready_ ? miner_->root_support() : 0;
}

int MinerSession::graph_count() const {
  std::shared_lock lock(mu_);
  return db_.size();
}

int MinerSession::pattern_count() const {
  std::shared_lock lock(mu_);
  return ready_ ? miner_->verified().size() : 0;
}

PatternSet MinerSession::VerifiedPatterns() const {
  std::shared_lock lock(mu_);
  return ready_ ? miner_->verified() : PatternSet();
}

}  // namespace service
}  // namespace partminer
