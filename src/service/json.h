#ifndef PARTMINER_SERVICE_JSON_H_
#define PARTMINER_SERVICE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace partminer {
namespace service {

/// Minimal JSON document model for the newline-delimited daemon protocol
/// (DESIGN.md section 12). Self-contained on purpose: the container bakes no
/// JSON dependency, and the obs registry already emits JSON by hand — this
/// is the matching parser side, hardened for untrusted socket input
/// (depth-limited recursion, strict UTF-8-agnostic byte handling, every
/// malformed input yields InvalidArgument with a byte offset, never a crash).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Number(double d) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = d;
    return j;
  }
  static Json Number(int64_t i) {
    Json j = Number(static_cast<double>(i));
    j.int_ = i;
    j.is_int_ = true;
    return j;
  }
  static Json Str(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  /// Pre-rendered JSON spliced verbatim into the output (used to embed the
  /// metrics registry's own JSON export without re-parsing it).
  static Json Raw(std::string rendered) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(rendered);
    j.raw_ = true;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString && !raw_; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }
  /// True when the number was written without fraction/exponent and fits
  /// int64 exactly — protocol fields like supports and ids require this.
  bool is_int() const { return type_ == Type::kNumber && is_int_; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return is_int_ ? int_ : static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // Array access.
  const std::vector<Json>& items() const { return items_; }
  void Append(Json v) { items_.push_back(std::move(v)); }

  // Object access. Field order is preserved on output (insertion order) so
  // golden tests can pin exact response bytes.
  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }
  /// Pointer to the value for `key`, or nullptr when absent.
  const Json* Get(const std::string& key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  void Set(const std::string& key, Json v) {
    for (auto& [k, existing] : fields_) {
      if (k == key) {
        existing = std::move(v);
        return;
      }
    }
    fields_.emplace_back(key, std::move(v));
  }

  /// Compact single-line rendering (no spaces), suitable for the
  /// newline-delimited transport. Strings are escaped per RFC 8259;
  /// non-finite numbers render as null.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

  /// Parses exactly one JSON value spanning the whole input (trailing
  /// whitespace allowed, trailing garbage is an error). On failure the
  /// status message contains the byte offset and what was expected.
  static Status Parse(const std::string& text, Json* out);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  bool raw_ = false;
  double number_ = 0;
  int64_t int_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

/// Escapes `s` into a quoted JSON string literal appended to `out`.
void AppendJsonString(const std::string& s, std::string* out);

}  // namespace service
}  // namespace partminer

#endif  // PARTMINER_SERVICE_JSON_H_
