#include "miner/extensions.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "graph/canonical.h"

namespace partminer {

PatternSet FrequentSingleEdges(const GraphDatabase& db, int min_support) {
  // Canonical 1-edge code -> TID set, one database scan. TidSet::Add is
  // idempotent, so repeated triples within a graph need no dedup pass.
  std::map<std::tuple<Label, Label, Label>, TidSet> tids;
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    for (const EdgeEntry& e : g.UndirectedEdges()) {
      Label a = g.vertex_label(e.from);
      Label b = g.vertex_label(e.to);
      if (a > b) std::swap(a, b);
      tids[{a, e.label, b}].Add(i);
    }
  }
  PatternSet out;
  for (auto& [triple, list] : tids) {
    const int support = list.Count();
    if (support < min_support) continue;
    PatternInfo info;
    info.code.Append(DfsEdge{0, 1, std::get<0>(triple), std::get<1>(triple),
                             std::get<2>(triple)});
    info.support = support;
    info.tids = std::move(list);
    out.Upsert(std::move(info));
  }
  return out;
}

std::vector<DfsCode> GenerateExtensions(const Graph& pattern,
                                        const PatternSet& frequent_edges) {
  // Vocabulary views: label -> (edge label, other vertex label) for new
  // vertex attachment, and (label pair) -> edge labels for edge closing.
  std::map<Label, std::vector<std::pair<Label, Label>>> attach;
  std::map<std::pair<Label, Label>, std::vector<Label>> close;
  for (const PatternInfo& p : frequent_edges.patterns()) {
    PM_CHECK_EQ(p.code.size(), 1u);
    const Label a = p.code[0].from_label;
    const Label e = p.code[0].edge_label;
    const Label b = p.code[0].to_label;
    attach[a].emplace_back(e, b);
    if (a != b) attach[b].emplace_back(e, a);
    close[{std::min(a, b), std::max(a, b)}].push_back(e);
  }

  std::unordered_set<DfsCode, DfsCodeHash> seen;
  std::vector<DfsCode> out;
  auto emit = [&](Graph&& extended) {
    DfsCode code = MinimumDfsCode(extended);
    if (seen.insert(code).second) out.push_back(std::move(code));
  };

  const int n = pattern.VertexCount();
  // Attach a new vertex to every existing vertex.
  for (VertexId v = 0; v < n; ++v) {
    const auto it = attach.find(pattern.vertex_label(v));
    if (it == attach.end()) continue;
    for (const auto& [edge_label, other_label] : it->second) {
      Graph extended = pattern;
      const VertexId nv = extended.AddVertex(other_label);
      extended.AddEdge(v, nv, edge_label);
      emit(std::move(extended));
    }
  }
  // Close an edge between two non-adjacent existing vertices.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (pattern.HasEdge(u, v)) continue;
      const Label a = std::min(pattern.vertex_label(u), pattern.vertex_label(v));
      const Label b = std::max(pattern.vertex_label(u), pattern.vertex_label(v));
      const auto it = close.find({a, b});
      if (it == close.end()) continue;
      for (const Label edge_label : it->second) {
        Graph extended = pattern;
        extended.AddEdge(u, v, edge_label);
        emit(std::move(extended));
      }
    }
  }
  return out;
}

std::vector<DfsCode> RightmostExtensions(const DfsCode& base,
                                         const PatternSet& frequent_edges) {
  std::map<Label, std::vector<std::pair<Label, Label>>> attach;
  std::map<std::pair<Label, Label>, std::vector<Label>> close;
  for (const PatternInfo& p : frequent_edges.patterns()) {
    const Label a = p.code[0].from_label;
    const Label e = p.code[0].edge_label;
    const Label b = p.code[0].to_label;
    attach[a].emplace_back(e, b);
    if (a != b) attach[b].emplace_back(e, a);
    close[{std::min(a, b), std::max(a, b)}].push_back(e);
  }

  const Graph pattern = base.ToGraph();  // Vertex v = DFS index v.
  const std::vector<int> rmpath = base.RightmostPath();
  const int maxtoc = rmpath.back();
  const int parent_of_rm = rmpath.size() >= 2 ? rmpath[rmpath.size() - 2] : -1;

  // Ascending-backward validity: after a backward edge from the rightmost
  // vertex, further backward edges must target larger DFS indices.
  int min_backward_to = 0;
  if (!base.empty()) {
    const DfsEdge& last = base[base.size() - 1];
    if (!last.IsForward() && last.from == maxtoc) {
      min_backward_to = last.to + 1;
    }
  }

  std::vector<DfsCode> out;
  DfsCode extended = base;
  auto try_tuple = [&](const DfsEdge& tuple) {
    extended.Append(tuple);
    if (IsMinimalDfsCode(extended)) out.push_back(extended);
    extended.PopBack();
  };

  // Backward extensions: rightmost vertex -> earlier rightmost-path vertex.
  for (const int j : rmpath) {
    if (j == maxtoc || j == parent_of_rm || j < min_backward_to) continue;
    if (pattern.HasEdge(maxtoc, j)) continue;
    const Label a = std::min(pattern.vertex_label(maxtoc),
                             pattern.vertex_label(j));
    const Label b = std::max(pattern.vertex_label(maxtoc),
                             pattern.vertex_label(j));
    const auto it = close.find({a, b});
    if (it == close.end()) continue;
    for (const Label edge_label : it->second) {
      try_tuple(DfsEdge{maxtoc, j, pattern.vertex_label(maxtoc), edge_label,
                        pattern.vertex_label(j)});
    }
  }

  // Forward extensions from every rightmost-path vertex.
  const int next_index = base.VertexCount();
  for (const int i : rmpath) {
    const auto it = attach.find(pattern.vertex_label(i));
    if (it == attach.end()) continue;
    for (const auto& [edge_label, other_label] : it->second) {
      try_tuple(DfsEdge{i, next_index, pattern.vertex_label(i), edge_label,
                        other_label});
    }
  }
  return out;
}


void ForEachMaximalSubpattern(
    const Graph& pattern, const std::function<void(const DfsCode&)>& fn) {
  const std::vector<EdgeEntry> edges = pattern.UndirectedEdges();
  if (edges.size() <= 1) return;
  for (size_t skip = 0; skip < edges.size(); ++skip) {
    Graph sub;
    std::vector<VertexId> remap(pattern.VertexCount(), -1);
    auto ensure = [&](VertexId v) {
      if (remap[v] == -1) remap[v] = sub.AddVertex(pattern.vertex_label(v));
      return remap[v];
    };
    for (size_t i = 0; i < edges.size(); ++i) {
      if (i == skip) continue;
      sub.AddEdge(ensure(edges[i].from), ensure(edges[i].to), edges[i].label);
    }
    if (sub.IsConnected()) fn(MinimumDfsCode(sub));
  }
}

}  // namespace partminer
