#include "miner/brute_force.h"

#include <set>
#include <unordered_map>
#include <vector>

#include "graph/canonical.h"

namespace partminer {

namespace {

/// Builds the pattern graph induced by the edge subset `chosen` of `g`
/// (vertices renumbered densely).
Graph InducedPattern(const Graph& g, const std::vector<EdgeEntry>& edges,
                     const std::vector<bool>& chosen) {
  Graph pattern;
  std::vector<VertexId> remap(g.VertexCount(), -1);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (!chosen[i]) continue;
    for (const VertexId v : {edges[i].from, edges[i].to}) {
      if (remap[v] == -1) remap[v] = pattern.AddVertex(g.vertex_label(v));
    }
    pattern.AddEdge(remap[edges[i].from], remap[edges[i].to], edges[i].label);
  }
  return pattern;
}

/// Enumerates connected edge subsets that contain edge `seed` as their
/// minimum-index edge, growing only by adjacent edges of larger index.
void Enumerate(const Graph& g, const std::vector<EdgeEntry>& edges,
               size_t seed, std::vector<bool>* chosen,
               std::vector<bool>* vertex_in, int size, int max_edges,
               std::set<DfsCode>* out) {
  {
    const Graph pattern = InducedPattern(g, edges, *chosen);
    out->insert(MinimumDfsCode(pattern));
  }
  if (size >= max_edges) return;

  for (size_t i = seed + 1; i < edges.size(); ++i) {
    if ((*chosen)[i]) continue;
    const bool touches =
        (*vertex_in)[edges[i].from] || (*vertex_in)[edges[i].to];
    if (!touches) continue;
    const bool from_was_in = (*vertex_in)[edges[i].from];
    const bool to_was_in = (*vertex_in)[edges[i].to];
    (*chosen)[i] = true;
    (*vertex_in)[edges[i].from] = true;
    (*vertex_in)[edges[i].to] = true;
    Enumerate(g, edges, seed, chosen, vertex_in, size + 1, max_edges, out);
    (*chosen)[i] = false;
    (*vertex_in)[edges[i].from] = from_was_in;
    (*vertex_in)[edges[i].to] = to_was_in;
  }
}

}  // namespace

PatternSet BruteForceMiner::Mine(const GraphDatabase& db,
                                 const MinerOptions& options) {
  // Canonical code -> TID set.
  std::unordered_map<DfsCode, TidSet, DfsCodeHash> counts;

  for (int gi = 0; gi < db.size(); ++gi) {
    const Graph& g = db.graph(gi);
    const std::vector<EdgeEntry> edges = g.UndirectedEdges();
    std::set<DfsCode> codes;
    std::vector<bool> chosen(edges.size(), false);
    std::vector<bool> vertex_in(g.VertexCount(), false);
    for (size_t seed = 0; seed < edges.size(); ++seed) {
      chosen[seed] = true;
      vertex_in[edges[seed].from] = true;
      vertex_in[edges[seed].to] = true;
      Enumerate(g, edges, seed, &chosen, &vertex_in, 1, options.max_edges,
                &codes);
      chosen[seed] = false;
      vertex_in[edges[seed].from] = false;
      vertex_in[edges[seed].to] = false;
    }
    for (const DfsCode& code : codes) counts[code].Add(gi);
  }

  PatternSet out;
  for (auto& [code, tids] : counts) {
    const int support = tids.Count();
    if (support < options.min_support) continue;
    PatternInfo info;
    info.code = code;
    info.support = support;
    info.tids = std::move(tids);
    out.Upsert(std::move(info));
  }
  return out;
}

}  // namespace partminer
