#include "miner/closed.h"

#include <algorithm>
#include <vector>

#include "graph/isomorphism.h"

namespace partminer {

namespace {

/// Patterns of `set` grouped by edge count, ascending; index k holds the
/// (k+1)-edge patterns.
std::vector<std::vector<const PatternInfo*>> ByLevel(const PatternSet& set) {
  std::vector<std::vector<const PatternInfo*>> levels;
  for (const PatternInfo& p : set.patterns()) {
    const size_t k = p.code.size();
    if (levels.size() < k) levels.resize(k);
    levels[k - 1].push_back(&p);
  }
  return levels;
}

/// True when `super` (one more edge) contains `sub`. `require_equal_support`
/// additionally demands equal supports (the closedness certificate).
bool Covers(const PatternInfo& super, const PatternInfo& sub,
            bool require_equal_support) {
  if (require_equal_support && super.support != sub.support) return false;
  // TID inclusion is a necessary condition and much cheaper than the
  // isomorphism check (word-wise subset test on the bitsets).
  if (!sub.tids.Includes(super.tids)) return false;
  return ContainsSubgraph(super.code.ToGraph(), sub.code.ToGraph());
}

PatternSet Filter(const PatternSet& complete, bool closed) {
  const std::vector<std::vector<const PatternInfo*>> levels =
      ByLevel(complete);
  PatternSet out;
  for (size_t k = 0; k < levels.size(); ++k) {
    for (const PatternInfo* p : levels[k]) {
      bool covered = false;
      if (k + 1 < levels.size()) {
        for (const PatternInfo* super : levels[k + 1]) {
          if (Covers(*super, *p, /*require_equal_support=*/closed)) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) out.Upsert(*p);
    }
  }
  return out;
}

}  // namespace

PatternSet ClosedPatterns(const PatternSet& complete) {
  return Filter(complete, /*closed=*/true);
}

PatternSet MaximalPatterns(const PatternSet& complete) {
  return Filter(complete, /*closed=*/false);
}

}  // namespace partminer
