#include "miner/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {
namespace engine {

void History::Build(const Graph& g, const Embedding& e) {
  edges_.clear();
  for (const Embedding* p = &e; p != nullptr; p = p->prev) {
    edges_.push_back(p->edge);
  }
  std::reverse(edges_.begin(), edges_.end());

  // Grow-only scratch: stamps from earlier epochs read as "absent", so a
  // fresh epoch clears the arrays in O(1).
  ++epoch_;
  if (edge_stamp_.size() < static_cast<size_t>(g.EdgeCount())) {
    edge_stamp_.resize(g.EdgeCount(), 0);
  }
  if (vertex_stamp_.size() < static_cast<size_t>(g.VertexCount())) {
    vertex_stamp_.resize(g.VertexCount(), 0);
  }
  for (const EdgeEntry* edge : edges_) {
    edge_stamp_[edge->eid] = epoch_;
    vertex_stamp_[edge->from] = epoch_;
    vertex_stamp_[edge->to] = epoch_;
  }
}

std::vector<int> BuildRightmostPathPositions(const DfsCode& code) {
  std::vector<int> rmpath;
  int expected_from = -1;
  for (int i = static_cast<int>(code.size()) - 1; i >= 0; --i) {
    const DfsEdge& e = code[i];
    if (e.IsForward() && (rmpath.empty() || expected_from == e.to)) {
      rmpath.push_back(i);
      expected_from = e.from;
    }
  }
  return rmpath;
}

namespace {

uint64_t HashTuple(const DfsEdge& t) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the five fields.
  const auto mix = [&h](uint32_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint32_t>(t.from));
  mix(static_cast<uint32_t>(t.to));
  mix(static_cast<uint32_t>(t.from_label));
  mix(static_cast<uint32_t>(t.edge_label));
  mix(static_cast<uint32_t>(t.to_label));
  return h;
}

size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

/// Each thread keeps one History whose stamp arrays grow to the largest
/// graph it has seen; Build is then O(code length) per embedding.
History& ThreadLocalHistory() {
  thread_local History history;
  return history;
}

}  // namespace

ExtensionMap::ExtensionMap(size_t embedding_hint) {
  // A group typically collects a fraction of the parent's embeddings;
  // reserve a conservative slice, capped so databases with many distinct
  // tuples don't over-allocate per group.
  group_reserve_ =
      std::min<size_t>(std::max<size_t>(embedding_hint / 8, 4), 256);
}

size_t ExtensionMap::Probe(const DfsEdge& tuple) const {
  const size_t mask = slots_.size() - 1;
  size_t i = HashTuple(tuple) & mask;
  while (slots_[i] != -1 && !(entries_[slots_[i]].first == tuple)) {
    i = (i + 1) & mask;
  }
  return i;
}

void ExtensionMap::Rehash(size_t buckets) const {
  slots_.assign(buckets, -1);
  for (size_t e = 0; e < entries_.size(); ++e) {
    slots_[Probe(entries_[e].first)] = static_cast<int32_t>(e);
  }
  index_valid_ = true;
}

Projected& ExtensionMap::operator[](const DfsEdge& tuple) {
  if (!index_valid_) {
    Rehash(NextPow2(std::max<size_t>(16, (entries_.size() + 1) * 2)));
  } else if ((entries_.size() + 1) * 2 > slots_.size()) {
    Rehash(slots_.size() * 2);
  }
  const size_t i = Probe(tuple);
  if (slots_[i] != -1) return entries_[slots_[i]].second;
  sorted_ = false;
  slots_[i] = static_cast<int32_t>(entries_.size());
  entries_.emplace_back(tuple, Projected());
  if (group_reserve_ > 0) entries_.back().second.reserve(group_reserve_);
  return entries_.back().second;
}

size_t ExtensionMap::count(const DfsEdge& tuple) const {
  if (entries_.empty()) return 0;
  if (sorted_) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), tuple,
        [](const Entry& e, const DfsEdge& t) {
          return CompareDfsEdge(e.first, t) < 0;
        });
    return it != entries_.end() && it->first == tuple ? 1 : 0;
  }
  if (!index_valid_) Rehash(NextPow2(std::max<size_t>(16, entries_.size() * 2)));
  return slots_[Probe(tuple)] != -1 ? 1 : 0;
}

void ExtensionMap::EnsureSorted() const {
  if (sorted_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return CompareDfsEdge(a.first, b.first) < 0;
            });
  sorted_ = true;
  index_valid_ = false;  // The sort permuted the entry indices.
}

ExtensionMap CollectRootExtensions(const GraphDatabase& db) {
  ExtensionMap roots;
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    for (VertexId u = 0; u < g.VertexCount(); ++u) {
      for (const EdgeEntry& e : g.adjacency(u)) {
        const Label lu = g.vertex_label(u);
        const Label lv = g.vertex_label(e.to);
        if (lu > lv) continue;  // Mirror orientation is canonical.
        const DfsEdge tuple{0, 1, lu, e.label, lv};
        roots[tuple].push_back(Embedding{i, &e, nullptr});
      }
    }
  }
  int64_t embeddings = 0;
  for (const auto& [tuple, projected] : roots) {
    embeddings += static_cast<int64_t>(projected.size());
  }
  PM_METRIC_COUNTER("miner.root_extension_groups")->Add(roots.size());
  PM_METRIC_COUNTER("miner.root_extension_embeddings")->Add(embeddings);
  return roots;
}

ExtensionMap CollectExtensions(const GraphDatabase& db, const DfsCode& code,
                               const Projected& projected,
                               bool enable_order_pruning) {
  ExtensionMap extensions(projected.size());
  const std::vector<int> rmpath = BuildRightmostPathPositions(code);
  PM_CHECK(!rmpath.empty());
  const int maxtoc = code[rmpath[0]].to;  // Rightmost vertex (DFS index).
  const Label min_label = code[0].from_label;

  History& history = ThreadLocalHistory();
  for (const Embedding& emb : projected) {
    const Graph& g = db.graph(emb.graph_index);
    history.Build(g, emb);
    const VertexId rm_host = history.edge(rmpath[0])->to;
    const Label rm_label = g.vertex_label(rm_host);

    // Backward extensions: rightmost vertex -> rightmost-path vertex.
    // Walk the path from the root downward so tuples with smaller targets
    // come first (the map sorts anyway; this is just deterministic).
    for (int j = static_cast<int>(rmpath.size()) - 1; j >= 1; --j) {
      const EdgeEntry* tree_edge = history.edge(rmpath[j]);
      for (const EdgeEntry& e : g.adjacency(rm_host)) {
        if (history.HasEdge(e.eid)) continue;
        if (e.to != tree_edge->from) continue;
        if (enable_order_pruning) {
          // A minimal code cannot close a cycle with an edge comparing
          // smaller than the tree edge it attaches below (gSpan pruning).
          const bool ok =
              tree_edge->label < e.label ||
              (tree_edge->label == e.label &&
               g.vertex_label(tree_edge->to) <= rm_label);
          if (!ok) continue;
        }
        const DfsEdge tuple{maxtoc, code[rmpath[j]].from, rm_label, e.label,
                            code[rmpath[j]].from_label};
        extensions[tuple].push_back(Embedding{emb.graph_index, &e, &emb});
      }
    }

    // Pure forward extensions from the rightmost vertex.
    for (const EdgeEntry& e : g.adjacency(rm_host)) {
      if (history.HasVertex(e.to)) continue;
      const Label to_label = g.vertex_label(e.to);
      if (enable_order_pruning && to_label < min_label) continue;
      const DfsEdge tuple{maxtoc, maxtoc + 1, rm_label, e.label, to_label};
      extensions[tuple].push_back(Embedding{emb.graph_index, &e, &emb});
    }

    // Forward extensions from the other rightmost-path vertices.
    for (const int pos : rmpath) {
      const EdgeEntry* tree_edge = history.edge(pos);
      const VertexId u = tree_edge->from;
      for (const EdgeEntry& e : g.adjacency(u)) {
        if (history.HasVertex(e.to)) continue;
        const Label to_label = g.vertex_label(e.to);
        if (enable_order_pruning) {
          if (to_label < min_label) continue;
          const bool ok = tree_edge->label < e.label ||
                          (tree_edge->label == e.label &&
                           g.vertex_label(tree_edge->to) <= to_label);
          if (!ok) continue;
        }
        const DfsEdge tuple{code[pos].from, maxtoc + 1,
                            code[pos].from_label, e.label, to_label};
        extensions[tuple].push_back(Embedding{emb.graph_index, &e, &emb});
      }
    }
  }
  int64_t embeddings = 0;
  for (const auto& [tuple, child] : extensions) {
    embeddings += static_cast<int64_t>(child.size());
  }
  PM_METRIC_COUNTER("miner.rightmost_extension_groups")
      ->Add(extensions.size());
  PM_METRIC_COUNTER("miner.rightmost_extension_embeddings")->Add(embeddings);
  // Each walked embedding is one subgraph-isomorphism occurrence whose
  // neighborhood was scanned — the projection-based counterpart of
  // iso.subgraph_tests on the explicit-matcher paths.
  PM_METRIC_COUNTER("iso.embedding_extensions")
      ->Add(static_cast<int64_t>(projected.size()));
  return extensions;
}

namespace {

/// Recursive matcher for ProjectCode: extends the partial assignment of DFS
/// indices to host vertices position by position, collecting the matched
/// host edge per code entry.
void MatchCode(const DfsCode& code, const Graph& g, size_t position,
               std::vector<VertexId>* assignment, std::vector<bool>* used,
               std::vector<bool>* vertex_used,
               std::vector<const EdgeEntry*>* matched, int graph_index,
               std::deque<Embedding>* arena, Projected* out) {
  if (position == code.size()) {
    // Materialize the chain in code order.
    const Embedding* prev = nullptr;
    for (const EdgeEntry* edge : *matched) {
      arena->push_back(Embedding{graph_index, edge, prev});
      prev = &arena->back();
    }
    out->push_back(arena->back());
    arena->pop_back();  // out holds the head by value; keep prevs in arena.
    return;
  }
  const DfsEdge& want = code[position];
  if (want.IsForward()) {
    const VertexId from = (*assignment)[want.from];
    for (const EdgeEntry& e : g.adjacency(from)) {
      if ((*used)[e.eid] || (*vertex_used)[e.to]) continue;
      if (e.label != want.edge_label) continue;
      if (g.vertex_label(e.to) != want.to_label) continue;
      (*assignment)[want.to] = e.to;
      (*used)[e.eid] = true;
      (*vertex_used)[e.to] = true;
      matched->push_back(&e);
      MatchCode(code, g, position + 1, assignment, used, vertex_used, matched,
                graph_index, arena, out);
      matched->pop_back();
      (*vertex_used)[e.to] = false;
      (*used)[e.eid] = false;
    }
  } else {
    const VertexId from = (*assignment)[want.from];
    const VertexId to = (*assignment)[want.to];
    for (const EdgeEntry& e : g.adjacency(from)) {
      if ((*used)[e.eid] || e.to != to) continue;
      if (e.label != want.edge_label) continue;
      (*used)[e.eid] = true;
      matched->push_back(&e);
      MatchCode(code, g, position + 1, assignment, used, vertex_used, matched,
                graph_index, arena, out);
      matched->pop_back();
      (*used)[e.eid] = false;
    }
  }
}

}  // namespace

Projected ProjectCode(const DfsCode& code, const GraphDatabase& db,
                      const std::vector<int>& graph_indices,
                      std::deque<Embedding>* arena) {
  Projected out;
  if (code.empty()) return out;
  const int pattern_vertices = code.VertexCount();
  // Scratch hoisted out of the per-graph loop. The used/vertex_used flags
  // are restored to false by the backtracker, so between graphs the arrays
  // only ever need to *grow* — no per-graph clear.
  std::vector<VertexId> assignment;
  std::vector<bool> used;
  std::vector<bool> vertex_used;
  std::vector<const EdgeEntry*> matched;
  matched.reserve(code.size());
  for (const int gi : graph_indices) {
    const Graph& g = db.graph(gi);
    assignment.assign(pattern_vertices, -1);
    if (used.size() < static_cast<size_t>(g.EdgeCount())) {
      used.resize(g.EdgeCount(), false);
    }
    if (vertex_used.size() < static_cast<size_t>(g.VertexCount())) {
      vertex_used.resize(g.VertexCount(), false);
    }
    // Seed position 0: every half-edge matching the first tuple.
    const DfsEdge& first = code[0];
    for (VertexId u = 0; u < g.VertexCount(); ++u) {
      if (g.vertex_label(u) != first.from_label) continue;
      for (const EdgeEntry& e : g.adjacency(u)) {
        if (e.label != first.edge_label) continue;
        if (g.vertex_label(e.to) != first.to_label) continue;
        assignment[0] = u;
        assignment[1] = e.to;
        used[e.eid] = true;
        vertex_used[u] = true;
        vertex_used[e.to] = true;
        matched.push_back(&e);
        MatchCode(code, g, 1, &assignment, &used, &vertex_used, &matched, gi,
                  arena, &out);
        matched.pop_back();
        vertex_used[u] = false;
        vertex_used[e.to] = false;
        used[e.eid] = false;
      }
    }
  }
  PM_METRIC_COUNTER("miner.embeddings_projected")->Add(out.size());
  return out;
}

int SupportOf(const Projected& projected) {
  int support = 0;
  int last = -1;
  for (const Embedding& e : projected) {
    if (e.graph_index != last) {
      ++support;
      last = e.graph_index;
    }
  }
  return support;
}

std::vector<int> TidsOf(const Projected& projected) {
  std::vector<int> tids;
  int last = -1;
  for (const Embedding& e : projected) {
    if (e.graph_index != last) {
      // Embeddings are grouped by graph in ascending database order; the
      // delta-merge set arithmetic and TidSet construction both rely on it.
      PM_DCHECK(e.graph_index > last);
      tids.push_back(e.graph_index);
      last = e.graph_index;
    }
  }
  return tids;
}

TidSet TidSetOf(const Projected& projected) {
  TidSet tids;
  int last = -1;
  for (const Embedding& e : projected) {
    if (e.graph_index != last) {
      PM_DCHECK(e.graph_index > last);
      tids.Add(e.graph_index);
      last = e.graph_index;
    }
  }
  return tids;
}

}  // namespace engine
}  // namespace partminer
