#ifndef PARTMINER_MINER_GSPAN_H_
#define PARTMINER_MINER_GSPAN_H_

#include <string>

#include "miner/miner.h"

namespace partminer {

/// gSpan (Yan & Han, ICDM 2002): depth-first frequent-subgraph mining by
/// rightmost extension of minimum DFS codes over projected embedding lists.
/// Serves two roles in this repository: the ground-truth full-database miner
/// that PartMiner's output is validated against, and the engine underlying
/// the Gaston-style unit miner.
class GSpanMiner : public FrequentSubgraphMiner {
 public:
  GSpanMiner() = default;

  PatternSet Mine(const GraphDatabase& db, const MinerOptions& options) override;

  std::string name() const override { return "gSpan"; }
};

}  // namespace partminer

#endif  // PARTMINER_MINER_GSPAN_H_
