#include "miner/apriori.h"

#include <memory>
#include <vector>

#include "graph/isomorphism.h"
#include "graph/label_index.h"
#include "miner/extensions.h"

namespace partminer {

PatternSet AprioriMiner::Mine(const GraphDatabase& db,
                              const MinerOptions& options) {
  stats_ = AprioriStats();

  // Level 1: one scan; it doubles as the extension vocabulary.
  const PatternSet vocabulary = FrequentSingleEdges(db, options.min_support);
  PatternSet out = vocabulary;
  stats_.frequent_found += out.size();

  std::shared_ptr<const LabelIndex> index;
  if (LabelIndexEnabled()) index = db.label_index();

  // Level-wise generate-and-count.
  for (int k = 1; k < options.max_edges; ++k) {
    // Snapshot the level (Upserts below may reallocate).
    std::vector<std::pair<DfsCode, TidSet>> level;
    for (const PatternInfo* p : out.WithEdgeCount(k)) {
      level.emplace_back(p->code, p->tids);
    }
    if (level.empty()) break;

    bool found_any = false;
    for (const auto& [base, base_tids] : level) {
      for (const DfsCode& candidate : RightmostExtensions(base, vocabulary)) {
        ++stats_.candidates_generated;
        if (out.Contains(candidate)) continue;  // Reached from another base.
        // Count within the generating parent's TID set (any occurrence of
        // the candidate contains an occurrence of the parent), narrowed
        // further by the label index when enabled.
        ++stats_.candidates_counted;
        const Graph pattern = candidate.ToGraph();
        const SubgraphMatcher matcher(pattern);
        TidSet among = base_tids;
        if (index != nullptr) among &= index->CandidatesFor(pattern);
        PatternInfo info;
        info.support = matcher.CountSupportAmong(db, among, &info.tids);
        if (info.support < options.min_support) continue;
        info.code = candidate;
        out.Upsert(std::move(info));
        ++stats_.frequent_found;
        found_any = true;
      }
    }
    if (!found_any) break;
  }
  return out;
}

}  // namespace partminer
