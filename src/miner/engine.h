#ifndef PARTMINER_MINER_ENGINE_H_
#define PARTMINER_MINER_ENGINE_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "graph/dfs_code.h"
#include "graph/graph.h"
#include "graph/tid_set.h"
#include "miner/miner.h"

namespace partminer {
namespace engine {

/// One embedding of the current DFS code into a database graph, represented
/// as a linked chain: `edge` realizes the last code entry, `prev` the rest.
/// Chains point into the parent recursion frame's embedding vector, which
/// outlives all children (the classic gSpan projected-database layout).
struct Embedding {
  int graph_index = -1;
  const EdgeEntry* edge = nullptr;
  const Embedding* prev = nullptr;
};

/// The embeddings of one pattern across the database.
using Projected = std::vector<Embedding>;

/// Flattened view of one embedding: the host edges realizing each code
/// entry, plus host-vertex/edge occupancy used to keep extensions injective.
///
/// Occupancy is tracked with epoch stamps instead of boolean arrays: Build
/// bumps the epoch and stamps only the O(code length) touched slots, so the
/// per-embedding cost no longer scales with the host graph's size (the old
/// `assign` cleared all V+E slots per embedding). The stamp arrays grow
/// monotonically to the largest graph seen by this instance and are meant
/// to be reused across embeddings and graphs — CollectExtensions keeps one
/// History per thread.
class History {
 public:
  void Build(const Graph& g, const Embedding& e);

  const EdgeEntry* edge(int code_position) const {
    return edges_[code_position];
  }
  bool HasEdge(int eid) const { return edge_stamp_[eid] == epoch_; }
  bool HasVertex(VertexId v) const { return vertex_stamp_[v] == epoch_; }

 private:
  std::vector<const EdgeEntry*> edges_;
  std::vector<uint64_t> edge_stamp_;
  std::vector<uint64_t> vertex_stamp_;
  uint64_t epoch_ = 0;  // Stamp 0 is reserved for "never touched".
};

/// Positions (indices into the code) of the rightmost-path *forward* edges,
/// deepest first: rmpath[0] is the edge discovering the rightmost vertex,
/// rmpath.back() the root edge.
std::vector<int> BuildRightmostPathPositions(const DfsCode& code);

/// Ordering DFS-code tuples with gSpan's neighborhood order so that
/// extension maps iterate smallest-first.
struct DfsEdgeLess {
  bool operator()(const DfsEdge& a, const DfsEdge& b) const {
    return CompareDfsEdge(a, b) < 0;
  }
};

/// Extension tuple -> embeddings of (code + tuple).
///
/// Flat replacement for the former std::map: groups are appended to a
/// contiguous vector and located through a small open-addressing index, so
/// the collection hot loop pays one hash probe per embedding instead of a
/// red-black tree walk plus node allocation. Iteration sorts the entries by
/// gSpan tuple order on first access (begin/count), which preserves the
/// deterministic smallest-first traversal the miners rely on.
class ExtensionMap {
 public:
  using Entry = std::pair<DfsEdge, Projected>;
  using const_iterator = std::vector<Entry>::const_iterator;

  ExtensionMap() = default;
  /// `embedding_hint` is the parent projection's embedding count; new
  /// groups reserve from it so the append loop rarely reallocates.
  explicit ExtensionMap(size_t embedding_hint);

  /// Embedding list of `tuple`, created empty on first access.
  Projected& operator[](const DfsEdge& tuple);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// 1 when `tuple` has a group, else 0 (std::map-compatible spelling).
  size_t count(const DfsEdge& tuple) const;

  /// Iteration is in ascending CompareDfsEdge order.
  const_iterator begin() const {
    EnsureSorted();
    return entries_.begin();
  }
  const_iterator end() const { return entries_.end(); }

 private:
  void EnsureSorted() const;
  void Rehash(size_t buckets) const;
  /// Slot of `tuple` in slots_, or the empty slot where it would insert.
  size_t Probe(const DfsEdge& tuple) const;

  mutable std::vector<Entry> entries_;
  /// Open addressing: slot -> entry index, -1 empty. Rebuilt lazily after a
  /// sort invalidates it (sorting permutes entry indices).
  mutable std::vector<int32_t> slots_;
  mutable bool sorted_ = false;
  mutable bool index_valid_ = false;
  size_t group_reserve_ = 0;
};

/// Groups every single-edge pattern of the database with its embeddings.
/// Tuples with from_label > to_label are omitted (their mirror is the
/// canonical representative).
ExtensionMap CollectRootExtensions(const GraphDatabase& db);

/// Collects all rightmost extensions of `code` over its embeddings.
/// When `enable_order_pruning` is set, extensions that provably produce
/// non-minimal codes are dropped early (the gSpan label-order prunings);
/// every surviving extension must still pass IsMinimalDfsCode.
/// Uses a thread-local History scratch, safe for concurrent callers.
ExtensionMap CollectExtensions(const GraphDatabase& db, const DfsCode& code,
                               const Projected& projected,
                               bool enable_order_pruning);

/// Enumerates every embedding of `code` (a valid DFS code) into the graphs
/// of `db` whose indices are listed (ascending) in `graph_indices`. The
/// embedding chains are allocated in `arena`, which must outlive any use of
/// the returned Projected and must not be resized by the caller.
///
/// This re-derives what gSpan's recursion carries implicitly, and is what
/// lets the incremental merge path project a cached pattern onto just the
/// updated graphs.
Projected ProjectCode(const DfsCode& code, const GraphDatabase& db,
                      const std::vector<int>& graph_indices,
                      std::deque<Embedding>* arena);

/// Support of an embedding list: the number of distinct database graphs.
/// Embeddings are grouped by graph in database order by construction.
int SupportOf(const Projected& projected);

/// Distinct database indices of an embedding list, ascending.
std::vector<int> TidsOf(const Projected& projected);

/// TidsOf as a TidSet — the form PatternInfo and the frontier store.
TidSet TidSetOf(const Projected& projected);

}  // namespace engine
}  // namespace partminer

#endif  // PARTMINER_MINER_ENGINE_H_
