#ifndef PARTMINER_MINER_ENGINE_H_
#define PARTMINER_MINER_ENGINE_H_

#include <deque>
#include <map>
#include <vector>

#include "graph/dfs_code.h"
#include "graph/graph.h"
#include "miner/miner.h"

namespace partminer {
namespace engine {

/// One embedding of the current DFS code into a database graph, represented
/// as a linked chain: `edge` realizes the last code entry, `prev` the rest.
/// Chains point into the parent recursion frame's embedding vector, which
/// outlives all children (the classic gSpan projected-database layout).
struct Embedding {
  int graph_index = -1;
  const EdgeEntry* edge = nullptr;
  const Embedding* prev = nullptr;
};

/// The embeddings of one pattern across the database.
using Projected = std::vector<Embedding>;

/// Flattened view of one embedding: the host edges realizing each code
/// entry, plus host-vertex/edge occupancy bitmaps used to keep extensions
/// injective.
class History {
 public:
  void Build(const Graph& g, const Embedding& e);

  const EdgeEntry* edge(int code_position) const {
    return edges_[code_position];
  }
  bool HasEdge(int eid) const { return has_edge_[eid]; }
  bool HasVertex(VertexId v) const { return has_vertex_[v]; }

 private:
  std::vector<const EdgeEntry*> edges_;
  std::vector<bool> has_edge_;
  std::vector<bool> has_vertex_;
};

/// Positions (indices into the code) of the rightmost-path *forward* edges,
/// deepest first: rmpath[0] is the edge discovering the rightmost vertex,
/// rmpath.back() the root edge.
std::vector<int> BuildRightmostPathPositions(const DfsCode& code);

/// Ordering DFS-code tuples with gSpan's neighborhood order so that
/// extension maps iterate smallest-first.
struct DfsEdgeLess {
  bool operator()(const DfsEdge& a, const DfsEdge& b) const {
    return CompareDfsEdge(a, b) < 0;
  }
};

/// Extension tuple -> embeddings of (code + tuple).
using ExtensionMap = std::map<DfsEdge, Projected, DfsEdgeLess>;

/// Groups every single-edge pattern of the database with its embeddings.
/// Tuples with from_label > to_label are omitted (their mirror is the
/// canonical representative).
ExtensionMap CollectRootExtensions(const GraphDatabase& db);

/// Collects all rightmost extensions of `code` over its embeddings.
/// When `enable_order_pruning` is set, extensions that provably produce
/// non-minimal codes are dropped early (the gSpan label-order prunings);
/// every surviving extension must still pass IsMinimalDfsCode.
ExtensionMap CollectExtensions(const GraphDatabase& db, const DfsCode& code,
                               const Projected& projected,
                               bool enable_order_pruning);

/// Enumerates every embedding of `code` (a valid DFS code) into the graphs
/// of `db` whose indices are listed (ascending) in `graph_indices`. The
/// embedding chains are allocated in `arena`, which must outlive any use of
/// the returned Projected and must not be resized by the caller.
///
/// This re-derives what gSpan's recursion carries implicitly, and is what
/// lets the incremental merge path project a cached pattern onto just the
/// updated graphs.
Projected ProjectCode(const DfsCode& code, const GraphDatabase& db,
                      const std::vector<int>& graph_indices,
                      std::deque<Embedding>* arena);

/// Support of an embedding list: the number of distinct database graphs.
/// Embeddings are grouped by graph in database order by construction.
int SupportOf(const Projected& projected);

/// Distinct database indices of an embedding list, ascending.
std::vector<int> TidsOf(const Projected& projected);

}  // namespace engine
}  // namespace partminer

#endif  // PARTMINER_MINER_ENGINE_H_
