#ifndef PARTMINER_MINER_EXTENSIONS_H_
#define PARTMINER_MINER_EXTENSIONS_H_

#include <functional>
#include <vector>

#include "graph/dfs_code.h"
#include "graph/graph.h"
#include "miner/pattern_set.h"

namespace partminer {

/// Exact frequent 1-edge patterns of `db` (one scan), with supports and TID
/// lists — the P1 sets everything level-wise starts from.
PatternSet FrequentSingleEdges(const GraphDatabase& db, int min_support);

/// All canonical single-edge extensions of `pattern` restricted to the edge
/// vocabulary `frequent_edges` (1-edge canonical codes): attach a new
/// labeled vertex anywhere, or close an edge between two non-adjacent
/// vertices. Reference generator for property tests.
std::vector<DfsCode> GenerateExtensions(const Graph& pattern,
                                        const PatternSet& frequent_edges);

/// Minimal-code rightmost extensions of the canonical code `base` whose
/// edge triples are in `frequent_edges`. Because the k-edge prefix of a
/// minimal (k+1)-code is minimal and encodes a frequent subpattern, these
/// candidates reach every frequent (k+1)-pattern exactly once — the
/// generator behind the Apriori-style miner and the property tests.
std::vector<DfsCode> RightmostExtensions(const DfsCode& base,
                                         const PatternSet& frequent_edges);

/// Invokes `fn` on the canonical code of every connected (k-1)-edge
/// subpattern obtained by deleting one edge of `pattern` (k edges). Used by
/// the verification layer's downward-closure reasoning.
void ForEachMaximalSubpattern(const Graph& pattern,
                              const std::function<void(const DfsCode&)>& fn);

}  // namespace partminer

#endif  // PARTMINER_MINER_EXTENSIONS_H_
