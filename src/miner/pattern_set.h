#ifndef PARTMINER_MINER_PATTERN_SET_H_
#define PARTMINER_MINER_PATTERN_SET_H_

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dfs_code.h"
#include "graph/tid_set.h"

namespace partminer {

/// One discovered frequent subgraph: its canonical (minimum) DFS code, its
/// support, and the TID set — indices of the database graphs containing it,
/// stored as a dense bitset (see tid_set.h). TID sets are what make the
/// incremental delta-recount of IncPartMiner possible and they confine
/// merge-join support counting to candidate graphs.
struct PatternInfo {
  DfsCode code;
  int support = 0;
  TidSet tids;
  /// True when support/tids were counted exactly against the database the
  /// holding set describes. Patterns adopted from a pre-update result inside
  /// IncMergeJoin carry stale info and have this cleared; the verification
  /// layer re-counts them (and never uses them to TID-restrict counting).
  bool exact_tids = true;
};

/// The *frontier* of a mining pass: every rightmost-extension group that was
/// enumerated but did not become a frequent pattern (infrequent, or frequent
/// under a non-minimal code), keyed by the extension's full DFS code
/// (minimal base code + appended tuple) and carrying its exact TID set.
///
/// The frontier is what makes the incremental merge update-proportional:
/// a candidate re-encountered after updates finds its old TID set here and
/// is re-counted by set arithmetic alone — "eliminating the generation of
/// unchanged candidate graphs" (Section 1) without any isomorphism work.
/// Hash-keyed for cheap capture during mining sweeps; the (rare) removal of
/// a dropped pattern's extension subtree scans the map for prefix matches.
using FrontierMap = std::unordered_map<DfsCode, TidSet, DfsCodeHash>;

/// A node's frontier cache with a validity flag: large-update rounds take
/// the exact re-sweep and skip the capture cost, invalidating the cache;
/// the next small-update round re-captures once and delta rounds resume.
struct NodeFrontier {
  FrontierMap map;
  bool valid = false;
};

/// A set of frequent subgraphs keyed by canonical code; the P(U) / P(D)
/// objects of the paper. Patterns are retrievable by edge count, which is
/// how the merge-join walks P^k level by level.
class PatternSet {
 public:
  PatternSet() = default;

  /// Inserts or replaces the pattern with `info.code`. Returns true when the
  /// pattern was newly inserted.
  bool Upsert(PatternInfo info) {
    auto [it, inserted] =
        index_.try_emplace(info.code, static_cast<int>(patterns_.size()));
    if (inserted) {
      patterns_.push_back(std::move(info));
    } else {
      patterns_[it->second] = std::move(info);
    }
    return inserted;
  }

  bool Contains(const DfsCode& code) const { return index_.count(code) > 0; }

  /// Pointer to the stored pattern, or nullptr. Invalidated by Upsert/Erase.
  const PatternInfo* Find(const DfsCode& code) const {
    auto it = index_.find(code);
    return it == index_.end() ? nullptr : &patterns_[it->second];
  }

  /// Removes a pattern if present; returns true when something was removed.
  bool Erase(const DfsCode& code) {
    auto it = index_.find(code);
    if (it == index_.end()) return false;
    const int pos = it->second;
    const int last = static_cast<int>(patterns_.size()) - 1;
    index_.erase(it);
    if (pos != last) {
      patterns_[pos] = std::move(patterns_[last]);
      index_[patterns_[pos].code] = pos;
    }
    patterns_.pop_back();
    return true;
  }

  int size() const { return static_cast<int>(patterns_.size()); }
  bool empty() const { return patterns_.empty(); }

  const std::vector<PatternInfo>& patterns() const { return patterns_; }

  /// Patterns with exactly `k` edges (the paper's P^k).
  std::vector<const PatternInfo*> WithEdgeCount(int k) const {
    std::vector<const PatternInfo*> out;
    for (const PatternInfo& p : patterns_) {
      if (static_cast<int>(p.code.size()) == k) out.push_back(&p);
    }
    return out;
  }

  /// Largest pattern size present (0 when empty).
  int MaxEdgeCount() const {
    int max_edges = 0;
    for (const PatternInfo& p : patterns_) {
      max_edges = std::max(max_edges, static_cast<int>(p.code.size()));
    }
    return max_edges;
  }

  /// Union: patterns of `other` absent from this set are inserted.
  void MergeFrom(const PatternSet& other) {
    for (const PatternInfo& p : other.patterns_) {
      if (!Contains(p.code)) Upsert(p);
    }
  }

  /// Moves every pattern of `other` into this set, preserving `other`'s
  /// insertion order. The parallel miners use this to stitch task-local
  /// subtree results back together in the serial traversal order, which is
  /// what keeps parallel output bit-identical to serial. `other` is left
  /// empty.
  void AppendFrom(PatternSet&& other) {
    for (PatternInfo& p : other.patterns_) Upsert(std::move(p));
    other.patterns_.clear();
    other.index_.clear();
  }

  /// Set of canonical codes, sorted — convenient for equality assertions in
  /// tests and for diffing pattern sets.
  std::vector<std::string> SortedCodeStrings() const {
    std::vector<std::string> out;
    out.reserve(patterns_.size());
    for (const PatternInfo& p : patterns_) out.push_back(p.code.ToString());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<DfsCode, int, DfsCodeHash> index_;
  std::vector<PatternInfo> patterns_;
};

}  // namespace partminer

#endif  // PARTMINER_MINER_PATTERN_SET_H_
