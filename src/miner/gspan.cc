#include "miner/gspan.h"

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "graph/canonical.h"
#include "miner/engine.h"

namespace partminer {

namespace {

/// Mining state shared (read-only) by every frame and task of one Mine().
struct GrowContext {
  const GraphDatabase* db;
  const MinerOptions* options;
  ThreadPool* pool;  // Null disables subtree tasks (serial traversal).
};

/// Output of one subtree task, merged by the parent in tuple order.
struct SubtreeResult {
  PatternSet patterns;
  FrontierMap frontier;
};

/// Frontier keys of sibling subtrees are disjoint (each carries its own
/// root tuple), so a move-merge reproduces exactly the serial map content.
void MergeFrontier(FrontierMap&& src, FrontierMap* dst) {
  for (auto& [code, tids] : src) (*dst)[code] = std::move(tids);
}

void Grow(const GrowContext& ctx, DfsCode* code,
          const engine::Projected& projected, int depth, PatternSet* out,
          FrontierMap* frontier);

/// Fans the frequent children of `extensions` out as pool tasks (one per
/// sibling subtree), then appends their results in tuple order — the exact
/// order the serial loop would have produced. Infrequent children are
/// handled inline (cheap frontier bookkeeping); the minimality check rides
/// inside the task, it is part of the subtree's work.
void GrowChildrenParallel(const GrowContext& ctx, DfsCode* code,
                          const engine::ExtensionMap& extensions, int depth,
                          PatternSet* out, FrontierMap* frontier) {
  struct Job {
    DfsCode code;
    const engine::Projected* projected;
  };
  std::vector<Job> jobs;
  for (const auto& [tuple, child_projected] : extensions) {
    code->Append(tuple);
    if (engine::SupportOf(child_projected) < ctx.options->min_support) {
      if (frontier != nullptr) {
        frontier->emplace(*code, engine::TidSetOf(child_projected));
      }
    } else {
      jobs.push_back(Job{*code, &child_projected});
    }
    code->PopBack();
  }

  std::vector<SubtreeResult> results(jobs.size());
  const bool want_frontier = frontier != nullptr;
  {
    TaskGroup group(ctx.pool);
    for (size_t i = 0; i < jobs.size(); ++i) {
      group.Spawn([&ctx, &jobs, &results, i, depth, want_frontier]() {
        Job& job = jobs[i];
        SubtreeResult& slot = results[i];
        if (IsMinimalDfsCode(job.code)) {
          Grow(ctx, &job.code, *job.projected, depth + 1, &slot.patterns,
               want_frontier ? &slot.frontier : nullptr);
        } else if (want_frontier) {
          // Frequent under a non-minimal code: not a pattern here, but its
          // TID list must survive for the incremental lookups.
          slot.frontier.emplace(job.code, engine::TidSetOf(*job.projected));
        }
      });
    }
  }  // TaskGroup dtor waits; jobs/extensions/projected outlive every task.

  for (SubtreeResult& r : results) {
    out->AppendFrom(std::move(r.patterns));
    if (frontier != nullptr) MergeFrontier(std::move(r.frontier), frontier);
  }
}

/// Recursive pattern growth. `code` is the (minimal) code of the current
/// pattern, `projected` its embeddings. Reports the pattern, then recurses
/// into every frequent minimal extension — as sibling pool tasks for
/// first-level children of a large enough subtree, serially otherwise.
void Grow(const GrowContext& ctx, DfsCode* code,
          const engine::Projected& projected, int depth, PatternSet* out,
          FrontierMap* frontier) {
  PatternInfo info;
  info.code = *code;
  info.support = engine::SupportOf(projected);
  info.tids = engine::TidSetOf(projected);
  out->Upsert(std::move(info));

  if (static_cast<int>(code->size()) >= ctx.options->max_edges) return;

  engine::ExtensionMap extensions = engine::CollectExtensions(
      *ctx.db, *code, projected, ctx.options->enable_order_pruning);

  if (ctx.pool != nullptr && depth < 1 &&
      static_cast<int>(projected.size()) >=
          ctx.options->parallel_spawn_min_embeddings) {
    GrowChildrenParallel(ctx, code, extensions, depth, out, frontier);
    return;
  }

  for (const auto& [tuple, child_projected] : extensions) {
    code->Append(tuple);
    if (engine::SupportOf(child_projected) < ctx.options->min_support) {
      if (frontier != nullptr) {
        frontier->emplace(*code, engine::TidSetOf(child_projected));
      }
    } else if (IsMinimalDfsCode(*code)) {
      Grow(ctx, code, child_projected, depth + 1, out, frontier);
    } else if (frontier != nullptr) {
      // Frequent under a non-minimal code: not a pattern here, but its TID
      // list must survive for the incremental lookups.
      frontier->emplace(*code, engine::TidSetOf(child_projected));
    }
    code->PopBack();
  }
}

}  // namespace

PatternSet GSpanMiner::Mine(const GraphDatabase& db,
                            const MinerOptions& options) {
  PatternSet out;
  engine::ExtensionMap roots = engine::CollectRootExtensions(db);
  const GrowContext ctx{&db, &options, options.pool};
  FrontierMap* frontier = options.capture_frontier;

  if (ctx.pool == nullptr) {
    DfsCode code;
    for (const auto& [tuple, projected] : roots) {
      code.Append(tuple);
      if (engine::SupportOf(projected) < options.min_support) {
        if (frontier != nullptr) {
          frontier->emplace(code, engine::TidSetOf(projected));
        }
      } else {
        Grow(ctx, &code, projected, /*depth=*/0, &out, frontier);
      }
      code.PopBack();
    }
    return out;
  }

  // Parallel: one task per frequent root group (every root tuple in
  // canonical orientation is minimal, so tasks start growing directly).
  struct Job {
    DfsCode code;
    const engine::Projected* projected;
  };
  std::vector<Job> jobs;
  DfsCode code;
  for (const auto& [tuple, projected] : roots) {
    code.Append(tuple);
    if (engine::SupportOf(projected) < options.min_support) {
      if (frontier != nullptr) {
        frontier->emplace(code, engine::TidSetOf(projected));
      }
    } else {
      jobs.push_back(Job{code, &projected});
    }
    code.PopBack();
  }
  std::vector<SubtreeResult> results(jobs.size());
  const bool want_frontier = frontier != nullptr;
  {
    TaskGroup group(ctx.pool);
    for (size_t i = 0; i < jobs.size(); ++i) {
      group.Spawn([&ctx, &jobs, &results, i, want_frontier]() {
        Grow(ctx, &jobs[i].code, *jobs[i].projected, /*depth=*/0,
             &results[i].patterns,
             want_frontier ? &results[i].frontier : nullptr);
      });
    }
  }
  for (SubtreeResult& r : results) {
    out.AppendFrom(std::move(r.patterns));
    if (frontier != nullptr) MergeFrontier(std::move(r.frontier), frontier);
  }
  return out;
}

}  // namespace partminer
