#include "miner/gspan.h"

#include "graph/canonical.h"
#include "miner/engine.h"

namespace partminer {

namespace {

/// Recursive pattern growth. `code` is the (minimal) code of the current
/// pattern, `projected` its embeddings. Reports the pattern, then recurses
/// into every frequent minimal extension.
void Grow(const GraphDatabase& db, const MinerOptions& options, DfsCode* code,
          const engine::Projected& projected, PatternSet* out) {
  PatternInfo info;
  info.code = *code;
  info.support = engine::SupportOf(projected);
  info.tids = engine::TidsOf(projected);
  out->Upsert(std::move(info));

  if (static_cast<int>(code->size()) >= options.max_edges) return;

  engine::ExtensionMap extensions = engine::CollectExtensions(
      db, *code, projected, options.enable_order_pruning);
  for (const auto& [tuple, child_projected] : extensions) {
    code->Append(tuple);
    if (engine::SupportOf(child_projected) < options.min_support) {
      if (options.capture_frontier != nullptr) {
        options.capture_frontier->emplace(*code, engine::TidsOf(child_projected));
      }
    } else if (IsMinimalDfsCode(*code)) {
      Grow(db, options, code, child_projected, out);
    } else if (options.capture_frontier != nullptr) {
      // Frequent under a non-minimal code: not a pattern here, but its TID
      // list must survive for the incremental lookups.
      options.capture_frontier->emplace(*code, engine::TidsOf(child_projected));
    }
    code->PopBack();
  }
}

}  // namespace

PatternSet GSpanMiner::Mine(const GraphDatabase& db,
                            const MinerOptions& options) {
  PatternSet out;
  engine::ExtensionMap roots = engine::CollectRootExtensions(db);
  DfsCode code;
  for (const auto& [tuple, projected] : roots) {
    code.Append(tuple);
    if (engine::SupportOf(projected) < options.min_support) {
      if (options.capture_frontier != nullptr) {
        options.capture_frontier->emplace(code, engine::TidsOf(projected));
      }
    } else {
      Grow(db, options, &code, projected, &out);
    }
    code.PopBack();
  }
  return out;
}

}  // namespace partminer
