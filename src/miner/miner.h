#ifndef PARTMINER_MINER_MINER_H_
#define PARTMINER_MINER_MINER_H_

#include <climits>
#include <string>

#include "graph/graph.h"
#include "miner/pattern_set.h"

namespace partminer {

class ThreadPool;

/// Options shared by all frequent-subgraph miners.
struct MinerOptions {
  /// Absolute minimum support (number of database graphs). PartMiner
  /// translates the paper's relative thresholds (e.g. "4%") into counts.
  int min_support = 1;

  /// Upper bound on pattern size in edges. INT_MAX mines everything.
  int max_edges = INT_MAX;

  /// Enables the gSpan label-order prunings that drop obviously non-minimal
  /// extensions before the canonical check. Purely an optimization; tests
  /// run with it both on and off and compare against a brute-force miner.
  bool enable_order_pruning = true;

  /// When non-null, receives the mining frontier: every enumerated extension
  /// group that did not become a frequent pattern, with exact TID lists (see
  /// FrontierMap). Consumed by the incremental merge.
  FrontierMap* capture_frontier = nullptr;

  /// When non-null, the gSpan/Gaston search tree itself is parallelized:
  /// sibling extension subtrees (root groups, and first-level children with
  /// at least `parallel_spawn_min_embeddings` embeddings) run as pool tasks
  /// with task-local outputs, merged in tuple order so the result is
  /// bit-identical to the serial traversal. Null keeps the serial path.
  ThreadPool* pool = nullptr;

  /// Minimum embedding count for a first-level subtree to be worth a task
  /// of its own; smaller subtrees stay inline with their parent.
  int parallel_spawn_min_embeddings = 32;
};

/// Interface of the memory-based miners PartMiner plugs in (Section 4.2:
/// "we can now use any existing memory-based algorithm").
class FrequentSubgraphMiner {
 public:
  virtual ~FrequentSubgraphMiner() = default;

  /// Mines all frequent connected subgraphs with at least one edge.
  /// Patterns are reported by minimum DFS code with support and TID list.
  virtual PatternSet Mine(const GraphDatabase& db,
                          const MinerOptions& options) = 0;

  /// Human-readable algorithm name for reports.
  virtual std::string name() const = 0;
};

}  // namespace partminer

#endif  // PARTMINER_MINER_MINER_H_
