#ifndef PARTMINER_MINER_APRIORI_H_
#define PARTMINER_MINER_APRIORI_H_

#include <cstdint>
#include <string>

#include "miner/miner.h"

namespace partminer {

/// Counters for one AprioriMiner run, exposing the classic generate-and-
/// count cost profile that the paper's related work (Section 2) attributes
/// to AGM/FSG: many candidates, each paying a subgraph-isomorphism count.
struct AprioriStats {
  int64_t candidates_generated = 0;
  int64_t candidates_counted = 0;
  int64_t frequent_found = 0;
};

/// Level-wise Apriori-style frequent-subgraph miner in the AGM/FSG family
/// the paper cites [6, 8]: level k+1 candidates are derived from the
/// frequent k-edge patterns, then each candidate's support is counted by
/// subgraph isomorphism restricted to its generating parent's TID list.
///
/// Candidate generation substitutes FSG's pairwise core-join with minimal
/// rightmost extensions over the frequent-edge vocabulary (complete by the
/// minimal-prefix argument; see miner/extensions.h) — the count-dominated
/// cost profile, which is what makes the family a baseline, is unchanged.
/// Exists as the third independent miner implementation for cross-checking
/// and for the pattern-growth-vs-Apriori ablation bench.
class AprioriMiner : public FrequentSubgraphMiner {
 public:
  AprioriMiner() = default;

  PatternSet Mine(const GraphDatabase& db, const MinerOptions& options) override;

  std::string name() const override { return "Apriori"; }

  const AprioriStats& stats() const { return stats_; }

 private:
  AprioriStats stats_;
};

}  // namespace partminer

#endif  // PARTMINER_MINER_APRIORI_H_
