#ifndef PARTMINER_MINER_CLOSED_H_
#define PARTMINER_MINER_CLOSED_H_

#include "miner/pattern_set.h"

namespace partminer {

/// Condensed representations of a frequent pattern set, after the paper's
/// related work (CloseGraph [17] for closed patterns, SPIN [5] for maximal
/// ones). Both operate on a complete PatternSet — e.g. PartMiner's output —
/// so the partition-based pipeline gets them for free.

/// Closed frequent patterns: patterns with no frequent super-pattern of the
/// same support. Because the input set is complete and downward closed, a
/// pattern p is non-closed iff some pattern in the set with one more edge
/// contains p and has equal support; TID-list equality is used as a cheap
/// certificate before the (pattern-level) subgraph-isomorphism check.
PatternSet ClosedPatterns(const PatternSet& complete);

/// Maximal frequent patterns: patterns with no frequent super-pattern at
/// all. A pattern is non-maximal iff some (k+1)-edge pattern in the set
/// contains it.
PatternSet MaximalPatterns(const PatternSet& complete);

}  // namespace partminer

#endif  // PARTMINER_MINER_CLOSED_H_
