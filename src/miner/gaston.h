#ifndef PARTMINER_MINER_GASTON_H_
#define PARTMINER_MINER_GASTON_H_

#include <cstdint>
#include <string>

#include "miner/miner.h"

namespace partminer {

/// Counters describing one Mine() run of the Gaston-style miner. Gaston's
/// founding observation — "most frequent substructures in practical graph
/// databases are actually free trees" (Section 4.2) — is directly visible in
/// the phase counts.
struct GastonStats {
  int64_t frequent_paths = 0;
  int64_t frequent_trees = 0;    // Non-path free trees.
  int64_t frequent_cyclic = 0;
  int64_t path_fast_checks = 0;     // Canonicality via the path fast-path.
  int64_t generic_min_checks = 0;   // Canonicality via generic is-min.

  int64_t TotalFrequent() const {
    return frequent_paths + frequent_trees + frequent_cyclic;
  }
};

/// Gaston-style phased miner (Nijssen & Kok, KDD 2004) — the memory-based
/// unit miner PartMiner invokes (Figure 7 of the paper). Patterns are grown
/// phase by phase — paths, then free trees, then cyclic graphs — and path
/// canonicality is decided by a closed-form enumeration over the path's
/// (at most 2n) DFS roots instead of the generic embedding-based search.
///
/// Faithfulness note: real Gaston uses bespoke canonical forms for paths and
/// free trees; this reimplementation keeps gSpan's minimum-DFS-code as the
/// global canonical label (so pattern sets are directly comparable across
/// miners) and reproduces Gaston's phase structure and its cheap path
/// handling. Tests assert it emits exactly the same pattern set as gSpan.
class GastonMiner : public FrequentSubgraphMiner {
 public:
  GastonMiner() = default;

  PatternSet Mine(const GraphDatabase& db, const MinerOptions& options) override;

  std::string name() const override { return "Gaston"; }

  /// Statistics of the most recent Mine() call.
  const GastonStats& stats() const { return stats_; }

 private:
  GastonStats stats_;
};

/// True when `code` encodes a simple path pattern *and* is the straight walk
/// from one endpoint (edge k connects DFS indices k and k+1, no backward
/// edges). Exposed for tests.
bool IsStraightPathCode(const DfsCode& code);

/// Exact minimality test specialized for straight path codes: compares the
/// code against every DFS enumeration of the path (each root vertex, each
/// branch order), all constructed in closed form. Exposed for tests, which
/// validate it against the generic IsMinimalDfsCode.
bool IsMinimalPathCode(const DfsCode& code);

}  // namespace partminer

#endif  // PARTMINER_MINER_GASTON_H_
