#ifndef PARTMINER_MINER_BRUTE_FORCE_H_
#define PARTMINER_MINER_BRUTE_FORCE_H_

#include <string>

#include "miner/miner.h"

namespace partminer {

/// Reference miner: enumerates every connected edge subset of every database
/// graph (exponential), canonicalizes each with the minimum DFS code, and
/// counts support exactly. Exists to provide ground truth for the property
/// tests that validate gSpan, Gaston, PartMiner and IncPartMiner; only
/// usable on small inputs.
class BruteForceMiner : public FrequentSubgraphMiner {
 public:
  BruteForceMiner() = default;

  PatternSet Mine(const GraphDatabase& db, const MinerOptions& options) override;

  std::string name() const override { return "BruteForce"; }
};

}  // namespace partminer

#endif  // PARTMINER_MINER_BRUTE_FORCE_H_
