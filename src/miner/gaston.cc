#include "miner/gaston.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "graph/canonical.h"
#include "miner/engine.h"
#include "obs/metrics.h"

namespace partminer {

namespace {

enum class Phase : int { kPath = 0, kTree = 1, kCyclic = 2 };

/// Phase of the pattern a code encodes. A code with a backward edge is
/// cyclic; otherwise it encodes a free tree, which is a path iff no DFS
/// vertex has degree above two.
Phase PhaseOf(const DfsCode& code) {
  std::vector<int> degree(code.VertexCount(), 0);
  for (const DfsEdge& e : code.edges()) {
    if (!e.IsForward()) return Phase::kCyclic;
    ++degree[e.from];
    ++degree[e.to];
  }
  for (const int d : degree) {
    if (d > 2) return Phase::kTree;
  }
  return Phase::kPath;
}

/// Label sequences of a path pattern: vertex labels v[0..n] and edge labels
/// e[0..n-1] (e[k] joins v[k] and v[k+1]), extracted by walking the pattern
/// graph from one endpoint. Requires a path pattern.
struct PathLabels {
  std::vector<Label> vertex;
  std::vector<Label> edge;
};

PathLabels ExtractPathLabels(const Graph& g) {
  PathLabels out;
  const int n = g.VertexCount();
  VertexId start = -1;
  for (VertexId v = 0; v < n; ++v) {
    PM_CHECK_LE(g.Degree(v), 2);
    if (g.Degree(v) == 1) start = v;
  }
  if (start == -1) start = 0;  // Single vertex would be degenerate.
  PM_CHECK_GE(start, 0);

  VertexId prev = -1, cur = start;
  out.vertex.push_back(g.vertex_label(cur));
  for (int step = 0; step + 1 < n; ++step) {
    for (const EdgeEntry& e : g.adjacency(cur)) {
      if (e.to == prev) continue;
      out.edge.push_back(e.label);
      out.vertex.push_back(g.vertex_label(e.to));
      prev = cur;
      cur = e.to;
      break;
    }
  }
  PM_CHECK_EQ(static_cast<int>(out.vertex.size()), n);
  return out;
}

/// Builds the DFS code of the path rooted at position `root`, exploring the
/// branch toward position 0 first when `toward_zero_first` is set.
DfsCode BuildPathCode(const PathLabels& labels, int root,
                      bool toward_zero_first) {
  const int n = static_cast<int>(labels.vertex.size());
  DfsCode code;
  // Emits the branch walking path positions root+step, root+2*step, ... as
  // forward edges. The first edge descends from DFS index 0 (the root); new
  // vertices take DFS indices first_dfs, first_dfs+1, ...
  auto emit_branch = [&](int step, int first_dfs) {
    int parent_dfs = 0;
    int dfs = first_dfs;
    for (int p = root + step; p >= 0 && p < n; p += step) {
      const int edge_index = step > 0 ? p - 1 : p;
      code.Append(DfsEdge{parent_dfs, dfs, labels.vertex[p - step],
                          labels.edge[edge_index], labels.vertex[p]});
      parent_dfs = dfs;
      ++dfs;
    }
  };

  if (toward_zero_first) {
    emit_branch(-1, 1);
    emit_branch(+1, root + 1);  // Branch toward 0 used DFS indices 1..root.
  } else {
    emit_branch(+1, 1);
    emit_branch(-1, (n - 1 - root) + 1);
  }
  return code;
}

}  // namespace

bool IsStraightPathCode(const DfsCode& code) {
  for (size_t k = 0; k < code.size(); ++k) {
    const DfsEdge& e = code[k];
    if (!e.IsForward() || e.from != static_cast<int>(k) ||
        e.to != static_cast<int>(k) + 1) {
      return false;
    }
  }
  return true;
}

bool IsMinimalPathCode(const DfsCode& code) {
  const Graph g = code.ToGraph();
  const PathLabels labels = ExtractPathLabels(g);
  const int n = static_cast<int>(labels.vertex.size());
  // Every valid DFS code of a path: pick a root position; fully explore one
  // branch, then the other. Mid-branch switching cannot complete (the
  // abandoned branch becomes unreachable), so this candidate set is exactly
  // the set of valid codes.
  for (int root = 0; root < n; ++root) {
    for (const bool toward_zero_first : {true, false}) {
      if (root == 0 && toward_zero_first) continue;       // Empty branch.
      if (root == n - 1 && !toward_zero_first) continue;  // Empty branch.
      const DfsCode candidate = BuildPathCode(labels, root, toward_zero_first);
      if (candidate.Compare(code) < 0) return false;
    }
  }
  return true;
}

namespace {

/// Read-only state shared by every frame and task of one Mine(). Outputs
/// (PatternSet, frontier, stats) travel as per-frame parameters so sibling
/// subtrees can run as pool tasks with task-local copies.
struct GastonContext {
  const GraphDatabase* db;
  const MinerOptions* options;
  ThreadPool* pool;  // Null disables subtree tasks (serial traversal).
};

/// Output of one subtree task, merged by the parent in job order.
struct SubtreeResult {
  PatternSet patterns;
  FrontierMap frontier;
  GastonStats stats;
};

/// Frontier keys of sibling subtrees are disjoint (each carries its own
/// root tuple), so a move-merge reproduces exactly the serial map content.
void MergeFrontier(FrontierMap&& src, FrontierMap* dst) {
  for (auto& [code, tids] : src) (*dst)[code] = std::move(tids);
}

void AddStats(const GastonStats& src, GastonStats* dst) {
  dst->frequent_paths += src.frequent_paths;
  dst->frequent_trees += src.frequent_trees;
  dst->frequent_cyclic += src.frequent_cyclic;
  dst->path_fast_checks += src.path_fast_checks;
  dst->generic_min_checks += src.generic_min_checks;
}

bool CheckMinimal(const DfsCode& code, Phase phase, GastonStats* stats) {
  if (phase == Phase::kPath) {
    ++stats->path_fast_checks;
    PM_METRIC_COUNTER("miner.minimality_checks")->Increment();
    return IsMinimalPathCode(code);
  }
  ++stats->generic_min_checks;
  return IsMinimalDfsCode(code);
}

void GrowPhased(const GastonContext& ctx, DfsCode* code,
                const engine::Projected& projected, Phase phase, int depth,
                PatternSet* out, FrontierMap* frontier, GastonStats* stats);

/// A deferred subtree: the child code in its (target phase, tuple) position
/// of the serial 3-pass sweep, with the phase already classified and the
/// minimality check still pending (it runs inside the task).
struct PhasedJob {
  DfsCode code;
  const engine::Projected* projected;
  Phase phase;
};

void GrowChildrenParallel(const GastonContext& ctx, DfsCode* code,
                          const engine::ExtensionMap& extensions, Phase phase,
                          int depth, PatternSet* out, FrontierMap* frontier,
                          GastonStats* stats) {
  // Jobs are collected in the exact order the serial 3-pass loop visits
  // frequent children; infrequent children do their (cheap) frontier
  // bookkeeping inline on the pass that owns it.
  std::vector<PhasedJob> jobs;
  for (const Phase target : {Phase::kPath, Phase::kTree, Phase::kCyclic}) {
    if (target < phase) continue;
    for (const auto& [tuple, child_projected] : extensions) {
      code->Append(tuple);
      const Phase child_phase = PhaseOf(*code);
      PM_CHECK_GE(static_cast<int>(child_phase), static_cast<int>(phase))
          << "Gaston phase regressed";
      if (engine::SupportOf(child_projected) < ctx.options->min_support) {
        if (target == Phase::kCyclic &&  // Capture once (the last pass).
            frontier != nullptr) {
          frontier->emplace(*code, engine::TidSetOf(child_projected));
        }
      } else if (child_phase == target) {
        jobs.push_back(PhasedJob{*code, &child_projected, child_phase});
      }
      code->PopBack();
    }
  }

  std::vector<SubtreeResult> results(jobs.size());
  const bool want_frontier = frontier != nullptr;
  {
    TaskGroup group(ctx.pool);
    for (size_t i = 0; i < jobs.size(); ++i) {
      group.Spawn([&ctx, &jobs, &results, i, depth, want_frontier]() {
        PhasedJob& job = jobs[i];
        SubtreeResult& slot = results[i];
        if (CheckMinimal(job.code, job.phase, &slot.stats)) {
          GrowPhased(ctx, &job.code, *job.projected, job.phase, depth + 1,
                     &slot.patterns, want_frontier ? &slot.frontier : nullptr,
                     &slot.stats);
        } else if (want_frontier) {
          slot.frontier.emplace(job.code, engine::TidSetOf(*job.projected));
        }
      });
    }
  }  // TaskGroup dtor waits; jobs/extensions/projected outlive every task.

  for (SubtreeResult& r : results) {
    out->AppendFrom(std::move(r.patterns));
    if (frontier != nullptr) MergeFrontier(std::move(r.frontier), frontier);
    AddStats(r.stats, stats);
  }
}

void GrowPhased(const GastonContext& ctx, DfsCode* code,
                const engine::Projected& projected, Phase phase, int depth,
                PatternSet* out, FrontierMap* frontier, GastonStats* stats) {
  PatternInfo info;
  info.code = *code;
  info.support = engine::SupportOf(projected);
  info.tids = engine::TidSetOf(projected);
  out->Upsert(std::move(info));
  switch (phase) {
    case Phase::kPath: ++stats->frequent_paths; break;
    case Phase::kTree: ++stats->frequent_trees; break;
    case Phase::kCyclic: ++stats->frequent_cyclic; break;
  }

  if (static_cast<int>(code->size()) >= ctx.options->max_edges) return;

  engine::ExtensionMap extensions = engine::CollectExtensions(
      *ctx.db, *code, projected, ctx.options->enable_order_pruning);

  if (ctx.pool != nullptr && depth < 1 &&
      static_cast<int>(projected.size()) >=
          ctx.options->parallel_spawn_min_embeddings) {
    GrowChildrenParallel(ctx, code, extensions, phase, depth, out, frontier,
                         stats);
    return;
  }

  // Gaston's phase discipline: node refinements that keep the pattern in an
  // earlier phase are explored before refinements that advance the phase,
  // and the phase never regresses (a path extension of a tree is
  // impossible). Three passes over the sorted extension map realize this
  // order without changing the discovered set.
  for (const Phase target : {Phase::kPath, Phase::kTree, Phase::kCyclic}) {
    if (target < phase) continue;  // Monotone: no regression possible.
    for (const auto& [tuple, child_projected] : extensions) {
      code->Append(tuple);
      const Phase child_phase = PhaseOf(*code);
      PM_CHECK_GE(static_cast<int>(child_phase), static_cast<int>(phase))
          << "Gaston phase regressed";
      if (engine::SupportOf(child_projected) < ctx.options->min_support) {
        if (target == Phase::kCyclic &&  // Capture once (the last pass).
            frontier != nullptr) {
          frontier->emplace(*code, engine::TidSetOf(child_projected));
        }
      } else if (child_phase == target) {
        if (CheckMinimal(*code, child_phase, stats)) {
          GrowPhased(ctx, code, child_projected, child_phase, depth + 1, out,
                     frontier, stats);
        } else if (frontier != nullptr) {
          frontier->emplace(*code, engine::TidSetOf(child_projected));
        }
      }
      code->PopBack();
    }
  }
}

}  // namespace

PatternSet GastonMiner::Mine(const GraphDatabase& db,
                             const MinerOptions& options) {
  stats_ = GastonStats();
  PatternSet out;
  const GastonContext ctx{&db, &options, options.pool};
  FrontierMap* frontier = options.capture_frontier;

  // Phase 1 of Figure 7: frequent edges.
  engine::ExtensionMap roots = engine::CollectRootExtensions(db);
  DfsCode code;
  if (ctx.pool == nullptr) {
    for (const auto& [tuple, projected] : roots) {
      code.Append(tuple);
      if (engine::SupportOf(projected) < options.min_support) {
        if (frontier != nullptr) {
          frontier->emplace(code, engine::TidSetOf(projected));
        }
      } else {
        GrowPhased(ctx, &code, projected, Phase::kPath, /*depth=*/0, &out,
                   frontier, &stats_);
      }
      code.PopBack();
    }
  } else {
    // Parallel: one task per frequent root group. Every root is a single
    // edge — a path, minimal by construction — so tasks grow directly.
    std::vector<PhasedJob> jobs;
    for (const auto& [tuple, projected] : roots) {
      code.Append(tuple);
      if (engine::SupportOf(projected) < options.min_support) {
        if (frontier != nullptr) {
          frontier->emplace(code, engine::TidSetOf(projected));
        }
      } else {
        jobs.push_back(PhasedJob{code, &projected, Phase::kPath});
      }
      code.PopBack();
    }
    std::vector<SubtreeResult> results(jobs.size());
    const bool want_frontier = frontier != nullptr;
    {
      TaskGroup group(ctx.pool);
      for (size_t i = 0; i < jobs.size(); ++i) {
        group.Spawn([&ctx, &jobs, &results, i, want_frontier]() {
          GrowPhased(ctx, &jobs[i].code, *jobs[i].projected, Phase::kPath,
                     /*depth=*/0, &results[i].patterns,
                     want_frontier ? &results[i].frontier : nullptr,
                     &results[i].stats);
        });
      }
    }
    for (SubtreeResult& r : results) {
      out.AppendFrom(std::move(r.patterns));
      if (frontier != nullptr) MergeFrontier(std::move(r.frontier), frontier);
      AddStats(r.stats, &stats_);
    }
  }

  PM_METRIC_COUNTER("gaston.frequent_paths")->Add(stats_.frequent_paths);
  PM_METRIC_COUNTER("gaston.frequent_trees")->Add(stats_.frequent_trees);
  PM_METRIC_COUNTER("gaston.frequent_cyclic")->Add(stats_.frequent_cyclic);
  PM_METRIC_COUNTER("gaston.path_fast_checks")->Add(stats_.path_fast_checks);
  PM_METRIC_COUNTER("gaston.generic_min_checks")
      ->Add(stats_.generic_min_checks);
  return out;
}

}  // namespace partminer
