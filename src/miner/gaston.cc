#include "miner/gaston.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "graph/canonical.h"
#include "miner/engine.h"
#include "obs/metrics.h"

namespace partminer {

namespace {

enum class Phase : int { kPath = 0, kTree = 1, kCyclic = 2 };

/// Phase of the pattern a code encodes. A code with a backward edge is
/// cyclic; otherwise it encodes a free tree, which is a path iff no DFS
/// vertex has degree above two.
Phase PhaseOf(const DfsCode& code) {
  std::vector<int> degree(code.VertexCount(), 0);
  for (const DfsEdge& e : code.edges()) {
    if (!e.IsForward()) return Phase::kCyclic;
    ++degree[e.from];
    ++degree[e.to];
  }
  for (const int d : degree) {
    if (d > 2) return Phase::kTree;
  }
  return Phase::kPath;
}

/// Label sequences of a path pattern: vertex labels v[0..n] and edge labels
/// e[0..n-1] (e[k] joins v[k] and v[k+1]), extracted by walking the pattern
/// graph from one endpoint. Requires a path pattern.
struct PathLabels {
  std::vector<Label> vertex;
  std::vector<Label> edge;
};

PathLabels ExtractPathLabels(const Graph& g) {
  PathLabels out;
  const int n = g.VertexCount();
  VertexId start = -1;
  for (VertexId v = 0; v < n; ++v) {
    PM_CHECK_LE(g.Degree(v), 2);
    if (g.Degree(v) == 1) start = v;
  }
  if (start == -1) start = 0;  // Single vertex would be degenerate.
  PM_CHECK_GE(start, 0);

  VertexId prev = -1, cur = start;
  out.vertex.push_back(g.vertex_label(cur));
  for (int step = 0; step + 1 < n; ++step) {
    for (const EdgeEntry& e : g.adjacency(cur)) {
      if (e.to == prev) continue;
      out.edge.push_back(e.label);
      out.vertex.push_back(g.vertex_label(e.to));
      prev = cur;
      cur = e.to;
      break;
    }
  }
  PM_CHECK_EQ(static_cast<int>(out.vertex.size()), n);
  return out;
}

/// Builds the DFS code of the path rooted at position `root`, exploring the
/// branch toward position 0 first when `toward_zero_first` is set.
DfsCode BuildPathCode(const PathLabels& labels, int root,
                      bool toward_zero_first) {
  const int n = static_cast<int>(labels.vertex.size());
  DfsCode code;
  // Emits the branch walking path positions root+step, root+2*step, ... as
  // forward edges. The first edge descends from DFS index 0 (the root); new
  // vertices take DFS indices first_dfs, first_dfs+1, ...
  auto emit_branch = [&](int step, int first_dfs) {
    int parent_dfs = 0;
    int dfs = first_dfs;
    for (int p = root + step; p >= 0 && p < n; p += step) {
      const int edge_index = step > 0 ? p - 1 : p;
      code.Append(DfsEdge{parent_dfs, dfs, labels.vertex[p - step],
                          labels.edge[edge_index], labels.vertex[p]});
      parent_dfs = dfs;
      ++dfs;
    }
  };

  if (toward_zero_first) {
    emit_branch(-1, 1);
    emit_branch(+1, root + 1);  // Branch toward 0 used DFS indices 1..root.
  } else {
    emit_branch(+1, 1);
    emit_branch(-1, (n - 1 - root) + 1);
  }
  return code;
}

}  // namespace

bool IsStraightPathCode(const DfsCode& code) {
  for (size_t k = 0; k < code.size(); ++k) {
    const DfsEdge& e = code[k];
    if (!e.IsForward() || e.from != static_cast<int>(k) ||
        e.to != static_cast<int>(k) + 1) {
      return false;
    }
  }
  return true;
}

bool IsMinimalPathCode(const DfsCode& code) {
  const Graph g = code.ToGraph();
  const PathLabels labels = ExtractPathLabels(g);
  const int n = static_cast<int>(labels.vertex.size());
  // Every valid DFS code of a path: pick a root position; fully explore one
  // branch, then the other. Mid-branch switching cannot complete (the
  // abandoned branch becomes unreachable), so this candidate set is exactly
  // the set of valid codes.
  for (int root = 0; root < n; ++root) {
    for (const bool toward_zero_first : {true, false}) {
      if (root == 0 && toward_zero_first) continue;       // Empty branch.
      if (root == n - 1 && !toward_zero_first) continue;  // Empty branch.
      const DfsCode candidate = BuildPathCode(labels, root, toward_zero_first);
      if (candidate.Compare(code) < 0) return false;
    }
  }
  return true;
}

namespace {

struct GastonContext {
  const GraphDatabase* db;
  const MinerOptions* options;
  PatternSet* out;
  GastonStats* stats;
};

bool CheckMinimal(GastonContext* ctx, const DfsCode& code, Phase phase) {
  if (phase == Phase::kPath) {
    ++ctx->stats->path_fast_checks;
    PM_METRIC_COUNTER("miner.minimality_checks")->Increment();
    return IsMinimalPathCode(code);
  }
  ++ctx->stats->generic_min_checks;
  return IsMinimalDfsCode(code);
}

void GrowPhased(GastonContext* ctx, DfsCode* code,
                const engine::Projected& projected, Phase phase) {
  PatternInfo info;
  info.code = *code;
  info.support = engine::SupportOf(projected);
  info.tids = engine::TidsOf(projected);
  ctx->out->Upsert(std::move(info));
  switch (phase) {
    case Phase::kPath: ++ctx->stats->frequent_paths; break;
    case Phase::kTree: ++ctx->stats->frequent_trees; break;
    case Phase::kCyclic: ++ctx->stats->frequent_cyclic; break;
  }

  if (static_cast<int>(code->size()) >= ctx->options->max_edges) return;

  engine::ExtensionMap extensions = engine::CollectExtensions(
      *ctx->db, *code, projected, ctx->options->enable_order_pruning);

  // Gaston's phase discipline: node refinements that keep the pattern in an
  // earlier phase are explored before refinements that advance the phase,
  // and the phase never regresses (a path extension of a tree is
  // impossible). Three passes over the sorted extension map realize this
  // order without changing the discovered set.
  for (const Phase target :
       {Phase::kPath, Phase::kTree, Phase::kCyclic}) {
    if (target < phase) continue;  // Monotone: no regression possible.
    for (const auto& [tuple, child_projected] : extensions) {
      code->Append(tuple);
      const Phase child_phase = PhaseOf(*code);
      PM_CHECK_GE(static_cast<int>(child_phase), static_cast<int>(phase))
          << "Gaston phase regressed";
      if (engine::SupportOf(child_projected) < ctx->options->min_support) {
        if (target == Phase::kCyclic &&  // Capture once (the last pass).
            ctx->options->capture_frontier != nullptr) {
          ctx->options->capture_frontier->emplace(
              *code, engine::TidsOf(child_projected));
        }
      } else if (child_phase == target) {
        if (CheckMinimal(ctx, *code, child_phase)) {
          GrowPhased(ctx, code, child_projected, child_phase);
        } else if (ctx->options->capture_frontier != nullptr) {
          ctx->options->capture_frontier->emplace(
              *code, engine::TidsOf(child_projected));
        }
      }
      code->PopBack();
    }
  }
}

}  // namespace

PatternSet GastonMiner::Mine(const GraphDatabase& db,
                             const MinerOptions& options) {
  stats_ = GastonStats();
  PatternSet out;
  GastonContext ctx{&db, &options, &out, &stats_};

  // Phase 1 of Figure 7: frequent edges.
  engine::ExtensionMap roots = engine::CollectRootExtensions(db);
  DfsCode code;
  for (const auto& [tuple, projected] : roots) {
    code.Append(tuple);
    if (engine::SupportOf(projected) < options.min_support) {
      if (options.capture_frontier != nullptr) {
        options.capture_frontier->emplace(code, engine::TidsOf(projected));
      }
    } else {
      GrowPhased(&ctx, &code, projected, Phase::kPath);
    }
    code.PopBack();
  }
  PM_METRIC_COUNTER("gaston.frequent_paths")->Add(stats_.frequent_paths);
  PM_METRIC_COUNTER("gaston.frequent_trees")->Add(stats_.frequent_trees);
  PM_METRIC_COUNTER("gaston.frequent_cyclic")->Add(stats_.frequent_cyclic);
  PM_METRIC_COUNTER("gaston.path_fast_checks")->Add(stats_.path_fast_checks);
  PM_METRIC_COUNTER("gaston.generic_min_checks")
      ->Add(stats_.generic_min_checks);
  return out;
}

}  // namespace partminer
