#ifndef PARTMINER_STORAGE_PAGE_GUARD_H_
#define PARTMINER_STORAGE_PAGE_GUARD_H_

#include <utility>

#include "storage/disk_manager.h"

namespace partminer {

class SwizzlePool;
struct FrameMeta;

/// RAII shared (read) pin on one page of a SwizzlePool. While the guard is
/// live the frame cannot be evicted or exclusively latched away; the data
/// pointer stays valid. Movable, not copyable. An empty guard is inert.
///
/// Guards replace the classic pool's Fetch/Unpin pairing: the pin is the
/// object lifetime, so early returns on the Status-propagation paths cannot
/// leak pins.
class PageGuard {
 public:
  PageGuard() = default;
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      data_ = other.data_;
      id_ = other.id_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
      other.data_ = nullptr;
      other.id_ = kInvalidPageId;
    }
    return *this;
  }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  const char* data() const { return data_; }
  PageId page_id() const { return id_; }

  /// Drops the pin; the guard becomes empty. Safe on an empty guard.
  void Release();

 private:
  friend class SwizzlePool;
  void Adopt(SwizzlePool* pool, FrameMeta* frame, const char* data,
             PageId id) {
    pool_ = pool;
    frame_ = frame;
    data_ = data;
    id_ = id;
  }

  SwizzlePool* pool_ = nullptr;
  FrameMeta* frame_ = nullptr;
  const char* data_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// RAII exclusive latch + pin on one page: the holder is the only thread
/// with any access to the frame (readers spin until release). Dropping the
/// guard marks the page dirty unless set_dirty(false) was called first —
/// exclusive access is for writing.
class PageMutGuard {
 public:
  PageMutGuard() = default;
  ~PageMutGuard() { Release(); }

  PageMutGuard(PageMutGuard&& other) noexcept { *this = std::move(other); }
  PageMutGuard& operator=(PageMutGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      data_ = other.data_;
      id_ = other.id_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
      other.data_ = nullptr;
      other.id_ = kInvalidPageId;
      other.dirty_ = true;
    }
    return *this;
  }

  PageMutGuard(const PageMutGuard&) = delete;
  PageMutGuard& operator=(const PageMutGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  char* data() const { return data_; }
  PageId page_id() const { return id_; }

  /// Whether releasing will mark the page dirty (default true).
  void set_dirty(bool dirty) { dirty_ = dirty; }

  /// Unlatches and unpins; the guard becomes empty. Safe on an empty guard.
  void Release();

 private:
  friend class SwizzlePool;
  void Adopt(SwizzlePool* pool, FrameMeta* frame, char* data, PageId id) {
    pool_ = pool;
    frame_ = frame;
    data_ = data;
    id_ = id;
    dirty_ = true;
  }

  SwizzlePool* pool_ = nullptr;
  FrameMeta* frame_ = nullptr;
  char* data_ = nullptr;
  PageId id_ = kInvalidPageId;
  bool dirty_ = true;
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_PAGE_GUARD_H_
