#ifndef PARTMINER_STORAGE_BUFFER_POOL_H_
#define PARTMINER_STORAGE_BUFFER_POOL_H_

#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace partminer {

/// Fixed-capacity page cache with LRU replacement over a DiskManager. This
/// is what makes the ADI-style baseline "disk-based": its index lives in
/// pages, and scans that exceed the pool capacity pay real reads.
///
/// Pages are pinned while a caller holds them; unpinned pages are eligible
/// for eviction. Dirty pages are written back on eviction and on FlushAll.
class BufferPool {
 public:
  /// `frames` is the pool capacity in pages.
  BufferPool(DiskManager* disk, int frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id` and returns its frame data (kPageSize bytes), or nullptr
  /// when every frame is pinned. Call Unpin when done.
  char* Fetch(PageId id);

  /// Allocates a new page, pinned and zeroed. Sets `*id`.
  char* Allocate(PageId* id);

  /// Releases one pin; `dirty` marks the page for write-back.
  void Unpin(PageId id, bool dirty);

  /// Writes back every dirty page (pages stay cached).
  Status FlushAll();

  /// Drops the cache (pages must be unpinned); used around index rebuilds.
  void Clear();

  int frames() const { return static_cast<int>(frames_.size()); }
  const IoStats& stats() const { return disk_->stats(); }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::vector<char> data;
  };

  /// Returns a free frame index, evicting the LRU unpinned page if needed;
  /// -1 when everything is pinned.
  int GetVictim();

  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int> table_;  // page id -> frame index.
  std::list<int> lru_;                     // Unpinned frames, LRU first.
  std::vector<int> free_;                  // Never-used frames.
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_BUFFER_POOL_H_
