#ifndef PARTMINER_STORAGE_BUFFER_POOL_H_
#define PARTMINER_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace partminer {

/// Fixed-capacity page cache with LRU replacement over a DiskManager. This
/// is what makes the ADI-style baseline "disk-based": its index lives in
/// pages, and scans that exceed the pool capacity pay real reads.
///
/// Pages are pinned while a caller holds them; unpinned pages are eligible
/// for eviction. Dirty pages are written back on eviction and on FlushAll.
///
/// Concurrency: the pool is split into `shards` independent sub-pools (page
/// id modulo shard count), each with its own frames, hash table, LRU list
/// and mutex, so concurrent mining workers contend per shard instead of on
/// one global lock. Each shard evicts within its own frame budget; IoStats
/// counters are atomic, so totals stay exact under concurrency. The default
/// of one shard preserves the exact global-LRU behavior of the serial pool.
class BufferPool {
 public:
  /// `frames` is the pool capacity in pages, distributed evenly over
  /// `shards` (>= 1) sub-pools; `frames` must be at least `shards`.
  BufferPool(DiskManager* disk, int frames, int shards = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id` and sets `*frame` to its data (kPageSize bytes). Call
  /// Unpin when done. Fails with ResourceExhausted when every frame of the
  /// page's shard is pinned, and propagates disk errors from the eviction
  /// write-back and the page read; `*frame` is nullptr on failure and the
  /// pool state is unchanged (no pin leaks, no cached garbage).
  Status Fetch(PageId id, char** frame);

  /// Allocates a new page, pinned and zeroed. Sets `*id` and `*frame`.
  /// Same failure contract as Fetch; additionally propagates allocation
  /// faults from the disk manager.
  Status Allocate(PageId* id, char** frame);

  /// Releases one pin; `dirty` marks the page for write-back.
  void Unpin(PageId id, bool dirty);

  /// Writes back every dirty page (pages stay cached).
  Status FlushAll();

  /// Drops the cache (pages must be unpinned); used around index rebuilds.
  void Clear();

  int frames() const { return total_frames_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  const IoStats& stats() const { return disk_->stats(); }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::vector<char> data;
  };

  /// One independent sub-pool. All members are guarded by `mu`.
  struct Shard {
    std::mutex mu;
    std::vector<Frame> frames;
    std::unordered_map<PageId, int> table;  // page id -> frame index.
    std::list<int> lru;                     // Unpinned frames, LRU first.
    std::vector<int> free;                  // Never-used frames.
  };

  Shard& ShardOf(PageId id) {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  /// Finds a free frame index in `shard` (set in `*frame`), evicting its
  /// LRU unpinned page if needed. ResourceExhausted when everything is
  /// pinned; a failed dirty write-back propagates and leaves the victim
  /// cached and dirty (nothing is lost — a later flush retries). The
  /// returned frame is detached from every shard structure; the caller must
  /// install or release it. Caller holds shard.mu.
  Status GetVictim(Shard* shard, int* frame);

  DiskManager* disk_;
  int total_frames_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_BUFFER_POOL_H_
