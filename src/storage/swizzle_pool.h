#ifndef PARTMINER_STORAGE_SWIZZLE_POOL_H_
#define PARTMINER_STORAGE_SWIZZLE_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page_guard.h"
#include "storage/pool_config.h"
#include "storage/swip.h"
#include "storage/versioned_latch.h"
#include "storage/writer_pool.h"

namespace partminer {

/// Per-frame metadata for the swizzle pool. One cache line per frame: the
/// versioned latch, the pin count, and identity/state bits a reader must
/// validate. Page bytes live in a separate arena so metadata stays dense.
struct alignas(64) FrameMeta {
  VersionedLatch latch;
  /// Shared pins. Readers pin optimistically through possibly-stale swips,
  /// so transient pins on unrelated frames happen; all pin arithmetic is
  /// fetch_add/fetch_sub (never store) to keep it symmetric.
  std::atomic<int32_t> pins{0};
  std::atomic<PageId> page_id{kInvalidPageId};
  std::atomic<bool> dirty{false};
  std::atomic<bool> referenced{false};  // Clock second-chance bit.
  std::atomic<bool> cooling{false};     // Hint: queued in a cooling FIFO.
  uint32_t partition = 0;
  /// Hot-path hits, counted here because the pin fetch_add already owns the
  /// cache line; summed lazily into IoStats::pool_hits.
  std::atomic<int64_t> hits{0};
  char* data = nullptr;
};

/// LeanStore-style buffer manager. Differences from the classic BufferPool
/// that this engine exists to remove:
///
///  - **Pointer swizzling**: the page table is an array of tagged words
///    (swips); a hot page resolves to its frame with one atomic load
///    instead of a mutex + hash lookup.
///  - **Optimistic lock coupling**: readers pin and then validate the
///    frame's versioned latch + identity; they never take a mutex on a hit,
///    so read throughput scales with threads.
///  - **Clock/second-chance eviction with a cooling stage**: the sweep
///    strips referenced bits and demotes idle pages to COOLING; a touch
///    while cooling promotes back to HOT with no I/O; only the cooling FIFO
///    head is actually unswizzled. Replaces the global LRU list.
///  - **Asynchronous write-back** (writer_threads > 0): eviction enqueues
///    dirty pages on a bounded WriterPool instead of blocking on the disk;
///    FlushAll drains it. writer_threads == 0 keeps the classic synchronous
///    behavior (and its failure timing) exactly.
///
/// Fault contract (same as the classic pool): a failed read never caches
/// garbage and never leaks a pin; a failed synchronous write-back leaves
/// the victim cached + dirty and propagates; a failed asynchronous
/// write-back parks the bytes in the writer pool (re-fetches still see
/// them) and surfaces from FlushAll after a retry.
///
/// Caller rules: a thread must not FetchMut a page it already holds a guard
/// on, and must drop its guards before FlushAll/Clear.
class SwizzlePool {
 public:
  SwizzlePool(DiskManager* disk, const PoolSizing& sizing);
  ~SwizzlePool();

  SwizzlePool(const SwizzlePool&) = delete;
  SwizzlePool& operator=(const SwizzlePool&) = delete;

  /// Pins page `id` for reading. Fails with ResourceExhausted when every
  /// frame of the page's partition is pinned, and propagates disk errors;
  /// `*guard` is empty on failure and the pool state is unchanged.
  Status Fetch(PageId id, PageGuard* guard);

  /// Pins page `id` exclusively (other threads spin until release).
  Status FetchMut(PageId id, PageMutGuard* guard);

  /// Allocates a new page, exclusively pinned and zeroed, dirty by default.
  Status Allocate(PageId* id, PageMutGuard* guard);

  /// Writes back every dirty page (pages stay cached); with async
  /// write-back, drains the writer pool and retries failures — an error
  /// means some page is still unflushed (its bytes are retained).
  Status FlushAll();

  /// Drops the cache (pages must be unpinned) and cancels pending
  /// write-back; used around index rebuilds that reset the disk anyway.
  void Clear();

  int frames() const { return static_cast<int>(frames_.size()); }
  int partitions() const { return static_cast<int>(partitions_.size()); }
  int writer_threads() const { return writer_threads_; }

  /// Total hot-path hits (sums the per-frame counters).
  int64_t hit_count() const;

  /// Disk-manager stats with pool_hits synced from the per-frame counters.
  const IoStats& stats();

  /// Exports pool.* gauges (hit total, cooling depth, queue depth, frame
  /// count) to the global metrics registry; counters are maintained inline.
  void PublishMetrics();

 private:
  friend class PageGuard;
  friend class PageMutGuard;

  /// Chunked page-id -> swip array. Chunks have stable addresses so the hot
  /// path can load entries with no lock while Ensure grows the table.
  class SwipTable {
   public:
    static constexpr int kChunkBits = 12;
    static constexpr int kChunkSize = 1 << kChunkBits;
    static constexpr int kMaxChunks = 1 << 14;  // 64M pages = 256 GiB.

    SwipTable();
    ~SwipTable();
    std::atomic<uint64_t>* Find(PageId id) const;
    std::atomic<uint64_t>* Ensure(PageId id);
    void Clear();

   private:
    std::unique_ptr<std::atomic<std::atomic<uint64_t>*>[]> chunks_;
    std::mutex grow_mu_;
  };

  /// Eviction state for one partition (page id modulo partition count).
  /// All members guarded by mu. Frames never migrate between partitions.
  struct Partition {
    std::mutex mu;
    std::vector<uint32_t> frames;   // Frame indices owned by this partition.
    size_t clock_hand = 0;
    std::deque<uint32_t> cooling;   // FIFO of frame indices being cooled.
    std::vector<uint32_t> free;     // Never-used / evicted frames.
  };

  Partition& PartitionOf(PageId id) {
    return *partitions_[static_cast<size_t>(id) % partitions_.size()];
  }

  /// Hot-path resolution: returns the pinned frame for `id`, or nullptr if
  /// the caller must take the miss path (swip cold) — a retry after a lost
  /// validation loops in the caller.
  FrameMeta* TryPinHot(PageId id);

  /// Miss path: reads (or recovers from the writer pool) page `id` into a
  /// victim frame and installs it. On success the frame is latched
  /// exclusively with one pin held — the caller unlatches for shared reads.
  /// Sets `*frame` to nullptr (with Ok) when it lost the install race and
  /// the caller should retry the hot path.
  Status FetchSlow(PageId id, FrameMeta** frame);

  /// Finds a reusable frame in `part`: free list first, else evict from the
  /// cooling FIFO, refilling it with a clock sweep. Returns the frame
  /// latched, detached, with no page. Caller holds part->mu.
  Status GetVictim(Partition* part, uint32_t* frame_index);

  /// Moves up to the cooling batch of unreferenced hot frames in `part`
  /// into the cooling stage. Returns how many were cooled. Caller holds
  /// part->mu.
  int CoolFrames(Partition* part);

  /// CAS-promotes a cooling swip back to hot after `frame` was pinned and
  /// validated for `id`. No-op if another reader already promoted it.
  void PromoteFromCooling(std::atomic<uint64_t>* entry, FrameMeta* frame);

  void ReleaseRead(FrameMeta* frame);
  void ReleaseMut(FrameMeta* frame, bool dirty);

  /// Synchronous write-back used when writer_threads == 0 and by FlushAll.
  /// Caller holds the frame latch.
  Status WriteBackLocked(FrameMeta* frame, PageId id);

  DiskManager* disk_;
  int writer_threads_ = 0;
  int cooling_batch_ = 0;  // 0 = auto (frames per partition / 8, min 1).
  std::vector<FrameMeta> frames_;
  std::unique_ptr<char[]> arena_;  // frames() * kPageSize page bytes.
  std::vector<std::unique_ptr<Partition>> partitions_;
  SwipTable table_;
  std::unique_ptr<WriterPool> writer_;  // Null when writer_threads == 0.
  std::atomic<int64_t> cooling_count_{0};
};

inline void PageGuard::Release() {
  if (frame_ != nullptr) {
    pool_->ReleaseRead(frame_);
    frame_ = nullptr;
    data_ = nullptr;
    pool_ = nullptr;
    id_ = kInvalidPageId;
  }
}

inline void PageMutGuard::Release() {
  if (frame_ != nullptr) {
    pool_->ReleaseMut(frame_, dirty_);
    frame_ = nullptr;
    data_ = nullptr;
    pool_ = nullptr;
    id_ = kInvalidPageId;
    dirty_ = true;
  }
}

}  // namespace partminer

#endif  // PARTMINER_STORAGE_SWIZZLE_POOL_H_
