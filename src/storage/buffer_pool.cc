#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

BufferPool::BufferPool(DiskManager* disk, int frames, int shards)
    : disk_(disk), total_frames_(frames) {
  PM_CHECK_GT(frames, 0);
  PM_CHECK_GT(shards, 0);
  PM_CHECK_GE(frames, shards) << "every shard needs at least one frame";
  shards_.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Spread frames round-robin: shard s gets ceil or floor of frames/shards.
    const int count = frames / shards + (s < frames % shards ? 1 : 0);
    shard->frames.resize(count);
    shard->free.reserve(count);
    for (int i = count - 1; i >= 0; --i) shard->free.push_back(i);
    shards_.push_back(std::move(shard));
  }
}

Status BufferPool::GetVictim(Shard* shard, int* frame) {
  *frame = -1;
  if (!shard->free.empty()) {
    *frame = shard->free.back();
    shard->free.pop_back();
    shard->frames[*frame].data.resize(kPageSize);
    return Status::Ok();
  }
  for (auto it = shard->lru.begin(); it != shard->lru.end(); ++it) {
    Frame& f = shard->frames[*it];
    if (f.pin_count == 0) {
      if (f.dirty) {
        // Write back before detaching anything: on failure the page stays
        // cached, dirty, and evictable, so no data is lost.
        PARTMINER_RETURN_IF_ERROR_CTX(
            disk_->WritePage(f.page_id, f.data.data()),
            "evicting page " + std::to_string(f.page_id));
        f.dirty = false;
      }
      *frame = *it;
      shard->lru.erase(it);
      shard->table.erase(f.page_id);
      ++disk_->mutable_stats()->evictions;
      PM_METRIC_COUNTER("storage.pool_evictions")->Increment();
      return Status::Ok();
    }
  }
  return Status::ResourceExhausted("buffer pool shard exhausted: all " +
                                   std::to_string(shard->frames.size()) +
                                   " frames pinned");
}

Status BufferPool::Fetch(PageId id, char** frame) {
  *frame = nullptr;
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    Frame& f = shard.frames[it->second];
    if (f.pin_count == 0) shard.lru.remove(it->second);
    ++f.pin_count;
    ++disk_->mutable_stats()->pool_hits;
    PM_METRIC_COUNTER("storage.pool_hits")->Increment();
    *frame = f.data.data();
    return Status::Ok();
  }
  ++disk_->mutable_stats()->pool_misses;
  PM_METRIC_COUNTER("storage.pool_misses")->Increment();
  int victim = -1;
  PARTMINER_RETURN_IF_ERROR_CTX(GetVictim(&shard, &victim),
                                "fetching page " + std::to_string(id));
  Frame& f = shard.frames[victim];
  // Read into the detached frame before installing it, so a failed read
  // returns the frame to the free list instead of caching garbage.
  const Status read = disk_->ReadPage(id, f.data.data());
  if (!read.ok()) {
    shard.free.push_back(victim);
    return read.WithContext("fetching page " + std::to_string(id));
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  shard.table[id] = victim;
  *frame = f.data.data();
  return Status::Ok();
}

Status BufferPool::Allocate(PageId* id, char** frame) {
  *frame = nullptr;
  PARTMINER_RETURN_IF_ERROR_CTX(disk_->Allocate(id), "allocating page");
  Shard& shard = ShardOf(*id);
  std::lock_guard<std::mutex> lock(shard.mu);
  int victim = -1;
  PARTMINER_RETURN_IF_ERROR_CTX(
      GetVictim(&shard, &victim),
      "allocating page " + std::to_string(*id));
  Frame& f = shard.frames[victim];
  f.page_id = *id;
  f.pin_count = 1;
  f.dirty = true;  // New pages must reach disk even if never re-written.
  std::memset(f.data.data(), 0, kPageSize);
  shard.table[*id] = victim;
  *frame = f.data.data();
  return Status::Ok();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  PM_CHECK(it != shard.table.end()) << "unpin of uncached page " << id;
  Frame& f = shard.frames[it->second];
  PM_CHECK_GT(f.pin_count, 0);
  f.dirty = f.dirty || dirty;
  if (--f.pin_count == 0) shard.lru.push_back(it->second);
}

Status BufferPool::FlushAll() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [page_id, frame] : shard->table) {
      Frame& f = shard->frames[frame];
      if (f.dirty) {
        PARTMINER_RETURN_IF_ERROR_CTX(
            disk_->WritePage(page_id, f.data.data()),
            "flushing page " + std::to_string(page_id));
        f.dirty = false;
      }
    }
  }
  return Status::Ok();
}

void BufferPool::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [page_id, frame] : shard->table) {
      PM_CHECK_EQ(shard->frames[frame].pin_count, 0)
          << "Clear with pinned page " << page_id;
    }
    shard->table.clear();
    shard->lru.clear();
    shard->free.clear();
    for (int i = static_cast<int>(shard->frames.size()) - 1; i >= 0; --i) {
      shard->frames[i] = Frame();
      shard->free.push_back(i);
    }
  }
}

}  // namespace partminer
