#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

BufferPool::BufferPool(DiskManager* disk, int frames) : disk_(disk) {
  PM_CHECK_GT(frames, 0);
  frames_.resize(frames);
  free_.reserve(frames);
  for (int i = frames - 1; i >= 0; --i) free_.push_back(i);
}

int BufferPool::GetVictim() {
  if (!free_.empty()) {
    const int frame = free_.back();
    free_.pop_back();
    frames_[frame].data.resize(kPageSize);
    return frame;
  }
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Frame& f = frames_[*it];
    if (f.pin_count == 0) {
      const int frame = *it;
      lru_.erase(it);
      if (f.dirty) {
        PM_CHECK(disk_->WritePage(f.page_id, f.data.data()).ok());
        f.dirty = false;
      }
      table_.erase(f.page_id);
      ++disk_->mutable_stats()->evictions;
      PM_METRIC_COUNTER("storage.pool_evictions")->Increment();
      return frame;
    }
  }
  return -1;
}

char* BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count == 0) lru_.remove(it->second);
    ++f.pin_count;
    ++disk_->mutable_stats()->pool_hits;
    PM_METRIC_COUNTER("storage.pool_hits")->Increment();
    return f.data.data();
  }
  ++disk_->mutable_stats()->pool_misses;
  PM_METRIC_COUNTER("storage.pool_misses")->Increment();
  const int frame = GetVictim();
  if (frame < 0) return nullptr;
  Frame& f = frames_[frame];
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  PM_CHECK(disk_->ReadPage(id, f.data.data()).ok());
  table_[id] = frame;
  return f.data.data();
}

char* BufferPool::Allocate(PageId* id) {
  *id = disk_->Allocate();
  const int frame = GetVictim();
  if (frame < 0) return nullptr;
  Frame& f = frames_[frame];
  f.page_id = *id;
  f.pin_count = 1;
  f.dirty = true;  // New pages must reach disk even if never re-written.
  std::memset(f.data.data(), 0, kPageSize);
  table_[*id] = frame;
  return f.data.data();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = table_.find(id);
  PM_CHECK(it != table_.end()) << "unpin of uncached page " << id;
  Frame& f = frames_[it->second];
  PM_CHECK_GT(f.pin_count, 0);
  f.dirty = f.dirty || dirty;
  if (--f.pin_count == 0) lru_.push_back(it->second);
}

Status BufferPool::FlushAll() {
  for (auto& [page_id, frame] : table_) {
    Frame& f = frames_[frame];
    if (f.dirty) {
      PARTMINER_RETURN_IF_ERROR(disk_->WritePage(page_id, f.data.data()));
      f.dirty = false;
    }
  }
  return Status::Ok();
}

void BufferPool::Clear() {
  for (const auto& [page_id, frame] : table_) {
    PM_CHECK_EQ(frames_[frame].pin_count, 0)
        << "Clear with pinned page " << page_id;
  }
  table_.clear();
  lru_.clear();
  free_.clear();
  for (int i = static_cast<int>(frames_.size()) - 1; i >= 0; --i) {
    frames_[i] = Frame();
    free_.push_back(i);
  }
}

}  // namespace partminer
