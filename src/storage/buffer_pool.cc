#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

BufferPool::BufferPool(DiskManager* disk, int frames, int shards)
    : disk_(disk), total_frames_(frames) {
  PM_CHECK_GT(frames, 0);
  PM_CHECK_GT(shards, 0);
  PM_CHECK_GE(frames, shards) << "every shard needs at least one frame";
  shards_.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Spread frames round-robin: shard s gets ceil or floor of frames/shards.
    const int count = frames / shards + (s < frames % shards ? 1 : 0);
    shard->frames.resize(count);
    shard->free.reserve(count);
    for (int i = count - 1; i >= 0; --i) shard->free.push_back(i);
    shards_.push_back(std::move(shard));
  }
}

int BufferPool::GetVictim(Shard* shard) {
  if (!shard->free.empty()) {
    const int frame = shard->free.back();
    shard->free.pop_back();
    shard->frames[frame].data.resize(kPageSize);
    return frame;
  }
  for (auto it = shard->lru.begin(); it != shard->lru.end(); ++it) {
    Frame& f = shard->frames[*it];
    if (f.pin_count == 0) {
      const int frame = *it;
      shard->lru.erase(it);
      if (f.dirty) {
        PM_CHECK(disk_->WritePage(f.page_id, f.data.data()).ok());
        f.dirty = false;
      }
      shard->table.erase(f.page_id);
      ++disk_->mutable_stats()->evictions;
      PM_METRIC_COUNTER("storage.pool_evictions")->Increment();
      return frame;
    }
  }
  return -1;
}

char* BufferPool::Fetch(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    Frame& f = shard.frames[it->second];
    if (f.pin_count == 0) shard.lru.remove(it->second);
    ++f.pin_count;
    ++disk_->mutable_stats()->pool_hits;
    PM_METRIC_COUNTER("storage.pool_hits")->Increment();
    return f.data.data();
  }
  ++disk_->mutable_stats()->pool_misses;
  PM_METRIC_COUNTER("storage.pool_misses")->Increment();
  const int frame = GetVictim(&shard);
  if (frame < 0) return nullptr;
  Frame& f = shard.frames[frame];
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  PM_CHECK(disk_->ReadPage(id, f.data.data()).ok());
  shard.table[id] = frame;
  return f.data.data();
}

char* BufferPool::Allocate(PageId* id) {
  *id = disk_->Allocate();
  Shard& shard = ShardOf(*id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const int frame = GetVictim(&shard);
  if (frame < 0) return nullptr;
  Frame& f = shard.frames[frame];
  f.page_id = *id;
  f.pin_count = 1;
  f.dirty = true;  // New pages must reach disk even if never re-written.
  std::memset(f.data.data(), 0, kPageSize);
  shard.table[*id] = frame;
  return f.data.data();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  PM_CHECK(it != shard.table.end()) << "unpin of uncached page " << id;
  Frame& f = shard.frames[it->second];
  PM_CHECK_GT(f.pin_count, 0);
  f.dirty = f.dirty || dirty;
  if (--f.pin_count == 0) shard.lru.push_back(it->second);
}

Status BufferPool::FlushAll() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [page_id, frame] : shard->table) {
      Frame& f = shard->frames[frame];
      if (f.dirty) {
        PARTMINER_RETURN_IF_ERROR(disk_->WritePage(page_id, f.data.data()));
        f.dirty = false;
      }
    }
  }
  return Status::Ok();
}

void BufferPool::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [page_id, frame] : shard->table) {
      PM_CHECK_EQ(shard->frames[frame].pin_count, 0)
          << "Clear with pinned page " << page_id;
    }
    shard->table.clear();
    shard->lru.clear();
    shard->free.clear();
    for (int i = static_cast<int>(shard->frames.size()) - 1; i >= 0; --i) {
      shard->frames[i] = Frame();
      shard->free.push_back(i);
    }
  }
}

}  // namespace partminer
