#include "storage/writer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

WriterPool::WriterPool(DiskManager* disk, int threads, int queue_capacity)
    : disk_(disk), queue_capacity_(static_cast<size_t>(queue_capacity)) {
  PM_CHECK_GT(threads, 0);
  PM_CHECK_GT(queue_capacity, 0);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WriterPool::~WriterPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int WriterPool::NextRunnableLocked() const {
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (in_flight_pages_.count(queue_[i]->id) == 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void WriterPool::UpdateDepthLocked() {
  const int64_t depth =
      static_cast<int64_t>(queue_.size() + in_flight_pages_.size());
  depth_.store(depth, std::memory_order_relaxed);
  PM_METRIC_GAUGE("pool.writeback_queue_depth")->Set(depth);
}

void WriterPool::Enqueue(PageId id, const char* data) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = latest_.find(id);
  if (it != latest_.end() && in_flight_pages_.count(id) == 0) {
    // The newest job for this page has not started: overwrite its bytes in
    // place (coalescing), and if it had failed, move it back to the queue
    // for another attempt with the fresh data.
    Job* job = it->second;
    std::memcpy(job->data.get(), data, kPageSize);
    auto failed_it = std::find_if(
        failed_.begin(), failed_.end(),
        [job](const std::unique_ptr<Job>& j) { return j.get() == job; });
    if (failed_it != failed_.end()) {
      queue_.push_back(std::move(*failed_it));
      failed_.erase(failed_it);
      work_cv_.notify_one();
    }
    PM_METRIC_COUNTER("pool.writeback_coalesced")->Increment();
    UpdateDepthLocked();
    return;
  }
  space_cv_.wait(lock, [this] {
    return stop_ || queue_.size() < queue_capacity_;
  });
  if (stop_) return;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->data = std::make_unique<char[]>(kPageSize);
  std::memcpy(job->data.get(), data, kPageSize);
  latest_[id] = job.get();
  queue_.push_back(std::move(job));
  UpdateDepthLocked();
  work_cv_.notify_one();
}

bool WriterPool::Lookup(PageId id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(id);
  if (it == latest_.end()) return false;
  std::memcpy(out, it->second->data.get(), kPageSize);
  return true;
}

void WriterPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    int idx = -1;
    work_cv_.wait(lock, [this, &idx] {
      if (stop_) return true;
      idx = NextRunnableLocked();
      return idx >= 0;
    });
    if (stop_) return;
    std::unique_ptr<Job> job = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + idx);
    in_flight_pages_.insert(job->id);
    UpdateDepthLocked();
    space_cv_.notify_one();
    lock.unlock();
    const Status write = disk_->WritePage(job->id, job->data.get());
    lock.lock();
    in_flight_pages_.erase(job->id);
    if (write.ok()) {
      PM_METRIC_COUNTER("pool.writeback_pages")->Increment();
      // A newer job for the page may have been queued while we wrote; only
      // retire the mapping if it still names this job.
      auto it = latest_.find(job->id);
      if (it != latest_.end() && it->second == job.get()) latest_.erase(it);
      job.reset();
    } else {
      PM_METRIC_COUNTER("pool.writeback_failures")->Increment();
      sticky_ = write;
      auto it = latest_.find(job->id);
      if (it != latest_.end() && it->second != job.get()) {
        // Superseded by a newer job: this buffer is stale, drop it — the
        // newer job still carries the page.
        job.reset();
      } else {
        failed_.push_back(std::move(job));
      }
    }
    UpdateDepthLocked();
    // A finished page may unblock a queued job for the same page.
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

Status WriterPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && in_flight_pages_.empty();
  });
  // Retry failures synchronously; holding mu_ here is fine — the workers
  // are idle and correctness beats overlap on this cold path.
  Status last = Status::Ok();
  for (size_t i = 0; i < failed_.size();) {
    Job* job = failed_[i].get();
    const Status retry = disk_->WritePage(job->id, job->data.get());
    if (retry.ok()) {
      PM_METRIC_COUNTER("pool.writeback_pages")->Increment();
      auto it = latest_.find(job->id);
      if (it != latest_.end() && it->second == job) latest_.erase(it);
      failed_.erase(failed_.begin() + i);
    } else {
      PM_METRIC_COUNTER("pool.writeback_failures")->Increment();
      last = retry;
      ++i;
    }
  }
  if (!failed_.empty()) {
    sticky_ = last;
    return last.WithContext("async write-back: " +
                            std::to_string(failed_.size()) +
                            " page(s) still unflushed");
  }
  sticky_ = Status::Ok();
  return Status::Ok();
}

void WriterPool::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  failed_.clear();
  // In-flight jobs are owned by workers and will unhook themselves; their
  // latest_ entries vanish on completion or were superseded. Entries for
  // queued/failed jobs must go now since their storage is gone.
  for (auto it = latest_.begin(); it != latest_.end();) {
    if (in_flight_pages_.count(it->first) == 0) {
      it = latest_.erase(it);
    } else {
      ++it;
    }
  }
  sticky_ = Status::Ok();
  UpdateDepthLocked();
  space_cv_.notify_all();
}

int64_t WriterPool::failed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(failed_.size());
}

}  // namespace partminer
