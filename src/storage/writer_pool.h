#ifndef PARTMINER_STORAGE_WRITER_POOL_H_
#define PARTMINER_STORAGE_WRITER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace partminer {

/// Background write-back pool: eviction hands dirty pages here instead of
/// blocking on WritePage, so write I/O overlaps mining. Jobs carry a private
/// copy of the page, the queue is bounded (a full queue backpressures the
/// evictor), and writes to the same page never run concurrently or out of
/// order.
///
/// Failure contract (degrade, don't die, and never lose data): a failed
/// write parks its job on a failed list — the page bytes stay in the job
/// buffer, Lookup() keeps serving them to re-fetches, and Drain() retries
/// them synchronously. Only when a retry also fails does Drain surface the
/// error; until some flush succeeds the data is never dropped.
class WriterPool {
 public:
  /// Starts `threads` (>= 1) workers. `queue_capacity` bounds the number of
  /// queued-but-not-started jobs.
  WriterPool(DiskManager* disk, int threads, int queue_capacity);

  /// Stops the workers. Jobs still queued are abandoned (the owning pool
  /// drains via FlushAll before teardown on every path that cares).
  ~WriterPool();

  WriterPool(const WriterPool&) = delete;
  WriterPool& operator=(const WriterPool&) = delete;

  /// Queues a write of `data` (kPageSize bytes, copied) to page `id`.
  /// Coalesces with a not-yet-started or failed job for the same page;
  /// blocks while the queue is full.
  void Enqueue(PageId id, const char* data);

  /// If a write for `id` is pending, in flight, or failed, copies its
  /// newest buffered bytes (the freshest version of the page — possibly
  /// newer than disk) into `out` and returns true.
  bool Lookup(PageId id, char* out);

  /// Waits until the queue and in-flight set are empty, then synchronously
  /// retries every failed job. Ok iff every page reached disk; otherwise
  /// the last write error (failed jobs stay buffered for the next Drain).
  Status Drain();

  /// Drops every job, pending or failed, and clears the error state. Used
  /// by Clear()/Reset() paths that discard the cache wholesale.
  void CancelAll();

  /// Queued + in-flight jobs, for the pool.writeback_queue_depth gauge.
  int64_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

  int64_t failed_count() const;

 private:
  struct Job {
    PageId id = kInvalidPageId;
    std::unique_ptr<char[]> data;
  };

  void WorkerLoop();
  /// Index of the first queued job whose page is not in flight; -1 if none.
  int NextRunnableLocked() const;
  void UpdateDepthLocked();

  DiskManager* disk_;
  const size_t queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait for runnable jobs.
  std::condition_variable space_cv_;  // Enqueue waits for queue space.
  std::condition_variable idle_cv_;   // Drain waits for quiescence.
  std::deque<std::unique_ptr<Job>> queue_;
  /// Newest job per page (queued, in flight, or failed). The pointee is
  /// owned by queue_, failed_, or — while in flight — the worker's stack;
  /// a worker only frees its job after re-locking mu_ and unhooking it.
  std::unordered_map<PageId, Job*> latest_;
  std::unordered_set<PageId> in_flight_pages_;
  std::vector<std::unique_ptr<Job>> failed_;
  Status sticky_;  // Last unretired write error; Ok when all clean.
  bool stop_ = false;
  std::atomic<int64_t> depth_{0};

  std::vector<std::thread> workers_;
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_WRITER_POOL_H_
