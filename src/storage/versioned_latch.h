#ifndef PARTMINER_STORAGE_VERSIONED_LATCH_H_
#define PARTMINER_STORAGE_VERSIONED_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace partminer {

/// Seqlock-style versioned latch, the LeanStore-shaped primitive behind
/// optimistic lock coupling: a single 64-bit word whose low bit says
/// "exclusively locked" and whose upper bits count versions. Readers never
/// modify the word — they sample it, do their read, and re-validate that the
/// version is unchanged and was never locked; writers CAS the lock bit in
/// and bump the version on the way out, so any overlap invalidates the
/// optimistic read.
///
/// Even word = unlocked, odd = exclusively locked. Unlock adds one, which
/// both clears the lock bit and advances the version.
class VersionedLatch {
 public:
  VersionedLatch() = default;
  VersionedLatch(const VersionedLatch&) = delete;
  VersionedLatch& operator=(const VersionedLatch&) = delete;

  /// Acquires the exclusive lock iff it is free. Never blocks.
  bool TryLockExclusive() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    if (v & 1) return false;
    return word_.compare_exchange_strong(v, v + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
  }

  /// Spins (with yields) until the exclusive lock is acquired. Only used on
  /// slow paths that are known not to self-deadlock (FlushAll, Clear).
  void LockExclusive() {
    for (int spin = 0; !TryLockExclusive(); ++spin) {
      if (spin % 64 == 63) std::this_thread::yield();
    }
  }

  /// Releases the exclusive lock and advances the version. Release order
  /// publishes every write made under the lock to validating readers.
  void Unlock() { word_.fetch_add(1, std::memory_order_release); }

  bool IsLocked(std::memory_order order = std::memory_order_seq_cst) const {
    return (word_.load(order) & 1) != 0;
  }

  /// Starts an optimistic read: returns the current version. If the word is
  /// locked the returned value is odd and can never validate, so callers
  /// just retry.
  uint64_t OptimisticVersion() const {
    return word_.load(std::memory_order_acquire);
  }

  /// Ends an optimistic read started at `version`: true iff no writer held
  /// or took the latch in between (reads done under it are consistent).
  bool Validate(uint64_t version) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return (version & 1) == 0 &&
           word_.load(std::memory_order_relaxed) == version;
  }

  uint64_t word_for_test() const {
    return word_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> word_{0};
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_VERSIONED_LATCH_H_
