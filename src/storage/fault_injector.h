#ifndef PARTMINER_STORAGE_FAULT_INJECTOR_H_
#define PARTMINER_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/random.h"
#include "common/status.h"

namespace partminer {

/// Deterministic fault-injection hook for the storage layer. A DiskManager
/// with an injector attached consults it before every page read, page write
/// and page allocation; a scheduled fault makes the operation return a
/// non-OK Status (tagged "injected") without touching the backing file.
///
/// Two scheduling modes, combinable per operation:
///
///  - Probabilistic: each operation of kind `op` fails independently with
///    probability p, drawn from a seeded Rng — the same seed and the same
///    operation sequence always fail at the same points.
///  - Scripted: FailOnce(op, n) fails exactly the (n+1)-th operation of that
///    kind; FailN(op, n, count) fails `count` consecutive operations
///    starting there. Scripted faults fire regardless of the probability.
///
/// Thread safety: ShouldFail is serialized by a mutex so the sharded buffer
/// pool can drive one injector from many workers. Under concurrency the
/// per-seed fault *points* depend on the interleaving of operations, but
/// every decision is still drawn from the same deterministic stream.
class FaultInjector {
 public:
  enum class Op { kRead = 0, kWrite = 1, kAlloc = 2 };
  static constexpr int kOpCount = 3;

  explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

  /// Every operation of kind `op` fails independently with probability `p`.
  void SetProbability(Op op, double p);

  /// Fails exactly the (`after_n`+1)-th future operation of kind `op`
  /// (after_n counts operations seen from now on, so 0 fails the next one).
  void FailOnce(Op op, int after_n) { FailN(op, after_n, 1); }

  /// Fails `count` consecutive operations of kind `op` starting `after_n`
  /// operations from now.
  void FailN(Op op, int after_n, int count);

  /// Clears every schedule and probability; counters keep running.
  void Reset();

  /// Consulted by the storage layer: true when this operation must fail.
  bool ShouldFail(Op op);

  /// Total operations observed / faults injected, per op kind.
  int64_t operations(Op op) const;
  int64_t injected(Op op) const;
  int64_t total_injected() const;

  static const char* OpName(Op op);

  /// Canonical status for an injected fault ("injected read fault: page 7").
  static Status InjectedFault(Op op, const std::string& detail);

 private:
  struct PerOp {
    double probability = 0;
    int64_t seen = 0;      // Operations of this kind observed.
    int64_t injected = 0;  // Faults delivered.
    // Scripted window [fail_from, fail_from + fail_count) in `seen` counts;
    // fail_from < 0 means no script armed.
    int64_t fail_from = -1;
    int64_t fail_count = 0;
  };

  mutable std::mutex mu_;
  Rng rng_;
  PerOp per_op_[kOpCount];
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_FAULT_INJECTOR_H_
