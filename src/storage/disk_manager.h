#ifndef PARTMINER_STORAGE_DISK_MANAGER_H_
#define PARTMINER_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/fault_injector.h"
#include "storage/io_stats.h"

namespace partminer {

/// Page size of the storage layer. 4 KiB, the usual unit of database I/O.
constexpr int kPageSize = 4096;

using PageId = int32_t;
constexpr PageId kInvalidPageId = -1;

/// File-backed page store. Pages are allocated append-only; reads and writes
/// go through pread/pwrite on a real file, so the disk-based baseline pays
/// real system-call and file-cache costs.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating or truncating) the backing file.
  Status Open(const std::string& path);

  /// Closes and removes the backing file.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  int page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }

  /// Allocates a fresh zero page; sets `*id`. Fails only under fault
  /// injection (page allocation models file growth, which can fail on a
  /// real device); `*id` is kInvalidPageId on failure.
  Status Allocate(PageId* id);

  /// Reads page `id` into `out` (kPageSize bytes).
  Status ReadPage(PageId id, char* out);

  /// Writes kPageSize bytes from `data` to page `id`.
  Status WritePage(PageId id, const char* data);

  /// Drops all pages (file truncated); used by index rebuilds.
  Status Reset();

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  /// Simulated per-page access latency in microseconds, busy-waited on each
  /// ReadPage/WritePage. The paper's baseline ran against a disk-resident
  /// database on 2006 hardware; on a laptop-scale reproduction the page file
  /// sits in the OS cache, so the experiment harnesses use this to model the
  /// device the paper's ADIMINE actually paid for (100us ~ a sequential
  /// 4 KiB access on a 2006 SATA disk). Zero (the default) disables it.
  void set_simulated_latency_us(int us) { simulated_latency_us_ = us; }
  int simulated_latency_us() const { return simulated_latency_us_; }

  /// Attaches a fault injector consulted before every read/write/alloc
  /// (nullptr detaches). Not owned; must outlive the manager or be detached
  /// first. Injected faults surface as Status::IoError tagged "injected"
  /// and are counted in stats().injected_faults.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

 private:
  void SimulateLatency() const;

  /// Returns the injected fault for `op`, or OK. Bumps the stat counter.
  Status CheckFault(FaultInjector::Op op, PageId id);

  int fd_ = -1;
  std::string path_;
  /// Atomic: Allocate may be called from concurrent buffer-pool shards.
  /// Reads/writes to distinct pages go through pread/pwrite, which are
  /// thread-safe on a shared descriptor.
  std::atomic<int> page_count_{0};
  int simulated_latency_us_ = 0;
  FaultInjector* fault_injector_ = nullptr;
  IoStats stats_;
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_DISK_MANAGER_H_
