#ifndef PARTMINER_STORAGE_SWIP_H_
#define PARTMINER_STORAGE_SWIP_H_

#include <cstdint>

namespace partminer {

struct FrameMeta;

/// A swip ("swizzled pointer", after LeanStore) is the page table's word for
/// one page: either COLD (the page is not resident and must be read from
/// disk) or a direct pointer to the frame holding it. Hot-path fetches
/// dereference the pointer — no hash lookup, no table mutex. The low two
/// pointer bits (free because frames are 64-byte aligned) tag the state:
///
///   0                     COLD     not resident
///   frame | kResidentBit  HOT      resident, referenced directly
///   frame | kResidentBit
///         | kCoolingBit   COOLING  resident but queued for eviction; an
///                                  access CAS-promotes it back to HOT with
///                                  no I/O (the second-chance LeanStore
///                                  cooling stage)
namespace swip {

inline constexpr uint64_t kCold = 0;
inline constexpr uint64_t kResidentBit = 1;
inline constexpr uint64_t kCoolingBit = 2;

inline uint64_t MakeHot(FrameMeta* frame) {
  return reinterpret_cast<uint64_t>(frame) | kResidentBit;
}

inline uint64_t MakeCooling(FrameMeta* frame) {
  return reinterpret_cast<uint64_t>(frame) | kResidentBit | kCoolingBit;
}

inline bool IsResident(uint64_t s) { return (s & kResidentBit) != 0; }
inline bool IsCooling(uint64_t s) { return (s & kCoolingBit) != 0; }

inline FrameMeta* FrameOf(uint64_t s) {
  return reinterpret_cast<FrameMeta*>(s & ~uint64_t{3});
}

}  // namespace swip

}  // namespace partminer

#endif  // PARTMINER_STORAGE_SWIP_H_
