#include "storage/swizzle_pool.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

// ---------------------------------------------------------------- SwipTable

SwizzlePool::SwipTable::SwipTable()
    : chunks_(new std::atomic<std::atomic<uint64_t>*>[kMaxChunks]) {
  for (int i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

SwizzlePool::SwipTable::~SwipTable() {
  for (int i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

std::atomic<uint64_t>* SwizzlePool::SwipTable::Find(PageId id) const {
  const int chunk_index = id >> kChunkBits;
  if (chunk_index < 0 || chunk_index >= kMaxChunks) return nullptr;
  std::atomic<uint64_t>* chunk =
      chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk[id & (kChunkSize - 1)];
}

std::atomic<uint64_t>* SwizzlePool::SwipTable::Ensure(PageId id) {
  const int chunk_index = id >> kChunkBits;
  PM_CHECK_GE(chunk_index, 0);
  PM_CHECK_LT(chunk_index, kMaxChunks) << "page id beyond swip table bound";
  std::atomic<uint64_t>* chunk =
      chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    std::lock_guard<std::mutex> lock(grow_mu_);
    chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      auto* fresh = new std::atomic<uint64_t>[kChunkSize];
      for (int i = 0; i < kChunkSize; ++i) {
        fresh[i].store(swip::kCold, std::memory_order_relaxed);
      }
      chunks_[chunk_index].store(fresh, std::memory_order_release);
      chunk = fresh;
    }
  }
  return &chunk[id & (kChunkSize - 1)];
}

void SwizzlePool::SwipTable::Clear() {
  for (int c = 0; c < kMaxChunks; ++c) {
    std::atomic<uint64_t>* chunk = chunks_[c].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (int i = 0; i < kChunkSize; ++i) {
      chunk[i].store(swip::kCold, std::memory_order_release);
    }
  }
}

// ------------------------------------------------------------ construction

SwizzlePool::SwizzlePool(DiskManager* disk, const PoolSizing& sizing)
    : disk_(disk),
      writer_threads_(sizing.writer_threads),
      cooling_batch_(sizing.cooling_batch),
      frames_(static_cast<size_t>(sizing.frames)) {
  PM_CHECK_GT(sizing.frames, 0);
  PM_CHECK_GT(sizing.partitions, 0);
  PM_CHECK_GE(sizing.frames, sizing.partitions)
      << "every partition needs at least one frame";
  arena_.reset(new char[static_cast<size_t>(sizing.frames) * kPageSize]);
  partitions_.reserve(sizing.partitions);
  for (int p = 0; p < sizing.partitions; ++p) {
    partitions_.push_back(std::make_unique<Partition>());
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    FrameMeta& f = frames_[i];
    f.data = arena_.get() + i * kPageSize;
    f.partition = static_cast<uint32_t>(i % partitions_.size());
    partitions_[f.partition]->frames.push_back(static_cast<uint32_t>(i));
  }
  for (auto& part : partitions_) {
    part->free.assign(part->frames.rbegin(), part->frames.rend());
  }
  if (writer_threads_ > 0) {
    writer_ = std::make_unique<WriterPool>(disk_, writer_threads_,
                                           sizing.writeback_queue);
  }
}

SwizzlePool::~SwizzlePool() = default;

// ---------------------------------------------------------------- hot path

FrameMeta* SwizzlePool::TryPinHot(PageId id) {
  for (int attempt = 0;; ++attempt) {
    std::atomic<uint64_t>* entry = table_.Find(id);
    if (entry == nullptr) return nullptr;
    const uint64_t s = entry->load(std::memory_order_acquire);
    if (!swip::IsResident(s)) return nullptr;
    FrameMeta* f = swip::FrameOf(s);
    // Pin first, then validate. The seq_cst pin RMW totally orders against
    // the evictor's latch CAS + pins check: either the evictor saw our pin
    // and aborted, or we see its latch and back off — the pin can never
    // outlive an eviction it failed to prevent.
    f->pins.fetch_add(1, std::memory_order_seq_cst);
    if (!f->latch.IsLocked(std::memory_order_seq_cst) &&
        f->page_id.load(std::memory_order_seq_cst) == id) {
      f->referenced.store(true, std::memory_order_relaxed);
      f->hits.fetch_add(1, std::memory_order_relaxed);
      if (swip::IsCooling(s)) PromoteFromCooling(entry, f);
      return f;
    }
    f->pins.fetch_sub(1, std::memory_order_seq_cst);
    // The frame is latched (writer, flusher, or mid-eviction) or was reused
    // for another page; re-read the swip and retry or fall to the miss path.
    if (attempt % 64 == 63) std::this_thread::yield();
  }
}

Status SwizzlePool::Fetch(PageId id, PageGuard* guard) {
  guard->Release();
  for (;;) {
    if (FrameMeta* f = TryPinHot(id)) {
      guard->Adopt(this, f, f->data, id);
      return Status::Ok();
    }
    FrameMeta* f = nullptr;
    PARTMINER_RETURN_IF_ERROR(FetchSlow(id, &f));
    if (f == nullptr) continue;  // Lost the install race; page is hot now.
    f->latch.Unlock();           // Shared read: keep the pin, drop the latch.
    guard->Adopt(this, f, f->data, id);
    return Status::Ok();
  }
}

Status SwizzlePool::FetchMut(PageId id, PageMutGuard* guard) {
  guard->Release();
  for (int attempt = 0;; ++attempt) {
    FrameMeta* f = TryPinHot(id);
    if (f == nullptr) {
      PARTMINER_RETURN_IF_ERROR(FetchSlow(id, &f));
      if (f == nullptr) continue;
    } else if (!f->latch.TryLockExclusive()) {
      f->pins.fetch_sub(1, std::memory_order_seq_cst);
      if (attempt % 64 == 63) std::this_thread::yield();
      continue;
    }
    // Latched + pinned. A validated pin blocks eviction, so the identity
    // check held at pin time still holds. Wait out transient probe pins and
    // concurrent readers; ours must be the only survivor.
    while (f->pins.load(std::memory_order_seq_cst) != 1) {
      std::this_thread::yield();
    }
    guard->Adopt(this, f, f->data, id);
    return Status::Ok();
  }
}

Status SwizzlePool::Allocate(PageId* id, PageMutGuard* guard) {
  guard->Release();
  *id = kInvalidPageId;
  PARTMINER_RETURN_IF_ERROR_CTX(disk_->Allocate(id), "allocating page");
  Partition& part = PartitionOf(*id);
  std::lock_guard<std::mutex> lock(part.mu);
  uint32_t fi = 0;
  PARTMINER_RETURN_IF_ERROR_CTX(GetVictim(&part, &fi),
                                "allocating page " + std::to_string(*id));
  FrameMeta& f = frames_[fi];
  std::memset(f.data, 0, kPageSize);
  f.page_id.store(*id, std::memory_order_seq_cst);
  f.dirty.store(true, std::memory_order_relaxed);  // Must reach disk.
  f.referenced.store(true, std::memory_order_relaxed);
  f.pins.fetch_add(1, std::memory_order_seq_cst);
  table_.Ensure(*id)->store(swip::MakeHot(&f), std::memory_order_release);
  guard->Adopt(this, &f, f.data, *id);  // Latch stays held until release.
  return Status::Ok();
}

// --------------------------------------------------------------- miss path

Status SwizzlePool::FetchSlow(PageId id, FrameMeta** frame) {
  *frame = nullptr;
  Partition& part = PartitionOf(id);
  std::lock_guard<std::mutex> lock(part.mu);
  std::atomic<uint64_t>* entry = table_.Ensure(id);
  if (swip::IsResident(entry->load(std::memory_order_acquire))) {
    return Status::Ok();  // Someone installed it while we waited; retry hot.
  }
  ++disk_->mutable_stats()->pool_misses;
  PM_METRIC_COUNTER("pool.misses")->Increment();
  uint32_t fi = 0;
  PARTMINER_RETURN_IF_ERROR_CTX(GetVictim(&part, &fi),
                                "fetching page " + std::to_string(id));
  FrameMeta& f = frames_[fi];
  // Bytes still sitting in the write-back pool are newer than (or absent
  // from) disk; prefer them so async eviction can never serve stale data.
  if (writer_ == nullptr || !writer_->Lookup(id, f.data)) {
    const Status read = disk_->ReadPage(id, f.data);
    if (!read.ok()) {
      // Failed read: the latched, detached frame goes back to the free
      // list. No garbage is cached, no pin leaks.
      f.page_id.store(kInvalidPageId, std::memory_order_seq_cst);
      f.latch.Unlock();
      part.free.push_back(fi);
      return read.WithContext("fetching page " + std::to_string(id));
    }
  }
  f.page_id.store(id, std::memory_order_seq_cst);
  f.dirty.store(false, std::memory_order_relaxed);
  f.referenced.store(true, std::memory_order_relaxed);
  f.pins.fetch_add(1, std::memory_order_seq_cst);
  entry->store(swip::MakeHot(&f), std::memory_order_release);
  *frame = &f;
  return Status::Ok();
}

Status SwizzlePool::GetVictim(Partition* part, uint32_t* frame_index) {
  if (!part->free.empty()) {
    const uint32_t fi = part->free.back();
    part->free.pop_back();
    // Uncontended except for a FlushAll sweep passing through.
    frames_[fi].latch.LockExclusive();
    *frame_index = fi;
    return Status::Ok();
  }
  const size_t nframes = part->frames.size();
  for (size_t round = 0; round < 16 * nframes + 64; ++round) {
    // Drain the cooling FIFO head-first (approximate LRU order).
    size_t scan = part->cooling.size();
    while (scan-- > 0 && !part->cooling.empty()) {
      const uint32_t fi = part->cooling.front();
      part->cooling.pop_front();
      FrameMeta& f = frames_[fi];
      if (!f.cooling.load(std::memory_order_relaxed)) continue;  // Promoted.
      const PageId pid = f.page_id.load(std::memory_order_seq_cst);
      std::atomic<uint64_t>* entry = table_.Find(pid);
      if (pid == kInvalidPageId || entry == nullptr) {
        f.cooling.store(false, std::memory_order_relaxed);
        cooling_count_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      if (!f.latch.TryLockExclusive()) {
        part->cooling.push_back(fi);  // Busy (FlushAll); come back to it.
        continue;
      }
      if (f.pins.load(std::memory_order_seq_cst) != 0) {
        // A reader raced us to it: restore to hot, its promotion may have
        // been blocked by our latch.
        uint64_t cur = swip::MakeCooling(&f);
        entry->compare_exchange_strong(cur, swip::MakeHot(&f),
                                       std::memory_order_seq_cst);
        f.cooling.store(false, std::memory_order_relaxed);
        cooling_count_.fetch_sub(1, std::memory_order_relaxed);
        f.latch.Unlock();
        continue;
      }
      uint64_t expected = swip::MakeCooling(&f);
      if (!entry->compare_exchange_strong(expected, swip::kCold,
                                          std::memory_order_seq_cst)) {
        f.latch.Unlock();  // Concurrently promoted; flag already cleared.
        continue;
      }
      // Unswizzled: the page is cold, new fetches go through the miss path
      // (and will block on part->mu behind us). Let transient probe pins
      // from stale swips drain before touching the bytes.
      while (f.pins.load(std::memory_order_seq_cst) != 0) {
        std::this_thread::yield();
      }
      if (f.dirty.load(std::memory_order_relaxed)) {
        if (writer_ != nullptr) {
          writer_->Enqueue(pid, f.data);
          f.dirty.store(false, std::memory_order_relaxed);
        } else {
          const Status write = disk_->WritePage(pid, f.data);
          if (!write.ok()) {
            // Failed sync write-back: re-swizzle the page (cached, dirty,
            // evictable later) so nothing is lost, and propagate.
            entry->store(swip::MakeHot(&f), std::memory_order_release);
            f.cooling.store(false, std::memory_order_relaxed);
            cooling_count_.fetch_sub(1, std::memory_order_relaxed);
            f.latch.Unlock();
            return write.WithContext("evicting page " + std::to_string(pid));
          }
          f.dirty.store(false, std::memory_order_relaxed);
        }
      }
      f.cooling.store(false, std::memory_order_relaxed);
      cooling_count_.fetch_sub(1, std::memory_order_relaxed);
      f.page_id.store(kInvalidPageId, std::memory_order_seq_cst);
      ++disk_->mutable_stats()->evictions;
      PM_METRIC_COUNTER("pool.evictions")->Increment();
      *frame_index = fi;
      return Status::Ok();  // Latch held; caller installs or frees.
    }
    if (CoolFrames(part) == 0 && part->cooling.empty()) {
      return Status::ResourceExhausted(
          "swizzle pool partition exhausted: all " + std::to_string(nframes) +
          " frames pinned");
    }
  }
  return Status::ResourceExhausted(
      "swizzle pool eviction starved by concurrent accesses (partition of " +
      std::to_string(nframes) + " frames)");
}

int SwizzlePool::CoolFrames(Partition* part) {
  const size_t nframes = part->frames.size();
  const int target =
      cooling_batch_ > 0
          ? cooling_batch_
          : std::max<int>(1, static_cast<int>(nframes / 8));
  int cooled = 0;
  // Two full clock revolutions: the first strips referenced bits, the
  // second can then demote.
  for (size_t swept = 0; cooled < target && swept < 2 * nframes; ++swept) {
    const uint32_t fi = part->frames[part->clock_hand % nframes];
    ++part->clock_hand;
    FrameMeta& f = frames_[fi];
    // page_id only changes under part->mu (held), so this is stable.
    const PageId pid = f.page_id.load(std::memory_order_seq_cst);
    if (pid == kInvalidPageId) continue;
    if (f.cooling.load(std::memory_order_relaxed)) continue;
    if (f.pins.load(std::memory_order_relaxed) != 0) continue;
    if (f.latch.IsLocked(std::memory_order_relaxed)) continue;
    if (f.referenced.exchange(false, std::memory_order_relaxed)) continue;
    std::atomic<uint64_t>* entry = table_.Find(pid);
    if (entry == nullptr) continue;
    uint64_t expected = swip::MakeHot(&f);
    if (entry->compare_exchange_strong(expected, swip::MakeCooling(&f),
                                       std::memory_order_seq_cst)) {
      f.cooling.store(true, std::memory_order_relaxed);
      cooling_count_.fetch_add(1, std::memory_order_relaxed);
      part->cooling.push_back(fi);
      ++cooled;
    }
  }
  return cooled;
}

void SwizzlePool::PromoteFromCooling(std::atomic<uint64_t>* entry,
                                     FrameMeta* frame) {
  uint64_t expected = swip::MakeCooling(frame);
  if (entry->compare_exchange_strong(expected, swip::MakeHot(frame),
                                     std::memory_order_seq_cst)) {
    frame->cooling.store(false, std::memory_order_relaxed);
    cooling_count_.fetch_sub(1, std::memory_order_relaxed);
    PM_METRIC_COUNTER("pool.cooling_promotions")->Increment();
  }
  // CAS failure: another reader promoted first (the swip is hot) — done.
  // The evictor cannot have won instead: our validated pin blocks commit.
}

// -------------------------------------------------------------- guard drop

void SwizzlePool::ReleaseRead(FrameMeta* frame) {
  frame->pins.fetch_sub(1, std::memory_order_release);
}

void SwizzlePool::ReleaseMut(FrameMeta* frame, bool dirty) {
  if (dirty) frame->dirty.store(true, std::memory_order_relaxed);
  frame->pins.fetch_sub(1, std::memory_order_release);
  frame->latch.Unlock();
}

// ------------------------------------------------------------- maintenance

Status SwizzlePool::FlushAll() {
  for (FrameMeta& f : frames_) {
    f.latch.LockExclusive();
    const PageId pid = f.page_id.load(std::memory_order_seq_cst);
    if (pid != kInvalidPageId && f.dirty.load(std::memory_order_relaxed)) {
      if (writer_ != nullptr) {
        writer_->Enqueue(pid, f.data);
        f.dirty.store(false, std::memory_order_relaxed);
      } else {
        const Status write = disk_->WritePage(pid, f.data);
        if (!write.ok()) {
          f.latch.Unlock();  // Page stays cached + dirty; a retry can work.
          return write.WithContext("flushing page " + std::to_string(pid));
        }
        f.dirty.store(false, std::memory_order_relaxed);
      }
    }
    f.latch.Unlock();
  }
  if (writer_ != nullptr) {
    PARTMINER_RETURN_IF_ERROR_CTX(writer_->Drain(),
                                  "draining write-back pool");
  }
  stats();  // Sync the hit counters into IoStats.
  return Status::Ok();
}

void SwizzlePool::Clear() {
  if (writer_ != nullptr) writer_->CancelAll();
  std::vector<std::unique_lock<std::mutex>> part_locks;
  part_locks.reserve(partitions_.size());
  for (auto& part : partitions_) part_locks.emplace_back(part->mu);
  for (FrameMeta& f : frames_) f.latch.LockExclusive();
  table_.Clear();
  for (FrameMeta& f : frames_) {
    // Real pins are a caller contract violation; transient probe pins from
    // stale swips drain on their own, so wait instead of crashing.
    while (f.pins.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    f.page_id.store(kInvalidPageId, std::memory_order_seq_cst);
    f.dirty.store(false, std::memory_order_relaxed);
    f.referenced.store(false, std::memory_order_relaxed);
    f.cooling.store(false, std::memory_order_relaxed);
    f.latch.Unlock();
  }
  cooling_count_.store(0, std::memory_order_relaxed);
  for (auto& part : partitions_) {
    part->cooling.clear();
    part->clock_hand = 0;
    part->free.assign(part->frames.rbegin(), part->frames.rend());
  }
}

// ------------------------------------------------------------------- stats

int64_t SwizzlePool::hit_count() const {
  int64_t total = 0;
  for (const FrameMeta& f : frames_) {
    total += f.hits.load(std::memory_order_relaxed);
  }
  return total;
}

const IoStats& SwizzlePool::stats() {
  // Hits are counted per frame to keep the hot path off shared counters;
  // fold them into the shared IoStats on demand.
  disk_->mutable_stats()->pool_hits.store(hit_count(),
                                          std::memory_order_relaxed);
  return disk_->stats();
}

void SwizzlePool::PublishMetrics() {
  PM_METRIC_GAUGE("pool.hits")->Set(hit_count());
  PM_METRIC_GAUGE("pool.frames")->Set(frames());
  PM_METRIC_GAUGE("pool.cooling_frames")
      ->Set(cooling_count_.load(std::memory_order_relaxed));
  PM_METRIC_GAUGE("pool.writeback_queue_depth")
      ->Set(writer_ != nullptr ? writer_->queue_depth() : 0);
  PM_METRIC_GAUGE("pool.writeback_failed_pages")
      ->Set(writer_ != nullptr ? writer_->failed_count() : 0);
}

}  // namespace partminer
