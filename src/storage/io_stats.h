#ifndef PARTMINER_STORAGE_IO_STATS_H_
#define PARTMINER_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace partminer {

/// I/O counters for the paged storage layer. The disk-based baseline's cost
/// profile (index build, rebuild on update, page churn during scans) is
/// reported through these.
///
/// Counters are atomic so the sharded BufferPool and concurrent DiskManager
/// callers can bump them without a lock while keeping the totals exact;
/// reads convert implicitly, so `stats().page_reads` keeps working.
struct IoStats {
  std::atomic<int64_t> page_reads{0};    // Pages read from the backing file.
  std::atomic<int64_t> page_writes{0};   // Pages written to the backing file.
  std::atomic<int64_t> pool_hits{0};     // Fetches served from the pool.
  std::atomic<int64_t> pool_misses{0};   // Fetches that hit the disk manager.
  std::atomic<int64_t> evictions{0};     // Frames reclaimed by the LRU policy.
  std::atomic<int64_t> injected_faults{0};  // Faults delivered by injection.

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    pool_hits.store(0, std::memory_order_relaxed);
    pool_misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    injected_faults.store(0, std::memory_order_relaxed);
  }

  double HitRate() const {
    const int64_t hits = pool_hits.load(std::memory_order_relaxed);
    const int64_t total = hits + pool_misses.load(std::memory_order_relaxed);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_IO_STATS_H_
