#ifndef PARTMINER_STORAGE_IO_STATS_H_
#define PARTMINER_STORAGE_IO_STATS_H_

#include <cstdint>

namespace partminer {

/// I/O counters for the paged storage layer. The disk-based baseline's cost
/// profile (index build, rebuild on update, page churn during scans) is
/// reported through these.
struct IoStats {
  int64_t page_reads = 0;    // Pages read from the backing file.
  int64_t page_writes = 0;   // Pages written to the backing file.
  int64_t pool_hits = 0;     // Fetches served from the buffer pool.
  int64_t pool_misses = 0;   // Fetches that had to hit the disk manager.
  int64_t evictions = 0;     // Frames reclaimed by the LRU policy.

  void Reset() { *this = IoStats(); }

  double HitRate() const {
    const int64_t total = pool_hits + pool_misses;
    return total == 0 ? 0.0 : static_cast<double>(pool_hits) / total;
  }
};

}  // namespace partminer

#endif  // PARTMINER_STORAGE_IO_STATS_H_
