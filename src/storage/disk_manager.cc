#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  page_count_ = 0;
  return Status::Ok();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
    path_.clear();
    page_count_ = 0;
  }
}

Status DiskManager::CheckFault(FaultInjector::Op op, PageId id) {
  if (fault_injector_ == nullptr || !fault_injector_->ShouldFail(op)) {
    return Status::Ok();
  }
  ++stats_.injected_faults;
  PM_METRIC_COUNTER("storage.injected_faults")->Increment();
  return FaultInjector::InjectedFault(op, "page " + std::to_string(id));
}

Status DiskManager::Allocate(PageId* id) {
  PM_CHECK(is_open());
  *id = kInvalidPageId;
  PARTMINER_RETURN_IF_ERROR(
      CheckFault(FaultInjector::Op::kAlloc, page_count()));
  *id = page_count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  PM_CHECK(is_open());
  PM_CHECK_GE(id, 0);
  PM_CHECK_LT(id, page_count());
  PARTMINER_RETURN_IF_ERROR(CheckFault(FaultInjector::Op::kRead, id));
  const ssize_t n =
      ::pread(fd_, out, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n < 0) {
    return Status::IoError(std::string("pread: ") + std::strerror(errno));
  }
  // Short read of a never-written page: zero-fill, matching Allocate().
  if (n < kPageSize) std::memset(out + n, 0, kPageSize - n);
  ++stats_.page_reads;
  PM_METRIC_COUNTER("storage.page_reads")->Increment();
  SimulateLatency();
  return Status::Ok();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  PM_CHECK(is_open());
  PM_CHECK_GE(id, 0);
  PM_CHECK_LT(id, page_count());
  PARTMINER_RETURN_IF_ERROR(CheckFault(FaultInjector::Op::kWrite, id));
  const ssize_t n =
      ::pwrite(fd_, data, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != kPageSize) {
    return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
  }
  ++stats_.page_writes;
  PM_METRIC_COUNTER("storage.page_writes")->Increment();
  SimulateLatency();
  return Status::Ok();
}

void DiskManager::SimulateLatency() const {
  if (simulated_latency_us_ <= 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(simulated_latency_us_);
  while (std::chrono::steady_clock::now() < until) {
  }
}

Status DiskManager::Reset() {
  PM_CHECK(is_open());
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError(std::string("ftruncate: ") + std::strerror(errno));
  }
  page_count_ = 0;
  return Status::Ok();
}

}  // namespace partminer
