#ifndef PARTMINER_STORAGE_POOL_CONFIG_H_
#define PARTMINER_STORAGE_POOL_CONFIG_H_

#include <string>

namespace partminer {

/// Which buffer-manager implementation backs a disk-resident index.
enum class StorageEngine {
  /// The original sharded hash-table + LRU-list pool (BufferPool). Kept as
  /// the reference implementation and test oracle.
  kClassic,
  /// The LeanStore-style pool (SwizzlePool): pointer swizzling, per-frame
  /// versioned latches, clock/cooling eviction, optional async write-back.
  kSwizzle,
};

inline const char* StorageEngineName(StorageEngine e) {
  return e == StorageEngine::kClassic ? "classic" : "swizzle";
}

/// Parses "classic"/"swizzle" into `*out`; false on anything else.
inline bool ParseStorageEngine(const std::string& name, StorageEngine* out) {
  if (name == "classic") {
    *out = StorageEngine::kClassic;
    return true;
  }
  if (name == "swizzle") {
    *out = StorageEngine::kSwizzle;
    return true;
  }
  return false;
}

/// Buffer-pool sizing shared by every ADI construction path (CLI, daemon,
/// benches, tests) — the one struct the --pool-frames/--pool-partitions/
/// --writer-threads/--storage-engine flags populate, replacing the
/// hard-coded pool constructions that used to be scattered over the tools.
struct PoolSizing {
  /// Pool capacity in pages. Small pools force re-reads during scans,
  /// modeling a database larger than memory.
  int frames = 256;
  /// Lock partitions for the slow path (classic: LRU shards; swizzle:
  /// eviction partitions). The hot path of the swizzle engine never touches
  /// a partition lock, so 1 is fine unless miss traffic itself contends.
  int partitions = 1;
  /// Background write-back threads (swizzle engine only). 0 = synchronous
  /// write-back on eviction, which keeps failure timing identical to the
  /// classic pool. >0 overlaps eviction I/O with mining.
  int writer_threads = 0;
  /// Bounded write-back queue capacity in pages (swizzle engine with
  /// writer_threads > 0); a full queue backpressures eviction.
  int writeback_queue = 64;
  /// Frames moved to the cooling stage per eviction sweep. 0 = auto
  /// (frames/8, min 1). Exposed mostly so tests can pin the pipeline depth.
  int cooling_batch = 0;
  /// Which engine to build.
  StorageEngine engine = StorageEngine::kSwizzle;
};

/// Process-wide default sizing, applied by AdiMineOptions when a caller does
/// not override it. Tools set this once from flags at startup so every
/// index built in-process inherits the operator's pool configuration.
inline PoolSizing& MutableDefaultPoolSizing() {
  static PoolSizing sizing;
  return sizing;
}

inline const PoolSizing& DefaultPoolSizing() {
  return MutableDefaultPoolSizing();
}

}  // namespace partminer

#endif  // PARTMINER_STORAGE_POOL_CONFIG_H_
