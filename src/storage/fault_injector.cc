#include "storage/fault_injector.h"

#include "common/logging.h"

namespace partminer {

void FaultInjector::SetProbability(Op op, double p) {
  PM_CHECK_GE(p, 0.0);
  PM_CHECK_LE(p, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  per_op_[static_cast<int>(op)].probability = p;
}

void FaultInjector::FailN(Op op, int after_n, int count) {
  PM_CHECK_GE(after_n, 0);
  PM_CHECK_GT(count, 0);
  std::lock_guard<std::mutex> lock(mu_);
  PerOp& state = per_op_[static_cast<int>(op)];
  state.fail_from = state.seen + after_n;
  state.fail_count = count;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (PerOp& state : per_op_) {
    state.probability = 0;
    state.fail_from = -1;
    state.fail_count = 0;
  }
}

bool FaultInjector::ShouldFail(Op op) {
  std::lock_guard<std::mutex> lock(mu_);
  PerOp& state = per_op_[static_cast<int>(op)];
  const int64_t index = state.seen++;
  bool fail = false;
  if (state.fail_from >= 0 && index >= state.fail_from &&
      index < state.fail_from + state.fail_count) {
    fail = true;
  }
  // The probabilistic draw happens even when a scripted fault already fired,
  // so arming a script does not shift the probabilistic fault points of the
  // remaining operations.
  if (state.probability > 0 && rng_.Bernoulli(state.probability)) fail = true;
  if (fail) ++state.injected;
  return fail;
}

int64_t FaultInjector::operations(Op op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_op_[static_cast<int>(op)].seen;
}

int64_t FaultInjector::injected(Op op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_op_[static_cast<int>(op)].injected;
}

int64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const PerOp& state : per_op_) total += state.injected;
  return total;
}

const char* FaultInjector::OpName(Op op) {
  switch (op) {
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kAlloc: return "alloc";
  }
  return "unknown";
}

Status FaultInjector::InjectedFault(Op op, const std::string& detail) {
  return Status::IoError("injected " + std::string(OpName(op)) + " fault: " +
                         detail);
}

}  // namespace partminer
