#include "obs/flight_recorder.h"

#include <unistd.h>

#include <cstring>

namespace partminer {
namespace obs {

namespace {

/// Fixed-capacity append buffer flushed to an fd with write(2). Everything
/// here is async-signal-safe: no allocation, no locks, no stdio, and the
/// only syscall is write.
class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  ~FdWriter() { Flush(); }

  void Append(const char* data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (used_ == sizeof(buffer_)) Flush();
      buffer_[used_++] = data[i];
    }
  }
  void Append(const char* text) { Append(text, std::strlen(text)); }
  void AppendInt(int64_t v) {
    char digits[24];
    size_t n = 0;
    uint64_t magnitude =
        v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
    do {
      digits[n++] = static_cast<char>('0' + magnitude % 10);
      magnitude /= 10;
    } while (magnitude != 0);
    if (v < 0) Append("-", 1);
    while (n > 0) Append(&digits[--n], 1);
  }

  void Flush() {
    size_t written = 0;
    while (written < used_) {
      const ssize_t n = ::write(fd_, buffer_ + written, used_ - written);
      if (n <= 0) break;  // Nothing sane to do from a signal handler.
      written += static_cast<size_t>(n);
    }
    used_ = 0;
  }

 private:
  int fd_;
  char buffer_[1024];
  size_t used_ = 0;
};

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kRequestAdmitted: return "request_admitted";
    case FlightEventType::kRequestRejected: return "request_rejected";
    case FlightEventType::kBatchApplied: return "batch_applied";
    case FlightEventType::kBatchFailed: return "batch_failed";
    case FlightEventType::kFaultInjected: return "fault_injected";
    case FlightEventType::kSnapshotWritten: return "snapshot_written";
    case FlightEventType::kSnapshotFailed: return "snapshot_failed";
    case FlightEventType::kQueueHighWater: return "queue_high_water";
    case FlightEventType::kSlowRequest: return "slow_request";
    case FlightEventType::kShutdown: return "shutdown";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder()
    : epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(FlightEventType type, int64_t a, int64_t b,
                            int64_t c, const char* detail) {
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  // Invalidate first so readers mid-decode see the seq change and discard.
  slot.ready.store(0, std::memory_order_release);
  slot.ts_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count(),
                   std::memory_order_relaxed);
  slot.type.store(static_cast<int32_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  // Pack the detail text into words, truncated and sanitized to printable
  // ASCII minus '"' and '\\' so dumps can splice it without escaping.
  char packed[kDetailBytes] = {0};
  for (size_t i = 0; detail[i] != '\0' && i < kDetailBytes - 1; ++i) {
    const unsigned char ch = static_cast<unsigned char>(detail[i]);
    packed[i] = (ch < 0x20 || ch > 0x7e || ch == '"' || ch == '\\') ? ' '
                                                                    : detail[i];
  }
  for (size_t w = 0; w < kDetailWords; ++w) {
    uint64_t word = 0;
    std::memcpy(&word, packed + w * 8, 8);
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.ready.store(seq + 1, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(size_t index, uint64_t seq,
                              RawEvent* out) const {
  const Slot& slot = slots_[index];
  if (slot.ready.load(std::memory_order_acquire) != seq + 1) return false;
  out->seq = seq;
  out->ts_us = slot.ts_us.load(std::memory_order_relaxed);
  out->type = slot.type.load(std::memory_order_relaxed);
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  out->c = slot.c.load(std::memory_order_relaxed);
  for (size_t w = 0; w < kDetailWords; ++w) {
    const uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
    std::memcpy(out->detail + w * 8, &word, 8);
  }
  out->detail[kDetailBytes - 1] = '\0';
  // Re-check after decoding: a concurrent rewrite tears the payload.
  return slot.ready.load(std::memory_order_acquire) == seq + 1;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t total = head_.load(std::memory_order_acquire);
  const uint64_t first = total > kCapacity ? total - kCapacity : 0;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<size_t>(total - first));
  for (uint64_t seq = first; seq < total; ++seq) {
    RawEvent raw;
    if (!ReadSlot(seq % kCapacity, seq, &raw)) continue;
    FlightEvent event;
    event.seq = raw.seq;
    event.ts_us = raw.ts_us;
    event.type = static_cast<FlightEventType>(raw.type);
    event.a = raw.a;
    event.b = raw.b;
    event.c = raw.c;
    event.detail.assign(raw.detail);
    events.push_back(std::move(event));
  }
  return events;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "{\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "{" : ",{";
    out += "\"seq\":" + std::to_string(events[i].seq);
    out += ",\"ts_us\":" + std::to_string(events[i].ts_us);
    out += std::string(",\"type\":\"") + FlightEventTypeName(events[i].type) +
           "\"";
    out += ",\"a\":" + std::to_string(events[i].a);
    out += ",\"b\":" + std::to_string(events[i].b);
    out += ",\"c\":" + std::to_string(events[i].c);
    if (!events[i].detail.empty()) {
      out += ",\"detail\":\"" + events[i].detail + "\"";
    }
    out += "}";
  }
  out += "],\"dropped\":" + std::to_string(dropped()) + "}";
  return out;
}

void FlightRecorder::DumpToFd(int fd) const {
  FdWriter out(fd);
  const uint64_t total = head_.load(std::memory_order_acquire);
  const uint64_t first = total > kCapacity ? total - kCapacity : 0;
  out.Append("{\"events\":[");
  bool any = false;
  for (uint64_t seq = first; seq < total; ++seq) {
    RawEvent event;
    if (!ReadSlot(seq % kCapacity, seq, &event)) continue;
    if (any) out.Append(",");
    any = true;
    out.Append("{\"seq\":");
    out.AppendInt(static_cast<int64_t>(event.seq));
    out.Append(",\"ts_us\":");
    out.AppendInt(event.ts_us);
    out.Append(",\"type\":\"");
    out.Append(FlightEventTypeName(static_cast<FlightEventType>(event.type)));
    out.Append("\",\"a\":");
    out.AppendInt(event.a);
    out.Append(",\"b\":");
    out.AppendInt(event.b);
    out.Append(",\"c\":");
    out.AppendInt(event.c);
    if (event.detail[0] != '\0') {
      out.Append(",\"detail\":\"");
      out.Append(event.detail);  // Sanitized at Record(): no escaping needed.
      out.Append("\"");
    }
    out.Append("}");
  }
  out.Append("],\"dropped\":");
  out.AppendInt(static_cast<int64_t>(total > kCapacity ? total - kCapacity
                                                       : 0));
  out.Append("}\n");
}

void FlightRecorder::Reset() {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) slot.ready.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace obs
}  // namespace partminer
