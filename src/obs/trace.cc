#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace partminer {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendArgJson(const TraceArg& arg, std::ostringstream* os) {
  *os << "\"" << JsonEscape(arg.key) << "\":";
  if (arg.is_string) {
    *os << "\"" << JsonEscape(arg.text) << "\"";
  } else if (arg.is_double) {
    *os << arg.real;
  } else {
    *os << arg.number;
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // One buffer per thread for the process lifetime; buffers are never
  // removed, so the cached pointer outlives any thread and Snapshot() can
  // safely walk the list.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    cached = buffer.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    buffers_.push_back(std::move(buffer));
  }
  return cached;
}

void Tracer::RecordComplete(const char* name, int64_t ts_us, int64_t dur_us,
                            std::vector<TraceArg> args) {
  if (!enabled()) return;  // Stopped between span begin and end.
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = buffer->tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // Parents before children.
            });
  return out;
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "" : ",") << "\n{\"name\":\"" << JsonEscape(e.name)
       << "\",\"cat\":\"partminer\",\"ph\":\"X\",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ",";
        AppendArgJson(e.args[i], &os);
      }
      os << "}";
    }
    os << "}";
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    PM_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  out << ToChromeTraceJson();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace partminer
