#ifndef PARTMINER_OBS_FLIGHT_RECORDER_H_
#define PARTMINER_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace partminer {
namespace obs {

/// What happened, encoded small enough for a lock-free ring slot. Names
/// (FlightEventTypeName) are the strings that appear in dumps and in the
/// `dump` protocol verb.
enum class FlightEventType : int32_t {
  kRequestAdmitted = 0,  // Update admitted to the queue: a=id, b=seq, c=depth.
  kRequestRejected,      // Overload rejection: a=id, b=queued, c=cap.
  kBatchApplied,         // Batch round applied: a=epoch, b=edits, c=units.
  kBatchFailed,          // Batch round dropped: a=edits; detail=status.
  kFaultInjected,        // Storage fault fired: detail=op+context.
  kSnapshotWritten,      // Snapshot pair on disk: a=epoch.
  kSnapshotFailed,       // Snapshot request failed: detail=status.
  kQueueHighWater,       // New queue-depth high water: a=depth, b=cap.
  kSlowRequest,          // Request over --slow-ms: a=id, b=us; detail=verb.
  kShutdown,             // Clean stop requested.
};

const char* FlightEventTypeName(FlightEventType type);

/// One decoded flight-recorder event. `ts_us` is microseconds on the steady
/// clock since the recorder was constructed (process start for Global()).
struct FlightEvent {
  uint64_t seq = 0;
  int64_t ts_us = 0;
  FlightEventType type = FlightEventType::kRequestAdmitted;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  std::string detail;
};

/// Fixed-size lock-free ring buffer of recent structured events — the
/// service's black box. Writers (any thread, including the daemon's request
/// and batcher threads) pay a handful of relaxed atomic stores; there is no
/// lock anywhere, so Record() is safe on every hot path and cannot deadlock
/// a crashing process.
///
/// Each slot is a seqlock in miniature: `ready` holds seq+1 and is cleared
/// before the payload is rewritten, so a reader that sees the same nonzero
/// `ready` before and after decoding the payload has a consistent event;
/// anything else is discarded as torn. Payload fields are relaxed atomics
/// (the detail text is packed into words), which keeps concurrent
/// append/snapshot exact under TSan. When two writers lap each other onto
/// the same slot the later seq wins — acceptable for diagnostics.
///
/// DumpToFd is async-signal-safe (no allocation, no locks, no stdio): the
/// SIGSEGV/SIGABRT handlers in partminerd call it to leave a parseable
/// JSON post-mortem even when the heap is toast.
class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 512;  // Power of two.
  static constexpr size_t kDetailWords = 6;
  static constexpr size_t kDetailBytes = kDetailWords * 8;  // Incl. NUL.

  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder shared by the service stack and signal handlers.
  static FlightRecorder& Global();

  /// Appends one event. Lock-free; detail is truncated to kDetailBytes-1
  /// and sanitized to printable ASCII so dumps never need escaping.
  void Record(FlightEventType type, int64_t a = 0, int64_t b = 0,
              int64_t c = 0, const char* detail = "");

  /// Events still resident in the ring, oldest first. Concurrent appends
  /// may add or overwrite events while this runs; torn slots are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// Total events ever recorded / evicted by ring wraparound.
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    const uint64_t total = total_recorded();
    return total > kCapacity ? total - kCapacity : 0;
  }

  /// {"events":[...],"dropped":N} on one line. Allocates; not signal-safe.
  std::string ToJson() const;

  /// Writes ToJson()-equivalent output to `fd` using only write(2) and a
  /// fixed stack buffer. Async-signal-safe.
  void DumpToFd(int fd) const;

  /// Clears the ring (tests delimit scenarios with this). Not safe against
  /// concurrent writers.
  void Reset();

 private:
  struct Slot {
    std::atomic<uint64_t> ready{0};  // 0 = empty/being written, else seq+1.
    std::atomic<int64_t> ts_us{0};
    std::atomic<int32_t> type{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<int64_t> c{0};
    std::atomic<uint64_t> detail[kDetailWords];
  };

  /// POD decode target: usable from the signal path (no allocation).
  struct RawEvent {
    uint64_t seq = 0;
    int64_t ts_us = 0;
    int32_t type = 0;
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;
    char detail[kDetailBytes] = {0};
  };

  /// Decodes slot `index` expecting sequence `seq`; false when empty, torn,
  /// or already lapped by a newer event.
  bool ReadSlot(size_t index, uint64_t seq, RawEvent* out) const;

  std::atomic<uint64_t> head_{0};
  Slot slots_[kCapacity];
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace obs
}  // namespace partminer

#endif  // PARTMINER_OBS_FLIGHT_RECORDER_H_
