#ifndef PARTMINER_OBS_METRICS_H_
#define PARTMINER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace partminer {
namespace obs {

/// Process-wide observability metrics (see DESIGN.md "Observability").
///
/// Three metric kinds, all addressed by string name through MetricRegistry:
///  - Counter:   monotonically increasing event count (extensions collected,
///               pages read, ...).
///  - Gauge:     last-written value (configuration echoes, pool sizes, ...).
///  - Histogram: fixed-bucket distribution of observations (phase latencies,
///               per-unit mining times, ...).
///
/// Registered metric objects are never destroyed or re-created until process
/// exit, so a caller may look a handle up once and cache the pointer; the
/// PM_METRIC_* macros below do exactly that through a function-local static.
/// All mutation paths are lock-free atomics, safe for concurrent unit-mining
/// workers. ResetAll() zeroes values but keeps every handle valid.

/// Monotonic event counter.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bucket); one implicit overflow bucket counts the rest.
/// Bounds are fixed at creation and shared by every thread.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> bucket_counts() const;
  void Reset();

  /// Bucket-based quantile estimate for q in [0, 1]: finds the bucket
  /// holding the q-th observation and interpolates linearly inside it
  /// (Prometheus histogram_quantile semantics). The estimate is exact when
  /// observations sit on bucket bounds; otherwise it is within one bucket
  /// width. Observations in the overflow bucket clamp to the largest finite
  /// bound — an overflow-heavy histogram reports that bound for high q,
  /// which is the honest "at least this much" answer. Returns 0 when empty.
  double Quantile(double q) const;

  /// Default latency bounds in milliseconds: 0.1ms .. ~100s, exponential.
  static std::vector<double> DefaultLatencyBoundsMs();
  /// Default size bounds: 1 .. 1M, powers of four.
  static std::vector<double> DefaultSizeBounds();

 private:
  std::vector<double> bounds_;                    // Ascending.
  std::vector<std::atomic<int64_t>> buckets_;     // bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};  // Sum in 1e-6 units (atomic int).
};

/// Name -> metric map with stable handles. One process-wide instance
/// (Global()); separate instances exist only for tests.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  /// Finds or creates. The returned pointer is stable for the registry's
  /// lifetime; creation is mutex-guarded, mutation lock-free.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is consulted only on first creation of `name`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);
  Histogram* GetHistogram(const std::string& name) {
    return GetHistogram(name, Histogram::DefaultLatencyBoundsMs());
  }

  /// Zeroes every metric value; handles stay valid. Used by benchmarks and
  /// tests to delimit measurement windows.
  void ResetAll();

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
  /// Sorted human-readable listing, one metric per line.
  std::string ToText() const;
  /// Writes ToJson() to `path`; returns false (and logs) on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;  // Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace partminer

/// Cached-handle accessors: resolve the name once per call site, then reuse
/// the pointer. `name` must be a string literal (one site, one metric).
#define PM_METRIC_COUNTER(name)                                        \
  ([]() -> ::partminer::obs::Counter* {                                \
    static ::partminer::obs::Counter* const pm_metric_handle =         \
        ::partminer::obs::MetricRegistry::Global().GetCounter(name);   \
    return pm_metric_handle;                                           \
  }())

#define PM_METRIC_GAUGE(name)                                          \
  ([]() -> ::partminer::obs::Gauge* {                                  \
    static ::partminer::obs::Gauge* const pm_metric_handle =           \
        ::partminer::obs::MetricRegistry::Global().GetGauge(name);     \
    return pm_metric_handle;                                           \
  }())

#define PM_METRIC_HISTOGRAM(name)                                      \
  ([]() -> ::partminer::obs::Histogram* {                              \
    static ::partminer::obs::Histogram* const pm_metric_handle =       \
        ::partminer::obs::MetricRegistry::Global().GetHistogram(name); \
    return pm_metric_handle;                                           \
  }())

#endif  // PARTMINER_OBS_METRICS_H_
