#ifndef PARTMINER_OBS_TRACE_H_
#define PARTMINER_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace partminer {
namespace obs {

/// Hierarchical phase tracer: RAII spans record begin/end on a steady clock
/// into per-thread buffers and export Chrome trace-event JSON ("X" complete
/// events) that Perfetto / chrome://tracing loads directly.
///
/// Tracing is off by default. When disabled, PM_TRACE_SPAN costs one relaxed
/// atomic load and writes nothing — the mining hot paths keep it permanently
/// in place. When enabled, each span pays one clock read at entry and one
/// clock read plus a buffer append (under an uncontended per-thread mutex)
/// at exit.
///
/// Span nesting is implicit: spans on one thread form a stack (RAII), which
/// the trace viewer reconstructs from the contained time intervals.

/// One span argument. Keys must be string literals; values are numbers or
/// strings and render into the Chrome event's "args" object.
struct TraceArg {
  TraceArg(const char* k, int64_t v) : key(k), number(v) {}
  TraceArg(const char* k, int v) : key(k), number(v) {}
  TraceArg(const char* k, uint32_t v) : key(k), number(v) {}
  TraceArg(const char* k, size_t v)
      : key(k), number(static_cast<int64_t>(v)) {}
  TraceArg(const char* k, double v)
      : key(k), number(0), is_double(true), real(v) {}
  TraceArg(const char* k, const char* v)
      : key(k), number(0), is_string(true), text(v) {}
  TraceArg(const char* k, std::string v)
      : key(k), number(0), is_string(true), text(std::move(v)) {}

  const char* key;
  int64_t number;
  bool is_double = false;
  bool is_string = false;
  double real = 0;
  std::string text;
};

/// A completed span as recorded. Timestamps are microseconds on the steady
/// clock, relative to the tracer's Start() epoch.
struct TraceEvent {
  const char* name;  // String literal supplied by the span site.
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;  // Sequential id of the recording thread.
  std::vector<TraceArg> args;
};

/// Process-wide tracer. Thread-safe; one instance (Global()).
class Tracer {
 public:
  static Tracer& Global();

  /// Clears previously recorded events and enables recording. The steady-
  /// clock epoch resets, so a new trace always starts near ts=0.
  void Start();
  /// Disables recording; recorded events remain available for export.
  void Stop();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one complete span. Called by TraceSpan; callable directly for
  /// spans whose lifetime does not fit a scope.
  void RecordComplete(const char* name, int64_t ts_us, int64_t dur_us,
                      std::vector<TraceArg> args);

  /// Microseconds since the current epoch.
  int64_t NowMicros() const;

  /// All recorded events, merged across threads, ordered by begin time.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}. Load in Perfetto
  /// (ui.perfetto.dev) or chrome://tracing.
  std::string ToChromeTraceJson() const;
  /// Writes ToChromeTraceJson() to `path`; false (and a log line) on error.
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::mutex mu;  // Uncontended except during Snapshot().
    std::vector<TraceEvent> events;
  };

  Tracer() = default;
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;  // Guards buffers_ registration and epoch_.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII scoped span. Use through PM_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) { Begin(name); }
  TraceSpan(const char* name, std::initializer_list<TraceArg> args) {
    Begin(name);
    if (name_ != nullptr) args_.assign(args.begin(), args.end());
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    Tracer& tracer = Tracer::Global();
    tracer.RecordComplete(name_, start_us_,
                          tracer.NowMicros() - start_us_, std::move(args_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an argument discovered mid-span (e.g. a result count).
  void AddArg(TraceArg arg) {
    if (name_ != nullptr) args_.push_back(std::move(arg));
  }

 private:
  void Begin(const char* name) {
    Tracer& tracer = Tracer::Global();
    if (!tracer.enabled()) return;  // name_ stays null: destructor no-op.
    name_ = name;
    start_us_ = tracer.NowMicros();
  }

  const char* name_ = nullptr;
  int64_t start_us_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace obs
}  // namespace partminer

#define PM_TRACE_CONCAT_INNER_(a, b) a##b
#define PM_TRACE_CONCAT_(a, b) PM_TRACE_CONCAT_INNER_(a, b)

/// Opens a scoped span: PM_TRACE_SPAN("unit_mine") or
/// PM_TRACE_SPAN("unit_mine", {{"unit", i}}). Costs one relaxed atomic load
/// when tracing is disabled.
#define PM_TRACE_SPAN(...)                                       \
  ::partminer::obs::TraceSpan PM_TRACE_CONCAT_(pm_trace_span_,   \
                                               __LINE__)(__VA_ARGS__)

#endif  // PARTMINER_OBS_TRACE_H_
