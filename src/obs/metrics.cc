#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace partminer {
namespace obs {

namespace {

/// Escapes a metric name for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double without trailing-zero noise ("2.5", "100", "0.0001").
std::string NumberToString(double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double value) {
  // lower_bound: first bound >= value, so a boundary observation counts in
  // its own bucket (v <= bounds[i], Prometheus "le" semantics).
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<int64_t>(value * 1e6),
                        std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<int64_t> counts = bucket_counts();
  int64_t total = 0;
  for (const int64_t c : counts) total += c;
  if (total == 0) return 0;
  // Rank of the target observation (1-based); q=0 maps to the first.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds_.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds_.empty() ? 0 : bounds_.back();
    }
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    const double fraction = (rank - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  // 0.1ms .. 102.4s in decades of 1/2/5 — covers a unit mine on a toy DB up
  // to a full paper-scale run.
  return {0.1, 0.2, 0.5, 1,    2,    5,    10,    20,    50,    100,   200,
          500, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5};
}

std::vector<double> Histogram::DefaultSizeBounds() {
  std::vector<double> bounds;
  for (double b = 1; b <= 1 << 20; b *= 4) bounds.push_back(b);
  return bounds;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* const registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << h->count() << ", \"sum\": "
       << NumberToString(h->sum())
       << ", \"p50\": " << NumberToString(h->Quantile(0.50))
       << ", \"p95\": " << NumberToString(h->Quantile(0.95))
       << ", \"p99\": " << NumberToString(h->Quantile(0.99))
       << ", \"buckets\": [";
    const std::vector<int64_t> counts = h->bucket_counts();
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": "
         << (i < bounds.size() ? NumberToString(bounds[i]) : "\"inf\"")
         << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

std::string MetricRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " count=" << h->count() << " sum=" << NumberToString(
        h->sum());
    if (h->count() > 0) {
      os << " mean=" << NumberToString(h->sum() / h->count())
         << " p50=" << NumberToString(h->Quantile(0.50))
         << " p99=" << NumberToString(h->Quantile(0.99));
    }
    os << "\n";
  }
  return os.str();
}

bool MetricRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    PM_LOG(Error) << "cannot open metrics file " << path;
    return false;
  }
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace partminer
