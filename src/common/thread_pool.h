#ifndef PARTMINER_COMMON_THREAD_POOL_H_
#define PARTMINER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace partminer {

/// Work-stealing thread pool shared by the mining pipeline: PartMiner's unit
/// scheduling and the gSpan/Gaston subtree fan-out submit into the same
/// pool, so one heavy unit no longer serializes a run — its extension
/// subtrees spill onto whichever workers are idle.
///
/// Design (see DESIGN.md "Parallel execution model"):
///  - One deque per worker. A worker pushes and pops its own deque at the
///    back (LIFO, cache-warm); thieves take from the front (FIFO, the oldest
///    and typically largest subtrees) and carry *half* the victim's queue
///    away in one locking, so a skewed producer is unloaded in O(log n)
///    steals rather than one task at a time.
///  - Recursive-submit-safe: a task may spawn subtree tasks into the pool it
///    runs on and wait for them with TaskGroup::Wait, which *helps* — the
///    waiting worker keeps executing queued tasks (its own first, then
///    steals) instead of blocking, so nested fork-join never deadlocks and
///    never idles a core.
///  - Shutdown drains: the destructor completes every task already
///    submitted (including tasks those tasks spawn) before joining.
///
/// Counters are published through the obs registry: pool.tasks_submitted,
/// pool.tasks_executed, pool.steals, pool.steal_moved_tasks.
class ThreadPool {
 public:
  /// Spawns `threads` (>= 1) workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int width() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`. From a worker of this pool the task lands on that
  /// worker's own deque (LIFO); external submissions are spread round-robin.
  /// Must not be called after the destructor has begun.
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread if any is available
  /// (own deque first when called from a worker, then stealing). Returns
  /// false when every deque was empty at the time of the scan.
  bool TryRunOneTask();

  /// Pool whose worker thread is the caller, or nullptr.
  static ThreadPool* Current();

  /// Lifetime totals for tests and introspection (mirrors the obs
  /// counters, but per-pool).
  struct Stats {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> executed{0};
    std::atomic<int64_t> steals{0};            // Successful steal batches.
    std::atomic<int64_t> steal_moved_tasks{0};  // Tasks moved by steals.
  };
  const Stats& stats() const { return stats_; }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int index);
  /// Dequeues one task: own back, else steal-half from another queue.
  /// `self` is the caller's worker index, or -1 for external threads.
  bool Dequeue(int self, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  Stats stats_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int64_t> queued_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint32_t> next_queue_{0};  // Round-robin for external submits.
};

/// Structured fork-join over a ThreadPool: Spawn() tasks, then Wait() for
/// all of them. With a null pool every Spawn runs inline, which is the
/// serial fast path — callers write one code path for both modes.
///
/// Wait() from a worker of the pool helps execute queued tasks (required
/// for nested fan-out); Wait() from any other thread blocks, so pool width
/// is exactly the number of mining threads.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn);
  void Wait();

 private:
  ThreadPool* pool_;
  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace partminer

#endif  // PARTMINER_COMMON_THREAD_POOL_H_
