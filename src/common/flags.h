#ifndef PARTMINER_COMMON_FLAGS_H_
#define PARTMINER_COMMON_FLAGS_H_

#include <initializer_list>
#include <map>
#include <string>

#include "storage/pool_config.h"

namespace partminer {
namespace flags {

/// Shared `--key=value` flag handling for the service-side tools
/// (partminerd, loadgen, pmtop, partminer_fuzz). The CLI and the bench
/// harness keep their richer Flags structs; this is the one place the
/// tools' parse-then-warn behavior lives, so a typo'd flag is never
/// silently ignored by any of them.
using FlagMap = std::map<std::string, std::string>;

/// Parses `--key=value` / bare `--key` (value "1") pairs. Non-flag
/// arguments produce a stderr warning and are skipped.
FlagMap Parse(int argc, char** argv);

/// Warns on stderr about every parsed flag not in `known`; returns how many
/// were unknown so strict tools can refuse to run.
int WarnUnknown(const FlagMap& flags,
                std::initializer_list<const char*> known);

/// Value for `key`, or `fallback` when the flag was not given.
std::string Get(const FlagMap& flags, const std::string& key,
                const std::string& fallback);

/// Validated numeric flags: false (after a stderr diagnostic) on garbage
/// like --threads=eight instead of silently using the default.
bool IntFlag(const FlagMap& flags, const std::string& key, int fallback,
             int* out);
bool DoubleFlag(const FlagMap& flags, const std::string& key, double fallback,
                double* out);

/// Shared buffer-pool sizing flags, one spelling across every binary that
/// owns an ADI pool (partminer mine --algo=adi, partminerd, the fig
/// benches):
///
///   --pool-frames=N        page frames in the pool (default 256)
///   --pool-partitions=N    independent eviction partitions (default 1)
///   --writer-threads=N     async write-back threads; 0 = synchronous
///   --writeback-queue=N    async write-back queue capacity (default 64)
///   --storage-engine=swizzle|classic
///
/// Fills `*out` starting from DefaultPoolSizing(). Returns false (after a
/// stderr diagnostic) on an unparsable or out-of-range value. When
/// `legacy_frames_key` is non-null that older spelling (the CLI's --frames)
/// is also accepted for the frame count; --pool-frames wins if both are
/// given.
bool PoolSizingFlags(const FlagMap& flags, PoolSizing* out,
                     const char* legacy_frames_key = nullptr);

}  // namespace flags
}  // namespace partminer

#endif  // PARTMINER_COMMON_FLAGS_H_
