#ifndef PARTMINER_COMMON_FLAGS_H_
#define PARTMINER_COMMON_FLAGS_H_

#include <initializer_list>
#include <map>
#include <string>

namespace partminer {
namespace flags {

/// Shared `--key=value` flag handling for the service-side tools
/// (partminerd, loadgen, pmtop, partminer_fuzz). The CLI and the bench
/// harness keep their richer Flags structs; this is the one place the
/// tools' parse-then-warn behavior lives, so a typo'd flag is never
/// silently ignored by any of them.
using FlagMap = std::map<std::string, std::string>;

/// Parses `--key=value` / bare `--key` (value "1") pairs. Non-flag
/// arguments produce a stderr warning and are skipped.
FlagMap Parse(int argc, char** argv);

/// Warns on stderr about every parsed flag not in `known`; returns how many
/// were unknown so strict tools can refuse to run.
int WarnUnknown(const FlagMap& flags,
                std::initializer_list<const char*> known);

/// Value for `key`, or `fallback` when the flag was not given.
std::string Get(const FlagMap& flags, const std::string& key,
                const std::string& fallback);

/// Validated numeric flags: false (after a stderr diagnostic) on garbage
/// like --threads=eight instead of silently using the default.
bool IntFlag(const FlagMap& flags, const std::string& key, int fallback,
             int* out);
bool DoubleFlag(const FlagMap& flags, const std::string& key, double fallback,
                double* out);

}  // namespace flags
}  // namespace partminer

#endif  // PARTMINER_COMMON_FLAGS_H_
