#include "common/thread_pool.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace partminer {

namespace {

/// Worker identity of the calling thread: the pool it belongs to and its
/// queue index, used to route Submit to the local deque and to let
/// TaskGroup::Wait decide between helping and blocking.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool* ThreadPool::Current() { return tls_pool; }

ThreadPool::ThreadPool(int threads) {
  PM_CHECK_GT(threads, 0);
  queues_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
  PM_METRIC_GAUGE("pool.width")->Set(threads);
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Drain semantics: workers only exit once every queue is empty, so any
  // task submitted before (or spawned during) shutdown has run.
  PM_CHECK_EQ(queued_.load(std::memory_order_acquire), 0);
}

void ThreadPool::Submit(std::function<void()> fn) {
  int target;
  if (tls_pool == this) {
    target = tls_worker_index;  // Local LIFO push: depth-first, cache-warm.
  } else {
    target = static_cast<int>(next_queue_.fetch_add(
                 1, std::memory_order_relaxed) %
             queues_.size());
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  queued_.fetch_add(1, std::memory_order_release);
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  PM_METRIC_COUNTER("pool.tasks_submitted")->Increment();
  idle_cv_.notify_one();
}

bool ThreadPool::Dequeue(int self, std::function<void()>* out) {
  const int n = static_cast<int>(queues_.size());
  // Own deque, newest first.
  if (self >= 0) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // Steal: take the front half of the first non-empty victim. The front
  // holds the oldest tasks — in a mining fan-out those are the widest
  // subtrees, so half the victim's queue is a meaningful chunk of work.
  const int start = self >= 0 ? self + 1 : 0;
  for (int k = 0; k < n; ++k) {
    const int victim = (start + k) % n;
    if (victim == self) continue;
    std::deque<std::function<void()>> batch;
    {
      WorkerQueue& vq = *queues_[victim];
      std::lock_guard<std::mutex> lock(vq.mu);
      const size_t size = vq.tasks.size();
      if (size == 0) continue;
      const size_t take = (size + 1) / 2;
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(vq.tasks.front()));
        vq.tasks.pop_front();
      }
    }
    // First stolen task runs now; the rest go to the thief's own deque
    // (external callers have none and run tasks one steal at a time).
    *out = std::move(batch.front());
    batch.pop_front();
    queued_.fetch_sub(1, std::memory_order_release);
    stats_.steals.fetch_add(1, std::memory_order_relaxed);
    stats_.steal_moved_tasks.fetch_add(
        static_cast<int64_t>(batch.size()) + 1, std::memory_order_relaxed);
    PM_METRIC_COUNTER("pool.steals")->Increment();
    PM_METRIC_COUNTER("pool.steal_moved_tasks")
        ->Add(static_cast<int64_t>(batch.size()) + 1);
    if (!batch.empty()) {
      if (self >= 0) {
        WorkerQueue& own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mu);
        for (auto& task : batch) own.tasks.push_back(std::move(task));
      } else {
        WorkerQueue& vq = *queues_[victim];
        std::lock_guard<std::mutex> lock(vq.mu);
        for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
          vq.tasks.push_front(std::move(*it));
        }
      }
      idle_cv_.notify_one();  // Re-queued work may interest an idle worker.
    }
    return true;
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  const int self = tls_pool == this ? tls_worker_index : -1;
  if (!Dequeue(self, &task)) return false;
  // Count before running: a TaskGroup waiter can return the instant the
  // final task body finishes, and must then observe the full tally.
  stats_.executed.fetch_add(1, std::memory_order_relaxed);
  PM_METRIC_COUNTER("pool.tasks_executed")->Increment();
  task();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  std::function<void()> task;
  while (true) {
    if (Dequeue(index, &task)) {
      stats_.executed.fetch_add(1, std::memory_order_relaxed);
      PM_METRIC_COUNTER("pool.tasks_executed")->Increment();
      task();
      task = nullptr;  // Release captures before sleeping.
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      break;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [this]() {
      return queued_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
  }
  tls_pool = nullptr;
  tls_worker_index = -1;
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();  // Serial fast path: no pool, no task, no synchronization.
    return;
  }
  pending_.fetch_add(1, std::memory_order_release);
  pool_->Submit([this, fn = std::move(fn)]() {
    fn();
    // The decrement happens under mu_ so that a waiter can only observe
    // pending == 0 while the completing task is outside this critical
    // section — otherwise Wait could return (and the group be destroyed)
    // between the decrement and the notify.
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  if (ThreadPool::Current() == pool_) {
    // A worker waiting for its children keeps the pool busy: run its own
    // queue (which holds exactly those children, LIFO) or steal. The timed
    // wait covers the race where work appears between a failed dequeue and
    // the sleep — 1ms of worst-case latency instead of a lost wakeup.
    while (pending_.load(std::memory_order_acquire) > 0) {
      if (pool_->TryRunOneTask()) continue;
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(1), [this]() {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
    // Synchronize with the last task's locked notify block before letting
    // the caller destroy this group.
    std::lock_guard<std::mutex> lock(mu_);
    return;
  }
  // External waiter (e.g. PartMiner's driver thread): block, so the pool
  // width stays the exact mining parallelism.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this]() {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace partminer
