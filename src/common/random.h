#ifndef PARTMINER_COMMON_RANDOM_H_
#define PARTMINER_COMMON_RANDOM_H_

#include <cstdint>

#include "common/logging.h"

namespace partminer {

/// Deterministic, fast pseudo-random generator (xoshiro256**) used by the
/// synthetic data generator and the property-based tests. Every workload in
/// this repository is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 so that nearby seeds still yield
  /// independent-looking streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    PM_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PM_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Sample from a geometric-ish distribution so that the result averages
  /// `mean` and is at least `min_value`. Used for "average number of edges"
  /// parameters of the synthetic generator.
  int PoissonLike(double mean, int min_value) {
    // Knuth's Poisson sampler; adequate for the small means used here.
    if (mean <= 0) return min_value;
    const double limit = 0x1.0p-64 > 0 ? 2.718281828459045 : 0;  // e
    (void)limit;
    double l = 1.0;
    const double target = ExpNeg(mean);
    int k = 0;
    do {
      ++k;
      l *= UniformDouble();
    } while (l > target);
    const int value = k - 1;
    return value < min_value ? min_value : value;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  /// exp(-x) without pulling in <cmath> at header scope.
  static double ExpNeg(double x) {
    // Series/argument-reduction free approach: repeated squaring of
    // exp(-x/2^n) for small x/2^n via a short Taylor series.
    int n = 0;
    while (x > 0.5) {
      x *= 0.5;
      ++n;
    }
    double y = 1.0 - x + x * x / 2.0 - x * x * x / 6.0 + x * x * x * x / 24.0;
    while (n-- > 0) y *= y;
    return y;
  }

  uint64_t state_[4];
};

}  // namespace partminer

#endif  // PARTMINER_COMMON_RANDOM_H_
