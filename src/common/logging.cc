#include "common/logging.h"

#include <atomic>
#include <chrono>

namespace partminer {
namespace internal_logging {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& text) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), text.c_str());
  std::fflush(stderr);
}

}  // namespace

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << file << ":" << line << ": ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel()) {
    Emit(level_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << file << ":" << line << ": ";
}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace partminer
