#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <ctime>

#include <chrono>

namespace partminer {
namespace internal_logging {

namespace {

/// Parses PM_LOG_LEVEL: a level name (debug/info/warning|warn/error, any
/// case) or a numeric level 0-3. Anything else falls back to the default.
int ParseLevel(const char* text, int fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") return static_cast<int>(LogLevel::kDebug);
  if (lower == "info" || lower == "1") return static_cast<int>(LogLevel::kInfo);
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (lower == "error" || lower == "3") return static_cast<int>(LogLevel::kError);
  return fallback;
}

/// The minimum level lives behind a function so the PM_LOG_LEVEL environment
/// override is read exactly once, on first use, regardless of static
/// initialization order across translation units.
std::atomic<int>& MinLevel() {
  static std::atomic<int> level{ParseLevel(
      std::getenv("PM_LOG_LEVEL"), static_cast<int>(LogLevel::kWarning))};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Compact per-process thread id: 1 for the first logging thread, 2 for the
/// second, ... Stable for the thread's lifetime and much shorter than
/// std::thread::id in log output.
uint32_t ThisThreadLogId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

/// ISO-8601 UTC timestamp with millisecond precision,
/// e.g. "2026-08-05T12:34:56.789Z".
void FormatTimestamp(char* out, size_t out_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  ::gmtime_r(&seconds, &utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(out, out_size, "%s.%03dZ", date, static_cast<int>(millis));
}

/// Formats the full line into one buffer and hands it to stderr with a
/// single fwrite, so lines from concurrent threads never interleave
/// mid-line (POSIX guarantees atomicity of the underlying write for
/// ordinary pipe-sized payloads; a single stdio call keeps the user-space
/// buffering from splitting it either).
void Emit(LogLevel level, const std::string& text) {
  char stamp[48];
  FormatTimestamp(stamp, sizeof(stamp));
  std::string line;
  line.reserve(text.size() + 64);
  line.append(stamp);
  line.append(" [");
  line.append(LevelName(level));
  line.append("] [tid ");
  line.append(std::to_string(ThisThreadLogId()));
  line.append("] ");
  line.append(text);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(MinLevel().load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << file << ":" << line << ": ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel()) {
    Emit(level_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << file << ":" << line << ": ";
}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace partminer
