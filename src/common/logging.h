#ifndef PARTMINER_COMMON_LOGGING_H_
#define PARTMINER_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace partminer {

/// Severity levels for the minimal logger used across the library.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the global minimum log level (default kWarning so that library
/// internals stay quiet in tests and benchmarks).
inline void SetLogLevel(LogLevel level) {
  internal_logging::SetMinLogLevel(level);
}

#define PM_LOG(level)                                                \
  ::partminer::internal_logging::LogMessage(                         \
      ::partminer::LogLevel::k##level, __FILE__, __LINE__)           \
      .stream()

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programmer errors (broken invariants), not for recoverable failures.
#define PM_CHECK(cond)                                                    \
  if (cond) {                                                             \
  } else                                                                  \
    ::partminer::internal_logging::FatalLogMessage(__FILE__, __LINE__)    \
            .stream()                                                     \
        << "Check failed: " #cond " "

/// Debug-only invariant check: compiled to nothing under NDEBUG (the default
/// RelWithDebInfo build), a full PM_CHECK otherwise. For per-element asserts
/// on hot paths that would be too expensive to keep in release builds.
#ifdef NDEBUG
#define PM_DCHECK(cond) \
  if (true) {           \
  } else                \
    PM_CHECK(cond)
#else
#define PM_DCHECK(cond) PM_CHECK(cond)
#endif

#define PM_CHECK_EQ(a, b) PM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define PM_CHECK_NE(a, b) PM_CHECK((a) != (b))
#define PM_CHECK_LT(a, b) PM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define PM_CHECK_LE(a, b) PM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define PM_CHECK_GT(a, b) PM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define PM_CHECK_GE(a, b) PM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace partminer

#endif  // PARTMINER_COMMON_LOGGING_H_
