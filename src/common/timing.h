#ifndef PARTMINER_COMMON_TIMING_H_
#define PARTMINER_COMMON_TIMING_H_

#include <chrono>
#include <cstdint>

namespace partminer {

/// Wall-clock stopwatch used by the experiment harnesses. All experiment
/// figures in the paper report elapsed runtime, so the harness measures
/// steady-clock wall time.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace partminer

#endif  // PARTMINER_COMMON_TIMING_H_
