#ifndef PARTMINER_COMMON_SETWORD_H_
#define PARTMINER_COMMON_SETWORD_H_

#include <cstdint>

#include "common/logging.h"

namespace partminer {

/// Bitmask over unit indices. The paper's IncPartMiner takes "a setword used
/// to indicate the units needed to be remined"; this is that setword.
/// Supports up to 64 units, far above the paper's k <= 6.
class SetWord {
 public:
  static constexpr int kMaxUnits = 64;

  SetWord() = default;

  /// A setword with bits [0, k) all set.
  static SetWord All(int k) {
    PM_CHECK_LE(k, kMaxUnits);
    SetWord w;
    w.bits_ = (k >= 64) ? ~0ULL : ((1ULL << k) - 1);
    return w;
  }

  void Set(int i) {
    PM_CHECK_LT(i, kMaxUnits);
    bits_ |= 1ULL << i;
  }

  void Clear(int i) {
    PM_CHECK_LT(i, kMaxUnits);
    bits_ &= ~(1ULL << i);
  }

  bool Test(int i) const {
    PM_CHECK_LT(i, kMaxUnits);
    return (bits_ >> i) & 1ULL;
  }

  bool Empty() const { return bits_ == 0; }

  int Count() const { return __builtin_popcountll(bits_); }

  uint64_t bits() const { return bits_; }

  SetWord& operator|=(const SetWord& other) {
    bits_ |= other.bits_;
    return *this;
  }

  friend bool operator==(const SetWord& a, const SetWord& b) {
    return a.bits_ == b.bits_;
  }

 private:
  uint64_t bits_ = 0;
};

}  // namespace partminer

#endif  // PARTMINER_COMMON_SETWORD_H_
