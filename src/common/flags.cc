#include "common/flags.h"

#include <cstdio>

#include "common/parse.h"

namespace partminer {
namespace flags {

FlagMap Parse(int argc, char** argv) {
  FlagMap flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "warning: ignoring stray argument '%s'\n",
                   arg.c_str());
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int WarnUnknown(const FlagMap& flags,
                std::initializer_list<const char*> known) {
  int unknown = 0;
  for (const auto& [key, value] : flags) {
    (void)value;
    bool recognized = false;
    for (const char* k : known) recognized = recognized || key == k;
    if (!recognized) {
      ++unknown;
      std::fprintf(stderr, "warning: unrecognized flag --%s (ignored)\n",
                   key.c_str());
    }
  }
  return unknown;
}

std::string Get(const FlagMap& flags, const std::string& key,
                const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

bool IntFlag(const FlagMap& flags, const std::string& key, int fallback,
             int* out) {
  const std::string raw = Get(flags, key, "");
  if (raw.empty()) {
    *out = fallback;
    return true;
  }
  if (!ParseInt32(raw, out)) {
    std::fprintf(stderr, "error: --%s=%s is not an integer\n", key.c_str(),
                 raw.c_str());
    return false;
  }
  return true;
}

bool DoubleFlag(const FlagMap& flags, const std::string& key, double fallback,
                double* out) {
  const std::string raw = Get(flags, key, "");
  if (raw.empty()) {
    *out = fallback;
    return true;
  }
  if (!ParseDouble(raw, out)) {
    std::fprintf(stderr, "error: --%s=%s is not a number\n", key.c_str(),
                 raw.c_str());
    return false;
  }
  return true;
}

bool PoolSizingFlags(const FlagMap& flags, PoolSizing* out,
                     const char* legacy_frames_key) {
  PoolSizing sizing = DefaultPoolSizing();
  if (legacy_frames_key != nullptr &&
      !IntFlag(flags, legacy_frames_key, sizing.frames, &sizing.frames)) {
    return false;
  }
  if (!IntFlag(flags, "pool-frames", sizing.frames, &sizing.frames) ||
      !IntFlag(flags, "pool-partitions", sizing.partitions,
               &sizing.partitions) ||
      !IntFlag(flags, "writer-threads", sizing.writer_threads,
               &sizing.writer_threads) ||
      !IntFlag(flags, "writeback-queue", sizing.writeback_queue,
               &sizing.writeback_queue)) {
    return false;
  }
  if (sizing.frames < 1 || sizing.partitions < 1 ||
      sizing.partitions > sizing.frames || sizing.writer_threads < 0 ||
      sizing.writeback_queue < 1) {
    std::fprintf(stderr,
                 "error: pool sizing out of range (frames=%d partitions=%d "
                 "writer-threads=%d writeback-queue=%d); need frames >= "
                 "partitions >= 1, writer-threads >= 0, writeback-queue >= "
                 "1\n",
                 sizing.frames, sizing.partitions, sizing.writer_threads,
                 sizing.writeback_queue);
    return false;
  }
  const std::string engine =
      Get(flags, "storage-engine", StorageEngineName(sizing.engine));
  if (!ParseStorageEngine(engine, &sizing.engine)) {
    std::fprintf(stderr,
                 "error: --storage-engine=%s is not one of swizzle|classic\n",
                 engine.c_str());
    return false;
  }
  *out = sizing;
  return true;
}

}  // namespace flags
}  // namespace partminer
