#ifndef PARTMINER_COMMON_PARSE_H_
#define PARTMINER_COMMON_PARSE_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace partminer {

/// Strict numeric parsing for command-line flags and protocol fields.
///
/// The std::atoi idiom the CLIs started with accepts "8abc" (and turns
/// "abc" into 0), so a typo like --threads=eight silently mined serially.
/// These helpers accept a value only when the *entire* string (modulo
/// leading/trailing nothing — no whitespace is tolerated) parses, and leave
/// `*out` untouched on failure so callers keep their fallback.

inline bool ParseInt64(const std::string& s, int64_t* out) {
  // strtoll silently skips leading whitespace; reject it up front so the
  // whole-string contract holds.
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

inline bool ParseInt32(const std::string& s, int* out) {
  int64_t v = 0;
  if (!ParseInt64(s, &v)) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

inline bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+' ||
      std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

inline bool ParseDouble(const std::string& s, double* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace partminer

#endif  // PARTMINER_COMMON_PARSE_H_
