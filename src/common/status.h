#ifndef PARTMINER_COMMON_STATUS_H_
#define PARTMINER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace partminer {

/// Lightweight status object for fallible operations (file I/O, parsing).
/// The mining core is exception-free; functions that can fail return Status
/// (or set an output parameter and return Status), in the style of the
/// database codebases this project follows.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIoError,
    kCorruption,
    kNotFound,
    kOutOfRange,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Same status with `context` prepended to the message — the error-path
  /// convention for propagation across layers, so a deep I/O failure reads
  /// like a call chain: "loading graph 12: evicting page 3: pwrite: ...".
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  /// Human-readable rendering, e.g. "IoError: cannot open foo".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kIoError: name = "IoError"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kOutOfRange: name = "OutOfRange"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define PARTMINER_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::partminer::Status _status = (expr);                \
    if (!_status.ok()) return _status;                   \
  } while (0)

/// Propagates a non-OK Status with `context` prepended to its message.
#define PARTMINER_RETURN_IF_ERROR_CTX(expr, context)          \
  do {                                                        \
    ::partminer::Status _status = (expr);                     \
    if (!_status.ok()) return _status.WithContext(context);   \
  } while (0)

}  // namespace partminer

#endif  // PARTMINER_COMMON_STATUS_H_
