#ifndef PARTMINER_PARTITION_GRAPH_PART_H_
#define PARTMINER_PARTITION_GRAPH_PART_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace partminer {

/// Weights of the bi-partitioning objective of Section 4.1, equation (1):
///   w(V1) = lambda1 * avg-update-frequency(V1) - lambda2 * |E(V1, V2)|.
/// The paper's three criteria are (1,0) "isolate updated vertices",
/// (0,1) "minimize connectivity", and (1,1) both.
struct GraphPartOptions {
  double lambda1 = 1.0;
  double lambda2 = 1.0;
};

/// Result of bisecting one graph.
struct Bisection {
  /// Per vertex: 0 for the selected subset V*, 1 for the rest.
  std::vector<int> side;
  /// Number of connective edges |E(V1, V2)|.
  int cut_edges = 0;
  /// Achieved objective w(V*).
  double weight = 0;
};

/// The GraphPart algorithm of Figure 5: sorts vertices by update frequency,
/// runs DFSScan from each of the top-half candidates to grow a half-sized
/// subset preferring high-frequency neighbors, scores each subset with the
/// weight function, and keeps the best. Graphs with fewer than two vertices
/// get a trivial bisection (everything on side 0).
Bisection GraphPart(const Graph& g, const GraphPartOptions& options);

/// Materializes the two subgraphs of a bisection, *including the connective
/// edges in both* (Section 4.1: "subgraphs should include the connective
/// edges between the subgraphs so that we can recover the original graph").
/// Isolated vertices are dropped; the graphs are compact.
std::pair<Graph, Graph> SplitWithConnectiveEdges(const Graph& g,
                                                 const std::vector<int>& side);

/// Counts edges whose endpoints lie on different sides.
int CountCutEdges(const Graph& g, const std::vector<int>& side);

}  // namespace partminer

#endif  // PARTMINER_PARTITION_GRAPH_PART_H_
