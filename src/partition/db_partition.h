#ifndef PARTMINER_PARTITION_DB_PARTITION_H_
#define PARTMINER_PARTITION_DB_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/setword.h"
#include "graph/graph.h"
#include "partition/graph_part.h"

namespace partminer {

/// Which bisection algorithm drives the recursive splitting — the four
/// alternatives compared in Figure 13.
enum class PartitionCriteria {
  kIsolation = 0,   // Partition1: lambda1=1, lambda2=0.
  kMinCut = 1,      // Partition2: lambda1=0, lambda2=1.
  kCombined = 2,    // Partition3: lambda1=1, lambda2=1.
  kMultilevel = 3,  // METIS-style multilevel bisection.
};

const char* PartitionCriteriaName(PartitionCriteria c);

struct PartitionOptions {
  int k = 2;  // Number of units; the paper varies 2..6.
  PartitionCriteria criteria = PartitionCriteria::kCombined;
  uint64_t seed = 1;
};

/// One node of the merge tree: covers units [lo, hi). Leaves (hi-lo == 1)
/// are the units; internal nodes are where merge-joins happen. Node 0 is
/// the root, covering [0, k).
struct MergeTreeNode {
  int lo = 0;
  int hi = 0;
  int left = -1;   // Child node indices; -1 for leaves.
  int right = -1;
  int depth = 0;
};

/// The product of DBPartition (Figure 6): a per-graph assignment of every
/// vertex to one of k units, produced by recursive bisection, plus the merge
/// tree that mirrors the splitting.
///
/// The edge-placement rule follows Section 4.1: an edge belongs to every
/// unit owning one of its endpoints, so connective (cut) edges are
/// duplicated into both adjacent units. Consequently a tree node's subgraph
/// of graph G is exactly the edges with at least one endpoint assigned to a
/// unit in [lo, hi) — nothing beyond the vertex assignment needs storing.
class PartitionedDatabase {
 public:
  /// Partitions every graph of `db` into `options.k` units.
  static PartitionedDatabase Create(const GraphDatabase& db,
                                    const PartitionOptions& options);

  int k() const { return k_; }
  const std::vector<MergeTreeNode>& tree() const { return tree_; }
  int root() const { return 0; }

  /// Unit owning vertex `v` of database graph `graph_index`.
  int unit_of(int graph_index, VertexId v) const {
    return assignment_[graph_index][v];
  }

  /// Materializes the database of subgraphs for tree node [lo, hi): one
  /// (possibly empty) graph per database graph, index-aligned with `db`,
  /// containing every edge with at least one endpoint in a unit of the
  /// range. Isolated vertices are dropped. `db` must be the database this
  /// partition was created from (or an updated version already routed with
  /// ExtendAssignments).
  GraphDatabase Materialize(const GraphDatabase& db, int lo, int hi) const;

  /// Convenience: materializes leaf unit `j`.
  GraphDatabase MaterializeUnit(const GraphDatabase& db, int j) const {
    return Materialize(db, j, j + 1);
  }

  /// Routes updates: assigns any vertices added to `db` since Create() to
  /// the unit of their lowest-numbered neighbor. Call after applying
  /// updates and before Materialize/TouchedUnits on the updated database.
  void ExtendAssignments(const GraphDatabase& db);

  /// Units whose subgraphs are affected by the touched vertices: the unit of
  /// each touched vertex plus the units of its neighbors (a changed edge
  /// (u,v) lives in unit(u) and unit(v)). This is the paper's `setword`
  /// input to IncPartMiner.
  SetWord TouchedUnits(
      const GraphDatabase& db,
      const std::vector<std::pair<int, VertexId>>& touched) const;

  /// Total connective (cut) edges across all graphs — the partition-quality
  /// metric the weight function trades against isolation.
  int64_t TotalCutEdges(const GraphDatabase& db) const;

  /// Per-graph unit assignments (state persistence).
  const std::vector<std::vector<int>>& assignments() const {
    return assignment_;
  }

  /// Rebuilds a partition from persisted assignments. The merge tree is a
  /// pure function of k, so shape and assignments fully determine the
  /// object.
  static PartitionedDatabase Restore(int k,
                                     std::vector<std::vector<int>> assignments);

  /// Sum over touched vertices of TouchedUnits cardinality — how well the
  /// partitioning isolated updates.
  double AverageTouchedUnits(
      const GraphDatabase& db,
      const std::vector<std::pair<int, VertexId>>& touched) const;

 private:
  int k_ = 0;
  std::vector<MergeTreeNode> tree_;
  /// assignment_[graph][vertex] = unit in [0, k).
  std::vector<std::vector<int>> assignment_;
};

}  // namespace partminer

#endif  // PARTMINER_PARTITION_DB_PARTITION_H_
