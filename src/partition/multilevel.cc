#include "partition/multilevel.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace partminer {

namespace {

/// Weighted working graph used during coarsening. `adjacency[v]` maps
/// neighbor -> accumulated edge weight.
struct WeightedGraph {
  std::vector<int> vertex_weight;
  std::vector<std::map<int, int>> adjacency;

  int size() const { return static_cast<int>(vertex_weight.size()); }
  int TotalVertexWeight() const {
    return std::accumulate(vertex_weight.begin(), vertex_weight.end(), 0);
  }
};

WeightedGraph FromGraph(const Graph& g) {
  WeightedGraph w;
  w.vertex_weight.assign(g.VertexCount(), 1);
  w.adjacency.resize(g.VertexCount());
  for (const EdgeEntry& e : g.UndirectedEdges()) {
    w.adjacency[e.from][e.to] += 1;
    w.adjacency[e.to][e.from] += 1;
  }
  return w;
}

/// One coarsening step: heavy-edge matching in random vertex order. Fills
/// `coarse_of` (fine vertex -> coarse vertex) and returns the coarse graph.
WeightedGraph Coarsen(const WeightedGraph& fine, Rng* rng,
                      std::vector<int>* coarse_of) {
  const int n = fine.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng->Uniform(i + 1)]);
  }

  coarse_of->assign(n, -1);
  int next = 0;
  for (const int v : order) {
    if ((*coarse_of)[v] != -1) continue;
    // Match v with its heaviest unmatched neighbor.
    int best = -1, best_weight = -1;
    for (const auto& [u, w] : fine.adjacency[v]) {
      if ((*coarse_of)[u] == -1 && w > best_weight) {
        best = u;
        best_weight = w;
      }
    }
    (*coarse_of)[v] = next;
    if (best != -1) (*coarse_of)[best] = next;
    ++next;
  }

  WeightedGraph coarse;
  coarse.vertex_weight.assign(next, 0);
  coarse.adjacency.resize(next);
  for (int v = 0; v < n; ++v) {
    coarse.vertex_weight[(*coarse_of)[v]] += fine.vertex_weight[v];
  }
  for (int v = 0; v < n; ++v) {
    for (const auto& [u, w] : fine.adjacency[v]) {
      const int cv = (*coarse_of)[v];
      const int cu = (*coarse_of)[u];
      if (cv != cu) coarse.adjacency[cv][cu] += w;
    }
  }
  // Each undirected weight was added twice (v->u and u->v both touch the
  // same coarse pair once per direction), which keeps the representation
  // symmetric; no correction needed.
  return coarse;
}

/// Greedy graph growing: BFS from a random vertex until ~half the total
/// vertex weight is absorbed.
std::vector<int> InitialBisect(const WeightedGraph& g, Rng* rng) {
  const int n = g.size();
  std::vector<int> side(n, 1);
  if (n == 0) return side;
  const int target = g.TotalVertexWeight() / 2;
  std::vector<int> queue = {static_cast<int>(rng->Uniform(n))};
  std::vector<bool> seen(n, false);
  seen[queue[0]] = true;
  int absorbed = 0;
  size_t head = 0;
  while (head < queue.size() && absorbed < target) {
    const int v = queue[head++];
    side[v] = 0;
    absorbed += g.vertex_weight[v];
    for (const auto& [u, w] : g.adjacency[v]) {
      (void)w;
      if (!seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    }
    if (head == queue.size() && absorbed < target) {
      // Disconnected: restart from any unseen vertex.
      for (int u = 0; u < n; ++u) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
          break;
        }
      }
    }
  }
  return side;
}

/// Gain of moving v to the other side: external minus internal edge weight.
int Gain(const WeightedGraph& g, const std::vector<int>& side, int v) {
  int internal = 0, external = 0;
  for (const auto& [u, w] : g.adjacency[v]) {
    (side[u] == side[v] ? internal : external) += w;
  }
  return external - internal;
}

/// Boundary refinement: repeatedly move the best positive-gain boundary
/// vertex whose move keeps the sides balanced.
void Refine(const WeightedGraph& g, std::vector<int>* side,
            const MultilevelOptions& options) {
  const int total = g.TotalVertexWeight();
  const int lo = static_cast<int>(total * (0.5 - options.balance_slack));
  const int hi = static_cast<int>(total * (0.5 + options.balance_slack)) + 1;

  int weight0 = 0;
  for (int v = 0; v < g.size(); ++v) {
    if ((*side)[v] == 0) weight0 += g.vertex_weight[v];
  }

  for (int pass = 0; pass < options.refine_passes; ++pass) {
    bool moved = false;
    for (int v = 0; v < g.size(); ++v) {
      const int gain = Gain(g, *side, v);
      if (gain <= 0) continue;
      const int new_weight0 =
          (*side)[v] == 0 ? weight0 - g.vertex_weight[v]
                          : weight0 + g.vertex_weight[v];
      if (new_weight0 < lo || new_weight0 > hi) continue;
      (*side)[v] = 1 - (*side)[v];
      weight0 = new_weight0;
      moved = true;
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<int> MultilevelBisect(const Graph& g,
                                  const MultilevelOptions& options) {
  const int n = g.VertexCount();
  if (n < 2) return std::vector<int>(n, 0);
  Rng rng(options.seed + static_cast<uint64_t>(n) * 7919 +
          static_cast<uint64_t>(g.EdgeCount()));

  // Coarsening phase.
  std::vector<WeightedGraph> levels = {FromGraph(g)};
  std::vector<std::vector<int>> mappings;
  while (levels.back().size() > options.coarsen_to) {
    std::vector<int> coarse_of;
    WeightedGraph coarse = Coarsen(levels.back(), &rng, &coarse_of);
    if (coarse.size() >= levels.back().size()) break;  // No progress.
    mappings.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // Initial partition on the coarsest graph.
  std::vector<int> side = InitialBisect(levels.back(), &rng);
  Refine(levels.back(), &side, options);

  // Uncoarsening with refinement.
  for (int level = static_cast<int>(mappings.size()) - 1; level >= 0;
       --level) {
    std::vector<int> fine_side(levels[level].size());
    for (int v = 0; v < levels[level].size(); ++v) {
      fine_side[v] = side[mappings[level][v]];
    }
    side = std::move(fine_side);
    Refine(levels[level], &side, options);
  }
  PM_CHECK_EQ(static_cast<int>(side.size()), n);
  return side;
}

}  // namespace partminer
