#include "partition/db_partition.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "partition/multilevel.h"

namespace partminer {

namespace {

/// Builds the merge tree over [lo, hi); returns the node index.
int BuildTree(int lo, int hi, int depth, std::vector<MergeTreeNode>* tree) {
  const int index = static_cast<int>(tree->size());
  tree->push_back(MergeTreeNode{lo, hi, -1, -1, depth});
  if (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;  // Left child gets the ceiling.
    const int left = BuildTree(lo, mid, depth + 1, tree);
    const int right = BuildTree(mid, hi, depth + 1, tree);
    (*tree)[index].left = left;
    (*tree)[index].right = right;
  }
  return index;
}

/// Bisects the subgraph of `g` induced on `owned` using the configured
/// criteria; returns the side (0/1) of each entry of `owned`.
std::vector<int> BisectOwned(const Graph& g, const std::vector<VertexId>& owned,
                             const PartitionOptions& options) {
  const int m = static_cast<int>(owned.size());
  if (m < 2) return std::vector<int>(m, 0);

  // Induced subgraph on the owned vertices.
  std::vector<VertexId> to_local(g.VertexCount(), -1);
  for (int i = 0; i < m; ++i) to_local[owned[i]] = i;
  Graph sub(m);
  for (int i = 0; i < m; ++i) {
    sub.set_vertex_label(i, g.vertex_label(owned[i]));
    sub.set_update_freq(i, g.update_freq(owned[i]));
  }
  for (const EdgeEntry& e : g.UndirectedEdges()) {
    if (to_local[e.from] != -1 && to_local[e.to] != -1) {
      sub.AddEdge(to_local[e.from], to_local[e.to], e.label);
    }
  }

  switch (options.criteria) {
    case PartitionCriteria::kIsolation:
      return GraphPart(sub, GraphPartOptions{1.0, 0.0}).side;
    case PartitionCriteria::kMinCut:
      return GraphPart(sub, GraphPartOptions{0.0, 1.0}).side;
    case PartitionCriteria::kCombined: {
      // Equation (1) mixes an average frequency (O(1)) with an edge count
      // (O(|E|)); with the paper's lambda1 = lambda2 = 1 the cut term
      // drowns the isolation term on any non-trivial graph. Scale the
      // isolation weight by the subgraph's edge count so "isolate updated
      // vertices AND minimize connectivity" holds with isolation as the
      // primary criterion and the cut as tie-breaker, which is the behavior
      // Figure 13(b) attributes to Partition3.
      const double lambda1 = std::max(1, sub.EdgeCount());
      return GraphPart(sub, GraphPartOptions{lambda1, 1.0}).side;
    }
    case PartitionCriteria::kMultilevel: {
      MultilevelOptions ml;
      ml.seed = options.seed;
      return MultilevelBisect(sub, ml);
    }
  }
  PM_CHECK(false);
  return {};
}

/// Recursively assigns the `owned` vertices of `g` to units [lo, hi).
void AssignRecursive(const Graph& g, const std::vector<VertexId>& owned,
                     int lo, int hi, const PartitionOptions& options,
                     std::vector<int>* assignment) {
  if (hi - lo == 1) {
    for (const VertexId v : owned) (*assignment)[v] = lo;
    return;
  }
  const std::vector<int> side = BisectOwned(g, owned, options);
  std::vector<VertexId> left, right;
  for (size_t i = 0; i < owned.size(); ++i) {
    (side[i] == 0 ? left : right).push_back(owned[i]);
  }
  const int mid = lo + (hi - lo + 1) / 2;
  AssignRecursive(g, left, lo, mid, options, assignment);
  AssignRecursive(g, right, mid, hi, options, assignment);
}

}  // namespace

const char* PartitionCriteriaName(PartitionCriteria c) {
  switch (c) {
    case PartitionCriteria::kIsolation: return "Partition1";
    case PartitionCriteria::kMinCut: return "Partition2";
    case PartitionCriteria::kCombined: return "Partition3";
    case PartitionCriteria::kMultilevel: return "METIS";
  }
  return "?";
}

PartitionedDatabase PartitionedDatabase::Create(
    const GraphDatabase& db, const PartitionOptions& options) {
  PM_CHECK_GE(options.k, 1);
  PM_CHECK_LE(options.k, SetWord::kMaxUnits);
  PartitionedDatabase out;
  out.k_ = options.k;
  BuildTree(0, options.k, 0, &out.tree_);

  out.assignment_.resize(db.size());
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    out.assignment_[i].assign(g.VertexCount(), 0);
    std::vector<VertexId> all(g.VertexCount());
    for (VertexId v = 0; v < g.VertexCount(); ++v) all[v] = v;
    AssignRecursive(g, all, 0, options.k, options, &out.assignment_[i]);
  }
  return out;
}

PartitionedDatabase PartitionedDatabase::Restore(
    int k, std::vector<std::vector<int>> assignments) {
  PM_CHECK_GE(k, 1);
  PM_CHECK_LE(k, SetWord::kMaxUnits);
  PartitionedDatabase out;
  out.k_ = k;
  BuildTree(0, k, 0, &out.tree_);
  for (const std::vector<int>& units : assignments) {
    for (const int u : units) {
      PM_CHECK_GE(u, 0);
      PM_CHECK_LT(u, k);
    }
  }
  out.assignment_ = std::move(assignments);
  return out;
}

GraphDatabase PartitionedDatabase::Materialize(const GraphDatabase& db,
                                               int lo, int hi) const {
  PM_CHECK_EQ(db.size(), static_cast<int>(assignment_.size()));
  GraphDatabase out;
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    const std::vector<int>& unit = assignment_[i];
    PM_CHECK_EQ(static_cast<int>(unit.size()), g.VertexCount());
    Graph sub;
    std::vector<VertexId> remap(g.VertexCount(), -1);
    auto ensure = [&](VertexId v) {
      if (remap[v] == -1) {
        remap[v] = sub.AddVertex(g.vertex_label(v));
        sub.set_update_freq(remap[v], g.update_freq(v));
      }
      return remap[v];
    };
    for (const EdgeEntry& e : g.UndirectedEdges()) {
      const bool from_in = unit[e.from] >= lo && unit[e.from] < hi;
      const bool to_in = unit[e.to] >= lo && unit[e.to] < hi;
      if (from_in || to_in) {
        sub.AddEdge(ensure(e.from), ensure(e.to), e.label);
      }
    }
    out.Add(std::move(sub), db.gid(i));
  }
  return out;
}

void PartitionedDatabase::ExtendAssignments(const GraphDatabase& db) {
  PM_CHECK_EQ(db.size(), static_cast<int>(assignment_.size()));
  for (int i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    std::vector<int>& unit = assignment_[i];
    const int old_n = static_cast<int>(unit.size());
    if (g.VertexCount() == old_n) continue;
    unit.resize(g.VertexCount(), -1);
    // New vertices adopt the unit of their first already-assigned neighbor.
    // Updates attach new vertices to existing ones, so one sweep suffices;
    // a second sweep covers chains of new vertices.
    for (int pass = 0; pass < 2; ++pass) {
      for (VertexId v = old_n; v < g.VertexCount(); ++v) {
        if (unit[v] != -1) continue;
        for (const EdgeEntry& e : g.adjacency(v)) {
          if (unit[e.to] != -1) {
            unit[v] = unit[e.to];
            break;
          }
        }
      }
    }
    for (VertexId v = old_n; v < g.VertexCount(); ++v) {
      if (unit[v] == -1) unit[v] = 0;  // Orphan: default to unit 0.
    }
  }
}

SetWord PartitionedDatabase::TouchedUnits(
    const GraphDatabase& db,
    const std::vector<std::pair<int, VertexId>>& touched) const {
  SetWord w;
  for (const auto& [graph_index, v] : touched) {
    const Graph& g = db.graph(graph_index);
    const std::vector<int>& unit = assignment_[graph_index];
    w.Set(unit[v]);
    for (const EdgeEntry& e : g.adjacency(v)) w.Set(unit[e.to]);
  }
  return w;
}

int64_t PartitionedDatabase::TotalCutEdges(const GraphDatabase& db) const {
  int64_t total = 0;
  for (int i = 0; i < db.size(); ++i) {
    for (const EdgeEntry& e : db.graph(i).UndirectedEdges()) {
      if (assignment_[i][e.from] != assignment_[i][e.to]) ++total;
    }
  }
  return total;
}

double PartitionedDatabase::AverageTouchedUnits(
    const GraphDatabase& db,
    const std::vector<std::pair<int, VertexId>>& touched) const {
  if (touched.empty()) return 0;
  double total = 0;
  for (const auto& entry : touched) {
    total += TouchedUnits(db, {entry}).Count();
  }
  return total / touched.size();
}

}  // namespace partminer
