#ifndef PARTMINER_PARTITION_MULTILEVEL_H_
#define PARTMINER_PARTITION_MULTILEVEL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace partminer {

/// Options for the METIS-style multilevel bisector used as the partitioning
/// comparator in Figure 13 ("we also use the METIS approach to partition the
/// graphs before mining").
struct MultilevelOptions {
  /// Stop coarsening once the graph has at most this many vertices.
  int coarsen_to = 24;
  /// Boundary-refinement passes per uncoarsening level.
  int refine_passes = 4;
  /// Allowed deviation of a side's vertex weight from half, as a fraction.
  double balance_slack = 0.1;
  uint64_t seed = 1;
};

/// Multilevel bisection after Karypis & Kumar [7]: coarsen by heavy-edge
/// matching (collapsing matched vertex pairs, accumulating vertex and edge
/// weights), bisect the coarsest graph by greedy region growing, then
/// uncoarsen while applying gain-based boundary refinement. Returns a side
/// id (0/1) per vertex. Edge and vertex labels are ignored — METIS is
/// topology-only, which is exactly why the paper's update-aware criteria
/// beat it on dynamic workloads.
std::vector<int> MultilevelBisect(const Graph& g,
                                  const MultilevelOptions& options);

}  // namespace partminer

#endif  // PARTMINER_PARTITION_MULTILEVEL_H_
