#include "partition/graph_part.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "common/logging.h"

namespace partminer {

namespace {

/// DFSScan of Figure 5: prioritized region growing from `start` — "when
/// scanning the unvisited neighbors of a vertex, the vertex with the
/// highest frequency should be the next visited node" (line 21). The
/// frontier is a priority queue over (update frequency, recency), so the
/// scan always absorbs the hottest reachable vertex next — in particular a
/// connected hot region is engulfed completely before any cold vertex — and
/// degenerates to plain DFS on uniform frequencies. If the frontier empties
/// before `limit` vertices are collected (disconnected subgraph), the scan
/// restarts from the hottest unvisited vertex.
std::vector<VertexId> DfsScan(const Graph& g, VertexId start, int limit,
                              const std::vector<VertexId>& by_freq) {
  std::vector<bool> visited(g.VertexCount(), false);
  std::vector<int> connections(g.VertexCount(), 0);
  std::vector<VertexId> collected;

  // (ufreq, connections-to-collected, vertex): hotter first; among equally
  // hot frontier vertices, the one most attached to the growing region —
  // greedy region growing, which keeps the eventual cut small. The queue is
  // lazy: stale entries (connection count since increased) are skipped.
  using Entry = std::tuple<uint32_t, int, VertexId>;
  std::priority_queue<Entry> frontier;
  auto enqueue = [&](VertexId v) {
    frontier.emplace(g.update_freq(v), connections[v], v);
  };
  enqueue(start);
  size_t restart_cursor = 0;

  while (static_cast<int>(collected.size()) < limit) {
    if (frontier.empty()) {
      // Component exhausted: restart from the hottest unvisited vertex.
      while (restart_cursor < by_freq.size() &&
             visited[by_freq[restart_cursor]]) {
        ++restart_cursor;
      }
      if (restart_cursor == by_freq.size()) break;
      enqueue(by_freq[restart_cursor]);
    }
    const auto [freq, conn, v] = frontier.top();
    frontier.pop();
    if (visited[v]) continue;
    if (conn != connections[v]) continue;  // Stale entry; a fresher one exists.
    visited[v] = true;
    collected.push_back(v);
    for (const EdgeEntry& e : g.adjacency(v)) {
      if (!visited[e.to]) {
        ++connections[e.to];
        enqueue(e.to);
      }
    }
  }
  return collected;
}

/// Objective of equation (1) for the subset `subset`.
double Weight(const Graph& g, const std::vector<VertexId>& subset,
              const GraphPartOptions& options, int* cut_out) {
  std::vector<bool> in_subset(g.VertexCount(), false);
  for (const VertexId v : subset) in_subset[v] = true;

  double freq_sum = 0;
  for (const VertexId v : subset) freq_sum += g.update_freq(v);
  const double avg_freq = subset.empty() ? 0 : freq_sum / subset.size();

  int cut = 0;
  for (const EdgeEntry& e : g.UndirectedEdges()) {
    if (in_subset[e.from] != in_subset[e.to]) ++cut;
  }
  if (cut_out != nullptr) *cut_out = cut;
  return options.lambda1 * avg_freq - options.lambda2 * cut;
}

}  // namespace

Bisection GraphPart(const Graph& g, const GraphPartOptions& options) {
  Bisection result;
  result.side.assign(g.VertexCount(), 0);
  const int n = g.VertexCount();
  if (n < 2) return result;

  // Line 1: vertices sorted by update frequency, descending.
  std::vector<VertexId> by_freq(n);
  for (int i = 0; i < n; ++i) by_freq[i] = i;
  std::sort(by_freq.begin(), by_freq.end(), [&g](VertexId a, VertexId b) {
    if (g.update_freq(a) != g.update_freq(b)) {
      return g.update_freq(a) > g.update_freq(b);
    }
    return a < b;
  });

  const int half = std::max(1, n / 2);
  double best_weight = 0;
  std::vector<VertexId> best_subset;
  int best_cut = 0;
  bool have_best = false;

  // Lines 4-12: try a DFSScan from each of the top-half candidate starts.
  const int candidates = std::max(1, n / 2);
  for (int i = 0; i < candidates; ++i) {
    const std::vector<VertexId> subset =
        DfsScan(g, by_freq[i], half, by_freq);
    int cut = 0;
    const double w = Weight(g, subset, options, &cut);
    if (!have_best || w > best_weight) {
      have_best = true;
      best_weight = w;
      best_subset = subset;
      best_cut = cut;
    }
  }

  result.side.assign(n, 1);
  for (const VertexId v : best_subset) result.side[v] = 0;
  result.cut_edges = best_cut;
  result.weight = best_weight;
  return result;
}

std::pair<Graph, Graph> SplitWithConnectiveEdges(
    const Graph& g, const std::vector<int>& side) {
  PM_CHECK_EQ(static_cast<int>(side.size()), g.VertexCount());
  Graph parts[2];
  std::vector<VertexId> remap[2];
  remap[0].assign(g.VertexCount(), -1);
  remap[1].assign(g.VertexCount(), -1);

  auto ensure_vertex = [&](int part, VertexId v) -> VertexId {
    if (remap[part][v] == -1) {
      remap[part][v] = parts[part].AddVertex(g.vertex_label(v));
      parts[part].set_update_freq(remap[part][v], g.update_freq(v));
    }
    return remap[part][v];
  };

  for (const EdgeEntry& e : g.UndirectedEdges()) {
    const bool cut = side[e.from] != side[e.to];
    for (int part = 0; part < 2; ++part) {
      if (cut || side[e.from] == part) {
        parts[part].AddEdge(ensure_vertex(part, e.from),
                            ensure_vertex(part, e.to), e.label);
      }
    }
  }
  return {std::move(parts[0]), std::move(parts[1])};
}

int CountCutEdges(const Graph& g, const std::vector<int>& side) {
  int cut = 0;
  for (const EdgeEntry& e : g.UndirectedEdges()) {
    if (side[e.from] != side[e.to]) ++cut;
  }
  return cut;
}

}  // namespace partminer
