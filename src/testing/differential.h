#ifndef PARTMINER_TESTING_DIFFERENTIAL_H_
#define PARTMINER_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "datagen/generator.h"
#include "graph/graph.h"

namespace partminer {
namespace testing {

/// Everything that determines one fuzz case besides the database itself.
/// Derived deterministically from the case seed (MakeFuzzCase), persisted in
/// repro headers so corpus replays re-run the exact configuration.
struct FuzzCaseParams {
  uint64_t seed = 0;
  GeneratorParams gen;
  int min_support = 2;
  int max_edges = 4;
  int k = 2;
};

/// Derives the generator and mining parameters for `seed`. Smoke mode keeps
/// databases small enough that a full miner matrix finishes in milliseconds;
/// full mode stretches every dimension further.
FuzzCaseParams MakeFuzzCase(uint64_t seed, bool smoke);

/// Outcome of one differential case.
struct DifferentialResult {
  /// Miner configurations whose results were compared against the oracle.
  int configurations = 0;
  /// Empty when every configuration agreed; otherwise a human-readable
  /// description of the first divergence (which configurations, and how the
  /// pattern sets differ).
  std::string divergence;

  bool ok() const { return divergence.empty(); }
};

/// Mines `db` with every miner configuration — brute force (the oracle),
/// gSpan (serial, and on work-stealing pools of 2 and 8 threads), Gaston,
/// PartMiner (both unit miners, unit-mining threads 0/2/8), PartMiner with
/// the label-index and minimality-cache fast paths disabled, the
/// disk-resident AdiMine on a deliberately tiny buffer pool, and an
/// IncPartMiner round (seeded updates, incremental result vs from-scratch
/// re-mining) — and diffs every result (codes, supports, exact TID sets)
/// against the oracle. Theorems 1–3 of the paper say all of these must be
/// identical; any difference is a bug in one of them.
DifferentialResult RunAllChecks(const GraphDatabase& db,
                                const FuzzCaseParams& params);

/// Generates the database for `seed` and runs RunAllChecks.
DifferentialResult RunDifferentialSeed(uint64_t seed, bool smoke);

/// Greedily removes graphs from `db` while RunAllChecks still diverges,
/// returning a (locally) minimal database that reproduces the failure.
GraphDatabase MinimizeDivergence(const GraphDatabase& db,
                                 const FuzzCaseParams& params);

/// Writes `db` as a normal .lg file whose header comments record the case
/// parameters and the divergence summary, so ReplayReproFile can re-run it.
Status WriteReproFile(const std::string& path, const GraphDatabase& db,
                      const FuzzCaseParams& params,
                      const std::string& divergence);

/// Loads a repro written by WriteReproFile and re-runs the full check
/// matrix on it. `*result` reports whether the divergence still reproduces.
Status ReplayReproFile(const std::string& path, DifferentialResult* result);

/// Replays every .lg repro in `dir` (missing or empty directory is OK —
/// it means no divergence has ever been found). Returns non-OK if any file
/// fails to load; `*divergences` counts repros that still diverge.
Status ReplayReproDir(const std::string& dir, int* divergences,
                      int* replayed);

}  // namespace testing
}  // namespace partminer

#endif  // PARTMINER_TESTING_DIFFERENTIAL_H_
