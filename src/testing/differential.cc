#include "testing/differential.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "adi/adi_miner.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/inc_part_miner.h"
#include "core/part_miner.h"
#include "datagen/update_generator.h"
#include "graph/canonical.h"
#include "graph/graph_io.h"
#include "graph/label_index.h"
#include "miner/brute_force.h"
#include "miner/gaston.h"
#include "miner/gspan.h"

namespace partminer {
namespace testing {

namespace {

/// Restores the global fast-path toggles on scope exit.
class FastPathGuard {
 public:
  FastPathGuard()
      : index_(LabelIndexEnabled()), cache_(MinimalityCacheEnabled()) {}
  ~FastPathGuard() {
    SetLabelIndexEnabled(index_);
    SetMinimalityCacheEnabled(cache_);
    ClearMinimalityCache();
  }

 private:
  const bool index_;
  const bool cache_;
};

/// Diffs `actual` against the oracle result: same canonical codes, same
/// supports, and — when both sides counted exactly — the same TID sets.
/// Returns "" on agreement, else a description capped at a few examples.
std::string DiffAgainstOracle(const PatternSet& oracle,
                              const PatternSet& actual,
                              const std::string& name) {
  std::ostringstream out;
  int issues = 0;
  auto note = [&](const std::string& what) {
    if (issues < 5) out << "  " << what << "\n";
    ++issues;
  };

  for (const PatternInfo& p : oracle.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    if (q == nullptr) {
      note("missing pattern " + p.code.ToString() + " (support " +
           std::to_string(p.support) + ")");
      continue;
    }
    if (q->support != p.support) {
      note("support mismatch for " + p.code.ToString() + ": oracle " +
           std::to_string(p.support) + ", " + name + " " +
           std::to_string(q->support));
    }
    if (p.exact_tids && q->exact_tids && !(p.tids == q->tids)) {
      note("tid-set mismatch for " + p.code.ToString());
    }
  }
  for (const PatternInfo& q : actual.patterns()) {
    if (oracle.Find(q.code) == nullptr) {
      note("extra pattern " + q.code.ToString() + " (support " +
           std::to_string(q.support) + ")");
    }
  }
  if (issues == 0) return "";
  std::ostringstream head;
  head << name << " disagrees with the brute-force oracle (" << issues
       << " differences; oracle " << oracle.size() << " patterns, " << name
       << " " << actual.size() << "):\n"
       << out.str();
  return head.str();
}

/// Seeded update round shared by RunAllChecks and corpus replay: the update
/// stream is a pure function of the case seed, so minimized repros keep
/// exercising the same incremental path.
UpdateOptions MakeUpdateOptions(const FuzzCaseParams& params) {
  UpdateOptions upd;
  Rng rng(params.seed * 0x9e3779b97f4a7c15ull + 3);
  upd.fraction_graphs = 0.2 + 0.15 * static_cast<double>(rng.Uniform(4));
  upd.updates_per_graph = 1 + static_cast<int>(rng.Uniform(3));
  upd.seed = params.seed + 101;
  return upd;
}

}  // namespace

FuzzCaseParams MakeFuzzCase(uint64_t seed, bool smoke) {
  FuzzCaseParams params;
  params.seed = seed;
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);

  GeneratorParams& gen = params.gen;
  gen.num_graphs = smoke ? 6 + static_cast<int>(rng.Uniform(9))
                         : 8 + static_cast<int>(rng.Uniform(17));
  gen.num_labels = 2 + static_cast<int>(rng.Uniform(4));
  gen.avg_edges = 4 + static_cast<int>(rng.Uniform(smoke ? 5 : 9));
  gen.avg_kernel_edges = 2 + static_cast<int>(rng.Uniform(3));
  gen.num_kernels = 2 + static_cast<int>(rng.Uniform(5));
  gen.seed = seed * 6364136223846793005ull + 1442695040888963407ull;

  // Support low enough that patterns survive, high enough that not every
  // subgraph is frequent; max_edges bounds the brute-force oracle.
  const int hi = std::max(2, gen.num_graphs / 3);
  params.min_support = 2 + static_cast<int>(rng.Uniform(hi - 1));
  params.max_edges = 3 + static_cast<int>(rng.Uniform(2));
  params.k = 2 + static_cast<int>(rng.Uniform(3));
  return params;
}

DifferentialResult RunAllChecks(const GraphDatabase& db,
                                const FuzzCaseParams& params) {
  DifferentialResult result;
  FastPathGuard guard;
  SetLabelIndexEnabled(true);
  SetMinimalityCacheEnabled(true);

  MinerOptions options;
  options.min_support = params.min_support;
  options.max_edges = params.max_edges;

  BruteForceMiner oracle_miner;
  const PatternSet oracle = oracle_miner.Mine(db, options);
  ++result.configurations;

  auto check = [&](const PatternSet& actual, const std::string& name) {
    ++result.configurations;
    if (!result.ok()) return;
    result.divergence = DiffAgainstOracle(oracle, actual, name);
  };

  {
    GSpanMiner gspan;
    check(gspan.Mine(db, options), "gspan");
    GastonMiner gaston;
    check(gaston.Mine(db, options), "gaston");
  }

  // Parallel gSpan: the work-stealing traversal must be bit-identical to
  // the serial one. The spawn threshold is lowered so the tiny fuzz
  // databases actually fan out.
  for (const int threads : {2, 8}) {
    if (!result.ok()) break;
    ThreadPool pool(threads);
    MinerOptions parallel = options;
    parallel.pool = &pool;
    parallel.parallel_spawn_min_embeddings = 1;
    GSpanMiner gspan;
    check(gspan.Mine(db, parallel),
          "gspan(pool=" + std::to_string(threads) + ")");
  }

  // PartMiner across unit miners and thread counts; Theorems 1-3 say the
  // partition-mine-merge-verify pipeline is lossless.
  for (const UnitMinerKind kind : {UnitMinerKind::kGaston,
                                   UnitMinerKind::kGSpan}) {
    for (const int threads : {0, 2, 8}) {
      if (!result.ok()) break;
      PartMinerOptions popt;
      popt.min_support_count = params.min_support;
      popt.max_edges = params.max_edges;
      popt.partition.k = params.k;
      popt.partition.seed = params.seed + 7;
      popt.unit_miner = kind;
      popt.unit_mining_threads = threads;
      PartMiner miner(popt);
      check(miner.Mine(db).patterns,
            std::string("partminer(") +
                (kind == UnitMinerKind::kGaston ? "gaston" : "gspan") +
                ",threads=" + std::to_string(threads) + ")");
    }
  }

  // Fast paths off: the label-index pruning and minimality memoization are
  // optimizations and must not change any result.
  if (result.ok()) {
    SetLabelIndexEnabled(false);
    SetMinimalityCacheEnabled(false);
    ClearMinimalityCache();
    GSpanMiner gspan;
    check(gspan.Mine(db, options), "gspan(fast paths off)");
    PartMinerOptions popt;
    popt.min_support_count = params.min_support;
    popt.max_edges = params.max_edges;
    popt.partition.k = params.k;
    popt.partition.seed = params.seed + 7;
    PartMiner miner(popt);
    check(miner.Mine(db).patterns, "partminer(fast paths off)");
    SetLabelIndexEnabled(true);
    SetMinimalityCacheEnabled(true);
    ClearMinimalityCache();
  }

  // Disk-resident AdiMine on a deliberately tiny pool (constant eviction),
  // once per storage engine plus the async write-back path — all three must
  // match the in-memory oracle bit for bit.
  for (const char* engine_label :
       {"classic", "swizzle", "swizzle+writers"}) {
    if (!result.ok()) break;
    AdiMineOptions adi_options;
    adi_options.pool.frames = 2;
    if (std::string(engine_label) == "classic") {
      adi_options.pool.engine = StorageEngine::kClassic;
    } else {
      adi_options.pool.engine = StorageEngine::kSwizzle;
      if (std::string(engine_label) == "swizzle+writers") {
        adi_options.pool.writer_threads = 2;
        adi_options.pool.writeback_queue = 8;
      }
    }
    AdiMine adi(adi_options);
    const Status built = adi.BuildIndex(db);
    if (!built.ok()) {
      result.divergence = std::string("adi BuildIndex failed (") +
                          engine_label + "): " + built.ToString();
    } else {
      PatternSet patterns;
      const Status mined = adi.Mine(options, &patterns);
      if (!mined.ok()) {
        result.divergence = std::string("adi Mine failed (") + engine_label +
                            "): " + mined.ToString();
        ++result.configurations;
      } else {
        check(patterns, std::string("adi(frames=2,") + engine_label + ")");
      }
    }
  }

  // Incremental round: mine, apply seeded updates, update incrementally,
  // and compare against a from-scratch re-mining of the updated database.
  if (result.ok()) {
    GraphDatabase updated = db;
    AssignUpdateHotspots(&updated, 0.3, params.seed + 11);

    PartMinerOptions popt;
    popt.min_support_count = params.min_support;
    popt.max_edges = params.max_edges;
    popt.partition.k = params.k;
    popt.partition.seed = params.seed + 7;
    PartMiner miner(popt);
    miner.Mine(updated);

    const UpdateLog log =
        ApplyUpdates(&updated, params.gen.num_labels, MakeUpdateOptions(params));
    IncPartMiner inc;
    const IncPartMinerResult inc_result = inc.Update(&miner, updated, log);

    GSpanMiner gspan;
    const PatternSet remined = gspan.Mine(updated, options);
    ++result.configurations;
    // The incremental result is diffed against a fresh serial mining of the
    // updated database (itself already validated against the oracle above
    // on the pre-update database).
    result.divergence =
        DiffAgainstOracle(remined, inc_result.patterns, "incpartminer");
    if (!result.divergence.empty()) {
      result.divergence =
          "after seeded updates to " +
          std::to_string(log.updated_graphs.size()) +
          " graphs: " + result.divergence;
    }
  }

  return result;
}

DifferentialResult RunDifferentialSeed(uint64_t seed, bool smoke) {
  const FuzzCaseParams params = MakeFuzzCase(seed, smoke);
  const GraphDatabase db = GenerateDatabase(params.gen);
  return RunAllChecks(db, params);
}

GraphDatabase MinimizeDivergence(const GraphDatabase& db,
                                 const FuzzCaseParams& params) {
  GraphDatabase current = db;
  bool shrunk = true;
  while (shrunk && current.size() > 1) {
    shrunk = false;
    for (int drop = current.size() - 1; drop >= 0; --drop) {
      GraphDatabase candidate;
      for (int i = 0; i < current.size(); ++i) {
        if (i != drop) candidate.Add(current.graph(i), candidate.size());
      }
      if (!RunAllChecks(candidate, params).ok()) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

Status WriteReproFile(const std::string& path, const GraphDatabase& db,
                      const FuzzCaseParams& params,
                      const std::string& divergence) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# partminer-fuzz repro seed=" << params.seed
      << " support=" << params.min_support
      << " max_edges=" << params.max_edges << " k=" << params.k << "\n";
  // First line of the divergence, as a comment, for humans browsing the
  // corpus; replay re-derives the ground truth itself.
  const size_t eol = divergence.find('\n');
  if (!divergence.empty()) {
    out << "# divergence: " << divergence.substr(0, eol) << "\n";
  }
  return WriteGraphDatabase(db, out);
}

Status ReplayReproFile(const std::string& path, DifferentialResult* result) {
  *result = DifferentialResult();
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("# partminer-fuzz repro ", 0) != 0) {
    return Status::Corruption(path + ": missing '# partminer-fuzz repro' "
                              "header");
  }

  FuzzCaseParams params;
  std::istringstream tokens(header.substr(std::string("# ").size()));
  std::string token;
  while (tokens >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const long long value = std::atoll(token.c_str() + eq + 1);
    if (key == "seed") {
      params.seed = static_cast<uint64_t>(value);
    } else if (key == "support") {
      params.min_support = static_cast<int>(value);
    } else if (key == "max_edges") {
      params.max_edges = static_cast<int>(value);
    } else if (key == "k") {
      params.k = static_cast<int>(value);
    }
  }
  if (params.min_support < 1 || params.max_edges < 1 || params.k < 2) {
    return Status::Corruption(path + ": implausible repro parameters");
  }

  GraphDatabase db;
  PARTMINER_RETURN_IF_ERROR(ReadGraphDatabaseFile(path, &db));
  if (db.size() == 0) return Status::Corruption(path + ": empty database");
  *result = RunAllChecks(db, params);
  return Status::Ok();
}

Status ReplayReproDir(const std::string& dir, int* divergences,
                      int* replayed) {
  *divergences = 0;
  *replayed = 0;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return Status::Ok();
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".lg") continue;
    DifferentialResult result;
    PARTMINER_RETURN_IF_ERROR(
        ReplayReproFile(entry.path().string(), &result));
    ++*replayed;
    if (!result.ok()) ++*divergences;
  }
  if (ec) return Status::IoError(dir + ": " + ec.message());
  return Status::Ok();
}

}  // namespace testing
}  // namespace partminer
