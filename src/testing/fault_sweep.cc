#include "testing/fault_sweep.h"

#include <sstream>

#include "adi/adi_miner.h"
#include "core/part_miner.h"
#include "core/state_io.h"
#include "common/random.h"
#include "datagen/generator.h"
#include "miner/gspan.h"
#include "storage/fault_injector.h"

namespace partminer {
namespace testing {

namespace {

GeneratorParams SweepDatabaseParams(uint64_t seed) {
  // Large enough that the index spans dozens of pages through a 4-frame
  // pool, so read/write/alloc fault points land throughout build and scan.
  GeneratorParams gen;
  gen.num_graphs = 160;
  gen.num_labels = 4;
  gen.avg_edges = 20;
  gen.avg_kernel_edges = 3;
  gen.num_kernels = 5;
  gen.seed = seed * 0x9e3779b97f4a7c15ull + 17;
  return gen;
}

/// "" when `actual` is exactly `expected` (codes, supports, TID sets).
std::string DiffExact(const PatternSet& expected, const PatternSet& actual) {
  if (expected.SortedCodeStrings() != actual.SortedCodeStrings()) {
    return "pattern sets differ (" + std::to_string(expected.size()) +
           " vs " + std::to_string(actual.size()) + " patterns)";
  }
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    if (q == nullptr) return "missing " + p.code.ToString();
    if (q->support != p.support || !(q->tids == p.tids)) {
      return "support/tids differ for " + p.code.ToString();
    }
  }
  return "";
}

/// One fault-injected build+mine. Returns via the outcome counters; any
/// contract violation (wrong result under OK status, or failure to recover
/// once the injector is detached) is appended to `violations`.
void RunInjectedAdiRound(const GraphDatabase& db, const PatternSet& expected,
                         const MinerOptions& options, FaultInjector* injector,
                         const std::string& label, FaultSweepOutcome* out) {
  ++out->runs;
  AdiMineOptions adi_options;
  adi_options.buffer_frames = 4;  // Tiny pool: every fault point is hot.
  AdiMine miner(adi_options);
  miner.set_fault_injector(injector);

  Status status = miner.BuildIndex(db);
  PatternSet patterns;
  if (status.ok()) status = miner.Mine(options, &patterns);

  if (!status.ok()) {
    ++out->clean_failures;
    if (status.message().empty()) {
      out->violations.push_back(label + ": failure with empty message");
    }
  } else {
    const std::string diff = DiffExact(expected, patterns);
    if (diff.empty()) {
      ++out->successes;
    } else {
      out->violations.push_back(label + ": OK status but wrong result: " +
                                diff);
    }
  }

  // Recovery: with the injector detached, the same miner object must
  // rebuild and produce the exact fault-free result — no poisoned state.
  miner.set_fault_injector(nullptr);
  const Status rebuilt = miner.BuildIndex(db);
  if (!rebuilt.ok()) {
    out->violations.push_back(label + ": recovery rebuild failed: " +
                              rebuilt.ToString());
    return;
  }
  PatternSet recovered;
  const Status remined = miner.Mine(options, &recovered);
  if (!remined.ok()) {
    out->violations.push_back(label + ": recovery mine failed: " +
                              remined.ToString());
    return;
  }
  const std::string diff = DiffExact(expected, recovered);
  if (!diff.empty()) {
    out->violations.push_back(label + ": wrong result after recovery: " +
                              diff);
  }
}

}  // namespace

FaultSweepOutcome RunAdiFaultSweep(uint64_t seed) {
  FaultSweepOutcome out;
  const GraphDatabase db = GenerateDatabase(SweepDatabaseParams(seed));

  MinerOptions options;
  options.min_support = 16;
  options.max_edges = 4;
  GSpanMiner gspan;
  const PatternSet expected = gspan.Mine(db, options);

  const FaultInjector::Op kOps[] = {FaultInjector::Op::kRead,
                                    FaultInjector::Op::kWrite,
                                    FaultInjector::Op::kAlloc};

  // Probabilistic sweep: the paper-scale p grid from the issue.
  for (const double p : {0.001, 0.01, 0.1}) {
    for (const FaultInjector::Op op : kOps) {
      for (int round = 0; round < 4; ++round) {
        FaultInjector injector(seed ^ (static_cast<uint64_t>(round) << 32) ^
                               static_cast<uint64_t>(p * 1e6));
        injector.SetProbability(op, p);
        std::ostringstream label;
        label << "p=" << p << " op=" << FaultInjector::OpName(op)
              << " round=" << round;
        RunInjectedAdiRound(db, expected, options, &injector, label.str(),
                            &out);
      }
    }
  }

  // Scripted sweep: fail exactly the n-th operation of each kind, walking
  // the fault point through the whole build+mine prefix.
  for (const FaultInjector::Op op : kOps) {
    for (int n = 0; n < 40; ++n) {
      FaultInjector injector(seed);
      injector.FailOnce(op, n);
      std::ostringstream label;
      label << "fail-once op=" << FaultInjector::OpName(op) << " n=" << n;
      RunInjectedAdiRound(db, expected, options, &injector, label.str(),
                          &out);
    }
  }
  return out;
}

FaultSweepOutcome RunStateIoFaultSweep(uint64_t seed) {
  FaultSweepOutcome out;
  GraphDatabase db = GenerateDatabase(SweepDatabaseParams(seed + 1));

  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 2;
  PartMiner miner(options);
  miner.Mine(db);

  std::stringstream buffer;
  const Status saved = SaveMinerState(miner, buffer);
  if (!saved.ok()) {
    out.violations.push_back("save failed: " + saved.ToString());
    return out;
  }
  const std::string bytes = buffer.str();

  auto try_load = [&](const std::string& image, const std::string& label) {
    ++out.runs;
    PartMiner restored(options);
    std::istringstream in(image);
    const Status status = LoadMinerState(in, &restored);
    if (!status.ok()) {
      ++out.clean_failures;
      if (restored.mined()) {
        out.violations.push_back(label +
                                 ": failed load left the miner mined");
      }
      return;
    }
    // A load that succeeds despite tampering must have restored exactly
    // the saved result (only possible for no-op corruptions).
    const std::string diff = DiffExact(miner.verified(), restored.verified());
    if (diff.empty()) {
      ++out.successes;
    } else {
      out.violations.push_back(label + ": OK load with wrong state: " + diff);
    }
  };

  Rng rng(seed + 5);
  for (int i = 0; i < 48; ++i) {
    const size_t cut = 1 + rng.Uniform(bytes.size() - 1);
    try_load(bytes.substr(0, cut),
             "truncate to " + std::to_string(cut) + " bytes");
  }
  for (int i = 0; i < 48; ++i) {
    std::string flipped = bytes;
    const size_t pos = rng.Uniform(flipped.size());
    flipped[pos] = static_cast<char>(flipped[pos] ^ (1u << rng.Uniform(8)));
    try_load(flipped, "bit flip at byte " + std::to_string(pos));
  }
  // Control: the untampered image must load with the exact state.
  try_load(bytes, "untampered");
  if (out.successes == 0) {
    out.violations.push_back("untampered image failed to load");
  }
  return out;
}

}  // namespace testing
}  // namespace partminer
