#include "testing/fault_sweep.h"

#include <sstream>

#include <cstdio>

#include "adi/adi_miner.h"
#include "core/part_miner.h"
#include "core/state_io.h"
#include "common/random.h"
#include "datagen/edit_stream.h"
#include "datagen/generator.h"
#include "miner/gspan.h"
#include "obs/flight_recorder.h"
#include "service/daemon.h"
#include "service/json.h"
#include "service/session.h"
#include "storage/fault_injector.h"

namespace partminer {
namespace testing {

namespace {

GeneratorParams SweepDatabaseParams(uint64_t seed) {
  // Large enough that the index spans dozens of pages through a 4-frame
  // pool, so read/write/alloc fault points land throughout build and scan.
  GeneratorParams gen;
  gen.num_graphs = 160;
  gen.num_labels = 4;
  gen.avg_edges = 20;
  gen.avg_kernel_edges = 3;
  gen.num_kernels = 5;
  gen.seed = seed * 0x9e3779b97f4a7c15ull + 17;
  return gen;
}

/// "" when `actual` is exactly `expected` (codes, supports, TID sets).
std::string DiffExact(const PatternSet& expected, const PatternSet& actual) {
  if (expected.SortedCodeStrings() != actual.SortedCodeStrings()) {
    return "pattern sets differ (" + std::to_string(expected.size()) +
           " vs " + std::to_string(actual.size()) + " patterns)";
  }
  for (const PatternInfo& p : expected.patterns()) {
    const PatternInfo* q = actual.Find(p.code);
    if (q == nullptr) return "missing " + p.code.ToString();
    if (q->support != p.support || !(q->tids == p.tids)) {
      return "support/tids differ for " + p.code.ToString();
    }
  }
  return "";
}

/// One fault-injected build+mine. Returns via the outcome counters; any
/// contract violation (wrong result under OK status, or failure to recover
/// once the injector is detached) is appended to `violations`.
void RunInjectedAdiRound(const GraphDatabase& db, const PatternSet& expected,
                         const MinerOptions& options, const PoolSizing& pool,
                         FaultInjector* injector, const std::string& label,
                         FaultSweepOutcome* out) {
  ++out->runs;
  AdiMineOptions adi_options;
  adi_options.pool = pool;
  AdiMine miner(adi_options);
  miner.set_fault_injector(injector);

  Status status = miner.BuildIndex(db);
  PatternSet patterns;
  if (status.ok()) status = miner.Mine(options, &patterns);

  if (!status.ok()) {
    ++out->clean_failures;
    if (status.message().empty()) {
      out->violations.push_back(label + ": failure with empty message");
    }
  } else {
    const std::string diff = DiffExact(expected, patterns);
    if (diff.empty()) {
      ++out->successes;
    } else {
      out->violations.push_back(label + ": OK status but wrong result: " +
                                diff);
    }
  }

  // Recovery: with the injector detached, the same miner object must
  // rebuild and produce the exact fault-free result — no poisoned state.
  miner.set_fault_injector(nullptr);
  const Status rebuilt = miner.BuildIndex(db);
  if (!rebuilt.ok()) {
    out->violations.push_back(label + ": recovery rebuild failed: " +
                              rebuilt.ToString());
    return;
  }
  PatternSet recovered;
  const Status remined = miner.Mine(options, &recovered);
  if (!remined.ok()) {
    out->violations.push_back(label + ": recovery mine failed: " +
                              remined.ToString());
    return;
  }
  const std::string diff = DiffExact(expected, recovered);
  if (!diff.empty()) {
    out->violations.push_back(label + ": wrong result after recovery: " +
                              diff);
  }
}

}  // namespace

PoolSizing AdiSweepPoolSizing(StorageEngine engine) {
  PoolSizing pool;
  pool.frames = 4;  // Tiny pool: every fault point is hot.
  pool.engine = engine;
  return pool;
}

FaultSweepOutcome RunAdiFaultSweep(uint64_t seed) {
  return RunAdiFaultSweep(seed, AdiSweepPoolSizing(StorageEngine::kSwizzle));
}

FaultSweepOutcome RunAdiFaultSweep(uint64_t seed, const PoolSizing& pool) {
  FaultSweepOutcome out;
  const GraphDatabase db = GenerateDatabase(SweepDatabaseParams(seed));

  MinerOptions options;
  options.min_support = 16;
  options.max_edges = 4;
  GSpanMiner gspan;
  const PatternSet expected = gspan.Mine(db, options);

  const FaultInjector::Op kOps[] = {FaultInjector::Op::kRead,
                                    FaultInjector::Op::kWrite,
                                    FaultInjector::Op::kAlloc};

  // Probabilistic sweep: the paper-scale p grid from the issue.
  for (const double p : {0.001, 0.01, 0.1}) {
    for (const FaultInjector::Op op : kOps) {
      for (int round = 0; round < 4; ++round) {
        FaultInjector injector(seed ^ (static_cast<uint64_t>(round) << 32) ^
                               static_cast<uint64_t>(p * 1e6));
        injector.SetProbability(op, p);
        std::ostringstream label;
        label << "p=" << p << " op=" << FaultInjector::OpName(op)
              << " round=" << round;
        RunInjectedAdiRound(db, expected, options, pool, &injector,
                            label.str(), &out);
      }
    }
  }

  // Scripted sweep: fail exactly the n-th operation of each kind, walking
  // the fault point through the whole build+mine prefix.
  for (const FaultInjector::Op op : kOps) {
    for (int n = 0; n < 40; ++n) {
      FaultInjector injector(seed);
      injector.FailOnce(op, n);
      std::ostringstream label;
      label << "fail-once op=" << FaultInjector::OpName(op) << " n=" << n;
      RunInjectedAdiRound(db, expected, options, pool, &injector,
                          label.str(), &out);
    }
  }
  return out;
}

FaultSweepOutcome RunStateIoFaultSweep(uint64_t seed) {
  FaultSweepOutcome out;
  GraphDatabase db = GenerateDatabase(SweepDatabaseParams(seed + 1));

  PartMinerOptions options;
  options.min_support_count = 4;
  options.partition.k = 2;
  PartMiner miner(options);
  miner.Mine(db);

  std::stringstream buffer;
  const Status saved = SaveMinerState(miner, buffer);
  if (!saved.ok()) {
    out.violations.push_back("save failed: " + saved.ToString());
    return out;
  }
  const std::string bytes = buffer.str();

  auto try_load = [&](const std::string& image, const std::string& label) {
    ++out.runs;
    PartMiner restored(options);
    std::istringstream in(image);
    const Status status = LoadMinerState(in, &restored);
    if (!status.ok()) {
      ++out.clean_failures;
      if (restored.mined()) {
        out.violations.push_back(label +
                                 ": failed load left the miner mined");
      }
      return;
    }
    // A load that succeeds despite tampering must have restored exactly
    // the saved result (only possible for no-op corruptions).
    const std::string diff = DiffExact(miner.verified(), restored.verified());
    if (diff.empty()) {
      ++out.successes;
    } else {
      out.violations.push_back(label + ": OK load with wrong state: " + diff);
    }
  };

  Rng rng(seed + 5);
  for (int i = 0; i < 48; ++i) {
    const size_t cut = 1 + rng.Uniform(bytes.size() - 1);
    try_load(bytes.substr(0, cut),
             "truncate to " + std::to_string(cut) + " bytes");
  }
  for (int i = 0; i < 48; ++i) {
    std::string flipped = bytes;
    const size_t pos = rng.Uniform(flipped.size());
    flipped[pos] = static_cast<char>(flipped[pos] ^ (1u << rng.Uniform(8)));
    try_load(flipped, "bit flip at byte " + std::to_string(pos));
  }
  // Control: the untampered image must load with the exact state.
  try_load(bytes, "untampered");
  if (out.successes == 0) {
    out.violations.push_back("untampered image failed to load");
  }
  return out;
}

namespace {

using service::Json;

/// Drives one fault-armed daemon round through the scripted request
/// sequence. Bookkeeping mirror: a local copy of the database accumulates
/// exactly the acknowledged update batches, so the round can end by
/// re-mining the mirror from scratch and demanding digest equality —
/// proving no fault ever half-applied a batch.
struct DaemonRound {
  FaultSweepOutcome* out;
  std::string label;
  service::MinerSession* session;
  service::Daemon* daemon;
  GraphDatabase mirror;
  bool injected_failures = false;
  bool broken = false;

  /// Sends one line; verifies the response is well-formed JSON that is a
  /// success or a structured error. Returns the parsed response.
  Json Send(const std::string& line, bool* ok_out) {
    bool shutdown = false;
    const std::string response = daemon->HandleLine(line, &shutdown);
    Json parsed;
    *ok_out = false;
    if (!Json::Parse(response, &parsed).ok() ||
        parsed.type() != Json::Type::kObject) {
      out->violations.push_back(label + ": unparseable response: " +
                                response.substr(0, 160));
      broken = true;
      return parsed;
    }
    const Json* ok = parsed.Get("ok");
    if (ok == nullptr || ok->type() != Json::Type::kBool) {
      out->violations.push_back(label + ": response without 'ok': " +
                                response.substr(0, 160));
      broken = true;
      return parsed;
    }
    if (!ok->AsBool()) {
      const Json* error = parsed.Get("error");
      const Json* code = error ? error->Get("code") : nullptr;
      const Json* message = error ? error->Get("message") : nullptr;
      if (code == nullptr || !code->is_string() ||
          code->AsString().empty() || message == nullptr ||
          !message->is_string()) {
        out->violations.push_back(label + ": error without code/message: " +
                                  response.substr(0, 160));
        broken = true;
      }
      return parsed;
    }
    *ok_out = true;
    return parsed;
  }

  void Update(const std::vector<EditOp>& edits) {
    std::string line = "{\"cmd\":\"update\",\"wait\":true,\"edits\":[";
    for (size_t i = 0; i < edits.size(); ++i) {
      if (i > 0) line.push_back(',');
      line += service::EditToJson(edits[i]).Dump();
    }
    line += "]}";
    bool ok = false;
    Send(line, &ok);
    if (ok) {
      UpdateLog log;
      ApplyEditBatch(&mirror, edits, &log);
    } else {
      injected_failures = true;
    }
  }

  void Snapshot(const std::string& prefix) {
    bool ok = false;
    Send("{\"cmd\":\"snapshot\",\"path\":\"" + prefix + "\"}", &ok);
    if (!ok) injected_failures = true;
  }

  /// The daemon must answer a ping after every fault — still serving.
  void Ping() {
    bool ok = false;
    Send("{\"cmd\":\"ping\"}", &ok);
    if (!ok) {
      out->violations.push_back(label + ": ping failed after fault");
      broken = true;
    }
  }
};

}  // namespace

FaultSweepOutcome RunDaemonFaultSweep(uint64_t seed) {
  FaultSweepOutcome out;

  GeneratorParams gen;
  gen.num_graphs = 40;
  gen.num_labels = 6;
  gen.avg_edges = 10;
  gen.avg_kernel_edges = 3;
  gen.num_kernels = 6;
  gen.seed = seed * 0x9e3779b97f4a7c15ull + 23;
  const GraphDatabase base = GenerateDatabase(gen);

  service::SessionOptions session_options;
  session_options.miner.min_support_count = 6;
  session_options.miner.partition.k = 2;

  EditStreamOptions stream;
  stream.seed = seed + 3;
  stream.requests = 5;
  stream.update_fraction = 1.0;  // Updates only; queries close each round.
  stream.edits_per_update = 3;
  stream.resident_support = 6;
  const std::vector<StreamItem> updates = GenerateEditStream(base, stream);

  const std::string prefix =
      "/tmp/pm_daemon_sweep." + std::to_string(seed);

  const auto oracle_digest = [&](const GraphDatabase& db) {
    PartMiner oracle(session_options.miner);
    oracle.Mine(db);
    return service::PatternSetDigest(oracle.verified());
  };

  const auto run_round = [&](FaultInjector* injector,
                             const std::string& label) {
    ++out.runs;
    // Sequence fence: every fault injected from here on must leave a
    // flight-recorder event with seq at or past this mark.
    const uint64_t flight_start =
        obs::FlightRecorder::Global().total_recorded();
    service::MinerSession session(session_options);
    const Status init = session.Init(base);
    if (!init.ok()) {
      out.violations.push_back(label + ": init failed: " + init.ToString());
      return;
    }
    session.set_fault_injector(injector);
    service::DaemonOptions daemon_options;
    service::Daemon daemon(&session, daemon_options);

    DaemonRound round{&out, label, &session, &daemon, base};
    for (const StreamItem& item : updates) {
      round.Update(item.edits);
      round.Ping();
      if (round.broken) return;
    }
    round.Snapshot(prefix);
    round.Ping();
    if (round.broken) return;

    // Recovery: detach the injector; the resident state must now snapshot
    // cleanly and its digest must equal a from-scratch mine of exactly the
    // acknowledged batches.
    session.set_fault_injector(nullptr);
    round.Snapshot(prefix);
    bool ok = false;
    const Json reply = round.Send("{\"cmd\":\"query\",\"limit\":0}", &ok);
    if (!ok) {
      out.violations.push_back(label + ": query failed after detach");
      return;
    }
    const Json* result = reply.Get("result");
    const Json* digest = result ? result->Get("digest") : nullptr;
    if (digest == nullptr || !digest->is_string()) {
      out.violations.push_back(label + ": query reply without digest");
      return;
    }
    if (digest->AsString() != std::to_string(oracle_digest(round.mirror))) {
      out.violations.push_back(
          label + ": resident digest diverged from a from-scratch mine of "
                  "the acknowledged batches");
      return;
    }
    // And the snapshot pair written after detach must restore to the same
    // digest in a brand-new session.
    service::MinerSession restored(session_options);
    const Status restore =
        restored.InitFromSnapshot(prefix + ".db.lg", prefix + ".state");
    if (!restore.ok()) {
      out.violations.push_back(label + ": post-detach restore failed: " +
                               restore.ToString());
      return;
    }
    if (std::to_string(restored.digest()) != digest->AsString()) {
      out.violations.push_back(label + ": restored digest diverged");
      return;
    }
    if (round.injected_failures) {
      // The post-mortem contract: a fault that surfaced to a client must
      // also be visible in the flight recorder.
      bool saw_fault_event = false;
      for (const obs::FlightEvent& event :
           obs::FlightRecorder::Global().Snapshot()) {
        if (event.type == obs::FlightEventType::kFaultInjected &&
            event.seq >= flight_start) {
          saw_fault_event = true;
          break;
        }
      }
      if (!saw_fault_event) {
        out.violations.push_back(
            label + ": injected fault left no flight-recorder event");
        return;
      }
      ++out.clean_failures;
    } else {
      ++out.successes;
    }
  };

  const FaultInjector::Op kResidentOps[] = {FaultInjector::Op::kAlloc,
                                            FaultInjector::Op::kWrite};
  for (const FaultInjector::Op op : kResidentOps) {
    for (int n = 0; n < 4; ++n) {
      FaultInjector injector(seed);
      injector.FailOnce(op, n);
      std::ostringstream label;
      label << "daemon fail-once op=" << FaultInjector::OpName(op)
            << " n=" << n;
      run_round(&injector, label.str());
    }
    for (const double p : {0.05, 0.3}) {
      FaultInjector injector(seed ^ static_cast<uint64_t>(p * 1e6));
      injector.SetProbability(op, p);
      std::ostringstream label;
      label << "daemon p=" << p << " op=" << FaultInjector::OpName(op);
      run_round(&injector, label.str());
    }
  }

  // Restore grid: scripted read faults against InitFromSnapshot. A clean
  // snapshot pair exists from the rounds above; every injected restore must
  // fail cleanly, and a fault-free retry must come up with the saved state.
  for (int n = 0; n < 3; ++n) {
    ++out.runs;
    FaultInjector injector(seed + n);
    injector.FailOnce(FaultInjector::Op::kRead, n);
    service::MinerSession session(session_options);
    session.set_fault_injector(&injector);
    const Status restore =
        session.InitFromSnapshot(prefix + ".db.lg", prefix + ".state");
    const std::string label =
        "daemon restore fail-once n=" + std::to_string(n);
    if (restore.ok()) {
      // kRead faults beyond the consult count simply never fire.
      ++out.successes;
    } else {
      ++out.clean_failures;
      if (session.ready()) {
        out.violations.push_back(label + ": failed restore left session "
                                         "ready");
        continue;
      }
    }
    session.set_fault_injector(nullptr);
    const Status retry =
        session.InitFromSnapshot(prefix + ".db.lg", prefix + ".state");
    if (!retry.ok()) {
      out.violations.push_back(label + ": fault-free retry failed: " +
                               retry.ToString());
    }
  }

  std::remove((prefix + ".db.lg").c_str());
  std::remove((prefix + ".state").c_str());
  return out;
}

}  // namespace testing
}  // namespace partminer
