#ifndef PARTMINER_TESTING_FAULT_SWEEP_H_
#define PARTMINER_TESTING_FAULT_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/pool_config.h"

namespace partminer {
namespace testing {

/// Outcome of a fault-injection sweep. The contract under injected storage
/// faults is correct-or-clean-error: every run must either produce exactly
/// the fault-free result or surface a non-OK Status — never crash, hang, or
/// return a silently wrong answer. `violations` lists every run that broke
/// the contract; an empty list is a pass.
struct FaultSweepOutcome {
  int runs = 0;            // Total fault-injected runs executed.
  int clean_failures = 0;  // Runs that surfaced a non-OK Status.
  int successes = 0;       // Runs that completed with the correct result.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Pool sizing the ADI fault sweep uses by default: a 4-frame pool (every
/// fault point hot) on the given engine with synchronous write-back.
PoolSizing AdiSweepPoolSizing(StorageEngine engine);

/// Sweeps the disk-backed ADI miner: probabilistic faults at
/// p in {0.001, 0.01, 0.1} for each operation kind (read, write, alloc),
/// plus a scripted fail-once schedule over the first operations of each
/// kind. Every injected run must end correct-or-clean-error, and after the
/// injector is detached a rebuild + re-mine must recover the exact
/// fault-free result (no poisoned state).
///
/// The one-argument form sweeps the swizzle engine with synchronous
/// write-back; pass an explicit `pool` to sweep the classic engine or the
/// asynchronous write-back path (writer_threads > 0).
FaultSweepOutcome RunAdiFaultSweep(uint64_t seed);
FaultSweepOutcome RunAdiFaultSweep(uint64_t seed, const PoolSizing& pool);

/// Sweeps miner-state persistence: saves a mined PartMiner, then attempts
/// loads from truncated and bit-flipped images. Any load that does not
/// fail cleanly must restore exactly the saved verified result.
FaultSweepOutcome RunStateIoFaultSweep(uint64_t seed);

/// Sweeps the resident mining service: a daemon (session + protocol
/// dispatcher, in-process) is driven through a scripted update / snapshot /
/// query sequence while scripted and probabilistic faults hit the resident
/// paths (batch admission, snapshot writes, snapshot restores). Every
/// response must be a well-formed JSON line that is either a success or a
/// structured error; the daemon must keep serving after every fault; and
/// the final pattern-set digest must equal a from-scratch re-mine of
/// exactly the batches that were acknowledged — a failed request may lose
/// its own work but must never corrupt the resident state.
FaultSweepOutcome RunDaemonFaultSweep(uint64_t seed);

}  // namespace testing
}  // namespace partminer

#endif  // PARTMINER_TESTING_FAULT_SWEEP_H_
