#include "adi/adi_index.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <type_traits>

#include "common/logging.h"

namespace partminer {

namespace {

/// The serialization stream below is generic over the storage engine via
/// these two adapters. Both expose: allocate a writable page / close it
/// dirty, open a page for reading / close it. The classic adapter pairs
/// Fetch/Unpin by hand; the swizzle adapter holds RAII guards, so an early
/// error return can never leak a pin.

struct ClassicIo {
  BufferPool* pool;

  Status AllocateWritable(PageId* id, char** data) {
    return pool->Allocate(id, data);
  }
  void CloseWritable(PageId id) { pool->Unpin(id, /*dirty=*/true); }

  Status OpenReadable(PageId id, const char** data) {
    char* raw = nullptr;
    PARTMINER_RETURN_IF_ERROR(pool->Fetch(id, &raw));
    *data = raw;
    return Status::Ok();
  }
  void CloseReadable(PageId id) { pool->Unpin(id, /*dirty=*/false); }

  Status Flush() { return pool->FlushAll(); }
};

struct SwizzleIo {
  SwizzlePool* pool;
  PageMutGuard write_guard;
  PageGuard read_guard;

  Status AllocateWritable(PageId* id, char** data) {
    PARTMINER_RETURN_IF_ERROR(pool->Allocate(id, &write_guard));
    *data = write_guard.data();
    return Status::Ok();
  }
  void CloseWritable(PageId) { write_guard.Release(); }

  Status OpenReadable(PageId id, const char** data) {
    PARTMINER_RETURN_IF_ERROR(pool->Fetch(id, &read_guard));
    *data = read_guard.data();
    return Status::Ok();
  }
  void CloseReadable(PageId) { read_guard.Release(); }

  Status Flush() { return pool->FlushAll(); }
};

/// Append-only int32 stream over consecutive pages of either engine.
template <typename Io>
class PageStreamWriter {
 public:
  explicit PageStreamWriter(Io* io) : io_(io) {}

  ~PageStreamWriter() { CloseCurrent(); }

  /// Position (page, offset) the next Put will write to; opens the first
  /// page lazily and pre-advances when the current page cannot hold another
  /// value, so the returned position is exactly where the next Put lands.
  Status Position(PageId* page, int32_t* offset) {
    if (current_ == nullptr || offset_ + 4 > kPageSize) {
      PARTMINER_RETURN_IF_ERROR(NextPage());
    }
    *page = page_id_;
    *offset = offset_;
    return Status::Ok();
  }

  Status Put(int32_t value) {
    if (current_ == nullptr || offset_ + 4 > kPageSize) {
      PARTMINER_RETURN_IF_ERROR(NextPage());
    }
    std::memcpy(current_ + offset_, &value, 4);
    offset_ += 4;
    return Status::Ok();
  }

  int64_t pages_written() const { return pages_written_; }

 private:
  Status NextPage() {
    CloseCurrent();
    PARTMINER_RETURN_IF_ERROR_CTX(io_->AllocateWritable(&page_id_, &current_),
                                  "graph stream writer");
    offset_ = 0;
    ++pages_written_;
    return Status::Ok();
  }

  void CloseCurrent() {
    if (current_ != nullptr) {
      io_->CloseWritable(page_id_);
      current_ = nullptr;
    }
  }

  Io* io_;
  char* current_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  int32_t offset_ = 0;
  int64_t pages_written_ = 0;
};

/// Sequential int32 reader starting at (page, offset); follows consecutive
/// page ids, which is how the writer lays streams out.
template <typename Io>
class PageStreamReader {
 public:
  PageStreamReader(Io* io, PageId page, int32_t offset)
      : io_(io), page_id_(page), offset_(offset) {}

  ~PageStreamReader() {
    if (current_ != nullptr) io_->CloseReadable(page_id_);
  }

  Status Get(int32_t* value) {
    if (current_ == nullptr) {
      PARTMINER_RETURN_IF_ERROR_CTX(io_->OpenReadable(page_id_, &current_),
                                    "graph stream reader");
    }
    if (offset_ + 4 > kPageSize) {
      io_->CloseReadable(page_id_);
      ++page_id_;
      offset_ = 0;
      // OpenReadable nulls current_ on failure, so the destructor cannot
      // re-close the page we just released.
      current_ = nullptr;
      PARTMINER_RETURN_IF_ERROR_CTX(io_->OpenReadable(page_id_, &current_),
                                    "graph stream reader");
    }
    std::memcpy(value, current_ + offset_, 4);
    offset_ += 4;
    return Status::Ok();
  }

 private:
  Io* io_;
  PageId page_id_;
  int32_t offset_;
  const char* current_ = nullptr;
};

}  // namespace

Status AdiIndex::Build(const GraphDatabase& db) {
  directory_.clear();
  edge_table_.clear();
  pages_used_ = 0;

  auto build = [&](auto* io) -> Status {
    PageStreamWriter<std::remove_pointer_t<decltype(io)>> writer(io);
    for (int i = 0; i < db.size(); ++i) {
      const Graph& g = db.graph(i);
      DirectoryEntry entry;
      PARTMINER_RETURN_IF_ERROR_CTX(
          writer.Position(&entry.first_page, &entry.byte_offset),
          "serializing graph " + std::to_string(i));
      directory_.push_back(entry);

      PARTMINER_RETURN_IF_ERROR(writer.Put(g.VertexCount()));
      for (VertexId v = 0; v < g.VertexCount(); ++v) {
        PARTMINER_RETURN_IF_ERROR(writer.Put(g.vertex_label(v)));
      }
      const std::vector<EdgeEntry> edges = g.UndirectedEdges();
      PARTMINER_RETURN_IF_ERROR(
          writer.Put(static_cast<int32_t>(edges.size())));
      std::set<std::tuple<Label, Label, Label>> triples;
      for (const EdgeEntry& e : edges) {
        PARTMINER_RETURN_IF_ERROR(writer.Put(e.from));
        PARTMINER_RETURN_IF_ERROR(writer.Put(e.to));
        PARTMINER_RETURN_IF_ERROR(writer.Put(e.label));
        Label a = g.vertex_label(e.from);
        Label b = g.vertex_label(e.to);
        if (a > b) std::swap(a, b);
        triples.insert({a, e.label, b});
      }
      for (const auto& t : triples) edge_table_[t].push_back(i);
    }
    pages_used_ = writer.pages_written();
    return Status::Ok();
  };

  Status built;
  if (swizzle_ != nullptr) {
    SwizzleIo io;
    io.pool = swizzle_;
    built = build(&io);
    PARTMINER_RETURN_IF_ERROR(built);
    PARTMINER_RETURN_IF_ERROR_CTX(io.Flush(), "flushing index pages");
  } else {
    ClassicIo io{classic_};
    built = build(&io);
    PARTMINER_RETURN_IF_ERROR(built);
    PARTMINER_RETURN_IF_ERROR_CTX(io.Flush(), "flushing index pages");
  }
  return Status::Ok();
}

Status AdiIndex::LoadGraph(int index, Graph* out) const {
  PM_CHECK_GE(index, 0);
  PM_CHECK_LT(index, graph_count());
  const DirectoryEntry& entry = directory_[index];
  const std::string context = "loading graph " + std::to_string(index);

  auto load = [&](auto* io) -> Status {
    PageStreamReader<std::remove_pointer_t<decltype(io)>> reader(
        io, entry.first_page, entry.byte_offset);
    int32_t vertex_count = 0;
    PARTMINER_RETURN_IF_ERROR_CTX(reader.Get(&vertex_count), context);
    if (vertex_count < 0) return Status::Corruption("negative vertex count");
    *out = Graph();
    for (int32_t v = 0; v < vertex_count; ++v) {
      int32_t label = 0;
      PARTMINER_RETURN_IF_ERROR_CTX(reader.Get(&label), context);
      out->AddVertex(label);
    }
    int32_t edge_count = 0;
    PARTMINER_RETURN_IF_ERROR_CTX(reader.Get(&edge_count), context);
    if (edge_count < 0) return Status::Corruption("negative edge count");
    for (int32_t e = 0; e < edge_count; ++e) {
      int32_t from = 0, to = 0, label = 0;
      PARTMINER_RETURN_IF_ERROR_CTX(reader.Get(&from), context);
      PARTMINER_RETURN_IF_ERROR_CTX(reader.Get(&to), context);
      PARTMINER_RETURN_IF_ERROR_CTX(reader.Get(&label), context);
      if (from < 0 || to < 0 || from >= vertex_count || to >= vertex_count) {
        return Status::Corruption("edge endpoint out of range");
      }
      out->AddEdge(from, to, label);
    }
    return Status::Ok();
  };

  if (swizzle_ != nullptr) {
    SwizzleIo io;
    io.pool = swizzle_;
    return load(&io);
  }
  ClassicIo io{classic_};
  return load(&io);
}

std::vector<int> AdiIndex::GraphsWithFrequentEdges(int min_support) const {
  std::set<int> keep;
  for (const auto& [triple, tids] : edge_table_) {
    (void)triple;
    if (static_cast<int>(tids.size()) >= min_support) {
      keep.insert(tids.begin(), tids.end());
    }
  }
  return std::vector<int>(keep.begin(), keep.end());
}

}  // namespace partminer
