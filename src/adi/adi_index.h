#ifndef PARTMINER_ADI_ADI_INDEX_H_
#define PARTMINER_ADI_ADI_INDEX_H_

#include <map>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "storage/buffer_pool.h"
#include "storage/swizzle_pool.h"

namespace partminer {

/// Disk-resident graph index in the spirit of the ADI structure of Wang et
/// al. [15] (the paper's ADIMINE baseline): every database graph is
/// serialized into pages behind a buffer pool, and an edge table maps each
/// distinct labeled edge (l_u, l_e, l_v), l_u <= l_v, to the list of graphs
/// containing it.
///
/// The index runs over either storage engine: the classic sharded-LRU
/// BufferPool (the reference implementation) or the LeanStore-style
/// SwizzlePool, whose page guards it threads through the serialization
/// stream. Page layout and mining output are bit-identical across engines.
///
/// The property the paper's evaluation leans on is structural: the index
/// supports efficient mining scans, but any change to the database requires
/// rebuilding it from scratch ("the ADI structure has to be rebuilt each
/// time the graph database is being updated", Section 2).
class AdiIndex {
 public:
  explicit AdiIndex(BufferPool* pool) : classic_(pool) {}
  explicit AdiIndex(SwizzlePool* pool) : swizzle_(pool) {}

  /// Serializes `db` into the page file and builds the edge table. Discards
  /// any previous contents.
  Status Build(const GraphDatabase& db);

  /// Decodes graph `index` from its pages.
  Status LoadGraph(int index, Graph* out) const;

  int graph_count() const { return static_cast<int>(directory_.size()); }
  int64_t pages_used() const { return pages_used_; }

  /// Edge table: canonical labeled-edge triple -> graph indices containing
  /// it (ascending).
  const std::map<std::tuple<Label, Label, Label>, std::vector<int>>&
  edge_table() const {
    return edge_table_;
  }

  /// Graph indices containing at least one edge that is frequent at
  /// `min_support` — the scan filter ADI-style mining starts from.
  std::vector<int> GraphsWithFrequentEdges(int min_support) const;

 private:
  struct DirectoryEntry {
    PageId first_page = kInvalidPageId;
    int32_t byte_offset = 0;  // Offset of the graph record in first_page.
  };

  BufferPool* classic_ = nullptr;
  SwizzlePool* swizzle_ = nullptr;
  std::vector<DirectoryEntry> directory_;
  std::map<std::tuple<Label, Label, Label>, std::vector<int>> edge_table_;
  int64_t pages_used_ = 0;
};

}  // namespace partminer

#endif  // PARTMINER_ADI_ADI_INDEX_H_
