#include "adi/adi_miner.h"

#include <unistd.h>

#include <sstream>

#include "common/logging.h"
#include "common/timing.h"
#include "miner/gspan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace partminer {

namespace {

std::string UniqueTempPath() {
  static int counter = 0;
  std::ostringstream out;
  out << "/tmp/partminer_adi_" << ::getpid() << "_" << counter++ << ".pages";
  return out.str();
}

}  // namespace

AdiMine::AdiMine(const AdiMineOptions& options)
    : engine_(options.pool.engine) {
  const std::string path =
      options.file_path.empty() ? UniqueTempPath() : options.file_path;
  PM_CHECK(disk_.Open(path).ok()) << "cannot open ADI page file " << path;
  disk_.set_simulated_latency_us(options.io_delay_us);
  if (engine_ == StorageEngine::kSwizzle) {
    swizzle_pool_ = std::make_unique<SwizzlePool>(&disk_, options.pool);
    index_ = std::make_unique<AdiIndex>(swizzle_pool_.get());
  } else {
    classic_pool_ = std::make_unique<BufferPool>(&disk_, options.pool.frames,
                                                 options.pool.partitions);
    index_ = std::make_unique<AdiIndex>(classic_pool_.get());
  }
}

AdiMine::~AdiMine() = default;

Status AdiMine::BuildIndex(const GraphDatabase& db) {
  PM_TRACE_SPAN("adi.build_index", {{"graphs", db.size()}});
  Stopwatch watch;
  // A failed build leaves a partially written index; refuse to mine it
  // until a later rebuild succeeds.
  built_ = false;
  if (swizzle_pool_ != nullptr) {
    swizzle_pool_->Clear();
  } else {
    classic_pool_->Clear();
  }
  PARTMINER_RETURN_IF_ERROR_CTX(disk_.Reset(), "resetting page file");
  PARTMINER_RETURN_IF_ERROR_CTX(index_->Build(db), "building ADI index");
  built_ = true;
  PM_METRIC_HISTOGRAM("adi.phase.build_index_ms")
      ->Observe(watch.ElapsedSeconds() * 1e3);
  return Status::Ok();
}

Status AdiMine::Mine(const MinerOptions& options, PatternSet* out) {
  *out = PatternSet();
  if (!built_) {
    return Status::InvalidArgument(
        "Mine() before a successful BuildIndex()");
  }
  PM_TRACE_SPAN("adi.mine", {{"support", options.min_support}});

  // Scan phase: the edge table tells which graphs contain any frequent
  // edge; only those are decoded from their pages.
  Stopwatch scan_watch;
  const std::vector<int> relevant =
      index_->GraphsWithFrequentEdges(options.min_support);
  // Keep database indices aligned with the original ids so pattern TID
  // lists are comparable with the other miners: graphs without frequent
  // edges become empty placeholders.
  GraphDatabase decoded;
  size_t next_relevant = 0;
  for (int i = 0; i < index_->graph_count(); ++i) {
    if (next_relevant < relevant.size() && relevant[next_relevant] == i) {
      Graph g;
      PARTMINER_RETURN_IF_ERROR_CTX(index_->LoadGraph(i, &g),
                                    "ADI index scan");
      decoded.Add(std::move(g), i);
      ++next_relevant;
    } else {
      decoded.Add(Graph(), i);
    }
  }
  last_scan_seconds_ = scan_watch.ElapsedSeconds();
  if (swizzle_pool_ != nullptr) swizzle_pool_->PublishMetrics();

  GSpanMiner miner;
  *out = miner.Mine(decoded, options);
  return Status::Ok();
}

PatternSet AdiMine::Mine(const MinerOptions& options) {
  PatternSet out;
  const Status status = Mine(options, &out);
  PM_CHECK(status.ok()) << status.ToString();
  return out;
}

const IoStats& AdiMine::io_stats() {
  if (swizzle_pool_ != nullptr) return swizzle_pool_->stats();
  return disk_.stats();
}

}  // namespace partminer
