#ifndef PARTMINER_ADI_ADI_MINER_H_
#define PARTMINER_ADI_ADI_MINER_H_

#include <memory>
#include <string>

#include "adi/adi_index.h"
#include "common/status.h"
#include "miner/miner.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/pool_config.h"
#include "storage/swizzle_pool.h"

namespace partminer {

struct AdiMineOptions {
  /// Buffer-pool sizing and engine selection. Defaults to the process-wide
  /// DefaultPoolSizing(), which tools set from --pool-frames /
  /// --pool-partitions / --writer-threads / --storage-engine. Small pools
  /// force re-reads during scans, modeling a database larger than memory.
  PoolSizing pool = DefaultPoolSizing();
  /// Backing file; empty picks a unique temp path.
  std::string file_path;
  /// Simulated per-page access latency (microseconds); models the 2006-era
  /// disk the paper's ADIMINE ran against. See DiskManager.
  int io_delay_us = 0;
};

/// Disk-based frequent-subgraph miner standing in for ADIMINE [15] (the
/// paper compared against the authors' closed executable; see DESIGN.md for
/// the substitution rationale). Graphs live in an ADI-style page-resident
/// index; mining scans decode them through a bounded buffer pool and feed a
/// gSpan-style in-memory search, which mirrors ADI's "index makes static
/// mining fast" profile.
///
/// The buffer pool behind the index is selected by options.pool.engine:
/// the swizzle engine (default) or the classic pool. Mining output is
/// bit-identical across engines — the fuzz matrix and adi_test enforce it.
///
/// The decisive behavior for the paper's dynamic experiments is faithfully
/// reproduced: AdiMine cannot update its index incrementally — any database
/// change requires RebuildIndex() followed by a full Mine(), while
/// IncPartMiner re-mines only the affected units.
class AdiMine {
 public:
  explicit AdiMine(const AdiMineOptions& options = AdiMineOptions());
  ~AdiMine();

  AdiMine(const AdiMine&) = delete;
  AdiMine& operator=(const AdiMine&) = delete;

  /// Builds (or rebuilds) the disk-resident index from `db`.
  Status BuildIndex(const GraphDatabase& db);

  /// Full rebuild after updates — the only update path ADI supports.
  Status RebuildIndex(const GraphDatabase& db) { return BuildIndex(db); }

  /// Mines the indexed database: scans the index (skipping graphs without
  /// any frequent edge, per the edge table), decodes the survivors through
  /// the buffer pool, and runs the DFS-code search. A failed page scan
  /// (I/O error, injected fault, exhausted pool) propagates as a non-OK
  /// Status with `*out` left empty — never a crash or a partial answer.
  Status Mine(const MinerOptions& options, PatternSet* out);

  /// Convenience overload for callers without a failure path (benchmarks,
  /// experiment harnesses): checks the Status fatally.
  PatternSet Mine(const MinerOptions& options);

  /// Attaches `injector` to the underlying disk manager (nullptr detaches);
  /// see FaultInjector. The injector is not owned.
  void set_fault_injector(FaultInjector* injector) {
    disk_.set_fault_injector(injector);
  }

  const AdiIndex& index() const { return *index_; }
  StorageEngine engine() const { return engine_; }

  /// I/O counters; with the swizzle engine, pool_hits is synced from the
  /// per-frame hit counters on each call.
  const IoStats& io_stats();

  /// Seconds spent decoding pages during the last Mine().
  double last_scan_seconds() const { return last_scan_seconds_; }

 private:
  DiskManager disk_;
  StorageEngine engine_ = StorageEngine::kSwizzle;
  std::unique_ptr<BufferPool> classic_pool_;
  std::unique_ptr<SwizzlePool> swizzle_pool_;
  std::unique_ptr<AdiIndex> index_;
  bool built_ = false;
  double last_scan_seconds_ = 0;
};

}  // namespace partminer

#endif  // PARTMINER_ADI_ADI_MINER_H_
