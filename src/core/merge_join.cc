#include "core/merge_join.h"

#include "miner/extensions.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"
#include "miner/engine.h"
#include "miner/gspan.h"
#include "obs/metrics.h"

namespace partminer {

void MergeJoinStats::Accumulate(const MergeJoinStats& other) {
  inherited_patterns += other.inherited_patterns;
  cached_patterns += other.cached_patterns;
  delta_recounts += other.delta_recounts;
  candidates_generated += other.candidates_generated;
  candidates_counted += other.candidates_counted;
  candidates_skipped_known += other.candidates_skipped_known;
  spanning_found += other.spanning_found;
}

void MergeJoinStats::PublishToRegistry() const {
  PM_METRIC_COUNTER("merge.inherited_patterns")->Add(inherited_patterns);
  PM_METRIC_COUNTER("merge.cached_patterns")->Add(cached_patterns);
  PM_METRIC_COUNTER("merge.delta_recounts")->Add(delta_recounts);
  PM_METRIC_COUNTER("merge.candidates_generated")->Add(candidates_generated);
  PM_METRIC_COUNTER("merge.candidates_counted")->Add(candidates_counted);
  PM_METRIC_COUNTER("merge.candidates_skipped_known")
      ->Add(candidates_skipped_known);
  PM_METRIC_COUNTER("merge.spanning_found")->Add(spanning_found);
}

PatternSet MergeJoin(const GraphDatabase& node_db, const PatternSet& left,
                     const PatternSet& right, const MergeJoinOptions& options,
                     MergeJoinStats* stats, NodeFrontier* frontier_out) {
  // Per-call deltas accumulate locally, reach the registry once at the end,
  // and fold into the caller's struct (keeping the existing struct API).
  MergeJoinStats local_stats;
  MergeJoinStats* s = &local_stats;
  s->inherited_patterns += left.size() + right.size();

  // Exact node-level recovery: DFS-code sweep of the recombined database at
  // the node threshold (see the header comment for why this is the recovery
  // operator once every node is kept exact), capturing the frontier for the
  // incremental path.
  GSpanMiner miner;
  MinerOptions mo;
  mo.min_support = options.min_support;
  mo.max_edges = options.max_edges;
  if (frontier_out != nullptr) {
    frontier_out->map.clear();
    frontier_out->valid = true;
    mo.capture_frontier = &frontier_out->map;
  }
  PatternSet out = miner.Mine(node_db, mo);

  s->candidates_counted += out.size();
  for (const PatternInfo& p : out.patterns()) {
    if (!left.Contains(p.code) && !right.Contains(p.code)) {
      ++s->spanning_found;  // Genuinely cross-partition discovery.
    }
  }
  local_stats.PublishToRegistry();
  if (stats != nullptr) stats->Accumulate(local_stats);
  return out;
}

namespace {

/// True when `code` strictly extends `prefix` (same leading tuples).
bool ExtendsPrefix(const DfsCode& code, const DfsCode& prefix) {
  if (code.size() <= prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(code[i] == prefix[i])) return false;
  }
  return true;
}

/// The delta-mining sweep behind IncMergeJoin: a gSpan recursion over the
/// *updated graphs only*. Every encountered extension group resolves its
/// pre-update TID list from the node's cache (frequent patterns) or its
/// frontier (everything else ever enumerated; absent means zero pre-update
/// occurrences), so post-update supports come from set arithmetic alone —
/// no subgraph-isomorphism counting. Patterns that newly cross the
/// threshold are completed by a full-projection subtree grow (rare).
class DeltaSweep {
 public:
  DeltaSweep(const GraphDatabase& node_db, const GraphDatabase& upd_db,
             const PatternSet& cached, FrontierMap* frontier,
             TidSet updated_set, const MergeJoinOptions& options,
             PatternSet* out, MergeJoinStats* stats)
      : node_db_(node_db),
        upd_db_(upd_db),
        cached_(cached),
        frontier_(frontier),
        updated_set_(std::move(updated_set)),
        options_(options),
        out_(out),
        stats_(stats) {}

  void Run() {
    // Strip the updated graphs from every frontier entry up front: the
    // remainder is exactly "pre-update containment that is still valid",
    // and the sweep re-adds post-update hits for the entries it reaches.
    // Entries it does not reach have no post-update occurrence in the
    // updated graphs, so the stripped value is already exact.
    if (frontier_ != nullptr) {
      for (auto& [code, tids] : *frontier_) {
        (void)code;
        tids -= updated_set_;
      }
    }
    engine::ExtensionMap roots = engine::CollectRootExtensions(upd_db_);
    DfsCode code;
    for (const auto& [tuple, projected] : roots) {
      code.Append(tuple);
      Handle(&code, projected);
      code.PopBack();
    }
  }

 private:
  /// Exact post-update TIDs: (old \ updated) ∪ hits-in-updated, three word-
  /// wise bitset passes with no per-candidate vector materialization (the
  /// former KeptTids/NewTids set_difference+merge pair, folded). The pre-
  /// update set comes from the node cache (stripped here) or the frontier
  /// (stripped once up front in Run()); absent means zero pre-update
  /// occurrences.
  TidSet NewTids(const DfsCode& code, const TidSet& upd_hits) const {
    TidSet tids;
    const PatternInfo* info = cached_.Find(code);
    if (info != nullptr) {
      tids = info->tids;
      tids -= updated_set_;
    } else if (frontier_ != nullptr) {
      const auto it = frontier_->find(code);
      if (it != frontier_->end()) tids = it->second;  // Already stripped.
    }
    tids |= upd_hits;
    return tids;
  }

  /// Processes one extension group reached through the updated graphs.
  void Handle(DfsCode* code, const engine::Projected& projected) {
    ++stats_->candidates_generated;
    const TidSet upd_hits = engine::TidSetOf(projected);
    TidSet tids = NewTids(*code, upd_hits);
    const int support = tids.Count();
    const bool was_cached = cached_.Contains(*code);

    if (support < options_.min_support) {
      if (frontier_ != nullptr) (*frontier_)[*code] = std::move(tids);
      if (was_cached) CutSubtree(*code);  // FI: prune the stale subtree.
      return;  // Apriori: nothing frequent extends an infrequent pattern.
    }
    if (!IsMinimalDfsCode(*code)) {
      // Frequent under a non-minimal code: keep the TIDs for future rounds;
      // the minimal twin carries the pattern.
      if (frontier_ != nullptr) (*frontier_)[*code] = std::move(tids);
      return;
    }
    if (!was_cached) {
      // Newly frequent (IF direction): its subtree was never enumerated
      // before, so recover it with a full projection over the node database
      // (exact TIDs are in hand).
      ++stats_->spanning_found;
      ++stats_->candidates_counted;
      if (frontier_ != nullptr) frontier_->erase(*code);  // Promoted.
      FullGrow(code, tids.ToVector());
      return;
    }

    // Still-frequent cached pattern: exact info by arithmetic; keep sweeping
    // its extensions inside the updated graphs.
    ++stats_->candidates_skipped_known;
    PatternInfo info;
    info.code = *code;
    info.support = support;
    info.tids = std::move(tids);
    out_->Upsert(std::move(info));

    if (static_cast<int>(code->size()) >= options_.max_edges) return;
    engine::ExtensionMap extensions = engine::CollectExtensions(
        upd_db_, *code, projected, /*enable_order_pruning=*/true);
    for (const auto& [tuple, child_projected] : extensions) {
      code->Append(tuple);
      Handle(code, child_projected);
      code->PopBack();
    }
  }

  /// Standard full-projection grow for a newly frequent pattern: emits its
  /// whole frequent subtree with exact info and records the subtree's
  /// frontier.
  void FullGrow(DfsCode* code, const std::vector<int>& tids) {
    std::deque<engine::Embedding> arena;
    const engine::Projected projected =
        engine::ProjectCode(*code, node_db_, tids, &arena);
    GrowFrom(code, projected);
  }

  void GrowFrom(DfsCode* code, const engine::Projected& projected) {
    PatternInfo info;
    info.code = *code;
    info.support = engine::SupportOf(projected);
    info.tids = engine::TidSetOf(projected);
    out_->Upsert(std::move(info));

    if (static_cast<int>(code->size()) >= options_.max_edges) return;
    engine::ExtensionMap extensions = engine::CollectExtensions(
        node_db_, *code, projected, /*enable_order_pruning=*/true);
    for (const auto& [tuple, child_projected] : extensions) {
      code->Append(tuple);
      if (engine::SupportOf(child_projected) < options_.min_support) {
        if (frontier_ != nullptr) {
          (*frontier_)[*code] = engine::TidSetOf(child_projected);
        }
      } else if (IsMinimalDfsCode(*code)) {
        GrowFrom(code, child_projected);
      } else if (frontier_ != nullptr) {
        (*frontier_)[*code] = engine::TidSetOf(child_projected);
      }
      code->PopBack();
    }
  }

  /// Discards the frontier subtree of a dropped (frequent -> infrequent)
  /// pattern. Those entries were derived through occurrences that may have
  /// vanished; they are re-derived if the region becomes frequent again.
  /// FI transitions are rare, so a linear scan is acceptable.
  void CutSubtree(const DfsCode& cut) {
    if (frontier_ == nullptr) return;
    for (auto it = frontier_->begin(); it != frontier_->end();) {
      if (ExtendsPrefix(it->first, cut)) {
        it = frontier_->erase(it);
      } else {
        ++it;
      }
    }
  }

  const GraphDatabase& node_db_;
  const GraphDatabase& upd_db_;
  const PatternSet& cached_;
  FrontierMap* frontier_;
  const TidSet updated_set_;
  const MergeJoinOptions& options_;
  PatternSet* out_;
  MergeJoinStats* stats_;
};

}  // namespace

PatternSet IncMergeJoin(const GraphDatabase& node_db, const PatternSet& cached,
                        const std::vector<int>& updated_graphs,
                        const MergeJoinOptions& options,
                        MergeJoinStats* stats, NodeFrontier* frontier) {
  MergeJoinStats local_stats;
  MergeJoinStats* s = &local_stats;
  s->cached_patterns += cached.size();
  // Publish the local deltas to the registry and the caller's struct on
  // every return path below.
  struct Publisher {
    MergeJoinStats* local;
    MergeJoinStats* caller;
    ~Publisher() {
      local->PublishToRegistry();
      if (caller != nullptr) caller->Accumulate(*local);
    }
  } publisher{&local_stats, stats};

  std::vector<int> updated = updated_graphs;
  std::sort(updated.begin(), updated.end());
  updated.erase(std::unique(updated.begin(), updated.end()), updated.end());

  if (updated.empty()) {
    // Nothing changed: the cached set is already exact.
    return cached;
  }

  // Cost-model switch: when a large share of the node changed (or the
  // frontier cache is invalid), the exact re-sweep beats the delta
  // machinery. Both are exact. The capture cost is paid only when a future
  // small-update round could use the cache: a small-update round with an
  // invalid cache re-captures; a large-update round skips the capture and
  // invalidates.
  const bool small_update =
      node_db.size() == 0 ||
      static_cast<double>(updated.size()) / node_db.size() <=
          options.delta_sweep_max_fraction;
  if (!small_update || frontier == nullptr || !frontier->valid) {
    GSpanMiner miner;
    MinerOptions mo;
    mo.min_support = options.min_support;
    mo.max_edges = options.max_edges;
    if (frontier != nullptr) {
      frontier->map.clear();
      frontier->valid = small_update;  // Re-capture only when worthwhile.
      if (small_update) mo.capture_frontier = &frontier->map;
    }
    PatternSet out = miner.Mine(node_db, mo);
    s->candidates_counted += out.size();
    for (const PatternInfo& p : out.patterns()) {
      if (!cached.Contains(p.code)) ++s->spanning_found;
    }
    return out;
  }

  // Pass 1 — pure set arithmetic for every cached pattern: containment in
  // non-updated graphs is unchanged, so (old tids \ updated) is a certified
  // lower bound; patterns the sweep reaches below are overwritten with their
  // full post-update info (which can only add updated-graph hits).
  const TidSet updated_set = TidSet::FromVector(updated);
  PatternSet out;
  for (const PatternInfo& p : cached.patterns()) {
    if (static_cast<int>(p.code.size()) > options.max_edges) continue;
    ++s->delta_recounts;
    PatternInfo q;
    q.code = p.code;
    q.tids = p.tids;
    q.tids -= updated_set;
    q.support = q.tids.Count();
    if (q.support >= options.min_support) out.Upsert(std::move(q));
  }

  // Pass 2 — the frontier-backed delta sweep over the updated graphs. The
  // frontier map is mutated in place (stripped, refreshed, pruned).
  if (!updated.empty()) {
    GraphDatabase upd_db;
    size_t u = 0;
    for (int i = 0; i < node_db.size(); ++i) {
      if (u < updated.size() && updated[u] == i) {
        upd_db.Add(node_db.graph(i), node_db.gid(i));
        ++u;
      } else {
        upd_db.Add(Graph(), node_db.gid(i));
      }
    }
    DeltaSweep sweep(node_db, upd_db, cached, &frontier->map, updated_set,
                     options, &out, s);
    sweep.Run();
  }
  return out;
}

}  // namespace partminer
