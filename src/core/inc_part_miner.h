#ifndef PARTMINER_CORE_INC_PART_MINER_H_
#define PARTMINER_CORE_INC_PART_MINER_H_

#include <vector>

#include "common/setword.h"
#include "core/part_miner.h"
#include "datagen/update_generator.h"
#include "graph/graph.h"
#include "miner/pattern_set.h"

namespace partminer {

/// Outcome of one incremental round: the new exact pattern set of the
/// updated database plus the paper's three classification sets
/// (Section 4.5): UF (frequent before and after), FI (frequent ->
/// infrequent), IF (infrequent -> frequent).
struct IncPartMinerResult {
  PatternSet patterns;  // P(D'), exact.
  PatternSet uf;
  PatternSet fi;
  PatternSet if_;

  SetWord remined_units;
  int prune_set_size = 0;

  double route_seconds = 0;        // Assignment extension + touched units.
  std::vector<double> unit_mining_seconds;  // Only re-mined units nonzero.
  double merge_seconds = 0;
  double verify_seconds = 0;

  MergeJoinStats merge_stats;
  VerifyStats verify_stats;

  double UnitSecondsSum() const;
  double UnitSecondsMax() const;
  double AggregateSeconds() const;
  double ParallelSeconds() const;
};

/// IncPartMiner (Figure 12): updates a mined PartMiner in place.
///
/// Only units containing updated vertices (the setword computed from the
/// update log) are re-mined; merge-joins re-run only on their merge-tree
/// ancestors, with candidates found in the pruned pre-update result adopted
/// without re-counting (IncMergeJoin); and the final verification is a
/// delta recount that touches only the updated graphs for patterns known
/// before the update.
///
/// The prune set P follows the paper: patterns that disappeared from a
/// re-mined unit and appear in no other unit are potential frequent->
/// infrequent transitions; pre-update patterns that are supergraphs of a
/// prune-set member lose their "known frequent" status before IncMergeJoin.
///
/// Unlike the paper's pseudocode — which trusts the unit-level heuristic and
/// can in principle misclassify borderline patterns — the final delta
/// verification here makes UF/FI/IF exact. Tests compare every field
/// against a from-scratch re-mining.
class IncPartMiner {
 public:
  IncPartMiner() = default;

  /// Applies one update round. `state` must have completed Mine();
  /// `new_db` is the updated database (same graph count, vertices only
  /// added, per the paper's update model); `log` is the update log from
  /// ApplyUpdates. The state's partition assignments, node pattern sets and
  /// verified result are updated so further rounds can follow.
  IncPartMinerResult Update(PartMiner* state, const GraphDatabase& new_db,
                            const UpdateLog& log);
};

}  // namespace partminer

#endif  // PARTMINER_CORE_INC_PART_MINER_H_
