#ifndef PARTMINER_CORE_MERGE_JOIN_H_
#define PARTMINER_CORE_MERGE_JOIN_H_

#include <climits>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "miner/extensions.h"
#include "miner/pattern_set.h"

namespace partminer {

struct MergeJoinOptions {
  /// Absolute minimum support at this merge node. Children are expected to
  /// be complete at ceil(min_support / 2) — the paper's reduced-support rule
  /// (Section 4.4) that makes the recovery lossless.
  int min_support = 1;
  int max_edges = INT_MAX;

  /// IncMergeJoin cost-model switch: the update-proportional delta sweep
  /// wins while the updated graphs are a minority of the node database;
  /// beyond this fraction a plain exact re-sweep is cheaper. Both paths are
  /// exact; this only picks the cheaper one.
  double delta_sweep_max_fraction = 0.15;
};

/// Work counters for the merge operators.
struct MergeJoinStats {
  int64_t inherited_patterns = 0;   // Child patterns fed into the node.
  int64_t cached_patterns = 0;      // IncMergeJoin: cached patterns reused.
  int64_t delta_recounts = 0;       // IncMergeJoin: cached patterns delta-verified.
  int64_t candidates_generated = 0; // Extension candidates examined.
  int64_t candidates_counted = 0;   // Candidates needing a support count.
  int64_t candidates_skipped_known = 0;  // Skipped: already in the cache.
  int64_t spanning_found = 0;       // Newly discovered frequent patterns.

  void Accumulate(const MergeJoinStats& other);

  /// Adds these values to the process metrics registry (merge.* counters).
  /// MergeJoin/IncMergeJoin publish their per-call deltas automatically.
  void PublishToRegistry() const;
};

/// The merge-join of Section 4.3, specialized to this implementation's
/// exact-at-every-node invariant (see DESIGN.md): recovers the *exact*
/// frequent pattern set of a merge-tree node's recombined database.
///
/// With exactness required at each node, the recovery operator for the
/// static path is equivalent to a full DFS-code sweep of the node database
/// seeded at its frequent 1-edge patterns (every frequent pattern is
/// reachable through its minimal-code prefix chain, whose members are
/// frequent by the Apriori property — Theorems 1-3 in the paper). `left`
/// and `right` are consulted for statistics; the candidate-reuse machinery
/// the paper describes pays off in the *incremental* operator below, which
/// is where the paper's evaluation exercises it.
///
/// Every pattern in the result carries exact support and TID lists for
/// `node_db` (exact_tids set).
/// `frontier_out`, when non-null, receives the node's mining frontier (see
/// FrontierMap) for consumption by later IncMergeJoin calls.
PatternSet MergeJoin(const GraphDatabase& node_db, const PatternSet& left,
                     const PatternSet& right, const MergeJoinOptions& options,
                     MergeJoinStats* stats, NodeFrontier* frontier_out);

/// The incremental merge (IncMergeJoin, Figure 12): recovers the exact
/// frequent pattern set of a node's *updated* database from the node's
/// cached pre-update pattern set, touching work proportional to the update:
///
///  1. Every cached pattern is delta-recounted — only `updated_graphs` are
///     re-examined; containment elsewhere cannot have changed. Patterns
///     falling below threshold drop out (the paper's FI direction).
///  2. New patterns are discovered by sweeping rightmost extensions of
///     verified patterns *projected onto the updated graphs only*: a
///     pattern that became frequent must have gained an occurrence, so it
///     occurs in an updated graph, and so does every prefix of its minimal
///     code (per-graph Apriori). Support outside the updated graphs is
///     counted within the parent's exact TID list.
///
/// This is the precise sense in which "IncPartMiner makes use of the pruned
/// results of the pre-updated database to eliminate the generation of
/// unchanged candidate graphs" (Section 1): unchanged candidates are never
/// re-generated or re-counted outside the updated graphs.
/// `frontier` is the node's cached frontier (in/out): candidates looked up
/// there are re-counted by set arithmetic alone, and the map is replaced by
/// the post-update frontier. May be null (candidates absent from the cache
/// then count as having had no pre-update occurrence, which is only correct
/// when the frontier was captured — pass the map PartMiner recorded).
PatternSet IncMergeJoin(const GraphDatabase& node_db, const PatternSet& cached,
                        const std::vector<int>& updated_graphs,
                        const MergeJoinOptions& options,
                        MergeJoinStats* stats, NodeFrontier* frontier);

}  // namespace partminer

#endif  // PARTMINER_CORE_MERGE_JOIN_H_
